"""Compare the inference engines of the BN substrate on one network.

§6.1 and §8 frame BClean's partitioned inference as one point in a
spectrum: exact variable elimination (expensive, error-propagating),
belief propagation (exact on trees), Gibbs sampling (approximate,
sample-budget-bound), and the Markov-blanket shortcut BClean actually
uses (exact under full evidence, and the cheapest).  This example
builds one network from FD-structured data and runs the same repair
query through all four, reporting the posterior each assigns to the
ground-truth value and the time each takes.

Run:  python examples/inference_tradeoffs.py
"""

import random
import time

from repro.bayesnet import (
    BeliefPropagation,
    DiscreteBayesNet,
    VariableElimination,
    markov_blanket_posterior,
)
from repro.bayesnet.dag import DAG
from repro.bayesnet.sampling import GibbsSampler
from repro.dataset.schema import Schema
from repro.dataset.table import Table


def build_network(n_rows: int = 600, seed: int = 9) -> DiscreteBayesNet:
    """city → zip → state, fitted from mostly-clean observations."""
    rng = random.Random(seed)
    places = [
        ("sylacauga", "35150", "AL"),
        ("centre", "35960", "AL"),
        ("newyork", "10001", "NY"),
        ("sanfrancisco", "94105", "CA"),
        ("chicago", "60601", "IL"),
    ]
    schema = Schema.of("city:categorical", "zip:categorical", "state:categorical")
    rows = []
    for _ in range(n_rows):
        city, zipcode, state = rng.choice(places)
        # 3% label noise so the CPTs are not degenerate
        if rng.random() < 0.03:
            state = rng.choice(["AL", "NY", "CA", "IL", "KT"])
        rows.append([city, zipcode, state])
    table = Table.from_rows(schema, rows)
    dag = DAG(schema.names)
    dag.add_edge("city", "zip")
    dag.add_edge("zip", "state")
    return DiscreteBayesNet.fit(table, dag, alpha=0.5)


def main() -> None:
    bn = build_network()
    print("Network:")
    print(bn.dag.pretty())

    # The repair query: a tuple observed as (sylacauga, ?, AL) — what is
    # the posterior over the missing zip?
    evidence = {"city": "sylacauga", "state": "AL"}
    truth = "35150"
    print(f"\nQuery: P(zip | {evidence}), ground truth = {truth!r}\n")

    engines = []

    ve = VariableElimination(bn)
    start = time.perf_counter()
    p_ve = ve.query("zip", evidence)
    engines.append(("variable elimination", p_ve, time.perf_counter() - start))

    bp = BeliefPropagation(bn)
    start = time.perf_counter()
    result = bp.run(evidence)
    engines.append(
        (
            f"belief propagation (tree={result.is_tree}, "
            f"{result.iterations} iters)",
            result.marginal("zip"),
            time.perf_counter() - start,
        )
    )

    gibbs = GibbsSampler(bn, seed=1)
    start = time.perf_counter()
    p_gibbs = gibbs.query("zip", evidence, n_samples=4000, burn_in=500)
    engines.append(("Gibbs sampling (4000 samples)", p_gibbs, time.perf_counter() - start))

    # BClean's own shortcut: full evidence → only the Markov blanket
    # matters.  This is what §6.1's partitioned inference computes.
    row = dict(evidence)
    start = time.perf_counter()
    p_blanket = markov_blanket_posterior(bn, "zip", row)
    engines.append(("Markov blanket (BCleanPI)", p_blanket, time.perf_counter() - start))

    print(f"{'engine':<44} {'P(truth)':>9} {'top value':>10} {'ms':>8}")
    print("-" * 76)
    for name, posterior, seconds in engines:
        top = max(posterior, key=posterior.get)
        print(
            f"{name:<44} {posterior.get(truth, 0.0):>9.4f} "
            f"{str(top):>10} {seconds * 1e3:>8.2f}"
        )

    print(
        "\nAll engines agree on the MAP value; the Markov-blanket path"
        "\ngets there at a fraction of the cost — the §6.1 optimisation."
    )


if __name__ == "__main__":
    main()
