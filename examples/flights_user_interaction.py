"""User interaction on the Flights network (§4 + §7.3.2).

The automatically learned Flights network is the paper's showcase for
the interaction feature: view the skeleton, fix it (the ground truth is
the star ``flight → every recorded time``), and observe the cleaning
improvement.  Also demonstrates node merging (Figure 2(g)-(h)).

Run:  python examples/flights_user_interaction.py
"""

from repro.core import BClean, BCleanConfig, NetworkEditSession
from repro.data.benchmark import load_benchmark
from repro.data.flights import TIME_ATTRS
from repro.evaluation import evaluate_repairs


def score(engine, bench) -> str:
    result = engine.clean()
    quality = evaluate_repairs(
        bench.dirty, result.cleaned, bench.clean, bench.error_cells
    )
    return (
        f"P={quality.precision:.3f} R={quality.recall:.3f} "
        f"F1={quality.f1:.3f} ({result.n_repairs} repairs)"
    )


def main() -> None:
    bench = load_benchmark("flights", n_rows=800, seed=0)
    engine = BClean(BCleanConfig.pi(), bench.constraints)
    engine.fit(bench.dirty)

    print("Auto-constructed network:")
    print(engine.dag.pretty())
    print("\nCleaning with the auto network:", score(engine, bench))

    # The user views the network and repairs it: every recorded time
    # depends on the flight, nothing else (the §7.3.2 adjustment).
    session = NetworkEditSession(engine)
    for u, v, _ in list(session.edges()):
        session.remove_edge(u, v)
    for t in TIME_ATTRS:
        session.add_edge("flight", t)
    log = session.commit()
    print(
        f"\nUser edits: +{len(log.added_edges)} edges, "
        f"-{len(log.removed_edges)} edges; refit {sorted(log.touched_nodes)}"
    )
    print("Adjusted network:")
    print(engine.dag.pretty())
    print("\nCleaning with the adjusted network:", score(engine, bench))

    # Node merging (Figure 2(g)-(h)): treat the two scheduled times as
    # one composite node.
    session = NetworkEditSession(engine)
    session.merge_nodes(["sched_dep_time", "sched_arr_time"], name="sched_times")
    session.commit()
    print("\nAfter merging the scheduled-time nodes:")
    print(engine.dag.pretty())
    print("Cleaning with the merged network:", score(engine, bench))


if __name__ == "__main__":
    main()
