"""Scaling behaviour of the inference optimisations (§6) on Soccer.

Soccer is the paper's largest benchmark (200 k rows; the basic engine
took over 10 hours there, the partitioned variants ~30 minutes).  This
example grows the synthetic twin and measures all three inference modes
at each size, reproducing the *shape* of Table 7: PI and PIP stay close
to each other and pull away from BASIC as the data grows, at no
material quality cost.

Run:  python examples/soccer_scaling.py
"""

import time

from repro.core import BClean, BCleanConfig, InferenceMode
from repro.data.benchmark import load_benchmark
from repro.evaluation import evaluate_repairs, render_table

SIZES = (500, 1000, 2000)


def main() -> None:
    rows = []
    for n in SIZES:
        bench = load_benchmark("soccer", n_rows=n, seed=0)
        for mode in InferenceMode:
            config = BCleanConfig(mode=mode)
            start = time.perf_counter()
            engine = BClean(config, bench.constraints)
            engine.fit(bench.dirty)
            result = engine.clean()
            elapsed = time.perf_counter() - start
            quality = evaluate_repairs(
                bench.dirty, result.cleaned, bench.clean, bench.error_cells
            )
            rows.append(
                {
                    "rows": n,
                    "mode": mode.value,
                    "seconds": round(elapsed, 2),
                    "f1": round(quality.f1, 3),
                    "cells skipped": result.stats.cells_skipped_pruning,
                    "candidates": result.stats.candidates_evaluated,
                }
            )
            print(
                f"n={n:5d} mode={mode.value:6s} "
                f"{elapsed:7.2f}s F1={quality.f1:.3f}"
            )

    print()
    print(render_table(rows, title="Soccer scaling: inference modes (Table 7 shape)"))


if __name__ == "__main__":
    main()
