"""Detect-only triage: build a review queue before repairing anything.

Production cleaning rarely starts with blind auto-repair: a data owner
first wants to see *what* is suspect and *why*.  This example runs the
detect-only API on a dirty benchmark sample, prints the review queue
grouped by signal, compares detection quality against the injected
ground truth, and only then lets the engine repair the flagged portion.

Run:  python examples/detect_then_review.py
"""

from collections import Counter

from repro.core import BClean, BCleanConfig, ErrorDetector
from repro.data.benchmark import load_benchmark
from repro.evaluation.metrics import detection_quality, evaluate_repairs


def main() -> None:
    instance = load_benchmark("hospital", n_rows=500, seed=3)
    print(
        f"hospital sample: {instance.dirty.n_rows} rows, "
        f"{len(instance.error_cells)} injected errors"
    )

    # -- stage 1: detection with the default (balanced) thresholds
    detector = ErrorDetector(instance.constraints).fit(instance.dirty)
    result = detector.detect()
    print(f"\nflagged {len(result)} cells; votes by signal:")
    for signal, votes in sorted(result.votes_by_signal.items()):
        print(f"  {signal:<8} {votes}")

    by_attr = Counter(s.attribute for s in result)
    print("\nreview queue by column:")
    for attr, count in by_attr.most_common():
        print(f"  {attr:<24} {count}")

    print("\nfirst 10 queue entries:")
    for suspicion in list(result)[:10]:
        print(f"  {suspicion}")

    quality = detection_quality(
        instance.dirty, result.cells, instance.clean
    )
    print(
        f"\ndetection quality vs injected errors: "
        f"P={quality.precision:.3f} R={quality.recall:.3f} F1={quality.f1:.3f}"
    )

    # -- stage 2: a high-precision queue (signals must agree)
    strict = ErrorDetector(instance.constraints, min_votes=2)
    strict_result = strict.fit(instance.dirty).detect()
    strict_quality = detection_quality(
        instance.dirty, strict_result.cells, instance.clean
    )
    print(
        f"two-vote queue: {len(strict_result)} cells, "
        f"P={strict_quality.precision:.3f} R={strict_quality.recall:.3f}"
    )

    # -- stage 3: repair, then check how many flagged cells were fixed
    engine = BClean(BCleanConfig.pi(), instance.constraints)
    engine.fit(instance.dirty, dag=instance.user_network())
    cleaned = engine.clean()
    repair_quality = evaluate_repairs(
        instance.dirty, cleaned.cleaned, instance.clean, instance.error_cells
    )
    repaired_cells = cleaned.repaired_cells()
    overlap = len(result.cells & set(repaired_cells))
    print(
        f"\nrepair pass: {cleaned.stats.repairs_made} repairs, "
        f"F1={repair_quality.f1:.3f}; "
        f"{overlap} repairs were in the detection queue"
    )


if __name__ == "__main__":
    main()
