"""End-to-end benchmark pipeline on the Hospital dataset.

Loads the synthetic Hospital twin (1000 rows × 15 attributes, ~5 %
injected noise per Table 2), runs the four BClean variants of Table 4,
and scores each against ground truth with the §7.1 metrics.

Run:  python examples/hospital_cleaning.py
"""

from repro.data.benchmark import load_benchmark
from repro.evaluation import (
    evaluate_repairs,
    recall_by_error_type,
    render_table,
)
from repro.evaluation.systems import bclean_variants


def main() -> None:
    bench = load_benchmark("hospital", n_rows=600, seed=0)
    print(
        f"Hospital: {bench.dirty.n_rows} rows x {bench.dirty.n_cols} cols, "
        f"{len(bench.error_cells)} injected errors "
        f"({bench.injection.noise_rate:.1%} noise)"
    )
    print(f"User constraints: {bench.constraints.n_constraints}")

    rows = []
    for system in bclean_variants():
        cleaned = system.clean(bench)
        quality = evaluate_repairs(
            bench.dirty, cleaned, bench.clean, bench.error_cells
        )
        by_type = recall_by_error_type(cleaned, bench.injection)
        stats = system.last_result.stats
        rows.append(
            {
                "variant": system.name,
                **quality.as_row(),
                "T recall": round(by_type.get("T", 0.0), 3),
                "M recall": round(by_type.get("M", 0.0), 3),
                "I recall": round(by_type.get("I", 0.0), 3),
                "seconds": round(stats.total_seconds, 2),
                "cells skipped": stats.cells_skipped_pruning,
            }
        )

    print()
    print(render_table(rows, title="BClean variants on Hospital (Table 4 rows)"))


if __name__ == "__main__":
    main()
