"""Quickstart: clean a small dirty table with BClean.

Builds the paper's running example (a Customer-style table with a
ZipCode → City/State dependency), plants three errors — a typo, a
missing value, and an inconsistency — and repairs them with the
partitioned-inference engine.

Run:  python examples/quickstart.py
"""

from repro.constraints import NotNull, Pattern, UCRegistry
from repro.core import BClean, BCleanConfig
from repro.dataset import Schema, Table


def main() -> None:
    schema = Schema.of(
        "Name:text", "City:categorical", "State:categorical", "ZipCode:categorical"
    )
    clean_rows = [
        ["Johnny.R", "sylacauga", "CA", "35150"],
        ["Johnny.R", "sylacauga", "CA", "35150"],
        ["Johnny.R", "sylacauga", "CA", "35150"],
        ["Henry.P", "centre", "KT", "35960"],
        ["Henry.P", "centre", "KT", "35960"],
        ["Henry.P", "centre", "KT", "35960"],
        ["Mary.S", "newyork", "NY", "10001"],
        ["Mary.S", "newyork", "NY", "10001"],
    ]
    dirty = Table.from_rows(schema, clean_rows)
    dirty.set_cell(1, "State", "KT")      # inconsistency: zip 35150 is CA
    dirty.set_cell(3, "City", "cenre")    # typo
    dirty.set_cell(6, "ZipCode", None)    # missing value

    print("Dirty input:")
    print(dirty.pretty())

    # Lightweight user constraints (§2): formats, not distributions.
    constraints = (
        UCRegistry()
        .add("Name", NotNull())
        .add("City", NotNull())
        .add("State", NotNull(), Pattern(r"[A-Z]{2}"))
        .add("ZipCode", NotNull(), Pattern(r"[0-9]{5}"))
    )

    engine = BClean(BCleanConfig.pi(), constraints)
    engine.fit(dirty)

    print("\nAuto-constructed Bayesian network (FDX, Section 4):")
    print(engine.dag.pretty())

    result = engine.clean()

    print(f"\n{result.n_repairs} repairs:")
    for repair in result.repairs:
        print(f"  {repair}")

    print("\nCleaned output:")
    print(result.cleaned.pretty())


if __name__ == "__main__":
    main()
