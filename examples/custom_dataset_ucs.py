"""Bring your own CSV: induce constraints, review the network, clean.

The no-expert workflow §2 argues for — the user never writes a regex:

1. generate a "customer orders" CSV the way a user would export one,
2. *induce* the pattern/length/not-null UCs from the data itself
   (the offline equivalent of the regex-from-examples tools the paper
   points users to),
3. review the automatically constructed Bayesian network,
4. clean, and inspect the repair log.

Run:  python examples/custom_dataset_ucs.py
"""

import random
import tempfile
from pathlib import Path

from repro.constraints import induce_pattern, induce_registry
from repro.core import BClean, BCleanConfig
from repro.dataset import read_csv, write_csv
from repro.dataset.schema import Schema
from repro.dataset.table import Table


def make_orders_csv(path: Path, n_rows: int = 400, seed: int = 11) -> dict:
    """Write a realistic orders export with planted errors.

    Returns ``{(row, attribute): ground_truth}`` for the planted cells
    so the repair log can be audited.
    """
    rng = random.Random(seed)
    schema = Schema.of(
        "order_id:categorical",
        "sku:categorical",
        "product:categorical",
        "warehouse:categorical",
        "zip:categorical",
    )
    products = {
        "SKU-1001": ("espresso machine", "WH-A", "94105"),
        "SKU-1002": ("burr grinder", "WH-A", "94105"),
        "SKU-2001": ("pour-over kettle", "WH-B", "10001"),
        "SKU-2002": ("digital scale", "WH-B", "10001"),
        "SKU-3001": ("french press", "WH-C", "60601"),
    }
    rows = []
    for i in range(n_rows):
        sku = rng.choice(list(products))
        product, warehouse, zipcode = products[sku]
        rows.append([f"ORD-{i:06d}", sku, product, warehouse, zipcode])
    table = Table.from_rows(schema, rows)

    # plant the three §7.1 error types, remembering the truth
    planted = {
        (3, "sku"): table.cell(3, "sku"),
        (17, "product"): table.cell(17, "product"),
        (42, "zip"): table.cell(42, "zip"),
        (99, "zip"): table.cell(99, "zip"),
    }
    table.set_cell(3, "sku", "SKU-10x1")        # typo
    table.set_cell(17, "product", None)          # missing value
    table.set_cell(42, "zip", "99999")           # inconsistency
    table.set_cell(99, "zip", _typo(str(table.cell(99, "zip"))))  # typo
    write_csv(table, path)
    return planted


def _typo(value: str) -> str:
    """Replace one character with a letter (a §7.1 'T' error)."""
    middle = len(value) // 2
    return value[:middle] + "o" + value[middle + 1 :]


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="bclean_orders_"))
    csv_path = workdir / "orders.csv"
    planted = make_orders_csv(csv_path)
    dirty = read_csv(csv_path)
    print(f"loaded {csv_path} ({dirty.n_rows} rows x {dirty.n_cols} cols)")

    # -- step 1: induce the UCs a data-quality expert would have written
    print("\nInduced constraints (Table 3, without the expert):")
    for attr in dirty.schema.names:
        profile = induce_pattern(dirty.column(attr))
        print(f"  {attr:<12} /{profile.regex}/  "
              f"(coverage {profile.coverage:.2f}, "
              f"len {profile.min_length}..{profile.max_length})")
    constraints = induce_registry(dirty)

    # -- step 2: fit and review the network before trusting it (§7.3.2)
    engine = BClean(BCleanConfig.pip(), constraints)
    engine.fit(dirty)
    print("\nAuto-constructed Bayesian network:")
    print(engine.dag.pretty())

    # -- step 3: clean and audit the repair log
    result = engine.clean()
    print(f"\n{result.stats.repairs_made} repairs "
          f"({result.stats.cells_inspected} cells inspected, "
          f"{result.stats.cells_skipped_pruning} skipped by pre-detection):")
    for repair in result.repairs:
        truth = planted.get((repair.row, repair.attribute))
        verdict = ""
        if truth is not None:
            verdict = "  [= truth]" if repair.new_value == truth else (
                f"  [truth was {truth!r}]"
            )
        print(f"  row {repair.row:>4}  {repair.attribute:<12} "
              f"{repair.old_value!r} -> {repair.new_value!r}{verdict}")

    out_path = workdir / "orders.cleaned.csv"
    write_csv(result.cleaned, out_path)
    print(f"\nwrote {out_path}")


if __name__ == "__main__":
    main()
