"""Bench: scalar vs. columnar engine paths on the Soccer workload.

The columnar fast path (integer-coded tables, vectorised co-occurrence,
batched blanket inference, deduplicated competitions) must deliver a
large end-to-end ``clean()`` speedup at *identical* repair decisions.
This bench times both paths on the soccer-1500 PIP configuration —
the paper's flagship scaling setting — and writes ``BENCH_engine.json``
at the repository root (fit/clean seconds, rows per second, speedups)
so future performance PRs have a trajectory to regress against.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.data.benchmark import load_benchmark

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

DATASET = "soccer"
N_ROWS = 1500
#: the fast path must beat the oracle by at least this factor on clean()
#: (observed ≈12×; the floor leaves headroom for noisy CI machines)
MIN_CLEAN_SPEEDUP = 5.0


def _run_path(instance, use_columnar: bool) -> dict:
    engine = BClean(
        BCleanConfig.pip(use_columnar=use_columnar), instance.constraints
    )
    start = time.perf_counter()
    engine.fit(instance.dirty)
    fit_seconds = time.perf_counter() - start
    start = time.perf_counter()
    result = engine.clean()
    clean_seconds = time.perf_counter() - start
    return {
        "fit_seconds": fit_seconds,
        "clean_seconds": clean_seconds,
        "total_seconds": fit_seconds + clean_seconds,
        "clean_rows_per_second": N_ROWS / clean_seconds,
        "repairs": [
            (r.row, r.attribute, str(r.old_value), str(r.new_value))
            for r in result.repairs
        ],
        "cells_inspected": result.stats.cells_inspected,
        "candidates_evaluated": result.stats.candidates_evaluated,
    }


def test_columnar_speedup_and_bench_report():
    instance = load_benchmark(DATASET, n_rows=N_ROWS, seed=0)
    scalar = _run_path(instance, use_columnar=False)
    columnar = _run_path(instance, use_columnar=True)

    # The whole point of keeping the oracle: decisions must not drift.
    assert scalar["repairs"] == columnar["repairs"]
    assert scalar["candidates_evaluated"] == columnar["candidates_evaluated"]

    clean_speedup = scalar["clean_seconds"] / columnar["clean_seconds"]
    report = {
        "dataset": DATASET,
        "n_rows": N_ROWS,
        "mode": "pip",
        "n_repairs": len(columnar["repairs"]),
        "scalar": {k: v for k, v in scalar.items() if k != "repairs"},
        "columnar": {k: v for k, v in columnar.items() if k != "repairs"},
        "clean_speedup": clean_speedup,
        "fit_speedup": scalar["fit_seconds"] / columnar["fit_seconds"],
        "total_speedup": scalar["total_seconds"] / columnar["total_seconds"],
        "identical_repairs": True,
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(
        f"soccer-{N_ROWS} PIP: scalar clean {scalar['clean_seconds']:.2f}s, "
        f"columnar clean {columnar['clean_seconds']:.2f}s "
        f"({clean_speedup:.1f}x, {columnar['clean_rows_per_second']:.0f} rows/s)"
    )

    assert clean_speedup >= MIN_CLEAN_SPEEDUP, report
