"""Bench: regenerate Tables 8-10 (parameter sensitivity on Hospital).

The paper's claim is *flatness*: λ, β, and τ barely move the F1-score.
"""

from conftest import run_once

from repro.experiments import param_sweeps

N_ROWS = 500


def _spread(rows, key):
    values = [r["f1"] for r in rows]
    return max(values) - min(values)


def test_tables_8_9_10_parameter_sweeps(benchmark):
    results = run_once(benchmark, param_sweeps.run, n_rows=N_ROWS)
    print()
    print(param_sweeps.render(results))

    # Flatness: each sweep moves F1 by less than 0.08 absolute.
    assert _spread(results["table8_lambda"], "lambda") < 0.08
    assert _spread(results["table9_beta"], "beta") < 0.08
    assert _spread(results["table10_tau"], "tau") < 0.08

    # And the engine is actually cleaning (F1 well above zero) at the
    # default operating point.
    defaults = [r for r in results["table8_lambda"] if r["lambda"] == 1.0]
    assert defaults[0]["f1"] > 0.6
