"""Bench: regenerate Table 2 (dataset statistics)."""

from conftest import run_once

from repro.experiments import table2


def test_table2_statistics(benchmark):
    rows = run_once(benchmark, table2.run, 300)
    print()
    print(table2.render(rows))
    assert len(rows) == 6
    # prior-knowledge counts ordered as in the paper: BClean's UCs are
    # lightweight, PClean's programs are the heaviest input.
    for row in rows:
        assert row["ppl_lines"] > row["n_dcs"]
        assert row["n_ucs"] >= 6
