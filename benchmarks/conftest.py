"""Shared configuration for the benchmark harness.

Every bench regenerates one paper table/figure at laptop scale (the
``BENCH_SIZES`` row counts).  pytest-benchmark runs each driver once —
these are end-to-end experiment reproductions, not micro-benchmarks —
and the printed tables land in the captured output so ``pytest
benchmarks/ --benchmark-only -s`` reproduces the paper's evaluation
section in one command.
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: laptop-scale row counts used across all benches
BENCH_SIZES = {
    "hospital": 600,
    "flights": 800,
    "soccer": 1500,
    "beers": 800,
    "inpatient": 800,
    "facilities": 800,
}


def pytest_collection_modifyitems(items) -> None:
    """Mark every bench with the registered ``bench`` marker so a quick
    tier-1 run can deselect them (``-m "not bench"``).

    The hook sees the whole session's items, so restrict the marker to
    tests collected from this directory.
    """
    here = Path(__file__).resolve().parent
    for item in items:
        if Path(item.path).is_relative_to(here):
            item.add_marker(pytest.mark.bench)


@pytest.fixture
def bench_sizes() -> dict[str, int]:
    """The shared laptop-scale dataset sizes."""
    return dict(BENCH_SIZES)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
