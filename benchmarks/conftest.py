"""Shared configuration for the benchmark harness.

Every bench regenerates one paper table/figure at laptop scale (the
``BENCH_SIZES`` row counts).  pytest-benchmark runs each driver once —
these are end-to-end experiment reproductions, not micro-benchmarks —
and the printed tables land in the captured output so ``pytest
benchmarks/ --benchmark-only -s`` reproduces the paper's evaluation
section in one command.
"""

from __future__ import annotations

import pytest

#: laptop-scale row counts used across all benches
BENCH_SIZES = {
    "hospital": 600,
    "flights": 800,
    "soccer": 1500,
    "beers": 800,
    "inpatient": 800,
    "facilities": 800,
}


@pytest.fixture
def bench_sizes() -> dict[str, int]:
    """The shared laptop-scale dataset sizes."""
    return dict(BENCH_SIZES)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
