"""Bench: streaming out-of-core fit — wall-clock *and* peak RSS.

``BClean.fit_csv`` folds the training CSV into mergeable sufficient
statistics one row block at a time: the full table, its cell lists, and
its whole-table encoding are never resident together — only the block
being interned plus the accumulated **distinct-signature** struct table
(bounded by the data's true cardinality, not the stream length).  The
memory story is invisible to wall-clock alone, so — exactly like
``BENCH_stream.json`` on the clean side — every configuration runs in
its **own spawned child process** and reports its own ``VmHWM`` (see
:func:`_peak_rss_kb` for why ``ru_maxrss`` lies for spawned children);
the parent writes ``BENCH_fit_stream.json`` at the repository root.

The driver resamples soccer-1500 into a ``FIT_ROWS``-row training CSV
(duplicate-heavy, like real logs — the case the deduplicated
accumulator is built for), then fits it three ways:

- ``off``: ``read_csv`` + whole-table ``fit()`` (the in-memory path);
- ``chunk_rows ∈ {256, 1024}``: ``fit_csv`` with one block resident.

How to read the report:

- ``identical_dags`` / ``identical_repairs`` are the hard invariants:
  every chunk size must learn the whole-table network bit for bit and
  repair a shared foreign request CSV byte-identically (checksummed in
  the child, compared here).
- ``rss_saving_kb_1024``: whole-table fit peak minus the chunk-1024
  fit peak.  On Linux (trustworthy ``VmHWM``) the assertion that it is
  positive pins the memory win; the recorded numbers keep the
  trajectory comparable across machines either way.
- ``n_distinct`` / ``n_chunks`` / ``reservoir_exact`` come from the
  engine's ``stream_fit`` diagnostics — the struct table's size is the
  quantity the resident set is now bounded by.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import resource
import sys
import time
from pathlib import Path

import numpy as np

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fit_stream.json"

DATASET = "soccer"
N_ROWS = 1500
#: rows of the resampled training CSV the fits consume
FIT_ROWS = 24000
#: rows of the shared foreign request CSV used for the repair identity
REQUEST_ROWS = 600
#: measured configurations: chunk_rows (None = whole-table in-memory fit)
RUN_SETTINGS = (None, 256, 1024)
STRUCTURE = "mmhc"
RESAMPLE_SEED = 11


def _peak_rss_kb() -> int:
    """This process's own peak resident set, in KB (``VmHWM``).

    ``getrusage().ru_maxrss`` is unusable for spawned children on
    Linux: spawn is fork+exec, and the pre-exec copy-on-write image —
    the *parent's* entire resident set — is folded into the child's
    maxrss floor when exec releases the old address space.  ``VmHWM``
    belongs to the address space created *by* exec, so it measures only
    what the child itself did.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _write_csvs(fit_path: Path, request_path: Path) -> None:
    """Deterministic resampled training + request CSVs (built once, in
    the parent — children only ever stream them)."""
    from repro.data.benchmark import load_benchmark
    from repro.dataset.io import write_csv

    instance = load_benchmark(DATASET, n_rows=N_ROWS, seed=0)
    rng = np.random.default_rng(RESAMPLE_SEED)
    fit_idx = rng.integers(0, instance.dirty.n_rows, size=FIT_ROWS)
    write_csv(instance.dirty.take([int(i) for i in fit_idx]), fit_path)
    req_idx = rng.integers(0, instance.dirty.n_rows, size=REQUEST_ROWS)
    write_csv(instance.dirty.take([int(i) for i in req_idx]), request_path)


def _child_run(chunk_rows, fit_src, request_src, dst, out_queue) -> None:
    """One measured configuration, isolated in its own process so the
    peak RSS is a per-configuration high-water mark."""
    from repro.core.config import BCleanConfig
    from repro.core.engine import BClean
    from repro.data.benchmark import load_benchmark
    from repro.dataset.io import read_csv

    # Fit under the benchmark's declared schema: chunked type inference
    # would otherwise settle per-column types on the first block, which
    # is chunk-size dependent (`season` reads int at 256, str at 1024).
    schema = load_benchmark(DATASET, n_rows=10, seed=0).dirty.schema
    engine = BClean(BCleanConfig.pip(structure=STRUCTURE))
    start = time.perf_counter()
    if chunk_rows is None:
        engine.fit(read_csv(fit_src, schema=schema))
    else:
        engine.fit_csv(fit_src, chunk_rows=chunk_rows, schema=schema)
    fit_seconds = time.perf_counter() - start
    rss_after_fit = _peak_rss_kb()

    result = engine.clean_csv(request_src, dst)
    digest = hashlib.sha256()
    for r in result.repairs:
        digest.update(
            repr(
                (r.row, r.attribute, r.old_value, r.new_value,
                 r.old_score, r.new_score)
            ).encode()
        )
    out_digest = hashlib.sha256(Path(dst).read_bytes()).hexdigest()
    stream_fit = engine._fit_diag.get("stream_fit", {})
    out_queue.put(
        {
            "chunk_rows": chunk_rows,
            "fit_seconds": round(fit_seconds, 4),
            "peak_rss_kb": rss_after_fit,
            "peak_rss_total_kb": _peak_rss_kb(),
            "edges": sorted((u, v) for u, v, _ in engine.dag.edges()),
            "n_repairs": len(result.repairs),
            "repairs_sha256": digest.hexdigest(),
            "cleaned_sha256": out_digest,
            "n_distinct": stream_fit.get("n_distinct"),
            "n_chunks": stream_fit.get("n_chunks", 1),
            "reservoir_exact": stream_fit.get("reservoir_exact"),
        }
    )


def _measure(chunk_rows, fit_src: Path, request_src: Path, dst: Path) -> dict:
    ctx = multiprocessing.get_context("spawn")
    queue = ctx.Queue()
    proc = ctx.Process(
        target=_child_run,
        args=(chunk_rows, str(fit_src), str(request_src), str(dst), queue),
    )
    proc.start()
    payload = queue.get(timeout=1800)
    proc.join(timeout=60)
    return payload


def test_fit_stream_memory_and_bench_report(tmp_path):
    fit_src = tmp_path / "fit_train.csv"
    request_src = tmp_path / "fit_request.csv"
    _write_csvs(fit_src, request_src)

    runs = []
    for chunk_rows in RUN_SETTINGS:
        label = "off" if chunk_rows is None else str(chunk_rows)
        runs.append(
            _measure(
                chunk_rows, fit_src, request_src,
                tmp_path / f"cleaned_{label}.csv",
            )
        )

    by_setting = {run["chunk_rows"]: run for run in runs}
    whole = by_setting[None]
    identical_dags = all(run["edges"] == whole["edges"] for run in runs)
    identical_repairs = (
        len({run["repairs_sha256"] for run in runs}) == 1
        and len({run["cleaned_sha256"] for run in runs}) == 1
    )
    rss_off = whole["peak_rss_kb"]
    rss_1024 = by_setting[1024]["peak_rss_kb"]

    report = {
        "dataset": DATASET,
        "base_rows": N_ROWS,
        "fit_rows": FIT_ROWS,
        "request_rows": REQUEST_ROWS,
        "structure": STRUCTURE,
        "cpu_count": os.cpu_count() or 1,
        "identical_dags": identical_dags,
        "identical_repairs": identical_repairs,
        "rss_saving_kb_1024": rss_off - rss_1024,
        "runs": [
            {k: v for k, v in run.items() if k != "edges"} for run in runs
        ],
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))

    assert identical_dags, "streamed fit learned a different network"
    assert identical_repairs, (
        "streamed fit's repairs diverged from the whole-table fit"
    )
    for chunk_rows in (256, 1024):
        run = by_setting[chunk_rows]
        assert run["n_chunks"] == -(-FIT_ROWS // chunk_rows)
        # the struct table is bounded by the data's true cardinality
        assert run["n_distinct"] <= N_ROWS
    if sys.platform.startswith("linux"):
        # VmHWM is per-exec'd-address-space on Linux and so trustworthy
        # here; the whole-table fit must pay for the full training table
        # + whole-table encoding the streamed fit never materialises.
        assert rss_1024 < rss_off, (
            f"streamed fit peak RSS {rss_1024} KB not below whole-table "
            f"{rss_off} KB"
        )
