"""Bench: regenerate Figure 4 (error analysis).

(a) error-type distributions; (b)-(d) F1 vs error ratio; (e)-(f) recall
under swapping-value errors.
"""

from conftest import run_once

from repro.experiments import figure4

SWEEP_SIZES = {"flights": 600, "inpatient": 600, "facilities": 600}
DIST_SIZES = {"soccer": 1200, "inpatient": 800, "facilities": 800}
SWAP_SIZES = {"inpatient": 600, "facilities": 600}


def test_figure4a_error_distribution(benchmark):
    rows = run_once(benchmark, figure4.error_distribution, sizes=DIST_SIZES)
    print()
    from repro.evaluation.reporting import render_table

    print(render_table(rows, title="Figure 4(a): error distributions"))
    # T, M, I all present and comparable in frequency (§7.1).
    for row in rows:
        counts = [row["T"], row["M"], row["I"]]
        assert min(counts) > 0
        assert max(counts) <= 3 * min(counts)


def test_figure4bcd_f1_vs_error_rate(benchmark):
    rows = run_once(
        benchmark,
        figure4.f1_vs_error_rate,
        datasets=("flights", "facilities"),
        rates=(0.10, 0.40, 0.70),
        sizes=SWEEP_SIZES,
    )
    print()
    from repro.evaluation.reporting import render_table

    print(render_table(rows, title="Figure 4(b-d): F1 vs error rate"))

    # General trend: every system declines as the error ratio grows.
    for system in ("BCleanPI",):
        for dataset in ("facilities",):
            curve = [
                r["f1"]
                for r in rows
                if r["system"] == system and r["dataset"] == dataset
                and r["f1"] != "-"
            ]
            if len(curve) == 3:
                assert curve[0] >= curve[-1] - 0.05


def test_figure4ef_swap_errors(benchmark):
    rows = run_once(
        benchmark, figure4.swap_error_recall, sizes=SWAP_SIZES
    )
    print()
    from repro.evaluation.reporting import render_table

    print(render_table(rows, title="Figure 4(e-f): swap-error recall"))

    # BClean handles same-domain swaps better than the baselines on
    # average (the paper's +0.1 recall claim).
    bclean = [
        r["recall"] for r in rows
        if r["system"] in ("BClean", "BCleanPI")
        and r["swap_domain"] == "same" and r["recall"] != "-"
    ]
    others = [
        r["recall"] for r in rows
        if r["system"] in ("PClean", "Garf")
        and r["swap_domain"] == "same" and r["recall"] != "-"
    ]
    if bclean and others:
        assert max(bclean) >= max(others) - 0.05
