"""Bench: the staged streaming clean — wall-clock *and* peak RSS.

The out-of-core pipeline's original win was memory alone: an *uncached*
chunked clean re-runs competitions for signatures recurring across
chunks, so its wall-clock trails the whole-table run — what drops is
the resident set, because the foreign table, its coded matrices, and
the cleaned copy are never whole in memory.  The session competition
cache (``BCleanConfig.competition_cache``) closes the speed half: the
cached ``chunk_rows=1024`` run answers recurring competitions from the
session memo with zero dispatch, and this bench asserts its wall-clock
lands within 1.5× of the whole-table clean while keeping the memory
win.  Wall-clock alone cannot show the RSS story, so every
configuration here runs in its **own spawned child process** and
reports its own peak RSS (``VmHWM`` — see :func:`_peak_rss_kb` for why
``ru_maxrss`` lies for spawned children) alongside the clean seconds;
the parent writes ``BENCH_stream.json`` at the repository root.

The driver fits soccer-1500 (the paper's flagship scaling table), then
streams a resampled ``STREAM_ROWS``-row foreign CSV through
``clean_csv`` at ``chunk_rows ∈ {off, 256, 1024}``:

- ``off`` reads the whole CSV and cleans it in memory (the PR-2 path);
- the chunked runs never hold more than one block; they run with the
  cache explicitly off (``competition_cache=0``) so the uncached
  trajectory stays comparable across PRs, except for
- the cached ``(1024, serial)`` run — the session cache at its default
  auto-sizing, pinning ``cache_hits > 0`` and the ≤1.5× gap;
- the ``(1024, process)`` run cleans the same stream on an explicit
  2-worker process pool and pins the **persistent-session
  amortisation**: the whole chunked clean creates exactly one worker
  pool and ships the static fit-statistics snapshot exactly once
  (``pools_created`` / ``snapshot_ships`` — it used to pay one pool
  spawn and one snapshot pickle per chunk), with repairs byte-identical
  to every other configuration.

How to read the report:

- ``runs``: one entry per (chunk setting, executor, cache bound) with
  ``clean_seconds``, ``peak_rss_kb`` (the child's high-water mark; fit
  is identical across children and its own peak is recorded as
  ``peak_rss_after_fit_kb``, so *differences* in the totals are
  clean-path memory), ``n_chunks``, the resolved backend per chunk,
  the session counters ``pools_created`` / ``snapshot_ships``, and the
  cache counters (``cache_hits`` / ``cache_misses`` /
  ``cache_evictions`` plus the derived ``cache_hit_rate``).
- ``identical_repairs`` is the hard invariant: every chunk size — and
  every cache setting — must reproduce the whole-table repairs byte
  for byte (checksummed in the child, compared here).
- ``rss_saving_kb_1024``: whole-table peak minus the chunk-1024 peak.
  The assertion that it is positive — the memory win actually exists —
  fires whenever the child measurements are trustworthy (Linux
  ``VmHWM``); the recorded numbers keep the trajectory comparable
  across machines either way.
- ``auto_executor``: the planner's cost estimate for the whole-table
  plan, with the backend ``executor="auto"`` resolves to at 4 workers
  (machine-independent, asserted ``process``) and on this machine's
  CPU count.
- the **profiled** ``(1024, process)`` run re-cleans the same stream
  with ``BCleanConfig.profile`` on and records the tracer's per-stage
  wall-clock breakdown (``profile_stages``) plus the shard-balance
  summary into the report.  Two assertions ride it: profiling must not
  change the repairs (its checksum joins the identity set), and the
  seven stage totals must sum to within 10% of the engine's clean
  wall-clock — the trace accounts for the pipeline's time, it does not
  invent its own.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import resource
import sys
import time
from pathlib import Path

import numpy as np

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_stream.json"

DATASET = "soccer"
N_ROWS = 1500
#: rows of the resampled foreign CSV the streaming runs clean
STREAM_ROWS = 12000
#: measured configurations: (chunk_rows, executor, competition_cache,
#: profiled) — the cache-off (0) serial sweep carries the memory story
#: and keeps the uncached trajectory comparable across PRs; the cached
#: (None = auto-sized) 1024 run carries the streaming *speed* story;
#: the chunked-process run pins the persistent-session amortisation
#: (one pool + one snapshot ship per clean, not per chunk) with an
#: explicit 2-worker pool so the counter assertion is
#: machine-independent; the profiled chunked-process run records the
#: tracer's stage breakdown and pins that profiling changes neither
#: the repairs nor (within 10%) the accounted wall-clock.
RUN_SETTINGS = (
    (None, "serial", 0, False),
    (256, "serial", 0, False),
    (1024, "serial", 0, False),
    (1024, "serial", None, False),
    (1024, "process", 0, False),
    (1024, "process", 0, True),
)
PROCESS_JOBS = 2
RESAMPLE_SEED = 7


def _peak_rss_kb() -> int:
    """This process's own peak resident set, in KB.

    ``getrusage().ru_maxrss`` is unusable for spawned children on
    Linux: spawn is fork+exec, and the pre-exec copy-on-write image —
    the *parent's* entire resident set — is folded into the child's
    maxrss floor when exec releases the old address space, so every
    child just echoes the parent's size.  ``VmHWM`` belongs to the
    address space created *by* exec, so it measures only what the
    child itself did.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _build_engine():
    from repro.core.config import BCleanConfig
    from repro.core.engine import BClean
    from repro.data.benchmark import load_benchmark

    instance = load_benchmark(DATASET, n_rows=N_ROWS, seed=0)
    engine = BClean(BCleanConfig.pip(), instance.constraints)
    engine.fit(instance.dirty)
    return instance, engine


def _write_stream_csv(instance, path: Path) -> None:
    """A deterministic resampled foreign table, STREAM_ROWS rows."""
    from repro.dataset.io import write_csv

    rng = np.random.default_rng(RESAMPLE_SEED)
    indices = rng.integers(0, instance.dirty.n_rows, size=STREAM_ROWS)
    write_csv(instance.dirty.take([int(i) for i in indices]), path)


def _child_run(
    chunk_rows, executor, cache, profiled, src, dst, out_queue
) -> None:
    """One measured configuration, isolated in its own process so
    ``ru_maxrss`` is a per-configuration high-water mark."""
    from repro.dataset.io import read_csv

    instance, engine = _build_engine()
    rss_after_fit = _peak_rss_kb()
    engine.config.chunk_rows = chunk_rows
    engine.config.executor = executor
    engine.config.competition_cache = cache
    engine.config.profile = profiled
    if executor == "process":
        engine.config.n_jobs = PROCESS_JOBS
    start = time.perf_counter()
    if chunk_rows is None:
        table = read_csv(src, schema=instance.dirty.schema)
        result = engine.clean(table)
        from repro.dataset.io import write_csv

        write_csv(result.cleaned, dst)
    else:
        result = engine.clean_csv(src, dst)
    seconds = time.perf_counter() - start

    digest = hashlib.sha256()
    for r in result.repairs:
        digest.update(
            repr(
                (r.row, r.attribute, r.old_value, r.new_value,
                 r.old_score, r.new_score)
            ).encode()
        )
    stream = result.diagnostics.get("stream", {})
    exec_diag = result.diagnostics.get("exec", {})
    hits = stream.get("cache_hits", 0)
    misses = stream.get("cache_misses", 0)
    profile = result.diagnostics.get("profile", {})
    out_queue.put(
        {
            "chunk_rows": chunk_rows,
            "executor": executor,
            "competition_cache": cache,
            "profiled": profiled,
            "profile_stages": profile.get("stages"),
            "profile_shards": profile.get("shards"),
            "engine_clean_seconds": round(result.stats.clean_seconds, 4),
            "clean_seconds": round(seconds, 4),
            "peak_rss_kb": _peak_rss_kb(),
            "peak_rss_after_fit_kb": rss_after_fit,
            "n_repairs": len(result.repairs),
            "repairs_sha256": digest.hexdigest(),
            "n_chunks": stream.get("n_chunks", 1),
            "backends": stream.get("backends", {}),
            "shm": stream.get("shm", False),
            "pools_created": stream.get("pools_created", 0),
            "snapshot_ships": stream.get("snapshot_ships", 0),
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_evictions": stream.get("cache_evictions", 0),
            "cache_hit_rate": round(hits / (hits + misses), 4)
            if hits + misses
            else 0.0,
            "process_fallback": bool(exec_diag.get("process_fallback", False)),
        }
    )


def _measure(
    chunk_rows, executor, cache, profiled, src: Path, dst: Path
) -> dict:
    ctx = multiprocessing.get_context("spawn")
    queue = ctx.Queue()
    proc = ctx.Process(
        target=_child_run,
        args=(chunk_rows, executor, cache, profiled, str(src), str(dst), queue),
    )
    proc.start()
    payload = queue.get(timeout=1800)
    proc.join(timeout=60)
    return payload


def test_stream_memory_and_bench_report(tmp_path):
    instance, engine = _build_engine()
    src = tmp_path / "stream_dirty.csv"
    _write_stream_csv(instance, src)

    runs = []
    for chunk_rows, executor, cache, profiled in RUN_SETTINGS:
        label = "off" if chunk_rows is None else str(chunk_rows)
        tag = "cached" if cache != 0 else "uncached"
        if profiled:
            tag += "_profiled"
        runs.append(
            _measure(
                chunk_rows, executor, cache, profiled, src,
                tmp_path / f"out_{label}_{executor}_{tag}.csv",
            )
        )

    digests = {run["repairs_sha256"] for run in runs}
    identical = len(digests) == 1
    by_setting = {
        (
            run["chunk_rows"],
            run["executor"],
            run["competition_cache"],
            run["profiled"],
        ): run
        for run in runs
    }
    whole_table = by_setting[(None, "serial", 0, False)]
    rss_off = whole_table["peak_rss_kb"]
    rss_1024 = by_setting[(1024, "serial", 0, False)]["peak_rss_kb"]
    chunked_process = by_setting[(1024, "process", 0, False)]
    cached_1024 = by_setting[(1024, "serial", None, False)]
    profiled_run = by_setting[(1024, "process", 0, True)]

    # -- the machine-independent half of the auto-executor acceptance:
    # the whole-table plan's cost estimate must put soccer-1500 over
    # the process threshold (tiny-table resolution to serial is pinned
    # in tests/test_stream_chunked.py).
    from repro.core.repairs import CleaningStats
    from repro.exec import (
        AUTO_CLEAN_COST_THRESHOLD,
        OVERSUBSCRIBE,
        StreamDriver,
        resolve_executor,
    )

    engine.config.executor = "auto"
    driver = StreamDriver(engine, engine._columnar_scorer())
    driver.n_jobs = 4  # plan (and cost-estimate) as a 4-worker machine would
    chunk = next(driver._table_chunks(engine.table, fitted=True))
    encoded = driver.encode(chunk, fitted=True)
    planned = driver.plan(driver.detect(encoded, CleaningStats()))
    total_cost = planned.plan.total_cost
    resolved_at_4 = resolve_executor(
        "auto", total_cost, planned.plan.n_shards, 4
    )
    cpu_count = os.cpu_count() or 1
    resolved_here = resolve_executor(
        "auto", total_cost, planned.plan.n_shards, cpu_count
    )

    report = {
        "dataset": DATASET,
        "fit_rows": N_ROWS,
        "stream_rows": STREAM_ROWS,
        "cpu_count": cpu_count,
        "identical_repairs": identical,
        "runs": runs,
        "rss_saving_kb_1024": rss_off - rss_1024,
        "cached_1024_vs_whole_table": round(
            cached_1024["clean_seconds"] / whole_table["clean_seconds"], 3
        ),
        "auto_executor": {
            "whole_table_plan_cost": round(total_cost, 1),
            "threshold": AUTO_CLEAN_COST_THRESHOLD,
            "resolved_with_4_jobs": resolved_at_4,
            "resolved_on_this_machine": resolved_here,
            "oversubscribe": OVERSUBSCRIBE,
        },
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))

    assert identical, "chunked repairs diverged from the whole-table run"
    # The competition-cache acceptance: the resampled stream's recurring
    # signatures must actually hit, and the cached chunked clean must
    # land within 1.5× of the whole-table wall-clock (the uncached runs
    # above it pay the per-chunk competition re-runs the cache removes).
    assert cached_1024["cache_hits"] > 0
    assert (
        cached_1024["clean_seconds"]
        <= 1.5 * whole_table["clean_seconds"]
    ), (
        f"cached chunked clean {cached_1024['clean_seconds']}s exceeds "
        f"1.5x whole-table {whole_table['clean_seconds']}s"
    )
    # The persistent-session acceptance: a chunked process clean pays
    # exactly one pool spawn and one snapshot ship for the whole
    # stream, not one of each per chunk.
    assert chunked_process["n_chunks"] == -(-STREAM_ROWS // 1024)
    if not chunked_process["process_fallback"]:
        assert chunked_process["pools_created"] == 1
        assert chunked_process["snapshot_ships"] == 1
    # The profiling acceptance: the stage breakdown covers all seven
    # pipeline stages, and their totals account for the engine's clean
    # wall-clock to within 10% — profiling neither loses time (a stage
    # running outside any span) nor invents it.  The repairs identity
    # is already pinned above: the profiled run's checksum is in
    # ``digests``.  (Skip the timing half if the pool fell back —
    # degraded-serial timings are not the thing being measured.)
    from repro.obs import STAGES

    stages = profiled_run["profile_stages"]
    assert stages is not None and set(stages) == set(STAGES)
    if not profiled_run["process_fallback"]:
        stage_sum = sum(stages.values())
        wall = profiled_run["engine_clean_seconds"]
        assert abs(stage_sum - wall) <= 0.1 * wall, (
            f"profile stages sum {stage_sum:.3f}s vs clean wall-clock "
            f"{wall:.3f}s"
        )
    assert total_cost >= AUTO_CLEAN_COST_THRESHOLD
    assert resolved_at_4 == "process"
    if cpu_count >= 4:
        assert resolved_here == "process"
    if sys.platform.startswith("linux"):
        # VmHWM is per-exec'd-address-space on Linux and so trustworthy
        # here; the whole-table run must pay for the full foreign table
        # + cleaned copy that the chunked run never materialises.
        assert rss_1024 < rss_off, (
            f"chunked peak RSS {rss_1024} KB not below whole-table "
            f"{rss_off} KB"
        )
