"""Bench: sharded parallel clean() vs the single-process columnar path.

The parallel execution subsystem must deliver multi-core speedup at
*identical* repairs.  This bench fits once on the soccer-1500 PIP
configuration (the paper's flagship scaling setting), then re-runs
``clean()`` under every backend / worker-count combination and writes
``BENCH_parallel.json`` at the repository root.

How to read the report:

- ``runs``: one entry per (executor, n_jobs) with clean seconds and the
  speedup over the serial columnar baseline.  ``identical_repairs`` is
  the hard invariant — every backend must reproduce the baseline's
  repair list byte for byte.
- ``cpu_count``: the speedup assertion (≥1.5× with 4 process workers)
  only fires on machines with ≥4 cores; on smaller boxes the bench
  still verifies repair identity and records the observed timings, so
  the trajectory stays comparable across machines.
- ``process`` runs pay one snapshot pickling per clean (recorded
  implicitly in their seconds); ``thread`` runs share memory but only
  scale as far as numpy releases the GIL.  A run flagged
  ``ran_serially`` short-circuited its pool (one worker or one shard —
  e.g. process×1) and its seconds are plain serial execution, not pool
  overhead.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.data.benchmark import load_benchmark

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

DATASET = "soccer"
N_ROWS = 1500
#: required clean() speedup of process×4 over serial on ≥4-core machines
MIN_SPEEDUP_4_WORKERS = 1.5

RUNS = (
    ("serial", 1),
    ("thread", 2),
    ("process", 1),
    ("process", 2),
    ("process", 4),
)


def test_parallel_speedup_and_bench_report():
    instance = load_benchmark(DATASET, n_rows=N_ROWS, seed=0)
    engine = BClean(BCleanConfig.pip(), instance.constraints)
    start = time.perf_counter()
    engine.fit(instance.dirty)
    fit_seconds = time.perf_counter() - start

    # Warm the shared lazy caches (CSR indexes, dense profiles) before
    # timing anything, so the serial baseline is not penalised for the
    # one-time builds every later run would reuse.
    engine.clean()

    results = {}
    for executor, n_jobs in RUNS:
        engine.config.executor = executor
        engine.config.n_jobs = n_jobs
        start = time.perf_counter()
        result = engine.clean()
        seconds = time.perf_counter() - start
        results[(executor, n_jobs)] = {
            "seconds": seconds,
            "n_shards": result.diagnostics["exec"]["n_shards"],
            "fell_back": result.diagnostics["exec"].get(
                "process_fallback", False
            ),
            "ran_serially": result.diagnostics["exec"].get(
                "ran_serially", False
            ),
            "repairs": [
                (r.row, r.attribute, str(r.old_value), str(r.new_value))
                for r in result.repairs
            ],
        }

    base = results[("serial", 1)]
    identical = all(
        run["repairs"] == base["repairs"] for run in results.values()
    )
    assert identical, "parallel backends drifted from the serial repairs"

    report = {
        "dataset": DATASET,
        "n_rows": N_ROWS,
        "mode": "pip",
        "cpu_count": os.cpu_count(),
        "fit_seconds": fit_seconds,
        "n_repairs": len(base["repairs"]),
        "identical_repairs": identical,
        "runs": [
            {
                "executor": executor,
                "n_jobs": n_jobs,
                "clean_seconds": run["seconds"],
                "clean_rows_per_second": N_ROWS / run["seconds"],
                "speedup_vs_serial": base["seconds"] / run["seconds"],
                "n_shards": run["n_shards"],
                "process_fallback": run["fell_back"],
                "ran_serially": run["ran_serially"],
            }
            for (executor, n_jobs), run in results.items()
        ],
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print()
    for row in report["runs"]:
        print(
            f"soccer-{N_ROWS} PIP {row['executor']}×{row['n_jobs']}: "
            f"clean {row['clean_seconds']:.2f}s "
            f"({row['speedup_vs_serial']:.2f}x, {row['n_shards']} shards)"
        )

    four = next(
        r for r in report["runs"]
        if r["executor"] == "process" and r["n_jobs"] == 4
    )
    if (os.cpu_count() or 1) >= 4 and not four["process_fallback"]:
        assert four["speedup_vs_serial"] >= MIN_SPEEDUP_4_WORKERS, report
