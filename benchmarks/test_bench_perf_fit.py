"""Bench: columnar + sharded fit() vs the scalar dict-walking oracle.

PRs 1–2 made clean() columnar and sharded, which left fit — CPT counting
and structure-learner scores — as the dominant dict-walking cost.  This
bench fits the soccer-1500 PIP configuration three ways and writes
``BENCH_fit.json`` at the repository root:

- ``scalar``: ``use_columnar=False`` — the reference path (per-row
  Counter walks for the G² tests, family scores, and CPT counting);
- ``columnar-serial``: the coded fit (fused-code ``numpy`` counting on
  the shared ``TableEncoding``), everything in-process;
- ``columnar-process``: the same coded fit with the pair builds and CPT
  count passes sharded over a process pool of ``cpu_count`` workers
  (``BCleanConfig.fit_executor``).

The structure learner is MMHC — the paper's pgmpy-style contrast
baseline — because its G² independence tests are the heaviest counting
workload fit has; FDX profiles similarity vectors instead of counts and
would not exercise the counting port.

How to read the report (same shape as ``BENCH_parallel.json``):

- ``runs``: one entry per path with fit seconds and
  ``fit_speedup_vs_scalar``.  ``identical_repairs`` and
  ``identical_dags`` are the hard invariants — every path must learn
  the same network and produce the same repairs.
- The assertion floor is ``columnar-serial ≥ 3×`` over scalar.  The
  process run only has to beat the serial columnar fit on machines with
  ≥ 4 cores (structure search used to stay in-process; since the
  parallel MMPC/score batches it shares the pool, but 1–2 core boxes
  still just record the pool overhead honestly).
- ``ran_serially`` without ``ran_serially_reason`` is a provenance
  **contradiction** and fails the bench: a run that was requested
  parallel (``pair_shards > 1`` was planned) but executed serially must
  say why (``n_jobs=1`` / ``single_shard`` / ``degraded``), otherwise
  the report reads as "parallel and serial at once" — the exact
  ambiguity an earlier ``BENCH_fit.json`` shipped with.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.data.benchmark import load_benchmark

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fit.json"

DATASET = "soccer"
N_ROWS = 1500
STRUCTURE = "mmhc"
#: required fit() speedup of the serial columnar path over the scalar oracle
MIN_COLUMNAR_SPEEDUP = 3.0


def test_fit_speedup_and_bench_report():
    instance = load_benchmark(DATASET, n_rows=N_ROWS, seed=0)
    cpu = os.cpu_count() or 1

    configs = {
        "scalar": dict(use_columnar=False),
        "columnar-serial": dict(),
        "columnar-process": dict(fit_executor="process", n_jobs=cpu),
    }
    runs = {}
    for name, knobs in configs.items():
        engine = BClean(
            BCleanConfig.pip(structure=STRUCTURE, **knobs),
            instance.constraints,
        )
        start = time.perf_counter()
        engine.fit(instance.dirty)
        fit_seconds = time.perf_counter() - start
        result = engine.clean()
        fit_diag = result.diagnostics.get("fit_exec", {})
        runs[name] = {
            "fit_seconds": fit_seconds,
            "edges": sorted(
                (u, v) for u, v, _ in engine.dag.edges()
            ),
            "repairs": [
                (r.row, r.attribute, str(r.old_value), str(r.new_value))
                for r in result.repairs
            ],
            "fell_back": fit_diag.get("process_fallback", False),
            "ran_serially": fit_diag.get("ran_serially", False),
            "ran_serially_reason": fit_diag.get("ran_serially_reason"),
            "pair_shards": fit_diag.get("pair_shards", 0),
            "cpt_shards": fit_diag.get("cpt_shards", 0),
        }

    base = runs["scalar"]
    identical_repairs = all(
        run["repairs"] == base["repairs"] for run in runs.values()
    )
    identical_dags = all(run["edges"] == base["edges"] for run in runs.values())
    assert identical_dags, "columnar fit learned a different network"
    assert identical_repairs, "columnar fit drifted from the scalar repairs"

    report = {
        "dataset": DATASET,
        "n_rows": N_ROWS,
        "mode": "pip",
        "structure": STRUCTURE,
        "cpu_count": cpu,
        "n_repairs": len(base["repairs"]),
        "identical_repairs": identical_repairs,
        "identical_dags": identical_dags,
        "runs": [
            {
                "path": name,
                "fit_seconds": run["fit_seconds"],
                "fit_rows_per_second": N_ROWS / run["fit_seconds"],
                "fit_speedup_vs_scalar": base["fit_seconds"]
                / run["fit_seconds"],
                "process_fallback": run["fell_back"],
                "ran_serially": run["ran_serially"],
                "ran_serially_reason": run["ran_serially_reason"],
                "pair_shards": run["pair_shards"],
                "cpt_shards": run["cpt_shards"],
            }
            for name, run in runs.items()
        ],
    }

    # Provenance consistency: a run may not claim "ran serially" while
    # showing a multi-shard parallel plan unless it names the reason the
    # backend degraded — the contradictory pair used to ship unexplained.
    for row in report["runs"]:
        if row["ran_serially"]:
            assert row["ran_serially_reason"], (
                f"run {row['path']!r} ran serially without a recorded "
                "reason"
            )
        if row["ran_serially"] and row["pair_shards"] > 1:
            assert row["ran_serially_reason"] in (
                "n_jobs=1", "single_shard", "degraded"
            ), (
                f"run {row['path']!r}: ran_serially with "
                f"pair_shards={row['pair_shards']} needs an explicit "
                f"degradation reason, got {row['ran_serially_reason']!r}"
            )

    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print()
    for row in report["runs"]:
        print(
            f"{DATASET}-{N_ROWS} {STRUCTURE} fit [{row['path']}]: "
            f"{row['fit_seconds']:.2f}s "
            f"({row['fit_speedup_vs_scalar']:.2f}x vs scalar)"
        )

    serial = next(r for r in report["runs"] if r["path"] == "columnar-serial")
    assert serial["fit_speedup_vs_scalar"] >= MIN_COLUMNAR_SPEEDUP, report

    # With the structure search parallelised too, the process fit must
    # actually beat the serial columnar fit — but only where parallelism
    # can exist: ≥ 4 cores and a pool that neither degraded nor fell
    # back (1-core CI boxes just record the overhead).
    process = next(
        r for r in report["runs"] if r["path"] == "columnar-process"
    )
    if (
        cpu >= 4
        and not process["process_fallback"]
        and not process["ran_serially"]
    ):
        assert process["fit_seconds"] < serial["fit_seconds"], report
