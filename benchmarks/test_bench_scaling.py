"""Bench: the Table 7 *shape* — basic inference cost explodes with size.

The paper reports BClean (basic) at 10 h 48 m on Soccer while BCleanPI
finishes in 30 m 42 s.  At laptop scale the absolute numbers shrink but
the divergence must survive: the basic variant's cost must grow faster
with row count than the partitioned variants', at comparable quality.
"""

from conftest import run_once

from repro.experiments import scaling

ROW_COUNTS = (200, 400, 800)


def test_scaling_shape(benchmark):
    rows = run_once(
        benchmark, scaling.run, dataset="soccer", row_counts=ROW_COUNTS
    )
    print()
    print(scaling.render(rows))

    def seconds_at(n):
        return {r["variant"]: r["seconds"] for r in rows if r["n_rows"] == n}

    # The Table 7 shape at laptop scale: the basic engine is the
    # slowest variant at every size (a small tolerance absorbs timer
    # noise on the tiny end).
    for n in ROW_COUNTS:
        s = seconds_at(n)
        assert s["BCleanPI"] <= s["BClean"] * 1.1, n
        assert s["BCleanPIP"] <= s["BClean"] * 1.1, n

    # ... and the absolute gap widens with dataset size (the laptop
    # shadow of "10 h 48 m vs 30 m 42 s" on the full Soccer).
    small, large = min(ROW_COUNTS), max(ROW_COUNTS)
    gap_small = seconds_at(small)["BClean"] - seconds_at(small)["BCleanPIP"]
    gap_large = seconds_at(large)["BClean"] - seconds_at(large)["BCleanPIP"]
    assert gap_large > gap_small

    # Quality parity (Table 4's finding) must hold while we speed up.
    f1 = {r["variant"]: r["f1"] for r in rows if r["n_rows"] == large}
    assert abs(f1["BClean"] - f1["BCleanPI"]) < 0.25
    assert abs(f1["BClean"] - f1["BCleanPIP"]) < 0.30

    # Domain/tuple pruning must translate into strictly less work.
    candidates = {
        r["variant"]: r["candidates"] for r in rows if r["n_rows"] == large
    }
    assert candidates["BCleanPIP"] < candidates["BCleanPI"]


def test_pip_prunes_cells(benchmark):
    rows = run_once(
        benchmark,
        scaling.run,
        dataset="soccer",
        row_counts=(400,),
        variants=("BCleanPIP",),
    )
    (row,) = rows
    # tuple pruning (§6.2) must actually skip work
    assert row["cells_skipped"] > 0
