"""Bench: regenerate Table 5 (sampled Soccer comparison)."""

from conftest import run_once

from repro.experiments import table5


def test_table5_sampled_soccer(benchmark):
    reports = run_once(
        benchmark, table5.run, full_rows=1600, sample_rows=400
    )
    print()
    print(table5.render(reports))
    by_name = {r.system: r for r in reports}
    assert set(by_name) == {"BCleanPI", "HoloClean", "PClean", "Raha+Baran"}
    # The paper's headline on the sample: BClean's recall stays well
    # above the others even though subsampling hurts its precision.
    bclean = by_name["BCleanPI"]
    if not bclean.failed:
        others = [
            r.quality.recall for r in reports
            if r.system != "BCleanPI" and not r.failed
        ]
        assert bclean.quality.recall >= max(others) - 0.05
