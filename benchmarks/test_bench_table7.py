"""Bench: regenerate Table 7 (runtime comparison).

Execution times are measured on this machine; user times are the
paper's reported human-effort figures (see EXPERIMENTS.md).  The shape
assertions capture the paper's efficiency claims: partitioned inference
(PI) is dramatically faster than the basic engine on the larger
datasets, and pruning (PIP) does not make it slower.
"""

from conftest import run_once

from repro.experiments import table7

SIZES = {
    "hospital": 500,
    "flights": 600,
    "soccer": 1200,
    "beers": 600,
    "inpatient": 600,
    "facilities": 600,
}
DATASETS = ("hospital", "soccer")


def test_table7_runtimes(benchmark):
    reports = run_once(benchmark, table7.run, datasets=DATASETS, sizes=SIZES)
    print()
    print(table7.render(reports))

    def exec_s(system, dataset):
        for r in reports:
            if r.system == system and r.dataset == dataset:
                return r.exec_seconds
        return None

    # §6.1's whole point: partitioned inference beats full-joint scoring.
    basic = exec_s("BClean", "soccer")
    pi = exec_s("BCleanPI", "soccer")
    assert basic is not None and pi is not None
    assert pi < basic

    # Pruning must not slow PI down materially.
    pip = exec_s("BCleanPIP", "soccer")
    assert pip is not None
    assert pip < basic
