"""Bench: the DESIGN.md design-choice ablations.

Not paper tables — these justify BClean's individual design decisions:
compensatory scoring, inference mode, structure learner, similarity
softening, and the domain-pruning cap.
"""

from conftest import run_once

from repro.experiments import ablations

N_ROWS = 500


def test_compensatory_ablation(benchmark):
    rows = run_once(
        benchmark, ablations.compensatory_ablation, "hospital", N_ROWS
    )
    print()
    from repro.evaluation.reporting import render_table

    print(render_table(rows, title="Ablation: compensatory score"))
    with_comp = rows[0]["f1"]
    without = rows[1]["f1"]
    # §5's claim: the compensatory model prevents error amplification.
    assert with_comp >= without - 0.02


def test_mode_ablation(benchmark):
    rows = run_once(benchmark, ablations.mode_ablation, "hospital", N_ROWS)
    print()
    from repro.evaluation.reporting import render_table

    print(render_table(rows, title="Ablation: inference mode"))
    by_mode = {r["mode"]: r for r in rows}
    # PIP must inspect fewer cells than it skips nothing in PI.
    assert by_mode["pip"]["cells_skipped"] > 0
    # Quality parity within tolerance (Table 4's finding).
    assert abs(by_mode["basic"]["f1"] - by_mode["pi"]["f1"]) < 0.25


def test_structure_ablation(benchmark):
    rows = run_once(benchmark, ablations.structure_ablation, "hospital", N_ROWS)
    print()
    from repro.evaluation.reporting import render_table

    print(render_table(rows, title="Ablation: structure learner"))
    by_learner = {r["learner"]: r for r in rows}
    # FDX (the paper's construction) must be competitive with the best
    # classical learner on dirty data.
    best_classical = max(
        by_learner[l]["f1"] for l in ("hillclimb", "chowliu", "pc")
    )
    assert by_learner["fdx"]["f1"] >= best_classical - 0.10


def test_similarity_ablation(benchmark):
    rows = run_once(benchmark, ablations.similarity_ablation, "hospital", N_ROWS)
    print()
    from repro.evaluation.reporting import render_table

    print(render_table(rows, title="Ablation: similarity softening"))
    soft = rows[0]["f1"]
    strict = rows[1]["f1"]
    # The softened profiler must not lose to strict equality (§4's
    # motivation for the extension).
    assert soft >= strict - 0.05


def test_domain_pruning_sweep(benchmark):
    rows = run_once(
        benchmark,
        ablations.domain_pruning_sweep,
        "hospital",
        N_ROWS,
        top_ks=(4, 16, 64),
    )
    print()
    from repro.evaluation.reporting import render_table

    print(render_table(rows, title="Ablation: domain-pruning top-k"))
    # Larger candidate budgets cannot reduce recall.
    recalls = [r["recall"] for r in rows]
    assert recalls[-1] >= recalls[0] - 0.02
