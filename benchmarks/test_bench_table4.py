"""Bench: regenerate Table 4 (P/R/F1 of all methods on all datasets).

The reproduction target is *shape*, not absolute numbers: BClean
variants lead on the FD-rich datasets, Garf shows its precision-high /
recall-low signature, and the efficiency-optimised variants stay close
to the unoptimised engine in quality.
"""

from conftest import BENCH_SIZES, run_once

from repro.experiments import table4


def _f1(reports, system, dataset):
    for r in reports:
        if r.system == system and r.dataset == dataset:
            return None if r.failed else r.quality.f1
    return None


def test_table4_full_matrix(benchmark):
    reports = run_once(benchmark, table4.run, sizes=BENCH_SIZES)
    print()
    print(table4.render(reports))

    # BClean (PI) beats Garf and Raha+Baran on the FD-rich datasets.
    for dataset in ("hospital", "facilities"):
        bclean = _f1(reports, "BCleanPI", dataset)
        assert bclean is not None
        for other in ("Garf", "Raha+Baran"):
            competitor = _f1(reports, other, dataset)
            if competitor is not None:
                assert bclean > competitor, (dataset, other)

    # The optimised variants stay within reach of the basic engine.
    for dataset in ("hospital",):
        basic = _f1(reports, "BClean", dataset)
        pi = _f1(reports, "BCleanPI", dataset)
        assert basic is not None and pi is not None
        assert abs(basic - pi) < 0.25

    # Garf's signature: precision far above its recall where it runs.
    for r in reports:
        if r.system == "Garf" and not r.failed and r.quality.n_modified > 10:
            assert r.quality.precision > r.quality.recall
