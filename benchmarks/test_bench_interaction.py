"""Bench: regenerate §7.3.2 (network manipulation impact).

Paper: the auto-learned Flights network cleans at 0.217/0.374; after the
user's <5-minute adjustment it reaches 0.852/0.816.  Hospital and Soccer
barely change.  The shape target: a large jump on Flights, no regression
elsewhere.
"""

from conftest import run_once

from repro.experiments import interaction

SIZES = {"hospital": 500, "flights": 800, "soccer": 1200}


def test_network_manipulation(benchmark):
    rows = run_once(benchmark, interaction.run, sizes=SIZES)
    print()
    print(interaction.render(rows))

    flights = {
        r["network"]: r for r in rows if r["dataset"] == "flights"
    }
    auto = flights["auto"]["f1"]
    adjusted = flights["adjusted"]["f1"]
    # The paper reports a dramatic jump (0.29 → 0.83 F1) because its
    # auto-learned Flights network was badly wrong; our FDX learner
    # recovers a serviceable network on the synthetic twin, so the jump
    # is smaller — but the user adjustment must never hurt.
    assert adjusted >= auto, (auto, adjusted)
    assert adjusted > 0.5


def test_edit_session_api(benchmark):
    result = run_once(benchmark, interaction.demo_edit_session, n_rows=400)
    print()
    print(result)
    assert result["f1_after"] > 0.5
    assert result["edges_after"] >= 1
