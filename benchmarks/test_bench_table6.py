"""Bench: regenerate Table 6 (recall per error type)."""

from conftest import run_once

from repro.experiments import table6

SIZES = {"soccer": 1200, "inpatient": 800, "facilities": 800}


def test_table6_recall_by_type(benchmark):
    reports = run_once(benchmark, table6.run, sizes=SIZES)
    print()
    print(table6.render(reports))

    bclean = [r for r in reports if r.system == "BCleanPI" and not r.failed]
    assert bclean
    # BClean's robustness claim: reasonable recall on every error type
    # for the FD-rich datasets (missing values are its strongest suit).
    for r in bclean:
        if r.dataset in ("facilities",):
            assert r.recall_by_type.get("M", 0.0) > 0.5
            assert r.recall_by_type.get("T", 0.0) > 0.3

    # PClean collapses on missing values relative to BClean (paper: 0.568
    # vs 1.000 on Soccer).
    for dataset in ("facilities",):
        b = next(r for r in bclean if r.dataset == dataset)
        p = next(
            (r for r in reports if r.system == "PClean" and r.dataset == dataset),
            None,
        )
        if p is not None and not p.failed:
            assert b.recall_by_type.get("M", 0.0) >= p.recall_by_type.get("M", 0.0)
