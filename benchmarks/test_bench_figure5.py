"""Bench: regenerate Figure 5 (impact of incomplete user constraints).

The paper's finding: removing the pattern (Pat) family hurts the most;
Max/Min/Nul removals barely matter; All-removed is the worst case but
"the overall reduction remains within an acceptable range".
"""

from conftest import run_once

from repro.experiments import figure5

SIZES = {"hospital": 500, "flights": 600, "soccer": 1200}


def test_figure5_uc_ablation(benchmark):
    rows = run_once(benchmark, figure5.run, sizes=SIZES)
    print()
    print(figure5.render(rows))

    def get(dataset, ucs, metric):
        for r in rows:
            if r["dataset"] == dataset and r["ucs"] == ucs:
                return r[metric]
        return None

    # Flights is pattern-driven: dropping Pat must hurt at least as much
    # as dropping any other single family.
    com = get("flights", "Com", "f1") if False else None
    pat_p = get("flights", "Pat", "precision")
    for family in ("Max", "Min", "Nul"):
        other_p = get("flights", family, "precision")
        assert pat_p is not None and other_p is not None
        assert pat_p <= other_p + 0.05

    # The complete configuration is never materially worse than All-removed.
    for dataset in SIZES:
        com_r = get(dataset, "Com", "recall")
        all_r = get(dataset, "All", "recall")
        assert com_r >= all_r - 0.05
