"""Lasso regression by cyclic coordinate descent.

This is the inner solver of graphical lasso: each outer sweep solves a
lasso problem over one row/column block of the covariance matrix.  We
implement the standard covariance-form coordinate descent (Friedman,
Hastie & Tibshirani 2008, eq. 2.4-2.5):

minimise over β:  ½ βᵀ V β − sᵀ β + ρ ‖β‖₁

where ``V`` is PSD and ``s`` is a vector.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError


def soft_threshold(x: float, threshold: float) -> float:
    """The scalar soft-thresholding operator ``S(x, t) = sign(x)·max(|x|−t, 0)``."""
    if x > threshold:
        return x - threshold
    if x < -threshold:
        return x + threshold
    return 0.0


def lasso_coordinate_descent(
    gram: np.ndarray,
    linear: np.ndarray,
    alpha: float,
    max_iter: int = 1000,
    tol: float = 1e-6,
    warm_start: np.ndarray | None = None,
) -> np.ndarray:
    """Solve ``min ½βᵀGβ − lᵀβ + α‖β‖₁`` by cyclic coordinate descent.

    Parameters
    ----------
    gram:
        PSD matrix ``G`` of shape (p, p).
    linear:
        Vector ``l`` of shape (p,).
    alpha:
        L1 penalty ``α ≥ 0``.
    max_iter:
        Maximum number of full sweeps.
    tol:
        Convergence threshold on the max coordinate update.
    warm_start:
        Optional initial β (copied).

    Raises
    ------
    ConvergenceError
        If the update norm is still above ``tol`` after ``max_iter``
        sweeps.
    """
    gram = np.asarray(gram, dtype=float)
    linear = np.asarray(linear, dtype=float)
    p = gram.shape[0]
    if gram.shape != (p, p):
        raise ValueError(f"gram must be square, got {gram.shape}")
    if linear.shape != (p,):
        raise ValueError(f"linear must have shape ({p},), got {linear.shape}")
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")

    beta = (
        np.zeros(p) if warm_start is None else np.array(warm_start, dtype=float)
    )
    diag = np.diag(gram).copy()
    # Coordinates with zero curvature cannot move; give them harmless 1s.
    diag[diag <= 0] = 1.0

    for _ in range(max_iter):
        max_delta = 0.0
        for j in range(p):
            residual = linear[j] - gram[j] @ beta + gram[j, j] * beta[j]
            new = soft_threshold(residual, alpha) / diag[j]
            delta = abs(new - beta[j])
            if delta > max_delta:
                max_delta = delta
            beta[j] = new
        if max_delta < tol:
            return beta
    raise ConvergenceError(
        f"lasso coordinate descent did not converge in {max_iter} sweeps "
        f"(last update {max_delta:.3e} > tol {tol:.1e})"
    )
