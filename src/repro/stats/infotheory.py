"""Discrete information-theoretic quantities, coded-count based.

Structure-learning scores (BIC / mutual-information-based Chow–Liu) and
the PC / MMHC algorithms' conditional-independence tests all reduce to
the same primitive: *empirical counts of joint value configurations*.
This module owns that primitive — :func:`joint_code_counts`, a fused
``numpy.unique`` pass over integer-coded columns — and builds every
entropy / mutual-information / G-statistic variant on top of it, so
there is exactly one counting implementation shared by

- the value-level API below (``entropy``, ``mutual_information``, …,
  kept for callers holding plain hashable sequences; they factorize to
  codes first),
- the columnar structure-learning fast paths
  (:mod:`repro.bayesnet.structure`), which pass
  :class:`~repro.dataset.encoding.TableEncoding` code columns directly,
- the coded CPT fit (:meth:`repro.bayesnet.cpt.CPT.from_coded_counts`)
  and its sharded dispatch (:mod:`repro.exec.fit`).

Determinism contract: :func:`joint_code_counts` returns the distinct
configurations **in order of first appearance in the rows** — the same
order a ``collections.Counter`` built by a row walk would iterate — and
the entropy kernels accumulate in that order with the same scalar
operations, so the value-level results are bit-identical to the
dict-walking implementations they replaced.

All logarithms are natural unless noted.
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence

import numpy as np

#: fused joint codes must stay well inside int64
_FUSE_LIMIT = 2**62


# -- the shared counting kernel ---------------------------------------------------


def codes_of(values: Sequence[Hashable]) -> np.ndarray:
    """Factorize a hashable sequence into dense int64 codes.

    Codes are assigned in order of first appearance, so downstream
    first-appearance orderings coincide with the insertion order of a
    ``Counter`` over the same sequence.
    """
    code_of: dict[Hashable, int] = {}
    out = np.empty(len(values), dtype=np.int64)
    for i, v in enumerate(values):
        code = code_of.get(v)
        if code is None:
            code = len(code_of)
            code_of[v] = code
        out[i] = code
    return out


def _weighted_counts_firsts(
    inverse: np.ndarray,
    n_keys: int,
    row_counts: np.ndarray,
    row_firsts: np.ndarray | None,
    first_fallback: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Reduce per-row multiplicities (and optional global first-row
    indices) onto distinct-key slots.

    Equivalent to counting each deduplicated input row ``row_counts``
    times: the counts are exact int64 sums, and the first-appearance
    index of a configuration is the minimum ``row_firsts`` over the
    deduplicated rows that map to it (a configuration first appears in
    whichever of its carrier rows appeared first)."""
    counts = np.zeros(n_keys, dtype=np.int64)
    np.add.at(counts, inverse, row_counts)
    if row_firsts is None:
        return counts, first_fallback
    first = np.full(n_keys, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(first, inverse, np.asarray(row_firsts, dtype=np.int64))
    return counts, first


def joint_code_counts(
    columns: Sequence[np.ndarray],
    row_counts: np.ndarray | None = None,
    row_firsts: np.ndarray | None = None,
) -> tuple[tuple[np.ndarray, ...], np.ndarray, np.ndarray]:
    """Distinct joint configurations of coded columns, with counts.

    Parameters
    ----------
    columns:
        Equal-length arrays of non-negative integer codes (one per
        variable).
    row_counts:
        Optional per-row multiplicities: row ``i`` counts as
        ``row_counts[i]`` occurrences instead of one.  This is the
        sufficient-statistics entry point of the streaming fit
        (:mod:`repro.exec.fit_stream`): the rows are then the
        *deduplicated* rows of a larger stream, and the returned counts
        are exactly what the full stream would have produced.
    row_firsts:
        With ``row_counts``: the global first-appearance index of each
        deduplicated row in the original stream.  The returned
        ``first_rows`` are then global stream indices (and the entry
        order is the stream's first-appearance order), keeping every
        downstream insertion-order contract identical to a whole-table
        pass.

    Returns
    -------
    ``(uniq_cols, counts, first_rows)`` where ``uniq_cols[v][i]`` is the
    code of variable ``v`` in the i-th distinct configuration,
    ``counts[i]`` its occurrence count, and ``first_rows[i]`` the row of
    its first appearance.  Entries are ordered by ``first_rows``
    ascending (first-appearance order — the ``Counter`` insertion order
    of a row walk).

    The columns are fused into one mixed-radix int64 key when the joint
    code space fits; wider spaces fall back to a row-wise
    ``numpy.unique`` over the stacked columns (same result, no
    overflow).
    """
    cols = [np.asarray(c, dtype=np.int64) for c in columns]
    n = len(cols[0]) if cols else 0
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return tuple(empty for _ in cols), empty.copy(), empty.copy()
    weighted = row_counts is not None
    if weighted:
        row_counts = np.asarray(row_counts, dtype=np.int64)
    cards = [int(c.max()) + 1 for c in cols]
    span = 1
    for card in cards:
        span *= card
    if span <= _FUSE_LIMIT:
        fused = cols[0]
        for col, card in zip(cols[1:], cards[1:]):
            fused = fused * card + col
        if weighted:
            keys, first, inverse = np.unique(
                fused, return_index=True, return_inverse=True
            )
            counts, first = _weighted_counts_firsts(
                inverse, len(keys), row_counts, row_firsts, first
            )
        else:
            keys, first, counts = np.unique(
                fused, return_index=True, return_counts=True
            )
        order = np.argsort(first, kind="stable")
        keys, first, counts = keys[order], first[order], counts[order]
        parts = []
        for card in reversed(cards[1:]):
            parts.append(keys % card)
            keys = keys // card
        parts.append(keys)
        uniq = tuple(reversed(parts))
    else:  # pragma: no cover - needs >2^62 joint states; exercised via unit test
        stacked = np.column_stack(cols)
        if weighted:
            keys2d, first, inverse = np.unique(
                stacked, axis=0, return_index=True, return_inverse=True
            )
            counts, first = _weighted_counts_firsts(
                np.ravel(inverse), len(keys2d), row_counts, row_firsts, first
            )
        else:
            keys2d, first, counts = np.unique(
                stacked, axis=0, return_index=True, return_counts=True
            )
        order = np.argsort(first, kind="stable")
        keys2d, first, counts = keys2d[order], first[order], counts[order]
        uniq = tuple(keys2d[:, i] for i in range(keys2d.shape[1]))
    return uniq, counts, first


def n_distinct(*columns: np.ndarray) -> int:
    """Number of distinct joint configurations of the coded columns."""
    if not columns or len(columns[0]) == 0:
        return 0
    if len(columns) == 1:
        return len(np.unique(columns[0]))
    return len(joint_code_counts(columns)[1])


# -- coded entropies ---------------------------------------------------------------


def entropy_from_counts(counts: np.ndarray, n: int) -> float:
    """``Σ −p·log p`` over counts, accumulated in the given order.

    The loop runs over Python ints with ``math.log`` — element-for-
    element the operations of the ``Counter`` walk it replaces, so
    results are bit-identical when the count order matches.
    """
    if n == 0:
        return 0.0
    h = 0.0
    for c in np.asarray(counts).tolist():
        p = c / n
        h -= p * math.log(p)
    return h


def entropy_codes(
    *columns: np.ndarray, row_counts: np.ndarray | None = None
) -> float:
    """Empirical (joint) entropy of one or more coded columns, in nats.

    ``row_counts`` weights each row by an integer multiplicity (the
    deduplicated-stream form); the counts it produces are the identical
    int64 values a repeated-row pass would count, so the Python-int
    entropy accumulation below is bit-identical either way.
    """
    if not columns or len(columns[0]) == 0:
        return 0.0
    _, counts, _ = joint_code_counts(columns, row_counts=row_counts)
    n = (
        len(columns[0])
        if row_counts is None
        else int(np.asarray(row_counts, dtype=np.int64).sum())
    )
    return entropy_from_counts(counts, n)


def mutual_information_codes(
    x: np.ndarray, y: np.ndarray, row_counts: np.ndarray | None = None
) -> float:
    """Empirical mutual information of two coded columns (clamped ≥ 0)."""
    mi = (
        entropy_codes(x, row_counts=row_counts)
        + entropy_codes(y, row_counts=row_counts)
        - entropy_codes(x, y, row_counts=row_counts)
    )
    return max(0.0, mi)


def conditional_mutual_information_codes(
    x: np.ndarray,
    y: np.ndarray,
    zcols: Sequence[np.ndarray],
    row_counts: np.ndarray | None = None,
) -> float:
    """Empirical I(X; Y | Z) of coded columns, Z possibly multi-variable."""
    cmi = (
        entropy_codes(x, *zcols, row_counts=row_counts)
        + entropy_codes(y, *zcols, row_counts=row_counts)
        - entropy_codes(x, y, *zcols, row_counts=row_counts)
        - entropy_codes(*zcols, row_counts=row_counts)
    )
    return max(0.0, cmi)


def g_statistic_codes(
    x: np.ndarray,
    y: np.ndarray,
    zcols: Sequence[np.ndarray] | None = None,
    row_counts: np.ndarray | None = None,
) -> tuple[float, int]:
    """G-test statistic (2·N·I) and degrees of freedom, coded columns.

    With ``row_counts`` the rows are deduplicated-stream rows and ``N``
    is the total multiplicity, not the array length; degrees of freedom
    depend only on the distinct-value support, which deduplication
    preserves exactly.
    """
    n = (
        len(x)
        if row_counts is None
        else int(np.asarray(row_counts, dtype=np.int64).sum())
    )
    if not zcols:
        mi = mutual_information_codes(x, y, row_counts=row_counts)
        dof = max(1, (n_distinct(x) - 1) * (n_distinct(y) - 1))
    else:
        mi = conditional_mutual_information_codes(
            x, y, zcols, row_counts=row_counts
        )
        dof = max(
            1,
            (n_distinct(x) - 1)
            * (n_distinct(y) - 1)
            * max(1, n_distinct(*zcols)),
        )
    return 2.0 * n * mi, dof


# -- value-level API (delegates to the coded kernels) ------------------------------


def entropy(values: Sequence[Hashable]) -> float:
    """Empirical Shannon entropy H(X) in nats."""
    return entropy_codes(codes_of(values))


def joint_entropy(xs: Sequence[Hashable], ys: Sequence[Hashable]) -> float:
    """Empirical joint entropy H(X, Y)."""
    if len(xs) != len(ys):
        raise ValueError("sequences must have equal length")
    return entropy_codes(codes_of(xs), codes_of(ys))


def mutual_information(xs: Sequence[Hashable], ys: Sequence[Hashable]) -> float:
    """Empirical mutual information I(X; Y) ≥ 0 (clamped at 0)."""
    if len(xs) != len(ys):
        raise ValueError("sequences must have equal length")
    return mutual_information_codes(codes_of(xs), codes_of(ys))


def conditional_mutual_information(
    xs: Sequence[Hashable],
    ys: Sequence[Hashable],
    zs: Sequence[Hashable],
) -> float:
    """Empirical conditional mutual information I(X; Y | Z) ≥ 0."""
    if not (len(xs) == len(ys) == len(zs)):
        raise ValueError("sequences must have equal length")
    return conditional_mutual_information_codes(
        codes_of(xs), codes_of(ys), [codes_of(zs)]
    )


def g_statistic(
    xs: Sequence[Hashable],
    ys: Sequence[Hashable],
    zs: Sequence[Hashable] | None = None,
) -> tuple[float, int]:
    """G-test statistic (2·N·I) and degrees of freedom for a CI test.

    Used by the PC-algorithm baseline: under independence the statistic
    is asymptotically χ² with ``(|X|−1)(|Y|−1)·|Z|`` degrees of freedom.
    """
    return g_statistic_codes(
        codes_of(xs),
        codes_of(ys),
        None if zs is None else [codes_of(zs)],
    )


def normalized_mutual_information(
    xs: Sequence[Hashable], ys: Sequence[Hashable]
) -> float:
    """I(X;Y) / max(H(X), H(Y)) in [0, 1]; 0 when either is constant."""
    hx, hy = entropy(xs), entropy(ys)
    denom = max(hx, hy)
    if denom == 0.0:
        return 0.0
    return min(1.0, mutual_information(xs, ys) / denom)
