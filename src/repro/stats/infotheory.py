"""Discrete information-theoretic quantities.

Structure-learning scores (BIC / mutual-information-based Chow–Liu) and
the PC algorithm's conditional-independence tests operate on empirical
entropies of discrete columns.  All logarithms are natural unless noted.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Hashable, Sequence


def entropy(values: Sequence[Hashable]) -> float:
    """Empirical Shannon entropy H(X) in nats."""
    n = len(values)
    if n == 0:
        return 0.0
    counts = Counter(values)
    h = 0.0
    for c in counts.values():
        p = c / n
        h -= p * math.log(p)
    return h


def joint_entropy(xs: Sequence[Hashable], ys: Sequence[Hashable]) -> float:
    """Empirical joint entropy H(X, Y)."""
    if len(xs) != len(ys):
        raise ValueError("sequences must have equal length")
    return entropy(list(zip(xs, ys)))


def mutual_information(xs: Sequence[Hashable], ys: Sequence[Hashable]) -> float:
    """Empirical mutual information I(X; Y) ≥ 0 (clamped at 0)."""
    mi = entropy(xs) + entropy(ys) - joint_entropy(xs, ys)
    return max(0.0, mi)


def conditional_mutual_information(
    xs: Sequence[Hashable],
    ys: Sequence[Hashable],
    zs: Sequence[Hashable],
) -> float:
    """Empirical conditional mutual information I(X; Y | Z) ≥ 0."""
    if not (len(xs) == len(ys) == len(zs)):
        raise ValueError("sequences must have equal length")
    xz = list(zip(xs, zs))
    yz = list(zip(ys, zs))
    xyz = list(zip(xs, ys, zs))
    cmi = entropy(xz) + entropy(yz) - entropy(xyz) - entropy(zs)
    return max(0.0, cmi)


def g_statistic(
    xs: Sequence[Hashable],
    ys: Sequence[Hashable],
    zs: Sequence[Hashable] | None = None,
) -> tuple[float, int]:
    """G-test statistic (2·N·I) and degrees of freedom for a CI test.

    Used by the PC-algorithm baseline: under independence the statistic
    is asymptotically χ² with ``(|X|−1)(|Y|−1)·|Z|`` degrees of freedom.
    """
    n = len(xs)
    if zs is None:
        mi = mutual_information(xs, ys)
        dof = max(1, (len(set(xs)) - 1) * (len(set(ys)) - 1))
    else:
        mi = conditional_mutual_information(xs, ys, zs)
        dof = max(1, (len(set(xs)) - 1) * (len(set(ys)) - 1) * max(1, len(set(zs))))
    return 2.0 * n * mi, dof


def normalized_mutual_information(
    xs: Sequence[Hashable], ys: Sequence[Hashable]
) -> float:
    """I(X;Y) / max(H(X), H(Y)) in [0, 1]; 0 when either is constant."""
    hx, hy = entropy(xs), entropy(ys)
    denom = max(hx, hy)
    if denom == 0.0:
        return 0.0
    return min(1.0, mutual_information(xs, ys) / denom)
