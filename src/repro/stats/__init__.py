"""Numerical substrate: covariance, lasso, graphical lasso, info theory."""

from repro.stats.covariance import (
    assert_positive_definite,
    correlation_from_covariance,
    empirical_covariance,
    nearest_positive_definite,
    shrunk_covariance,
)
from repro.stats.glasso import (
    GraphicalLassoResult,
    graphical_lasso,
    precision_to_partial_correlation,
)
from repro.stats.infotheory import (
    conditional_mutual_information,
    entropy,
    g_statistic,
    joint_entropy,
    mutual_information,
    normalized_mutual_information,
)
from repro.stats.lasso import lasso_coordinate_descent, soft_threshold

__all__ = [
    "GraphicalLassoResult",
    "assert_positive_definite",
    "conditional_mutual_information",
    "correlation_from_covariance",
    "empirical_covariance",
    "entropy",
    "g_statistic",
    "graphical_lasso",
    "joint_entropy",
    "lasso_coordinate_descent",
    "mutual_information",
    "nearest_positive_definite",
    "normalized_mutual_information",
    "precision_to_partial_correlation",
    "shrunk_covariance",
    "soft_threshold",
]
