"""Graphical lasso: sparse inverse-covariance estimation.

BClean's network construction (§4) runs graphical lasso on the
covariance of softened-FD similarity observations to obtain a sparse
precision matrix Θ, which is then decomposed into the BN skeleton.
scikit-learn is unavailable offline, so this is a from-scratch
implementation of the block coordinate descent algorithm of Friedman,
Hastie & Tibshirani (Biostatistics 2008).

The estimator solves::

    maximise over Θ ≻ 0:  log det Θ − tr(SΘ) − α‖Θ‖₁,off

via repeated lasso regressions of each variable on the rest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError
from repro.stats.covariance import shrunk_covariance
from repro.stats.lasso import lasso_coordinate_descent


@dataclass
class GraphicalLassoResult:
    """Output of :func:`graphical_lasso`.

    Attributes
    ----------
    covariance:
        The estimated (regularised) covariance matrix W.
    precision:
        Its inverse Θ = W⁻¹, sparse off the diagonal.
    n_iter:
        Number of outer sweeps performed.
    converged:
        Whether the duality-gap-style stopping rule fired before
        ``max_iter``.
    """

    covariance: np.ndarray
    precision: np.ndarray
    n_iter: int
    converged: bool


def graphical_lasso(
    emp_cov: np.ndarray,
    alpha: float,
    max_iter: int = 100,
    tol: float = 1e-4,
    inner_max_iter: int = 1000,
    base_shrinkage: float = 1e-3,
) -> GraphicalLassoResult:
    """Estimate a sparse precision matrix from an empirical covariance.

    Parameters
    ----------
    emp_cov:
        Empirical covariance ``S`` (p × p, symmetric PSD).
    alpha:
        Off-diagonal L1 penalty; larger values give sparser Θ.
    max_iter:
        Maximum outer sweeps over the p columns.
    tol:
        Stop when the mean absolute change of W off-diagonals over one
        sweep falls below ``tol`` times the mean absolute off-diagonal
        of S (relative criterion, as in the reference implementation).
    inner_max_iter:
        Sweep budget of the inner lasso solver.
    base_shrinkage:
        Tiny diagonal shrinkage applied to S so the initial W is PD even
        for rank-deficient inputs.

    Notes
    -----
    With ``alpha == 0`` the problem reduces to inverting S; we special-case
    it (after shrinkage) to avoid needless iteration.
    """
    s = np.asarray(emp_cov, dtype=float)
    p = s.shape[0]
    if s.shape != (p, p):
        raise ValueError(f"covariance must be square, got {s.shape}")
    if not np.allclose(s, s.T, atol=1e-10):
        raise ValueError("covariance must be symmetric")
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")

    s = shrunk_covariance(s, base_shrinkage)

    if p == 1:
        w = s.copy()
        return GraphicalLassoResult(w, np.array([[1.0 / w[0, 0]]]), 0, True)

    if alpha == 0.0:
        precision = np.linalg.inv(s)
        return GraphicalLassoResult(s.copy(), precision, 0, True)

    # W is the working covariance estimate; diagonal is fixed at S + αI
    # (the stationarity condition of the diagonal entries).
    w = s.copy()
    w[np.diag_indices(p)] = np.diag(s) + alpha

    indices = np.arange(p)
    off_mask = ~np.eye(p, dtype=bool)
    s_off_mean = max(np.abs(s[off_mask]).mean(), 1e-12)
    betas = np.zeros((p, p - 1))

    converged = False
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        w_old = w.copy()
        for j in range(p):
            rest = indices[indices != j]
            w11 = w[np.ix_(rest, rest)]
            s12 = s[rest, j]
            beta = lasso_coordinate_descent(
                w11,
                s12,
                alpha,
                max_iter=inner_max_iter,
                tol=tol * 1e-2,
                warm_start=betas[j],
            )
            betas[j] = beta
            w12 = w11 @ beta
            w[rest, j] = w12
            w[j, rest] = w12
        delta = np.abs(w[off_mask] - w_old[off_mask]).mean()
        if delta <= tol * s_off_mean:
            converged = True
            break

    precision = _invert_from_blocks(w, s, betas, alpha)
    return GraphicalLassoResult(w, precision, n_iter, converged)


def _invert_from_blocks(
    w: np.ndarray, s: np.ndarray, betas: np.ndarray, alpha: float
) -> np.ndarray:
    """Recover Θ from the final W and the per-column lasso coefficients.

    Block inversion identities give, for each column j:
    θ₂₂ = 1 / (w₂₂ − w₁₂ᵀ β),  θ₁₂ = −β θ₂₂.
    """
    p = w.shape[0]
    precision = np.zeros_like(w)
    indices = np.arange(p)
    for j in range(p):
        rest = indices[indices != j]
        beta = betas[j]
        w12 = w[rest, j]
        denom = w[j, j] - w12 @ beta
        if denom <= 0:
            # Numerical safeguard: fall back to a dense inverse.
            return np.linalg.inv(w)
        theta_jj = 1.0 / denom
        precision[j, j] = theta_jj
        precision[rest, j] = -beta * theta_jj
    # Symmetrise (the column-wise recovery can differ in the last digits).
    return (precision + precision.T) / 2.0


def precision_to_partial_correlation(precision: np.ndarray) -> np.ndarray:
    """Convert a precision matrix to partial correlations.

    ``ρ_ij = −θ_ij / sqrt(θ_ii · θ_jj)`` with unit diagonal.  Useful for
    thresholding on a scale-free quantity.
    """
    theta = np.asarray(precision, dtype=float)
    d = np.sqrt(np.clip(np.diag(theta), 1e-12, None))
    partial = -theta / np.outer(d, d)
    np.fill_diagonal(partial, 1.0)
    return partial
