"""Covariance estimation helpers.

The FDX-based structure learner treats per-tuple-pair similarity vectors
as samples of a multivariate Gaussian and needs a well-conditioned
covariance estimate before running graphical lasso.  We provide the
empirical estimator plus diagonal (Ledoit–Wolf-style fixed shrinkage)
regularisation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError


def empirical_covariance(samples: np.ndarray, assume_centered: bool = False) -> np.ndarray:
    """Maximum-likelihood covariance of row-wise samples.

    Parameters
    ----------
    samples:
        Array of shape ``(n_samples, n_features)``.
    assume_centered:
        If True, the mean is not subtracted.
    """
    x = np.asarray(samples, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"samples must be 2-D, got shape {x.shape}")
    n = x.shape[0]
    if n == 0:
        raise ValueError("cannot estimate covariance from zero samples")
    if not assume_centered:
        x = x - x.mean(axis=0, keepdims=True)
    return (x.T @ x) / n


def shrunk_covariance(cov: np.ndarray, shrinkage: float = 0.1) -> np.ndarray:
    """Convex combination of ``cov`` with a scaled identity.

    ``(1 − s)·Σ + s·(tr(Σ)/p)·I`` — guarantees positive-definiteness for
    any ``s > 0`` when Σ is PSD, which graphical lasso requires.
    """
    if not 0.0 <= shrinkage <= 1.0:
        raise ValueError(f"shrinkage must be in [0, 1], got {shrinkage}")
    cov = np.asarray(cov, dtype=float)
    p = cov.shape[0]
    mu = np.trace(cov) / p
    return (1.0 - shrinkage) * cov + shrinkage * mu * np.eye(p)


def correlation_from_covariance(cov: np.ndarray) -> np.ndarray:
    """Convert a covariance matrix to a correlation matrix.

    Zero-variance features get correlation 0 with everything (and 1 with
    themselves) instead of dividing by zero — constant similarity columns
    are common on clean synthetic data.
    """
    cov = np.asarray(cov, dtype=float)
    std = np.sqrt(np.clip(np.diag(cov), 0.0, None))
    p = cov.shape[0]
    corr = np.zeros_like(cov)
    for i in range(p):
        for j in range(p):
            denom = std[i] * std[j]
            corr[i, j] = cov[i, j] / denom if denom > 0 else (1.0 if i == j else 0.0)
    np.fill_diagonal(corr, 1.0)
    return corr


def nearest_positive_definite(matrix: np.ndarray, epsilon: float = 1e-8) -> np.ndarray:
    """Project a symmetric matrix onto the PD cone by eigenvalue clipping."""
    sym = (matrix + matrix.T) / 2.0
    eigvals, eigvecs = np.linalg.eigh(sym)
    eigvals = np.clip(eigvals, epsilon, None)
    return (eigvecs * eigvals) @ eigvecs.T


def assert_positive_definite(matrix: np.ndarray, name: str = "matrix") -> None:
    """Raise :class:`ConvergenceError` if ``matrix`` is not PD."""
    try:
        np.linalg.cholesky(matrix)
    except np.linalg.LinAlgError as exc:
        raise ConvergenceError(f"{name} is not positive definite") from exc
