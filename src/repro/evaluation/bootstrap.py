"""Bootstrap confidence intervals for repair quality.

The paper reports single P/R/F1 numbers per (system, dataset) pair; on
synthetic twins a point estimate can mislead by a few points depending
on the error draw.  EXPERIMENTS.md therefore quotes bootstrap intervals
where the comparison is close: rows are resampled with replacement and
the metric recomputed, giving a percentile interval that makes "A beats
B" claims falsifiable at laptop scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.dataset.diff import cells_equal
from repro.dataset.table import Table
from repro.errors import EvaluationError
from repro.evaluation.metrics import f1_score


@dataclass(frozen=True)
class Interval:
    """A percentile bootstrap interval around a point estimate."""

    point: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: object) -> bool:
        return isinstance(value, (int, float)) and self.low <= value <= self.high

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals intersect (≈ 'no significant gap')."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.point:.3f} [{self.low:.3f}, {self.high:.3f}]"


@dataclass
class QualityIntervals:
    """Bootstrap intervals for precision, recall, and F1."""

    precision: Interval
    recall: Interval
    f1: Interval
    n_resamples: int


def _row_tallies(
    dirty: Table, cleaned: Table, clean: Table
) -> list[tuple[int, int, int]]:
    """Per-row (modified, correct_repairs, errors) counts.

    Resampling rows (not cells) preserves the within-tuple error
    correlation the cleaning engines exploit.
    """
    names = dirty.schema.names
    tallies = []
    for i in range(dirty.n_rows):
        modified = correct = errors = 0
        for j, _ in enumerate(names):
            d = dirty.columns[j][i]
            out = cleaned.columns[j][i]
            truth = clean.columns[j][i]
            was_error = not cells_equal(d, truth)
            if was_error:
                errors += 1
            if not cells_equal(out, d):
                modified += 1
                if cells_equal(out, truth):
                    correct += 1
        tallies.append((modified, correct, errors))
    return tallies


def _quality_from(tallies: Sequence[tuple[int, int, int]]) -> tuple[float, float, float]:
    modified = sum(t[0] for t in tallies)
    correct = sum(t[1] for t in tallies)
    errors = sum(t[2] for t in tallies)
    precision = correct / modified if modified else 0.0
    recall = correct / errors if errors else 0.0
    return precision, recall, f1_score(precision, recall)


def bootstrap_quality(
    dirty: Table,
    cleaned: Table,
    clean: Table,
    n_resamples: int = 500,
    confidence: float = 0.95,
    seed: int = 0,
) -> QualityIntervals:
    """Percentile bootstrap over rows for repair P/R/F1.

    Parameters
    ----------
    dirty, cleaned, clean:
        The §7.1 evaluation triple: observed input, system output,
        ground truth (same shape).
    n_resamples:
        Number of bootstrap resamples.
    confidence:
        Central interval mass (0.95 → 2.5th..97.5th percentiles).
    seed:
        Resampling seed.
    """
    if not (dirty.n_rows == cleaned.n_rows == clean.n_rows):
        raise EvaluationError("tables must have the same number of rows")
    if n_resamples < 1:
        raise EvaluationError(f"n_resamples must be >= 1, got {n_resamples}")
    if not 0.0 < confidence < 1.0:
        raise EvaluationError(f"confidence must be in (0, 1), got {confidence}")

    tallies = _row_tallies(dirty, cleaned, clean)
    point_p, point_r, point_f = _quality_from(tallies)

    rng = random.Random(seed)
    n = len(tallies)
    samples_p: list[float] = []
    samples_r: list[float] = []
    samples_f: list[float] = []
    for _ in range(n_resamples):
        resample = [tallies[rng.randrange(n)] for _ in range(n)]
        p, r, f = _quality_from(resample)
        samples_p.append(p)
        samples_r.append(r)
        samples_f.append(f)

    def interval(point: float, samples: list[float]) -> Interval:
        ordered = sorted(samples)
        alpha = (1.0 - confidence) / 2.0
        lo_idx = int(alpha * (len(ordered) - 1))
        hi_idx = int((1.0 - alpha) * (len(ordered) - 1))
        return Interval(point, ordered[lo_idx], ordered[hi_idx], confidence)

    return QualityIntervals(
        precision=interval(point_p, samples_p),
        recall=interval(point_r, samples_r),
        f1=interval(point_f, samples_f),
        n_resamples=n_resamples,
    )


def significant_gap(
    a: QualityIntervals, b: QualityIntervals, metric: str = "f1"
) -> bool:
    """Whether system a's interval lies strictly above system b's.

    Non-overlap of percentile intervals is a conservative test, which
    is the right direction for claiming "A beats B" in EXPERIMENTS.md.
    """
    ia: Interval = getattr(a, metric)
    ib: Interval = getattr(b, metric)
    return ia.low > ib.high
