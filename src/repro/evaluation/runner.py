"""Experiment runner: apply any cleaning system to a benchmark instance.

A *cleaning system* is anything with a ``name`` and a
``clean(instance) -> Table`` method.  Adapters for the BClean variants
and all baselines live in :mod:`repro.evaluation.systems`; this module
times them and scores the output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

from repro.obs import Span

from repro.data.benchmark import BenchmarkInstance
from repro.dataset.table import Table
from repro.evaluation.metrics import (
    RepairQuality,
    evaluate_repairs,
    recall_by_error_type,
)


@runtime_checkable
class CleaningSystem(Protocol):
    """Minimal interface every competitor implements."""

    name: str

    def clean(self, instance: BenchmarkInstance) -> Table:
        """Produce a cleaned table for the benchmark's dirty table."""
        ...


@dataclass
class MethodReport:
    """One system's result on one benchmark instance."""

    system: str
    dataset: str
    quality: RepairQuality
    exec_seconds: float
    recall_by_type: dict[str, float] = field(default_factory=dict)
    error: str | None = None

    @property
    def failed(self) -> bool:
        """Whether the system crashed or was skipped."""
        return self.error is not None

    def as_row(self) -> dict:
        """Flat dict for table rendering."""
        row = {"system": self.system, "dataset": self.dataset}
        if self.failed:
            row.update({"precision": "-", "recall": "-", "f1": "-"})
        else:
            row.update(self.quality.as_row())
        row["exec_s"] = round(self.exec_seconds, 2)
        return row


def run_system(
    system: CleaningSystem,
    instance: BenchmarkInstance,
    with_type_recall: bool = False,
    catch_errors: bool = True,
) -> MethodReport:
    """Run one system on one instance, timing and scoring it."""
    span = Span("evaluation.run_system", args={"system": system.name})
    try:
        with span:  # Span records its duration even when clean() raises
            cleaned = system.clean(instance)
    except Exception as exc:  # a failed competitor is a data point (− in Table 4)
        if not catch_errors:
            raise
        return MethodReport(
            system=system.name,
            dataset=instance.name,
            quality=RepairQuality(0.0, 0.0, 0.0, 0, 0, len(instance.error_cells)),
            exec_seconds=span.seconds,
            error=f"{type(exc).__name__}: {exc}",
        )
    elapsed = span.seconds
    quality = evaluate_repairs(
        instance.dirty, cleaned, instance.clean, instance.error_cells
    )
    by_type = (
        recall_by_error_type(cleaned, instance.injection)
        if with_type_recall
        else {}
    )
    return MethodReport(
        system=system.name,
        dataset=instance.name,
        quality=quality,
        exec_seconds=elapsed,
        recall_by_type=by_type,
    )


def run_matrix(
    systems: Sequence[CleaningSystem],
    instances: Sequence[BenchmarkInstance],
    with_type_recall: bool = False,
) -> list[MethodReport]:
    """The full systems × datasets sweep behind Table 4."""
    reports = []
    for instance in instances:
        for system in systems:
            reports.append(
                run_system(system, instance, with_type_recall=with_type_recall)
            )
    return reports
