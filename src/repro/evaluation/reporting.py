"""Plain-text table rendering for experiment reports.

All experiment drivers produce lists of flat dicts; this module renders
them in the fixed-width style of the paper's tables so EXPERIMENTS.md
and bench output read side-by-side with the original.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Fixed-width text table from dict rows.

    Parameters
    ----------
    rows:
        Flat record dicts.
    columns:
        Column order (defaults to the keys of the first row).
    title:
        Optional heading line.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    rendered = [
        {c: _fmt(r.get(c, "")) for c in cols} for r in rows
    ]
    widths = {
        c: max(len(c), *(len(r[c]) for r in rendered)) for c in cols
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(widths[c]) for c in cols)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in cols))
    for r in rendered:
        lines.append(" | ".join(r[c].ljust(widths[c]) for c in cols))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def pivot_reports(
    reports: Sequence,
    metric: str = "f1",
) -> list[dict]:
    """Pivot MethodReport rows into the paper's systems × datasets shape.

    Each output row is one system; columns are datasets holding the
    chosen metric ("precision", "recall", or "f1"); failures show "-".
    """
    systems: list[str] = []
    datasets: list[str] = []
    for r in reports:
        if r.system not in systems:
            systems.append(r.system)
        if r.dataset not in datasets:
            datasets.append(r.dataset)
    index = {(r.system, r.dataset): r for r in reports}
    rows = []
    for s in systems:
        row: dict[str, object] = {"system": s}
        for d in datasets:
            r = index.get((s, d))
            if r is None or r.failed:
                row[d] = "-"
            else:
                row[d] = round(getattr(r.quality, metric), 3)
        rows.append(row)
    return rows
