"""Repair-quality metrics exactly as §7.1 defines them.

- **Precision** — correctly repaired errors over *all modified cells*
  (a repair that touches a clean cell, or fixes an error to the wrong
  value, costs precision).
- **Recall** — correctly repaired errors over all ground-truth errors.
- **F1** — harmonic mean.

"Correct" means the cleaned cell equals the ground-truth clean value
under NULL-aware, numerically canonical comparison
(:func:`~repro.dataset.diff.cells_equal`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.data.errors import InjectionResult
from repro.dataset.diff import cells_equal
from repro.dataset.table import Table
from repro.errors import EvaluationError


@dataclass(frozen=True)
class RepairQuality:
    """Precision / recall / F1 plus the raw counts behind them."""

    precision: float
    recall: float
    f1: float
    n_modified: int
    n_correct_repairs: int
    n_errors: int

    def as_row(self) -> dict[str, float]:
        """Flat dict for table rendering."""
        return {
            "precision": round(self.precision, 3),
            "recall": round(self.recall, 3),
            "f1": round(self.f1, 3),
        }


def f1_score(precision: float, recall: float) -> float:
    """Harmonic mean (0 when both are 0)."""
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def evaluate_repairs(
    dirty: Table,
    cleaned: Table,
    clean: Table,
    error_cells: Iterable[tuple[int, str]] | None = None,
) -> RepairQuality:
    """Score a cleaning run against ground truth.

    Parameters
    ----------
    dirty:
        The observed input D.
    cleaned:
        The system's output D*.
    clean:
        Ground truth.
    error_cells:
        Coordinates of the injected errors.  ``None`` derives them by
        diffing ``dirty`` against ``clean``.
    """
    for t in (cleaned, clean):
        if t.schema.names != dirty.schema.names or t.n_rows != dirty.n_rows:
            raise EvaluationError("tables are not aligned")

    if error_cells is None:
        error_set = {
            (i, a)
            for j, a in enumerate(dirty.schema.names)
            for i in range(dirty.n_rows)
            if not cells_equal(dirty.columns[j][i], clean.columns[j][i])
        }
    else:
        error_set = set(error_cells)

    n_modified = 0
    n_correct = 0
    for j, attr in enumerate(dirty.schema.names):
        dcol, ocol, gcol = dirty.columns[j], cleaned.columns[j], clean.columns[j]
        for i in range(dirty.n_rows):
            if cells_equal(dcol[i], ocol[i]):
                continue
            n_modified += 1
            if (i, attr) in error_set and cells_equal(ocol[i], gcol[i]):
                n_correct += 1

    precision = n_correct / n_modified if n_modified else 0.0
    recall = n_correct / len(error_set) if error_set else 0.0
    return RepairQuality(
        precision=precision,
        recall=recall,
        f1=f1_score(precision, recall),
        n_modified=n_modified,
        n_correct_repairs=n_correct,
        n_errors=len(error_set),
    )


def recall_by_error_type(
    cleaned: Table,
    injection: InjectionResult,
) -> dict[str, float]:
    """Per-error-type recall (Table 6): for each injected type code, the
    fraction of its errors whose cell was restored to ground truth."""
    clean = injection.clean
    totals: dict[str, int] = {}
    hits: dict[str, int] = {}
    for e in injection.errors:
        totals[e.error_type] = totals.get(e.error_type, 0) + 1
        repaired = cleaned.cell(e.row, e.attribute)
        truth = clean.cell(e.row, e.attribute)
        if cells_equal(repaired, truth):
            hits[e.error_type] = hits.get(e.error_type, 0) + 1
    return {
        t: (hits.get(t, 0) / n if n else 0.0) for t, n in sorted(totals.items())
    }


def detection_quality(
    dirty: Table,
    flagged_cells: Iterable[tuple[int, str]],
    clean: Table,
) -> RepairQuality:
    """Error-*detection* precision/recall (used by Raha-style internals).

    A flagged cell is a true positive iff it really differs from ground
    truth.
    """
    error_set = {
        (i, a)
        for j, a in enumerate(dirty.schema.names)
        for i in range(dirty.n_rows)
        if not cells_equal(dirty.columns[j][i], clean.columns[j][i])
    }
    flagged = set(flagged_cells)
    tp = len(flagged & error_set)
    precision = tp / len(flagged) if flagged else 0.0
    recall = tp / len(error_set) if error_set else 0.0
    return RepairQuality(
        precision=precision,
        recall=recall,
        f1=f1_score(precision, recall),
        n_modified=len(flagged),
        n_correct_repairs=tp,
        n_errors=len(error_set),
    )
