"""Evaluation: §7.1 metrics, experiment runner, text reporting."""

from repro.evaluation.bootstrap import (
    Interval,
    QualityIntervals,
    bootstrap_quality,
    significant_gap,
)
from repro.evaluation.metrics import (
    RepairQuality,
    detection_quality,
    evaluate_repairs,
    f1_score,
    recall_by_error_type,
)
from repro.evaluation.reporting import pivot_reports, render_table
from repro.evaluation.runner import (
    CleaningSystem,
    MethodReport,
    run_matrix,
    run_system,
)
from repro.evaluation.systems import (
    BCleanSystem,
    GarfSystem,
    HoloCleanSystem,
    PCleanSystem,
    RahaBaranSystem,
    bclean_variants,
    default_systems,
)

__all__ = [
    "BCleanSystem",
    "CleaningSystem",
    "GarfSystem",
    "HoloCleanSystem",
    "Interval",
    "MethodReport",
    "PCleanSystem",
    "QualityIntervals",
    "RahaBaranSystem",
    "RepairQuality",
    "bclean_variants",
    "bootstrap_quality",
    "default_systems",
    "detection_quality",
    "evaluate_repairs",
    "f1_score",
    "pivot_reports",
    "recall_by_error_type",
    "render_table",
    "run_matrix",
    "run_system",
    "significant_gap",
]
