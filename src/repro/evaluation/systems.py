"""Adapters binding each cleaning system to the benchmark protocol.

Every adapter implements :class:`~repro.evaluation.runner.CleaningSystem`
(``name`` + ``clean(instance) -> Table``) and pulls exactly the prior
knowledge Table 2 grants that system: UCs for BClean, DCs for HoloClean,
the PPL program for PClean, 20+20 labelled tuples for Raha+Baran, and
nothing for Garf.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.baselines.garf import GarfCleaner
from repro.baselines.holoclean import HoloCleanCleaner
from repro.baselines.pclean import PCleanCleaner
from repro.baselines.raha_baran import RahaBaranCleaner
from repro.core.config import BCleanConfig, InferenceMode
from repro.core.engine import BClean
from repro.core.repairs import CleaningResult
from repro.data.benchmark import BenchmarkInstance
from repro.dataset.table import Table


@dataclass
class BCleanSystem:
    """Any of the four BClean variants of Table 4.

    ``apply_user_network`` reproduces the paper's protocol: Table 4
    measures BClean *after* the (≤5 minute, §7.3.2) user adjustment of
    the learned network where one exists (Flights).  Set it to False to
    measure the raw auto-constructed network (the §7.3.2 "before" row).
    """

    name: str = "BCleanPI"
    config: BCleanConfig = field(default_factory=BCleanConfig.pi)
    apply_user_network: bool = True
    last_result: CleaningResult | None = None

    def clean(self, instance: BenchmarkInstance) -> Table:
        constraints = (
            instance.constraints if self.config.use_ucs else None
        )
        engine = BClean(replace(self.config), constraints)
        dag = instance.user_network() if self.apply_user_network else None
        engine.fit(instance.dirty, dag=dag)
        result = engine.clean()
        self.last_result = result
        return result.cleaned

    # -- canonical variants ------------------------------------------------------

    @classmethod
    def basic(cls, **kwargs) -> "BCleanSystem":
        """*BClean* — unoptimised full-joint scoring.

        The Table 4/7 "BClean" row is *defined* as the paper's naive
        engine, so it runs the scalar reference path: the columnar fast
        path would collapse the full joint into blanket-plus-constant
        and erase exactly the inference cost this variant exists to
        measure.  Repair decisions are identical either way.
        """
        kwargs.setdefault("use_columnar", False)
        return cls("BClean", BCleanConfig.basic(**kwargs))

    @classmethod
    def without_ucs(cls, **kwargs) -> "BCleanSystem":
        """*BClean-UC* — no user constraints."""
        return cls("BClean-UC", BCleanConfig.without_ucs(**kwargs))

    @classmethod
    def pi(cls, **kwargs) -> "BCleanSystem":
        """*BCleanPI* — partitioned inference."""
        return cls("BCleanPI", BCleanConfig.pi(**kwargs))

    @classmethod
    def pip(cls, **kwargs) -> "BCleanSystem":
        """*BCleanPIP* — partitioned inference + pruning."""
        return cls("BCleanPIP", BCleanConfig.pip(**kwargs))


@dataclass
class PCleanSystem:
    """PClean driven by the dataset's hand-written program."""

    name: str = "PClean"

    def clean(self, instance: BenchmarkInstance) -> Table:
        model = instance.pclean_program()
        return PCleanCleaner(model).fit(instance.dirty).clean()


@dataclass
class HoloCleanSystem:
    """HoloClean driven by the dataset's DC set."""

    name: str = "HoloClean"
    seed: int = 0

    def clean(self, instance: BenchmarkInstance) -> Table:
        dcs = instance.denial_constraints()
        return HoloCleanCleaner(dcs, seed=self.seed).fit(instance.dirty).clean()


@dataclass
class RahaBaranSystem:
    """Raha+Baran with the 20+20 labelling budget."""

    name: str = "Raha+Baran"
    seed: int = 0

    def clean(self, instance: BenchmarkInstance) -> Table:
        cleaner = RahaBaranCleaner(seed=self.seed)
        cleaner.fit(instance.dirty, instance.clean)
        return cleaner.clean()


@dataclass
class GarfSystem:
    """Garf: no prior knowledge at all.

    The thresholds are deliberately conservative (stricter than the
    :class:`GarfCleaner` library defaults): Table 4 reports Garf with
    precision near 1 and low recall, which corresponds to only firing
    rules whose support is essentially unanimous.
    """

    name: str = "Garf"
    min_support: int = 5
    min_confidence: float = 0.98

    def clean(self, instance: BenchmarkInstance) -> Table:
        return GarfCleaner(self.min_support, self.min_confidence).clean(
            instance.dirty
        )


def default_systems() -> list:
    """The eight Table 4 rows, in paper order."""
    return [
        BCleanSystem.without_ucs(),
        BCleanSystem.basic(),
        BCleanSystem.pi(),
        BCleanSystem.pip(),
        PCleanSystem(),
        HoloCleanSystem(),
        RahaBaranSystem(),
        GarfSystem(),
    ]


def bclean_variants() -> list[BCleanSystem]:
    """Just the four BClean rows."""
    return [
        BCleanSystem.without_ucs(),
        BCleanSystem.basic(),
        BCleanSystem.pi(),
        BCleanSystem.pip(),
    ]
