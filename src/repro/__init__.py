"""BClean: A Bayesian Data Cleaning System — full reproduction.

Public API roots:

- :mod:`repro.core` — the BClean engine (:class:`~repro.core.BClean`,
  :class:`~repro.core.BCleanConfig`), compensatory scoring, pruning,
  network interaction.
- :mod:`repro.bayesnet` — the discrete Bayesian-network substrate and
  structure learners (FDX, hill-climbing, Chow–Liu, PC).
- :mod:`repro.constraints` — user constraints, FDs, DCs.
- :mod:`repro.dataset` — tables, schemas, CSV I/O.
- :mod:`repro.data` — benchmark dataset generators + error injection.
- :mod:`repro.baselines` — PClean, HoloClean, Raha+Baran, Garf.
- :mod:`repro.evaluation` — metrics, runner, reporting.
- :mod:`repro.experiments` — drivers for every paper table and figure.

Quickstart::

    from repro.core import BClean, BCleanConfig
    from repro.data.benchmark import load_benchmark

    bench = load_benchmark("hospital")
    engine = BClean(BCleanConfig.pi(), bench.constraints)
    engine.fit(bench.dirty)
    result = engine.clean()
"""

__version__ = "1.0.0"

from repro.core.config import BCleanConfig, InferenceMode
from repro.core.engine import BClean, clean_table
from repro.errors import ReproError

__all__ = [
    "BClean",
    "BCleanConfig",
    "InferenceMode",
    "ReproError",
    "__version__",
    "clean_table",
]
