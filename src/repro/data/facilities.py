"""The Facilities benchmark (synthetic twin of the CMS facilities data).

7992 rows × 11 attributes, ~5 % noise, all four error types.  Pure
entity table (one row per facility appearing across quarterly
snapshots), so duplication comes from repeated snapshots of the same
facility.
"""

from __future__ import annotations

from repro.baselines.pclean_model import PCleanAttribute, PCleanModel
from repro.constraints.builtin import MaxLength, MinLength, NotNull
from repro.constraints.dc import DenialConstraint
from repro.constraints.fd import FunctionalDependency
from repro.constraints.registry import UCRegistry
from repro.data import synth
from repro.dataset.schema import Schema
from repro.dataset.table import Table

PAPER_N_ROWS = 7992
DEFAULT_N_ROWS = 3000
NOISE_RATE = 0.05
ERROR_TYPES = ("T", "M", "I", "S")

FACILITY_TYPES = [
    "nursing home", "dialysis facility", "home health agency", "hospice",
    "rehabilitation center", "long term care",
]

OWNERSHIP = [
    "for profit", "non profit", "government local", "government state",
    "government federal",
]


def schema() -> Schema:
    """The 11-attribute Facilities schema."""
    return Schema.of(
        "facility_id:categorical",
        "facility_name:text",
        "address:text",
        "city:categorical",
        "state:categorical",
        "zip_code:categorical",
        "county:categorical",
        "phone:text",
        "facility_type:categorical",
        "ownership:categorical",
        "certified_beds:categorical",
    )


def generate_clean(n_rows: int = DEFAULT_N_ROWS, seed: int = 23) -> Table:
    """Generate clean Facilities data: facilities × quarterly snapshots."""
    rng = synth.make_rng(seed)
    n_facilities = max(2, n_rows // 4)

    facilities = []
    for _ in range(n_facilities):
        city = synth.pick(rng, synth.CITY_NAMES)
        facilities.append(
            {
                "facility_id": synth.numeric_id(rng, 6),
                "facility_name": f"{city} {synth.pick(rng, ['care center', 'senior living', 'health services', 'wellness center'])}",
                "address": synth.street_address(rng),
                "city": city,
                "state": synth.pick(rng, synth.US_STATES[:15]),
                "zip_code": synth.zip_code(rng),
                "county": synth.pick(rng, synth.COUNTY_NAMES),
                "phone": synth.phone_number(rng),
                "facility_type": synth.pick(rng, FACILITY_TYPES),
                "ownership": synth.pick(rng, OWNERSHIP),
                "certified_beds": str(rng.randrange(20, 400)),
            }
        )

    rows = []
    for i in range(n_rows):
        f = facilities[i % n_facilities]
        rows.append([f[a] for a in schema().names])
    return Table.from_rows(schema(), rows)


def constraints(table: Table | None = None) -> UCRegistry:
    """Table 3: "N/A" patterns — only length and not-null UCs."""
    reg = UCRegistry()
    for attr in schema().names:
        reg.add(attr, NotNull(), MinLength(1), MaxLength(64))
    return reg


def denial_constraints() -> list[DenialConstraint]:
    """8 DCs per Table 2."""
    targets = [
        "facility_name", "address", "city", "state", "zip_code", "county",
        "phone",
    ]
    dcs = [DenialConstraint.from_fd("facility_id", t) for t in targets]
    dcs.append(DenialConstraint.from_fd("zip_code", "state"))
    return dcs


def key_fds() -> list[FunctionalDependency]:
    """Ground-truth FDs."""
    return [
        FunctionalDependency(("facility_id",), "facility_name"),
        FunctionalDependency(("facility_id",), "address"),
        FunctionalDependency(("facility_id",), "phone"),
        FunctionalDependency(("zip_code",), "state"),
    ]


def pclean_program() -> PCleanModel:
    """Facilities defeated PClean in the paper (no repairs / timeout):
    modelled here as an over-flat program with huge candidate spaces."""
    attrs = [
        PCleanAttribute(a, "categorical", (), 0.25, 0.10)
        for a in schema().names
    ]
    return PCleanModel("facilities", attrs, classes=[tuple(schema().names)])
