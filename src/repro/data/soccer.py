"""The Soccer benchmark (synthetic twin, scale-parameterised).

The paper's largest dataset: 200 000 rows × 10 attributes, ~1 % noise.
Player profiles with strong team-level FDs
(``team → city / stadium / manager``).  The generator takes ``n_rows``
so benches can run laptop-scale (the paper itself had to subsample it to
50 k for HoloClean, Table 5).
"""

from __future__ import annotations

from repro.baselines.pclean_model import PCleanAttribute, PCleanModel
from repro.constraints.builtin import MaxLength, MinLength, NotNull, Pattern
from repro.constraints.dc import DenialConstraint
from repro.constraints.fd import FunctionalDependency
from repro.constraints.registry import UCRegistry
from repro.data import synth
from repro.dataset.schema import Schema
from repro.dataset.table import Table

PAPER_N_ROWS = 200_000
DEFAULT_N_ROWS = 4_000
NOISE_RATE = 0.01
ERROR_TYPES = ("T", "M", "I")

POSITIONS = [
    "goalkeeper", "defender", "midfielder", "forward", "winger", "striker",
]

TEAM_WORDS = [
    "united", "city", "rovers", "wanderers", "athletic", "rangers",
    "albion", "county", "town", "dynamos",
]


def schema() -> Schema:
    """The 10-attribute Soccer schema."""
    return Schema.of(
        "name:text",
        "surname:text",
        "birthyear:categorical",
        "birthplace:categorical",
        "position:categorical",
        "team:categorical",
        "city:categorical",
        "stadium:categorical",
        "season:categorical",
        "manager:text",
    )


def generate_clean(n_rows: int = DEFAULT_N_ROWS, seed: int = 13) -> Table:
    """Generate clean Soccer data: players × seasons on synthetic teams.

    The real benchmark is a 200 k-row player-season history: each player
    recurs in roughly ten rows, and name/surname variety is large enough
    that ``(name, surname)`` behaves as a quasi-key.  Both properties
    matter to every cleaning system (they are what make player-level
    attributes verifiable), so the generator reproduces them: one row
    per player-season, ~``n_rows/10`` players, and hyphen/initial
    variants that blow the name pools up well past the base word lists.
    """
    rng = synth.make_rng(seed)
    n_teams = max(4, min(60, n_rows // 100))

    # Team names, stadiums, and managers are unique per club (as in the
    # real data) — collisions would make the team-level FDs ambiguous.
    teams = []
    used: set[str] = set()
    for _ in range(n_teams):
        city = synth.pick(rng, synth.CITY_NAMES)
        team = f"{city} {synth.pick(rng, TEAM_WORDS)}"
        while team in used:
            team = f"{synth.pick(rng, synth.CITY_NAMES)} {synth.pick(rng, TEAM_WORDS)}"
        used.add(team)
        stadium = f"{synth.pick(rng, synth.STREET_NAMES)} park"
        while stadium in used:
            stadium = f"{synth.pick(rng, synth.STREET_NAMES)} {synth.pick(rng, TEAM_WORDS)} park"
        used.add(stadium)
        manager = f"{synth.pick(rng, synth.FIRST_NAMES)} {synth.pick(rng, synth.LAST_NAMES)}"
        while manager in used:
            manager = f"{synth.pick(rng, synth.FIRST_NAMES)} {synth.pick(rng, synth.LAST_NAMES)}"
        used.add(manager)
        teams.append(
            {"team": team, "city": city, "stadium": stadium, "manager": manager}
        )

    def player_name() -> str:
        base = synth.pick(rng, synth.FIRST_NAMES)
        if rng.random() < 0.4:
            return f"{base} {synth.pick(rng, synth.FIRST_NAMES)[0]}."
        return base

    def player_surname() -> str:
        base = synth.pick(rng, synth.LAST_NAMES)
        if rng.random() < 0.3:
            return f"{base}-{synth.pick(rng, synth.LAST_NAMES)}"
        return base

    n_players = max(2, n_rows // 10)
    players = []
    for _ in range(n_players):
        players.append(
            {
                "name": player_name(),
                "surname": player_surname(),
                "birthyear": str(rng.randrange(1960, 2000)),
                "birthplace": synth.pick(rng, synth.CITY_NAMES),
                "position": synth.pick(rng, POSITIONS),
                "team_idx": rng.randrange(n_teams),
                "first_season": rng.randrange(2000, 2010),
            }
        )

    rows = []
    for i in range(n_rows):
        p = players[i % n_players]
        t = teams[p["team_idx"]]
        season = str(p["first_season"] + (i // n_players) % 10)
        rows.append(
            [
                p["name"], p["surname"], p["birthyear"], p["birthplace"],
                p["position"], t["team"], t["city"], t["stadium"],
                season, t["manager"],
            ]
        )
    return Table.from_rows(schema(), rows)


def constraints(table: Table | None = None) -> UCRegistry:
    """Table 3 UCs: birthyear 19[6-9][0-9], season 20[0-9][0-9]."""
    reg = UCRegistry()
    for attr in schema().names:
        reg.add(attr, NotNull(), MinLength(1), MaxLength(48))
    reg.add("birthyear", Pattern(r"[1][9][6-9][0-9]"))
    reg.add("season", Pattern(r"[2][0][0-9][0-9]"))
    return reg


def denial_constraints() -> list[DenialConstraint]:
    """4 DCs: the team-level FDs in both directions."""
    return [
        DenialConstraint.from_fd("team", "city"),
        DenialConstraint.from_fd("team", "stadium"),
        DenialConstraint.from_fd("team", "manager"),
        DenialConstraint.from_fd("stadium", "team"),
    ]


def key_fds() -> list[FunctionalDependency]:
    """Ground-truth FDs."""
    return [
        FunctionalDependency(("team",), "city"),
        FunctionalDependency(("team",), "stadium"),
        FunctionalDependency(("team",), "manager"),
    ]


def pclean_program() -> PCleanModel:
    """A *crude* program: §7.2.1 notes users "find it challenging to
    articulate data distributions" for Soccer — the program models every
    attribute as an independent categorical, which drags PClean toward
    majority-value repairs (its poor Table 4 row)."""
    attrs = [
        PCleanAttribute(a, "categorical", (), 0.10, 0.05)
        for a in schema().names
    ]
    return PCleanModel("soccer", attrs, classes=[tuple(schema().names)])
