"""Benchmark datasets: synthetic twins of the paper's six benchmarks
plus the §7.1 error injector."""

from repro.data.errors import (
    ALL_TYPES,
    INCONSISTENCY,
    MISSING,
    SWAP,
    TYPO,
    ErrorInjector,
    InjectedError,
    InjectionResult,
    inject_typo,
)

__all__ = [
    "ALL_TYPES",
    "INCONSISTENCY",
    "MISSING",
    "SWAP",
    "TYPO",
    "ErrorInjector",
    "InjectedError",
    "InjectionResult",
    "inject_typo",
]
