"""Error injection following §7.1 ("Error Injection").

Four error types, matching Raha+Baran / HoloClean benchmark practice:

- **T** (typo): randomly add, delete, or replace one character.
- **M** (missing): replace the value with NULL.
- **I** (inconsistency): interchange two values from the domains of two
  columns, or of a specific column (a *valid but wrong* value).
- **S** (swap): swap values within the same attribute — "the same
  domain" — plus a *different-domain* variant for Figure 4(e)/(f).

Injection is deterministic given the seed, and every injected error is
recorded so per-type recall (Table 6) can be computed exactly.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Sequence

from repro.dataset.table import Cell, Table, is_null
from repro.errors import ErrorInjectionError

#: canonical error-type codes
TYPO = "T"
MISSING = "M"
INCONSISTENCY = "I"
SWAP = "S"

ALL_TYPES = (TYPO, MISSING, INCONSISTENCY, SWAP)


@dataclass(frozen=True)
class InjectedError:
    """Provenance record of one injected error."""

    row: int
    attribute: str
    error_type: str
    clean_value: Cell
    dirty_value: Cell


@dataclass
class InjectionResult:
    """The dirty table plus full error provenance."""

    dirty: Table
    clean: Table
    errors: list[InjectedError] = field(default_factory=list)

    @property
    def error_cells(self) -> set[tuple[int, str]]:
        """Coordinates of all injected errors."""
        return {(e.row, e.attribute) for e in self.errors}

    def errors_of_type(self, error_type: str) -> list[InjectedError]:
        """All errors of one type code."""
        return [e for e in self.errors if e.error_type == error_type]

    def counts_by_type(self) -> dict[str, int]:
        """Error counts keyed by type code (Figure 4(a))."""
        out: dict[str, int] = {}
        for e in self.errors:
            out[e.error_type] = out.get(e.error_type, 0) + 1
        return out

    @property
    def noise_rate(self) -> float:
        """Fraction of cells actually dirtied."""
        cells = self.clean.n_cells
        return len(self.errors) / cells if cells else 0.0


_TYPO_ALPHABET = string.ascii_lowercase + string.digits


def _swap_equal(a: Cell, b: Cell) -> bool:
    from repro.dataset.diff import cells_equal

    return cells_equal(a, b)


def inject_typo(value: Cell, rng: random.Random) -> Cell:
    """One character-level edit: add, delete, or replace."""
    s = str(value)
    if not s:
        return rng.choice(_TYPO_ALPHABET)
    op = rng.choice(("add", "delete", "replace"))
    pos = rng.randrange(len(s))
    if op == "add":
        return s[:pos] + rng.choice(_TYPO_ALPHABET) + s[pos:]
    if op == "delete" and len(s) > 1:
        return s[:pos] + s[pos + 1 :]
    # replace (also the fallback for 1-char deletes)
    ch = rng.choice(_TYPO_ALPHABET)
    while ch == s[pos] and len(_TYPO_ALPHABET) > 1:
        ch = rng.choice(_TYPO_ALPHABET)
    return s[:pos] + ch + s[pos + 1 :]


class ErrorInjector:
    """Injects a configurable error mix into a clean table.

    Parameters
    ----------
    rate:
        Target fraction of cells to dirty, in [0, 1].
    types:
        Enabled error-type codes; the rate is split roughly evenly among
        them ("their frequencies do not exhibit a significant
        difference", §7.1).
    seed:
        RNG seed (full determinism).
    protected:
        Attributes never dirtied (e.g. key columns some baselines need).
    swap_cross_domain:
        When True, S errors swap values *across* two different
        attributes (the "Different" bars of Figure 4(e)/(f)); otherwise
        within one attribute ("Same").
    """

    def __init__(
        self,
        rate: float,
        types: Sequence[str] = (TYPO, MISSING, INCONSISTENCY),
        seed: int = 0,
        protected: Sequence[str] = (),
        swap_cross_domain: bool = False,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ErrorInjectionError(f"rate must be in [0, 1], got {rate}")
        unknown = set(types) - set(ALL_TYPES)
        if unknown:
            raise ErrorInjectionError(
                f"unknown error types {sorted(unknown)}; valid: {ALL_TYPES}"
            )
        if not types:
            raise ErrorInjectionError("at least one error type required")
        self.rate = rate
        self.types = tuple(types)
        self.seed = seed
        self.protected = set(protected)
        self.swap_cross_domain = swap_cross_domain

    def inject(self, clean: Table) -> InjectionResult:
        """Produce a dirty copy of ``clean`` with recorded errors."""
        rng = random.Random(self.seed)
        dirty = clean.copy()
        attrs = [a for a in clean.schema.names if a not in self.protected]
        if not attrs:
            raise ErrorInjectionError("every attribute is protected")

        coords = [
            (i, a)
            for a in attrs
            for i in range(clean.n_rows)
            if not is_null(clean.cell(i, a))
        ]
        n_target = int(round(self.rate * clean.n_cells))
        n_target = min(n_target, len(coords))
        chosen = rng.sample(coords, n_target)

        errors: list[InjectedError] = []
        # S errors need pairing; collect their coordinates per attribute.
        swap_queue: dict[str, list[int]] = {}

        from repro.dataset.diff import cells_equal

        for idx, (i, a) in enumerate(chosen):
            etype = self.types[idx % len(self.types)]
            old = clean.cell(i, a)
            if etype == TYPO:
                # A typo must be a real error under the evaluation's
                # equality: '039' → '39' is numerically invisible.
                new = inject_typo(old, rng)
                for _ in range(8):
                    if not cells_equal(new, old):
                        break
                    new = inject_typo(old, rng)
                if cells_equal(new, old):
                    continue
                dirty.set_cell(i, a, new)
                errors.append(InjectedError(i, a, TYPO, old, new))
            elif etype == MISSING:
                dirty.set_cell(i, a, None)
                errors.append(InjectedError(i, a, MISSING, old, None))
            elif etype == INCONSISTENCY:
                new = self._inconsistent_value(clean, i, a, rng)
                if new is None:
                    continue
                dirty.set_cell(i, a, new)
                errors.append(InjectedError(i, a, INCONSISTENCY, old, new))
            else:  # SWAP
                swap_queue.setdefault(a, []).append(i)

        errors.extend(self._apply_swaps(clean, dirty, swap_queue, rng))
        return InjectionResult(dirty, clean, errors)

    def _inconsistent_value(
        self, clean: Table, i: int, attr: str, rng: random.Random
    ) -> Cell | None:
        """A valid-looking wrong value: another value of this column, or
        (sometimes) a value borrowed from a different column."""
        old = clean.cell(i, attr)
        if rng.random() < 0.3 and clean.n_cols > 1:
            other_attr = rng.choice(
                [a for a in clean.schema.names if a != attr]
            )
            source = clean.column(other_attr)
        else:
            source = clean.column(attr)
        from repro.dataset.diff import cells_equal

        for _ in range(16):
            v = source[rng.randrange(len(source))]
            if not is_null(v) and not cells_equal(v, old):
                return v
        return None

    def _apply_swaps(
        self,
        clean: Table,
        dirty: Table,
        queue: dict[str, list[int]],
        rng: random.Random,
    ) -> list[InjectedError]:
        errors: list[InjectedError] = []
        if self.swap_cross_domain:
            # Pair cells of *different* attributes within the same row.
            attrs = list(queue)
            for a in attrs:
                others = [b for b in clean.schema.names if b != a and b not in self.protected]
                if not others:
                    continue
                for i in queue[a]:
                    b = rng.choice(others)
                    va, vb = clean.cell(i, a), clean.cell(i, b)
                    if is_null(vb) or _swap_equal(va, vb):
                        continue
                    dirty.set_cell(i, a, vb)
                    dirty.set_cell(i, b, va)
                    errors.append(InjectedError(i, a, SWAP, va, vb))
                    errors.append(InjectedError(i, b, SWAP, vb, va))
            return errors

        from repro.dataset.diff import cells_equal

        for a, rows in queue.items():
            rng.shuffle(rows)
            for j in range(0, len(rows) - 1, 2):
                i1, i2 = rows[j], rows[j + 1]
                v1, v2 = clean.cell(i1, a), clean.cell(i2, a)
                if cells_equal(v1, v2):
                    continue
                dirty.set_cell(i1, a, v2)
                dirty.set_cell(i2, a, v1)
                errors.append(InjectedError(i1, a, SWAP, v1, v2))
                errors.append(InjectedError(i2, a, SWAP, v2, v1))
        return errors
