"""Benchmark registry: one entry per paper dataset (Table 2).

``load_benchmark("hospital")`` returns a fully wired
:class:`BenchmarkInstance` — clean table, dirty table with recorded
errors, the Table 3 UC registry, the HoloClean DCs, the PClean program,
and the ground-truth FDs — everything an experiment driver needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import ModuleType
from typing import Callable, Sequence

from repro.baselines.pclean_model import PCleanModel
from repro.constraints.dc import DenialConstraint
from repro.constraints.fd import FunctionalDependency
from repro.constraints.registry import UCRegistry
from repro.data import beers, facilities, flights, hospital, inpatient, soccer
from repro.data.errors import ErrorInjector, InjectionResult
from repro.dataset.table import Table
from repro.errors import DatasetError


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one benchmark dataset."""

    name: str
    module: ModuleType
    paper_rows: int
    default_rows: int
    noise_rate: float
    error_types: tuple[str, ...]

    def generate_clean(self, n_rows: int | None = None, seed: int = 0) -> Table:
        """The clean ground-truth table."""
        n = n_rows if n_rows is not None else self.default_rows
        return self.module.generate_clean(n, seed=seed or self._default_seed())

    def _default_seed(self) -> int:
        # Each module ships its own default seed via its generator default;
        # use a stable per-dataset offset so datasets differ.
        return sum(ord(c) for c in self.name)

    def constraints(self, table: Table | None = None) -> UCRegistry:
        """The Table 3 UC registry."""
        return self.module.constraints(table)

    def denial_constraints(self) -> list[DenialConstraint]:
        """The HoloClean DC set (Table 2 counts)."""
        return self.module.denial_constraints()

    def key_fds(self) -> list[FunctionalDependency]:
        """Ground-truth FDs of the generator."""
        return self.module.key_fds()

    def pclean_program(self) -> PCleanModel:
        """The hand-written PClean program."""
        return self.module.pclean_program()

    @property
    def protected_attributes(self) -> tuple[str, ...]:
        """Key columns the injector must not corrupt (tuple identity)."""
        return tuple(getattr(self.module, "PROTECTED", ()))

    def user_network(self):
        """The user-adjusted BN of §7.3.2, or None when the auto-learned
        network needs no fixing for this dataset."""
        builder = getattr(self.module, "user_network", None)
        return builder() if builder is not None else None


@dataclass
class BenchmarkInstance:
    """A concrete dirty/clean pair plus every system's prior knowledge."""

    spec: DatasetSpec
    clean: Table
    dirty: Table
    injection: InjectionResult
    constraints: UCRegistry
    seed: int

    @property
    def name(self) -> str:
        """Dataset name."""
        return self.spec.name

    @property
    def error_cells(self) -> set[tuple[int, str]]:
        """Coordinates of injected errors."""
        return self.injection.error_cells

    def denial_constraints(self) -> list[DenialConstraint]:
        return self.spec.denial_constraints()

    def user_network(self):
        return self.spec.user_network()

    def pclean_program(self) -> PCleanModel:
        return self.spec.pclean_program()

    def key_fds(self) -> list[FunctionalDependency]:
        return self.spec.key_fds()


_SPECS = {
    "hospital": DatasetSpec(
        "hospital", hospital, hospital.PAPER_N_ROWS, hospital.PAPER_N_ROWS,
        hospital.NOISE_RATE, hospital.ERROR_TYPES,
    ),
    "flights": DatasetSpec(
        "flights", flights, flights.PAPER_N_ROWS, flights.PAPER_N_ROWS,
        flights.NOISE_RATE, flights.ERROR_TYPES,
    ),
    "soccer": DatasetSpec(
        "soccer", soccer, soccer.PAPER_N_ROWS, soccer.DEFAULT_N_ROWS,
        soccer.NOISE_RATE, soccer.ERROR_TYPES,
    ),
    "beers": DatasetSpec(
        "beers", beers, beers.PAPER_N_ROWS, beers.PAPER_N_ROWS,
        beers.NOISE_RATE, beers.ERROR_TYPES,
    ),
    "inpatient": DatasetSpec(
        "inpatient", inpatient, inpatient.PAPER_N_ROWS, inpatient.PAPER_N_ROWS,
        inpatient.NOISE_RATE, inpatient.ERROR_TYPES,
    ),
    "facilities": DatasetSpec(
        "facilities", facilities, facilities.PAPER_N_ROWS,
        facilities.DEFAULT_N_ROWS, facilities.NOISE_RATE,
        facilities.ERROR_TYPES,
    ),
}

DATASET_NAMES = tuple(_SPECS)


def dataset_spec(name: str) -> DatasetSpec:
    """Registry lookup (raises :class:`DatasetError` for unknown names)."""
    try:
        return _SPECS[name.lower()]
    except KeyError as exc:
        raise DatasetError(
            f"unknown dataset {name!r}; choose from {sorted(_SPECS)}"
        ) from exc


def load_benchmark(
    name: str,
    n_rows: int | None = None,
    noise_rate: float | None = None,
    error_types: Sequence[str] | None = None,
    seed: int = 0,
    swap_cross_domain: bool = False,
) -> BenchmarkInstance:
    """Build a dirty/clean benchmark instance.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    n_rows:
        Row count (defaults to the laptop-scale default of the spec).
    noise_rate:
        Override the Table 2 noise rate (Figure 4(b)–(d) sweeps).
    error_types:
        Override the injected error mix (Table 6 / Figure 4(e)–(f)).
    seed:
        Seed for both generation and injection.
    swap_cross_domain:
        S errors swap across attributes instead of within one.
    """
    spec = dataset_spec(name)
    clean = spec.generate_clean(n_rows, seed=seed + spec._default_seed())
    injector = ErrorInjector(
        rate=noise_rate if noise_rate is not None else spec.noise_rate,
        types=tuple(error_types) if error_types is not None else spec.error_types,
        seed=seed + 1,
        protected=spec.protected_attributes,
        swap_cross_domain=swap_cross_domain,
    )
    injection = injector.inject(clean)
    return BenchmarkInstance(
        spec=spec,
        clean=clean,
        dirty=injection.dirty,
        injection=injection,
        constraints=spec.constraints(injection.dirty),
        seed=seed,
    )


def table2_statistics(n_rows: int | None = None) -> list[dict]:
    """The rows of the paper's Table 2 for our synthetic twins."""
    out = []
    for name in DATASET_NAMES:
        spec = dataset_spec(name)
        inst = load_benchmark(name, n_rows=n_rows)
        out.append(
            {
                "dataset": name,
                "rows": inst.dirty.n_rows,
                "columns": inst.dirty.n_cols,
                "cells": inst.dirty.n_cells,
                "noise_rate": round(inst.injection.noise_rate, 4),
                "error_types": "".join(spec.error_types),
                "n_ucs": inst.constraints.n_constraints,
                "n_dcs": len(spec.denial_constraints()),
                "ppl_lines": spec.pclean_program().n_ppl_lines,
                "labels": "20+20",
            }
        )
    return out
