"""The Inpatient benchmark (synthetic twin of the CMS inpatient data).

4017 rows × 11 attributes, ~10 % noise, all four error types (T, M, I,
S).  Hospital-level FDs (``provider_id → profile``) plus DRG coding FDs
(``drg_code → drg_definition``).
"""

from __future__ import annotations

from repro.baselines.pclean_model import PCleanAttribute, PCleanModel
from repro.constraints.builtin import MaxLength, MinLength, NotNull
from repro.constraints.dc import DenialConstraint
from repro.constraints.fd import FunctionalDependency
from repro.constraints.registry import UCRegistry
from repro.data import synth
from repro.dataset.schema import Schema
from repro.dataset.table import Table

PAPER_N_ROWS = 4017
NOISE_RATE = 0.10
ERROR_TYPES = ("T", "M", "I", "S")

DRG_DEFS = {
    "039": "extracranial procedures",
    "057": "degenerative nervous system disorders",
    "064": "intracranial hemorrhage",
    "065": "stroke with complication",
    "066": "stroke without complication",
    "069": "transient ischemia",
    "074": "cranial peripheral nerve disorders",
    "101": "seizures without complication",
    "149": "dysequilibrium",
    "176": "pulmonary embolism",
    "177": "respiratory infections with complication",
    "178": "respiratory infections",
    "189": "pulmonary edema",
    "190": "chronic obstructive pulmonary disease",
    "191": "copd with complication",
    "192": "copd without complication",
    "193": "simple pneumonia with major complication",
    "194": "simple pneumonia with complication",
    "195": "simple pneumonia",
    "202": "bronchitis and asthma",
}


def schema() -> Schema:
    """The 11-attribute Inpatient schema."""
    return Schema.of(
        "provider_id:categorical",
        "hospital_name:text",
        "address:text",
        "city:categorical",
        "state:categorical",
        "zip_code:categorical",
        "county:categorical",
        "drg_code:categorical",
        "drg_definition:text",
        "total_discharges:categorical",
        "avg_covered_charges:text",
    )


def generate_clean(n_rows: int = PAPER_N_ROWS, seed: int = 19) -> Table:
    """Generate clean Inpatient data: providers × DRG codes."""
    rng = synth.make_rng(seed)
    drg_codes = list(DRG_DEFS)
    n_providers = max(2, n_rows // len(drg_codes))

    providers = []
    for _ in range(n_providers):
        city = synth.pick(rng, synth.CITY_NAMES)
        providers.append(
            {
                "provider_id": synth.numeric_id(rng, 6),
                "hospital_name": f"{city} {synth.pick(rng, ['general hospital', 'medical center', 'health system', 'regional clinic'])}",
                "address": synth.street_address(rng),
                "city": city,
                "state": synth.pick(rng, synth.US_STATES[:12]),
                "zip_code": synth.zip_code(rng),
                "county": synth.pick(rng, synth.COUNTY_NAMES),
            }
        )

    rows = []
    for i in range(n_rows):
        p = providers[i % n_providers]
        code = drg_codes[(i // n_providers) % len(drg_codes)]
        discharges = rng.randrange(11, 500)
        charges = rng.randrange(5_000, 150_000)
        rows.append(
            [
                p["provider_id"], p["hospital_name"], p["address"],
                p["city"], p["state"], p["zip_code"], p["county"],
                code, DRG_DEFS[code], str(discharges), f"${charges}",
            ]
        )
    return Table.from_rows(schema(), rows)


def constraints(table: Table | None = None) -> UCRegistry:
    """Table 3: "N/A" patterns — only length and not-null UCs."""
    reg = UCRegistry()
    for attr in schema().names:
        reg.add(attr, NotNull(), MinLength(1), MaxLength(64))
    return reg


def denial_constraints() -> list[DenialConstraint]:
    """3 DCs per Table 2."""
    return [
        DenialConstraint.from_fd("provider_id", "hospital_name"),
        DenialConstraint.from_fd("zip_code", "state"),
        DenialConstraint.from_fd("drg_code", "drg_definition"),
    ]


def key_fds() -> list[FunctionalDependency]:
    """Ground-truth FDs."""
    return [
        FunctionalDependency(("provider_id",), "hospital_name"),
        FunctionalDependency(("provider_id",), "address"),
        FunctionalDependency(("provider_id",), "city"),
        FunctionalDependency(("zip_code",), "state"),
        FunctionalDependency(("drg_code",), "drg_definition"),
    ]


def pclean_program() -> PCleanModel:
    """A middling program: the record structure is right but the error
    channels are coarse (PClean's mid-tier Table 4 row)."""
    attrs = [
        PCleanAttribute("provider_id", "number", (), 0.05, 0.05),
        PCleanAttribute("hospital_name", "string", ("provider_id",), 0.15, 0.08),
        PCleanAttribute("address", "string", ("provider_id",), 0.15, 0.08),
        PCleanAttribute("city", "categorical", ("provider_id",), 0.15, 0.08),
        PCleanAttribute("state", "categorical", ("zip_code",), 0.15, 0.08),
        PCleanAttribute("zip_code", "number", ("provider_id",), 0.15, 0.08),
        PCleanAttribute("county", "categorical", (), 0.15, 0.08),
        PCleanAttribute("drg_code", "categorical", (), 0.05, 0.05),
        PCleanAttribute("drg_definition", "string", ("drg_code",), 0.15, 0.08),
        PCleanAttribute("total_discharges", "categorical", (), 0.20, 0.08),
        PCleanAttribute("avg_covered_charges", "categorical", (), 0.20, 0.08),
    ]
    return PCleanModel(
        "inpatient",
        attrs,
        classes=[
            ("provider_id", "hospital_name", "address", "city", "state",
             "zip_code", "county"),
            ("drg_code", "drg_definition", "total_discharges",
             "avg_covered_charges"),
        ],
    )
