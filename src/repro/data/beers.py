"""The Beers benchmark (synthetic twin).

2410 rows × 11 attributes, ~13 % noise; the one benchmark with real
numeric attributes (``ounces``, ``abv``, ``ibu``).  Brewery-level FDs:
``brewery_id → brewery_name / city / state``.
"""

from __future__ import annotations

from repro.baselines.pclean_model import PCleanAttribute, PCleanModel
from repro.constraints.builtin import (
    MaxLength,
    MaxValue,
    MinLength,
    MinValue,
    NotNull,
    Pattern,
)
from repro.constraints.dc import DenialConstraint
from repro.constraints.fd import FunctionalDependency
from repro.constraints.registry import UCRegistry
from repro.data import synth
from repro.dataset.schema import Schema
from repro.dataset.table import Table

PAPER_N_ROWS = 2410
NOISE_RATE = 0.13
ERROR_TYPES = ("T", "M", "I")
#: key columns used for tuple identity in the original benchmark — the
#: published dirty version does not corrupt them either.
PROTECTED = ("index", "beer_id")

STYLES = [
    "american ipa", "american pale ale", "american amber", "american stout",
    "witbier", "hefeweizen", "pilsner", "porter", "saison", "kolsch",
    "brown ale", "cream ale", "fruit beer", "oatmeal stout", "double ipa",
]

BEER_WORDS = [
    "hop", "river", "moon", "golden", "iron", "wild", "summer", "winter",
    "copper", "lazy", "howling", "crooked", "lucky", "burning", "silent",
]

BEER_NOUNS = [
    "trail", "wolf", "anchor", "harvest", "session", "peak", "canyon",
    "meadow", "railway", "lantern", "compass", "barrel", "creek", "ridge",
]

OUNCES = ["12.0", "16.0", "19.2", "24.0", "32.0"]


def schema() -> Schema:
    """The 11-attribute Beers schema."""
    return Schema.of(
        "index:integer",
        "beer_id:categorical",
        "beer_name:text",
        "style:categorical",
        "ounces:categorical",
        "abv:categorical",
        "ibu:categorical",
        "brewery_id:categorical",
        "brewery_name:text",
        "city:categorical",
        "state:categorical",
    )


def generate_clean(n_rows: int = PAPER_N_ROWS, seed: int = 17) -> Table:
    """Generate clean Beers data: beers nested in breweries."""
    rng = synth.make_rng(seed)
    n_breweries = max(2, n_rows // 5)

    # Brewery names must be unique (they are in the real data): a name
    # shared by two brewery ids would make brewery_id genuinely
    # ambiguous given its own profile.
    breweries = []
    used_names: set[str] = set()
    for b in range(n_breweries):
        city = synth.pick(rng, synth.CITY_NAMES)
        suffix = synth.pick(rng, ["brewing co", "beer works", "ale house", "brewery"])
        name = f"{city} {suffix}"
        while name in used_names:
            name = f"{city} {synth.pick(rng, BEER_WORDS)} {suffix}"
        used_names.add(name)
        breweries.append(
            {
                "brewery_id": str(b),
                "brewery_name": name,
                "city": city,
                "state": synth.pick(rng, synth.US_STATES),
            }
        )

    # Style constrains strength and bitterness, as in the real data:
    # each style draws abv/ibu from a small style-specific grid, giving
    # the cleaner genuine relational signal between the three columns.
    style_abv = {
        s: [f"{0.04 + 0.005 * ((h + k) % 8):.3f}" for k in range(3)]
        for h, s in enumerate(STYLES)
    }
    style_ibu = {
        s: [str(15 + 10 * ((h + k) % 9)) for k in range(3)]
        for h, s in enumerate(STYLES)
    }

    # Beer names repeat across rows (cans/bottles of the same beer, and
    # homonymous beers across breweries, as in the real data) — a name
    # pool of ~n/3 gives each name ≈ 3 occurrences.
    name_pool = [
        f"{synth.pick(rng, BEER_WORDS)} {synth.pick(rng, BEER_NOUNS)}"
        for _ in range(max(2, n_rows // 3))
    ]

    rows = []
    for i in range(n_rows):
        br = breweries[rng.randrange(n_breweries)]
        style = synth.pick(rng, STYLES)
        rows.append(
            [
                i,
                str(1000 + i),
                synth.pick(rng, name_pool),
                style,
                synth.pick(rng, OUNCES),
                synth.pick(rng, style_abv[style]),
                synth.pick(rng, style_ibu[style]),
                br["brewery_id"],
                br["brewery_name"],
                br["city"],
                br["state"],
            ]
        )
    return Table.from_rows(schema(), rows)


def constraints(table: Table | None = None) -> UCRegistry:
    """Table 3 UCs: the decimal pattern on ounces/abv plus bounds."""
    reg = UCRegistry()
    for attr in schema().names:
        reg.add(attr, NotNull(), MinLength(1), MaxLength(48))
    decimal = Pattern(r"\d+\.\d+|\d+")
    reg.add("ounces", decimal, MinValue(1.0), MaxValue(64.0))
    reg.add("abv", decimal, MinValue(0.0), MaxValue(1.0))
    reg.add("ibu", Pattern(r"\d+"))
    return reg


def denial_constraints() -> list[DenialConstraint]:
    """6 DCs: brewery and beer FDs."""
    return [
        DenialConstraint.from_fd("brewery_id", "brewery_name"),
        DenialConstraint.from_fd("brewery_id", "city"),
        DenialConstraint.from_fd("brewery_id", "state"),
        DenialConstraint.from_fd("beer_id", "beer_name"),
        DenialConstraint.from_fd("beer_id", "style"),
        DenialConstraint.from_fd("beer_id", "ounces"),
    ]


def key_fds() -> list[FunctionalDependency]:
    """Ground-truth FDs."""
    return [
        FunctionalDependency(("brewery_id",), "brewery_name"),
        FunctionalDependency(("brewery_id",), "city"),
        FunctionalDependency(("brewery_id",), "state"),
    ]


def pclean_program() -> PCleanModel:
    """A mediocre program — numeric attributes are hard to express as
    the categorical priors PClean's PPL favours (its near-zero Table 4
    row on Beers)."""
    attrs = [
        PCleanAttribute("index", "categorical", (), 0.0, 0.0),
        PCleanAttribute("beer_id", "categorical", (), 0.05, 0.02),
        PCleanAttribute("beer_name", "string", (), 0.30, 0.10),
        PCleanAttribute("style", "categorical", (), 0.30, 0.10),
        PCleanAttribute("ounces", "categorical", (), 0.30, 0.10),
        PCleanAttribute("abv", "categorical", (), 0.30, 0.10),
        PCleanAttribute("ibu", "categorical", (), 0.30, 0.10),
        PCleanAttribute("brewery_id", "categorical", (), 0.05, 0.02),
        PCleanAttribute("brewery_name", "string", (), 0.30, 0.10),
        PCleanAttribute("city", "categorical", (), 0.30, 0.10),
        PCleanAttribute("state", "categorical", (), 0.30, 0.10),
    ]
    return PCleanModel("beers", attrs, classes=[tuple(schema().names)])
