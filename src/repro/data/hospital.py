"""The Hospital benchmark (synthetic twin).

Mirrors the HoloClean/Raha Hospital dataset: 1000 rows × 15 attributes,
~5 % noise, strong duplication (each hospital appears once per quality
measure) and rich FD structure (ProviderNumber → hospital profile,
ZipCode → City/State, MeasureCode → MeasureName/Condition,
(State, MeasureCode) → StateAvg).
"""

from __future__ import annotations

from repro.baselines.pclean_model import PCleanAttribute, PCleanModel
from repro.constraints.builtin import MaxLength, MinLength, NotNull, Pattern
from repro.constraints.dc import DenialConstraint, Pred
from repro.constraints.fd import FunctionalDependency
from repro.constraints.registry import UCRegistry
from repro.data import synth
from repro.dataset.schema import Schema
from repro.dataset.table import Table

PAPER_N_ROWS = 1000
NOISE_RATE = 0.05
ERROR_TYPES = ("T", "M", "I")

CONDITIONS = [
    "heart attack", "heart failure", "pneumonia", "surgical infection",
    "children asthma",
]

MEASURES = {
    "AMI-1": ("aspirin at arrival", "heart attack"),
    "AMI-2": ("aspirin at discharge", "heart attack"),
    "AMI-3": ("ace inhibitor", "heart attack"),
    "AMI-4": ("adult smoking cessation", "heart attack"),
    "HF-1": ("discharge instructions", "heart failure"),
    "HF-2": ("lv function assessment", "heart failure"),
    "HF-3": ("ace inhibitor for lvsd", "heart failure"),
    "PN-1": ("oxygenation assessment", "pneumonia"),
    "PN-2": ("pneumococcal vaccination", "pneumonia"),
    "PN-3": ("blood culture timing", "pneumonia"),
    "SCIP-1": ("prophylactic antibiotic", "surgical infection"),
    "SCIP-2": ("antibiotic selection", "surgical infection"),
    "SCIP-3": ("antibiotic discontinued", "surgical infection"),
    "CAC-1": ("relievers for asthma", "children asthma"),
    "CAC-2": ("systemic corticosteroids", "children asthma"),
    "CAC-3": ("home management plan", "children asthma"),
    "HF-4": ("smoking cessation advice", "heart failure"),
    "PN-4": ("smoking cessation counsel", "pneumonia"),
    "AMI-5": ("beta blocker at discharge", "heart attack"),
    "SCIP-4": ("cardiac surgery glucose", "surgical infection"),
}

HOSPITAL_TYPES = ["acute care", "critical access", "childrens"]
OWNERS = [
    "government state", "government federal", "proprietary",
    "voluntary non-profit private", "voluntary non-profit church",
]


def schema() -> Schema:
    """The 15-attribute Hospital schema."""
    return Schema.of(
        "ProviderNumber:categorical",
        "HospitalName:text",
        "Address:text",
        "City:categorical",
        "State:categorical",
        "ZipCode:categorical",
        "CountyName:categorical",
        "PhoneNumber:text",
        "HospitalType:categorical",
        "HospitalOwner:categorical",
        "EmergencyService:categorical",
        "Condition:categorical",
        "MeasureCode:categorical",
        "MeasureName:text",
        "StateAvg:text",
    )


def generate_clean(n_rows: int = PAPER_N_ROWS, seed: int = 7) -> Table:
    """Generate the clean Hospital table: hospitals × measures."""
    rng = synth.make_rng(seed)
    n_hospitals = max(2, n_rows // len(MEASURES))

    states = [synth.pick(rng, synth.US_STATES) for _ in range(6)]
    hospitals = []
    for _ in range(n_hospitals):
        city = synth.pick(rng, synth.CITY_NAMES)
        state = synth.pick(rng, states)
        hospitals.append(
            {
                "ProviderNumber": synth.numeric_id(rng, 5),
                "HospitalName": f"{city} {synth.pick(rng, ['medical center', 'regional hospital', 'community hospital', 'memorial hospital'])}",
                "Address": synth.street_address(rng),
                "City": city,
                "State": state,
                "ZipCode": synth.zip_code(rng),
                "CountyName": synth.pick(rng, synth.COUNTY_NAMES),
                "PhoneNumber": synth.phone_number(rng),
                "HospitalType": synth.pick(rng, HOSPITAL_TYPES),
                "HospitalOwner": synth.pick(rng, OWNERS),
                "EmergencyService": rng.choice(["yes", "no"]),
            }
        )

    # (State, MeasureCode) -> StateAvg: a fixed percentage string.
    measure_codes = list(MEASURES)
    state_avg = {
        (s, mc): f"{s}_{mc}_{rng.randrange(30, 100)}%"
        for s in states
        for mc in measure_codes
    }

    rows = []
    for i in range(n_rows):
        h = hospitals[i % n_hospitals]
        mc = measure_codes[(i // n_hospitals) % len(measure_codes)]
        name, condition = MEASURES[mc]
        rows.append(
            [
                h["ProviderNumber"], h["HospitalName"], h["Address"],
                h["City"], h["State"], h["ZipCode"], h["CountyName"],
                h["PhoneNumber"], h["HospitalType"], h["HospitalOwner"],
                h["EmergencyService"], condition, mc, name,
                state_avg[(h["State"], mc)],
            ]
        )
    return Table.from_rows(schema(), rows)


def constraints(table: Table | None = None) -> UCRegistry:
    """Table 3 UCs: digit patterns + length/null constraints."""
    reg = UCRegistry()
    for attr in schema().names:
        reg.add(attr, NotNull(), MinLength(1), MaxLength(64))
    reg.add("ProviderNumber", Pattern(r"[1-9][0-9]{4}"))
    reg.add("ZipCode", Pattern(r"[1-9][0-9]{4}"))
    reg.add("PhoneNumber", Pattern(r"[1-9][0-9]{9}"))
    return reg


def denial_constraints() -> list[DenialConstraint]:
    """The 13 DCs the HoloClean baseline consumes (FD encodings)."""
    fd_pairs = [
        ("ZipCode", "City"), ("ZipCode", "State"),
        ("ProviderNumber", "HospitalName"), ("ProviderNumber", "PhoneNumber"),
        ("ProviderNumber", "Address"), ("ProviderNumber", "City"),
        ("ProviderNumber", "State"), ("ProviderNumber", "ZipCode"),
        ("ProviderNumber", "CountyName"), ("MeasureCode", "MeasureName"),
        ("MeasureCode", "Condition"), ("PhoneNumber", "ProviderNumber"),
    ]
    dcs = [DenialConstraint.from_fd(a, b) for a, b in fd_pairs]
    dcs.append(
        DenialConstraint(
            (
                Pred(Pred.t1("State"), "=", Pred.t2("State")),
                Pred(Pred.t1("MeasureCode"), "=", Pred.t2("MeasureCode")),
                Pred(Pred.t1("StateAvg"), "!=", Pred.t2("StateAvg")),
            ),
            name="FD(State,MeasureCode->StateAvg)",
        )
    )
    return dcs


def key_fds() -> list[FunctionalDependency]:
    """Ground-truth FDs (validation + the Garf baseline's target rules)."""
    return [
        FunctionalDependency(("ZipCode",), "City"),
        FunctionalDependency(("ZipCode",), "State"),
        FunctionalDependency(("ProviderNumber",), "HospitalName"),
        FunctionalDependency(("MeasureCode",), "MeasureName"),
        FunctionalDependency(("MeasureCode",), "Condition"),
        FunctionalDependency(("State", "MeasureCode"), "StateAvg"),
    ]


def pclean_program() -> PCleanModel:
    """A carefully authored program — Hospital is PClean-friendly."""
    attrs = [
        PCleanAttribute("ProviderNumber", "number", (), 0.03, 0.02),
        PCleanAttribute("HospitalName", "string", ("ProviderNumber",), 0.05, 0.02),
        PCleanAttribute("Address", "string", ("ProviderNumber",), 0.05, 0.02),
        PCleanAttribute("City", "string", ("ZipCode",), 0.05, 0.02),
        PCleanAttribute("State", "categorical", ("ZipCode",), 0.02, 0.02),
        PCleanAttribute("ZipCode", "number", ("ProviderNumber",), 0.03, 0.02),
        PCleanAttribute("CountyName", "string", ("ZipCode",), 0.05, 0.02),
        PCleanAttribute("PhoneNumber", "number", ("ProviderNumber",), 0.03, 0.02),
        PCleanAttribute("HospitalType", "categorical", (), 0.02, 0.02),
        PCleanAttribute("HospitalOwner", "categorical", (), 0.02, 0.02),
        PCleanAttribute("EmergencyService", "categorical", (), 0.02, 0.02),
        PCleanAttribute("Condition", "categorical", ("MeasureCode",), 0.02, 0.02),
        PCleanAttribute("MeasureCode", "categorical", (), 0.02, 0.02),
        PCleanAttribute("MeasureName", "string", ("MeasureCode",), 0.05, 0.02),
        PCleanAttribute("StateAvg", "string", ("State", "MeasureCode"), 0.05, 0.02),
    ]
    return PCleanModel(
        "hospital",
        attrs,
        classes=[
            ("ProviderNumber", "HospitalName", "Address", "PhoneNumber"),
            ("City", "State", "ZipCode", "CountyName"),
            ("HospitalType", "HospitalOwner", "EmergencyService"),
            ("Condition", "MeasureCode", "MeasureName", "StateAvg"),
        ],
    )
