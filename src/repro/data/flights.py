"""The Flights benchmark (synthetic twin).

2376 rows × 6 attributes, ~30 % noise (the dirtiest benchmark), only
typos and missing values.  Each flight's times are recorded by several
websites (``src``), so the ground truth has heavy duplication:
``flight → (sched_dep, act_dep, sched_arr, act_arr)``.  Times follow the
Table 3 pattern ``h:mm a.m. / p.m.``.
"""

from __future__ import annotations

from repro.baselines.pclean_model import PCleanAttribute, PCleanModel
from repro.constraints.builtin import MaxLength, MinLength, NotNull, Pattern
from repro.constraints.dc import DenialConstraint
from repro.constraints.fd import FunctionalDependency
from repro.constraints.registry import UCRegistry
from repro.data import synth
from repro.dataset.schema import Schema
from repro.dataset.table import Table

PAPER_N_ROWS = 2376
NOISE_RATE = 0.30
ERROR_TYPES = ("T", "M")
#: identity columns: the real dirty Flights data disagrees across
#: websites on the *recorded times*; the source and flight number are
#: the join keys aligning records with ground truth and stay clean.
PROTECTED = ("src", "flight")

SOURCES = ["aa", "flightview", "flightaware", "orbitz"]
CARRIERS = ["AA", "UA", "DL", "WN", "B6", "AS"]

TIME_ATTRS = (
    "sched_dep_time", "act_dep_time", "sched_arr_time", "act_arr_time"
)

#: The Table 3 regex for all four time attributes.
TIME_PATTERN = r"(1[0-2]|[1-9]):[0-5][0-9] [ap]\.m\."


def schema() -> Schema:
    """The 6-attribute Flights schema."""
    return Schema.of(
        "src:categorical",
        "flight:categorical",
        "sched_dep_time:text",
        "act_dep_time:text",
        "sched_arr_time:text",
        "act_arr_time:text",
    )


def generate_clean(n_rows: int = PAPER_N_ROWS, seed: int = 11) -> Table:
    """Generate clean Flights data: flights × recording sources."""
    rng = synth.make_rng(seed)
    n_flights = max(2, n_rows // len(SOURCES))

    flights = []
    for _ in range(n_flights):
        number = f"{synth.pick(rng, CARRIERS)}-{rng.randrange(100, 9999)}"
        flights.append(
            {
                "flight": number,
                "sched_dep_time": synth.clock_time(rng),
                "act_dep_time": synth.clock_time(rng),
                "sched_arr_time": synth.clock_time(rng),
                "act_arr_time": synth.clock_time(rng),
            }
        )

    rows = []
    for i in range(n_rows):
        f = flights[i % n_flights]
        src = SOURCES[(i // n_flights) % len(SOURCES)]
        rows.append(
            [
                src, f["flight"], f["sched_dep_time"], f["act_dep_time"],
                f["sched_arr_time"], f["act_arr_time"],
            ]
        )
    return Table.from_rows(schema(), rows)


def constraints(table: Table | None = None) -> UCRegistry:
    """Table 3 UCs: the clock-time pattern on all four time attributes."""
    reg = UCRegistry()
    for attr in schema().names:
        reg.add(attr, NotNull(), MinLength(1), MaxLength(32))
    for attr in TIME_ATTRS:
        reg.add(attr, Pattern(TIME_PATTERN))
    return reg


def denial_constraints() -> list[DenialConstraint]:
    """4 DCs: flight determines every recorded time."""
    return [DenialConstraint.from_fd("flight", t) for t in TIME_ATTRS]


def key_fds() -> list[FunctionalDependency]:
    """Ground-truth FDs."""
    return [FunctionalDependency(("flight",), t) for t in TIME_ATTRS]


def user_network():
    """The §7.3.2 user adjustment: the auto-learned Flights network is
    wrong (precision 0.217 / recall 0.374 in the paper) and users fix it
    in under five minutes to the star ``flight → every recorded time``.
    Table 4's Flights numbers are measured *after* this adjustment."""
    from repro.bayesnet.dag import DAG

    dag = DAG(schema().names)
    for t in TIME_ATTRS:
        dag.add_edge("flight", t, 1.0)
    return dag


def pclean_program() -> PCleanModel:
    """The expertly specified program — PClean's best case (Table 4)."""
    attrs = [
        PCleanAttribute("src", "categorical", (), 0.01, 0.0),
        PCleanAttribute("flight", "string", (), 0.02, 0.01),
    ]
    for t in TIME_ATTRS:
        attrs.append(
            PCleanAttribute(t, "string", ("flight",), 0.12, 0.1, max_typo_distance=2)
        )
    return PCleanModel(
        "flights",
        attrs,
        classes=[("src",), ("flight", *TIME_ATTRS)],
    )
