"""Shared synthesis helpers for the benchmark dataset generators.

Every generator composes entity pools from these word lists with a
seeded :class:`random.Random`, so the clean tables are deterministic per
seed, carry realistic surface formats (the regex UCs of Table 3 must
actually hold), and embed the functional dependencies the cleaning
algorithms exploit.
"""

from __future__ import annotations

import random
from typing import Sequence

FIRST_NAMES = [
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "daniel",
    "nancy", "matthew", "lisa", "anthony", "betty", "mark", "margaret",
    "donald", "sandra", "steven", "ashley", "paul", "kimberly", "andrew",
    "emily", "joshua", "donna", "kenneth", "michelle",
]

LAST_NAMES = [
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
    "wright", "scott", "torres", "nguyen", "hill", "flores",
]

STREET_NAMES = [
    "hickory", "northwood", "maple", "oak", "cedar", "pine", "elm",
    "walnut", "chestnut", "sycamore", "willow", "magnolia", "juniper",
    "laurel", "dogwood", "poplar", "spruce", "birch", "aspen", "redwood",
]

STREET_SUFFIXES = ["st", "ave", "dr", "rd", "ln", "blvd", "way", "ct"]

CITY_NAMES = [
    "sylacauga", "centre", "birmingham", "montgomery", "huntsville",
    "fairhope", "gadsden", "dothan", "florence", "auburn", "decatur",
    "madison", "prattville", "athens", "pelham", "oxford", "albertville",
    "selma", "mobile", "hoover", "troy", "cullman", "millbrook", "daphne",
    "opelika", "enterprise", "anniston", "tuscaloosa", "vestavia", "bessemer",
]

US_STATES = [
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID",
    "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS",
    "MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY", "NC", "ND", "OH", "OK",
    "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV",
    "WI", "WY",
]

COUNTY_NAMES = [
    "talladega", "cherokee", "jefferson", "madison", "mobile", "shelby",
    "baldwin", "tuscaloosa", "montgomery", "lee", "morgan", "calhoun",
    "etowah", "houston", "marshall", "lauderdale", "limestone", "cullman",
    "st clair", "elmore",
]


def make_rng(seed: int) -> random.Random:
    """A seeded Random (single construction point for determinism)."""
    return random.Random(seed)


def pick(rng: random.Random, pool: Sequence[str]) -> str:
    """Uniform choice from a pool."""
    return pool[rng.randrange(len(pool))]


def person_name(rng: random.Random) -> str:
    """e.g. ``Johnny.R``-style short name: capitalised first + initial."""
    first = pick(rng, FIRST_NAMES).capitalize()
    initial = pick(rng, LAST_NAMES)[0].upper()
    return f"{first}.{initial}"


def full_name(rng: random.Random) -> tuple[str, str]:
    """(first, last) lowercase names."""
    return pick(rng, FIRST_NAMES), pick(rng, LAST_NAMES)


def street_address(rng: random.Random) -> str:
    """e.g. ``315 w hickory st``."""
    number = rng.randrange(100, 999)
    direction = rng.choice(["", "n ", "s ", "e ", "w "])
    return f"{number} {direction}{pick(rng, STREET_NAMES)} {pick(rng, STREET_SUFFIXES)}"


def zip_code(rng: random.Random) -> str:
    """Five digits, leading digit non-zero (matches the Table 3 regex)."""
    return str(rng.randrange(10000, 99999))


def phone_number(rng: random.Random) -> str:
    """Ten digits, leading digit non-zero."""
    return str(rng.randrange(1_000_000_000, 9_999_999_999))


def clock_time(rng: random.Random) -> str:
    """The Flights time format of Table 3: ``h:mm a.m.`` / ``hh:mm p.m.``."""
    hour = rng.randrange(1, 13)
    minute = rng.randrange(0, 60)
    meridiem = rng.choice(["a.m.", "p.m."])
    return f"{hour}:{minute:02d} {meridiem}"


def code(rng: random.Random, prefix: str, digits: int) -> str:
    """An identifier like ``AMI-2`` / ``PN-35``: prefix + numeric part."""
    return f"{prefix}-{rng.randrange(10 ** (digits - 1), 10 ** digits)}"


def numeric_id(rng: random.Random, digits: int) -> str:
    """A fixed-width numeric identifier with non-zero leading digit."""
    return str(rng.randrange(10 ** (digits - 1), 10 ** digits))
