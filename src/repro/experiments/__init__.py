"""Experiment drivers — one module per paper table/figure.

==================  =======================================
Module              Paper artefact
==================  =======================================
``table2``          Table 2 (dataset statistics)
``table4``          Table 4 (P/R/F1, all methods × datasets)
``table5``          Table 5 (sampled Soccer)
``table6``          Table 6 (recall per error type)
``table7``          Table 7 (user + execution time)
``param_sweeps``    Tables 8–10 (λ, β, τ sweeps)
``figure4``         Figure 4 (error analysis panels)
``figure5``         Figure 5 (UC ablation)
``interaction``     §7.3.2 (network manipulation impact)
``ablations``       DESIGN.md design-choice ablations
``scaling``         Table 7 shape (time vs rows per variant)
==================  =======================================
"""

from repro.experiments import (  # noqa: F401
    ablations,
    figure4,
    figure5,
    interaction,
    param_sweeps,
    scaling,
    table2,
    table4,
    table5,
    table6,
    table7,
)

__all__ = [
    "ablations",
    "scaling",
    "figure4",
    "figure5",
    "interaction",
    "param_sweeps",
    "table2",
    "table4",
    "table5",
    "table6",
    "table7",
]
