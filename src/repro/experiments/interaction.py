"""Experiment driver: §7.3.2 — impact of network manipulation.

The paper reports: on Flights the auto-learned network is wrong
(precision 0.217 / recall 0.374); after a <5-minute user adjustment the
numbers jump to 0.852 / 0.816.  On Hospital the user adds
``State → StateAvg``-style edges with (almost) no effect, and on Soccer
nothing changes.  This driver measures the before/after pair per
dataset using the user networks the benchmark specs ship.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.core.interaction import NetworkEditSession
from repro.data.benchmark import load_benchmark
from repro.evaluation.metrics import evaluate_repairs
from repro.evaluation.reporting import render_table

DEFAULT_DATASETS = ("hospital", "flights", "soccer")
DEFAULT_SIZES = {"hospital": 1000, "flights": 1000, "soccer": 2000}


def run(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    sizes: dict | None = None,
    seed: int = 0,
) -> list[dict]:
    """Before/after cleaning quality around the user's network edit."""
    sizes = dict(DEFAULT_SIZES, **(sizes or {}))
    rows = []
    for name in datasets:
        inst = load_benchmark(name, n_rows=sizes.get(name), seed=seed)
        for label, dag in (("auto", None), ("adjusted", inst.user_network())):
            if label == "adjusted" and dag is None:
                # No user edit exists for this dataset: the auto network
                # is the adjusted network (the paper's "no change" case).
                rows.append({**rows[-1], "network": "adjusted (no edit)"})
                continue
            engine = BClean(BCleanConfig.pi(), inst.constraints)
            engine.fit(inst.dirty, dag=dag)
            result = engine.clean()
            q = evaluate_repairs(
                inst.dirty, result.cleaned, inst.clean, inst.error_cells
            )
            rows.append(
                {
                    "dataset": name,
                    "network": label,
                    "precision": round(q.precision, 3),
                    "recall": round(q.recall, 3),
                    "f1": round(q.f1, 3),
                    "n_edges": engine.dag.n_edges,
                }
            )
    return rows


def demo_edit_session(n_rows: int = 500, seed: int = 0) -> dict:
    """A scripted edit session on Hospital (exercise the full API):
    add an edge, remove one, merge two nodes, commit, re-clean."""
    inst = load_benchmark("hospital", n_rows=n_rows, seed=seed)
    engine = BClean(BCleanConfig.pi(), inst.constraints)
    engine.fit(inst.dirty)
    before_edges = engine.dag.n_edges

    session = NetworkEditSession(engine)
    if not session.dag.has_edge("State", "StateAvg"):
        session.add_edge("State", "StateAvg")
    removable = session.edges()
    log = session.commit()

    result = engine.clean()
    quality = evaluate_repairs(
        inst.dirty, result.cleaned, inst.clean, inst.error_cells
    )
    return {
        "edges_before": before_edges,
        "edges_after": engine.dag.n_edges,
        "edits": len(log.added_edges) + len(log.removed_edges),
        "touched_nodes": sorted(log.touched_nodes),
        "f1_after": round(quality.f1, 3),
        "n_staged_edges": len(removable),
    }


def render(rows: list[dict] | None = None) -> str:
    """Text rendering of the before/after table."""
    return render_table(
        rows or run(), title="Sec. 7.3.2: network manipulation impact"
    )


if __name__ == "__main__":
    print(render())
    print(demo_edit_session())
