"""Experiment driver: Figure 5 — impact of incomplete user constraints.

Removes one UC family at a time (Max / Min / Nul / Pat) and all of them
(All), comparing precision and recall against the complete registry
(Com) on Hospital, Flights, and Soccer.  The paper's finding to
reproduce: Pat (the regex patterns) is by far the most influential
family; the others barely matter.
"""

from __future__ import annotations

from typing import Sequence

from repro.constraints.registry import FAMILIES
from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.data.benchmark import load_benchmark
from repro.evaluation.metrics import evaluate_repairs
from repro.evaluation.reporting import render_table

#: ablation configurations: label → families removed
CONFIGURATIONS: dict[str, tuple[str, ...]] = {
    "Com": (),
    "Max": ("max",),
    "Min": ("min",),
    "Nul": ("null",),
    "Pat": ("pattern",),
    "All": FAMILIES,
}

DEFAULT_DATASETS = ("hospital", "flights", "soccer")
DEFAULT_SIZES = {"hospital": 1000, "flights": 1000, "soccer": 2000}


def run(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    sizes: dict | None = None,
    seed: int = 0,
) -> list[dict]:
    """Precision/recall per dataset per UC configuration."""
    sizes = dict(DEFAULT_SIZES, **(sizes or {}))
    rows = []
    for name in datasets:
        inst = load_benchmark(name, n_rows=sizes.get(name), seed=seed)
        for label, removed in CONFIGURATIONS.items():
            registry = inst.constraints.without_families(removed)
            engine = BClean(BCleanConfig.pi(), registry)
            engine.fit(inst.dirty, dag=inst.user_network())
            result = engine.clean()
            quality = evaluate_repairs(
                inst.dirty, result.cleaned, inst.clean, inst.error_cells
            )
            rows.append(
                {
                    "dataset": name,
                    "ucs": label,
                    "precision": round(quality.precision, 3),
                    "recall": round(quality.recall, 3),
                }
            )
    return rows


def render(rows: list[dict] | None = None) -> str:
    """Text rendering of both panels."""
    return render_table(
        rows or run(), title="Figure 5: effect of incomplete UCs (P and R)"
    )


if __name__ == "__main__":
    print(render())
