"""Experiment driver: Figure 4 — error analysis.

- (a) distribution of injected error types on Soccer / Inpatient /
  Facilities,
- (b)–(d) F1 versus error ratio (10–70 %) on Flights / Inpatient /
  Facilities for BClean, BCleanPI, Raha+Baran, HoloClean,
- (e)–(f) recall under swapping-value errors (same- vs different-domain
  swaps) on Inpatient and Facilities for five systems.
"""

from __future__ import annotations

from typing import Sequence

from repro.data.benchmark import load_benchmark
from repro.evaluation.reporting import render_table
from repro.evaluation.runner import MethodReport, run_system
from repro.evaluation.systems import (
    BCleanSystem,
    HoloCleanSystem,
    PCleanSystem,
    RahaBaranSystem,
)

ERROR_RATES = (0.10, 0.30, 0.50, 0.70)
SWEEP_DATASETS = ("flights", "inpatient", "facilities")
SWEEP_SIZES = {"flights": 1000, "inpatient": 1200, "facilities": 1200}
SWAP_DATASETS = ("inpatient", "facilities")
SWAP_RATES = {"inpatient": 0.10, "facilities": 0.05}


def error_distribution(
    datasets: Sequence[str] = ("soccer", "inpatient", "facilities"),
    sizes: dict | None = None,
    seed: int = 0,
) -> list[dict]:
    """Figure 4(a): counts of injected T/M/I(/S) per dataset."""
    sizes = dict({"soccer": 3000, "inpatient": 2000, "facilities": 2000},
                 **(sizes or {}))
    rows = []
    for name in datasets:
        inst = load_benchmark(name, n_rows=sizes.get(name), seed=seed)
        counts = inst.injection.counts_by_type()
        rows.append({"dataset": name, **{t: counts.get(t, 0) for t in "TMIS"}})
    return rows


def f1_vs_error_rate(
    datasets: Sequence[str] = SWEEP_DATASETS,
    rates: Sequence[float] = ERROR_RATES,
    sizes: dict | None = None,
    seed: int = 0,
) -> list[dict]:
    """Figure 4(b)-(d): F1 of four systems as the error ratio grows."""
    sizes = dict(SWEEP_SIZES, **(sizes or {}))
    systems = [
        BCleanSystem.basic(),
        BCleanSystem.pi(),
        RahaBaranSystem(),
        HoloCleanSystem(),
    ]
    rows = []
    for name in datasets:
        for rate in rates:
            inst = load_benchmark(
                name, n_rows=sizes.get(name), noise_rate=rate, seed=seed
            )
            for system in systems:
                report = run_system(system, inst)
                rows.append(
                    {
                        "dataset": name,
                        "error_rate": rate,
                        "system": report.system,
                        "f1": "-" if report.failed else round(report.quality.f1, 3),
                    }
                )
    return rows


def swap_error_recall(
    datasets: Sequence[str] = SWAP_DATASETS,
    sizes: dict | None = None,
    seed: int = 0,
) -> list[dict]:
    """Figure 4(e)-(f): recall under same- vs different-domain swaps."""
    sizes = dict({"inpatient": 1200, "facilities": 1200}, **(sizes or {}))
    systems = [
        BCleanSystem.basic(),
        BCleanSystem.pi(),
        PCleanSystem(),
        HoloCleanSystem(),
        RahaBaranSystem(),
    ]
    rows = []
    for name in datasets:
        for cross, label in ((False, "same"), (True, "different")):
            inst = load_benchmark(
                name,
                n_rows=sizes.get(name),
                noise_rate=SWAP_RATES[name],
                error_types=("S",),
                swap_cross_domain=cross,
                seed=seed,
            )
            for system in systems:
                report = run_system(system, inst)
                rows.append(
                    {
                        "dataset": name,
                        "swap_domain": label,
                        "system": report.system,
                        "recall": "-" if report.failed else round(report.quality.recall, 3),
                    }
                )
    return rows


def run(seed: int = 0) -> dict[str, list[dict]]:
    """All three panels."""
    return {
        "fig4a_distribution": error_distribution(seed=seed),
        "fig4bcd_error_rate": f1_vs_error_rate(seed=seed),
        "fig4ef_swaps": swap_error_recall(seed=seed),
    }


def render(results: dict[str, list[dict]] | None = None) -> str:
    """All Figure 4 panels as text tables."""
    results = results or run()
    return "\n\n".join(
        [
            render_table(results["fig4a_distribution"], title="Figure 4(a): error distributions"),
            render_table(results["fig4bcd_error_rate"], title="Figure 4(b-d): F1 vs error rate"),
            render_table(results["fig4ef_swaps"], title="Figure 4(e-f): swap-error recall"),
        ]
    )


if __name__ == "__main__":
    print(render())
