"""Experiment driver: Table 4 — P/R/F1 of all methods on all datasets.

The headline comparison: four BClean variants against PClean, HoloClean,
Raha+Baran, and Garf across the six benchmarks.  ``sizes`` lets benches
run laptop-scale; shape (who wins where) is the reproduction target, not
absolute numbers.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.data.benchmark import DATASET_NAMES, load_benchmark
from repro.evaluation.reporting import pivot_reports, render_table
from repro.evaluation.runner import MethodReport, run_matrix
from repro.evaluation.systems import default_systems

#: laptop-scale default sizes (paper sizes in data.benchmark specs)
DEFAULT_SIZES: dict[str, int] = {
    "hospital": 1000,
    "flights": 2376,
    "soccer": 3000,
    "beers": 2410,
    "inpatient": 2000,
    "facilities": 2000,
}


def run(
    datasets: Sequence[str] = DATASET_NAMES,
    sizes: Mapping[str, int] | None = None,
    systems=None,
    seed: int = 0,
) -> list[MethodReport]:
    """Run the full systems × datasets matrix."""
    sizes = dict(DEFAULT_SIZES, **(sizes or {}))
    instances = [
        load_benchmark(name, n_rows=sizes.get(name), seed=seed)
        for name in datasets
    ]
    return run_matrix(systems or default_systems(), instances)


def render(reports: list[MethodReport]) -> str:
    """Three stacked pivots: precision, recall, F1 (the paper's P/R/F1)."""
    parts = []
    for metric in ("precision", "recall", "f1"):
        parts.append(
            render_table(
                pivot_reports(reports, metric),
                title=f"Table 4 ({metric}): methods x datasets",
            )
        )
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(render(run()))
