"""Experiment driver: Table 7 — user time and execution time.

Execution time is *measured* on our substrate.  User time is human
effort the paper measured with trained experts; it cannot be re-measured
by software, so we report the paper's own figures as constants next to
our measured execution times (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.data.benchmark import DATASET_NAMES, load_benchmark
from repro.evaluation.reporting import render_table
from repro.evaluation.runner import MethodReport, run_system
from repro.evaluation.systems import default_systems

#: the paper's reported user time (hours) per system — human effort,
#: reproduced as reported, not re-measured.
PAPER_USER_HOURS = {
    "PClean": 72.0,
    "HoloClean": 14.0,
    "Raha+Baran": 0.5,
    "Garf": 0.0,
    "BClean": 3.0,
    "BClean-UC": 0.0,
    "BCleanPI": 3.0,
    "BCleanPIP": 3.0,
}

DEFAULT_SIZES = {
    "hospital": 1000,
    "flights": 1000,
    "soccer": 2000,
    "beers": 1200,
    "inpatient": 1500,
    "facilities": 1500,
}


def run(
    datasets: Sequence[str] = DATASET_NAMES,
    sizes: Mapping[str, int] | None = None,
    seed: int = 0,
) -> list[MethodReport]:
    """Measure execution time of every system on every dataset."""
    sizes = dict(DEFAULT_SIZES, **(sizes or {}))
    reports = []
    for name in datasets:
        instance = load_benchmark(name, n_rows=sizes.get(name), seed=seed)
        for system in default_systems():
            reports.append(run_system(system, instance))
    return reports


def render(reports: list[MethodReport]) -> str:
    """Systems × datasets execution seconds, plus the user-time column."""
    systems: list[str] = []
    datasets: list[str] = []
    for r in reports:
        if r.system not in systems:
            systems.append(r.system)
        if r.dataset not in datasets:
            datasets.append(r.dataset)
    index = {(r.system, r.dataset): r for r in reports}
    rows = []
    for s in systems:
        row: dict[str, object] = {
            "system": s,
            "user_h (paper)": PAPER_USER_HOURS.get(s, "-"),
        }
        for d in datasets:
            r = index.get((s, d))
            row[f"{d} exec_s"] = round(r.exec_seconds, 1) if r else "-"
        rows.append(row)
    return render_table(rows, title="Table 7: user time (paper) and execution time (measured)")


if __name__ == "__main__":
    print(render(run()))
