"""Experiment driver: Table 2 — dataset statistics.

Regenerates the paper's dataset summary for our synthetic twins: sizes,
noise rates, error-type mixes, and the per-system prior-knowledge counts
(#UCs, #DCs, #lines of PPL, #labels).
"""

from __future__ import annotations

from repro.data.benchmark import table2_statistics
from repro.evaluation.reporting import render_table

COLUMNS = [
    "dataset", "rows", "columns", "cells", "noise_rate", "error_types",
    "n_ucs", "n_dcs", "ppl_lines", "labels",
]


def run(n_rows: int | None = None) -> list[dict]:
    """Compute the Table 2 rows (optionally at a uniform scaled size)."""
    return table2_statistics(n_rows)


def render(rows: list[dict] | None = None) -> str:
    """Text rendering in the paper's column order."""
    return render_table(rows or run(), COLUMNS, title="Table 2: dataset statistics")


if __name__ == "__main__":
    print(render())
