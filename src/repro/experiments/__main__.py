"""Command-line experiment runner.

Regenerate any paper table/figure from the shell::

    python -m repro.experiments table2
    python -m repro.experiments table4 --sizes hospital=500,flights=600
    python -m repro.experiments figure5
    python -m repro.experiments all          # everything (slow)

Each driver prints the same fixed-width table the benchmark harness
produces, so results can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs import Span

from repro.experiments import (
    ablations,
    scaling,
    figure4,
    figure5,
    interaction,
    param_sweeps,
    table2,
    table4,
    table5,
    table6,
    table7,
)

DRIVERS = {
    "table2": lambda sizes: table2.render(),
    "table4": lambda sizes: table4.render(table4.run(sizes=sizes)),
    "table5": lambda sizes: table5.render(table5.run()),
    "table6": lambda sizes: table6.render(table6.run(sizes=sizes)),
    "table7": lambda sizes: table7.render(table7.run(sizes=sizes)),
    "params": lambda sizes: param_sweeps.render(),
    "figure4": lambda sizes: figure4.render(),
    "figure5": lambda sizes: figure5.render(figure5.run(sizes=sizes)),
    "interaction": lambda sizes: interaction.render(
        interaction.run(sizes=sizes)
    ),
    "ablations": lambda sizes: ablations.render(),
    "scaling": lambda sizes: scaling.render(),
}


def parse_sizes(spec: str | None) -> dict[str, int] | None:
    """Parse ``hospital=500,flights=600`` into a size mapping."""
    if not spec:
        return None
    sizes = {}
    for part in spec.split(","):
        name, _, value = part.partition("=")
        if not value:
            raise SystemExit(f"bad --sizes entry {part!r} (want name=rows)")
        sizes[name.strip()] = int(value)
    return sizes


def main(argv: list[str] | None = None) -> int:
    """Entry point: run one named experiment (or ``all``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate BClean paper tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*DRIVERS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--sizes",
        default=None,
        help="per-dataset row counts, e.g. hospital=500,flights=600",
    )
    args = parser.parse_args(argv)
    sizes = parse_sizes(args.sizes)

    names = list(DRIVERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        with Span("experiment", args={"name": name}) as span:
            print(f"=== {name} ===")
            print(DRIVERS[name](sizes))
        print(f"[{name}: {span.seconds:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
