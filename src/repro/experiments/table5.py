"""Experiment driver: Table 5 — the sampled-Soccer comparison.

The paper subsamples Soccer to 50 k rows because HoloClean runs out of
memory at 2 M cells, then compares BClean / HoloClean / PClean /
Raha+Baran on the sample.  Subsampling breaks much of the relational
context (fewer duplicates per team/player), which is why BClean's
precision drops there while recall stays high.
"""

from __future__ import annotations

from repro.data.benchmark import load_benchmark
from repro.evaluation.reporting import render_table
from repro.evaluation.runner import MethodReport, run_system
from repro.evaluation.systems import (
    BCleanSystem,
    HoloCleanSystem,
    PCleanSystem,
    RahaBaranSystem,
)

#: paper: 200 k → 50 k (a 1:4 sample); we keep the same ratio at laptop
#: scale by generating the full table and sampling a quarter of it.
DEFAULT_FULL_ROWS = 4000
DEFAULT_SAMPLE_ROWS = 1000


def run(
    full_rows: int = DEFAULT_FULL_ROWS,
    sample_rows: int = DEFAULT_SAMPLE_ROWS,
    seed: int = 0,
) -> list[MethodReport]:
    """Build the Soccer instance, subsample it, run the four systems."""
    instance = load_benchmark("soccer", n_rows=full_rows, seed=seed)
    indices = sorted(
        __import__("random").Random(seed).sample(range(full_rows), sample_rows)
    )
    sampled = instance
    sampled.dirty = instance.dirty.take(indices)
    sampled.clean = instance.clean.take(indices)
    index_map = {old: new for new, old in enumerate(indices)}
    kept = set(indices)
    sampled.injection.dirty = sampled.dirty
    sampled.injection.clean = sampled.clean
    sampled.injection.errors = [
        type(e)(index_map[e.row], e.attribute, e.error_type, e.clean_value, e.dirty_value)
        for e in instance.injection.errors
        if e.row in kept
    ]
    systems = [
        BCleanSystem.pi(),
        HoloCleanSystem(),
        PCleanSystem(),
        RahaBaranSystem(),
    ]
    return [run_system(s, sampled) for s in systems]


def render(reports: list[MethodReport]) -> str:
    """One row per system with P/R/F1."""
    rows = [r.as_row() for r in reports]
    return render_table(rows, title="Table 5: sampled Soccer")


if __name__ == "__main__":
    print(render(run()))
