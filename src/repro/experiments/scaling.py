"""Scaling experiment: execution time vs dataset size per variant.

Table 7's load-bearing claim is not the absolute seconds but the shape:
the basic engine's cost explodes with dataset size (10 h 48 m on Soccer,
≥ 72 h on Facilities) while the partition-inference variants stay within
minutes ("their execution time is roughly on par with that of PClean").
This driver sweeps row counts on one dataset and reports seconds per
variant, so the divergence is measurable at laptop scale.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.data.benchmark import load_benchmark
from repro.evaluation.metrics import evaluate_repairs
from repro.evaluation.reporting import render_table
from repro.obs import Span

def _basic_reference(**kwargs) -> BCleanConfig:
    """The paper's naive engine: full-joint scoring on the scalar path.

    This sweep measures the §6.1 cost divergence, so the basic row must
    run the unoptimised implementation — the columnar fast path would
    factor the joint into blanket-plus-constant and erase the very cost
    Table 7 reports.  Decisions are identical on both paths.
    """
    kwargs.setdefault("use_columnar", False)
    return BCleanConfig.basic(**kwargs)


#: variant label → config factory (paper Table 7 rows)
VARIANTS = {
    "BClean": _basic_reference,
    "BCleanPI": BCleanConfig.pi,
    "BCleanPIP": BCleanConfig.pip,
}

DEFAULT_ROW_COUNTS = (250, 500, 1000, 2000)


def run(
    dataset: str = "soccer",
    row_counts: Sequence[int] = DEFAULT_ROW_COUNTS,
    variants: Sequence[str] = tuple(VARIANTS),
    seed: int = 0,
    executor: str = "serial",
    n_jobs: int | None = None,
) -> list[dict]:
    """Time fit+clean for each (variant, n_rows) pair.

    Returns one row per pair with seconds, F1 (quality must not
    collapse while we speed up), and the per-variant work counters that
    explain the speedup (cells skipped, candidates evaluated).

    ``executor``/``n_jobs`` select the sharded execution backend for the
    *optimised* variants (the basic reference row always runs the
    scalar oracle — its cost shape is the thing being measured), so the
    sweep can also chart multi-core scaling.
    """
    unknown = set(variants) - set(VARIANTS)
    if unknown:
        raise ValueError(f"unknown variants: {sorted(unknown)}")
    rows = []
    for n_rows in row_counts:
        instance = load_benchmark(dataset, n_rows=n_rows, seed=seed)
        for name in variants:
            if name == "BClean":
                config = VARIANTS[name]()
            else:
                config = VARIANTS[name](executor=executor, n_jobs=n_jobs)
            with Span("scaling.run", args={"variant": name}) as span:
                engine = BClean(config, instance.constraints)
                engine.fit(instance.dirty, dag=instance.user_network())
                result = engine.clean()
            quality = evaluate_repairs(
                instance.dirty,
                result.cleaned,
                instance.clean,
                instance.error_cells,
            )
            rows.append(
                {
                    "variant": name,
                    "n_rows": n_rows,
                    "seconds": round(span.seconds, 3),
                    "f1": round(quality.f1, 3),
                    "cells_skipped": result.stats.cells_skipped_pruning,
                    "candidates": result.stats.candidates_evaluated,
                    "executor": result.diagnostics.get("exec", {}).get(
                        "executor", "scalar"
                    ),
                }
            )
    return rows


def slowdown_factors(rows: list[dict]) -> dict[str, float]:
    """Per-variant cost growth: seconds(max rows) / seconds(min rows).

    The Table 7 shape check: the basic variant's factor must exceed the
    optimised variants' (superlinear vs near-linear growth).
    """
    by_variant: dict[str, dict[int, float]] = {}
    for r in rows:
        by_variant.setdefault(r["variant"], {})[r["n_rows"]] = r["seconds"]
    out = {}
    for variant, timings in by_variant.items():
        lo, hi = min(timings), max(timings)
        out[variant] = timings[hi] / max(timings[lo], 1e-9)
    return out


def render(rows: list[dict] | None = None) -> str:
    """Fixed-width report of the sweep plus growth factors."""
    rows = rows if rows is not None else run()
    table = render_table(rows, title="Scaling: execution time vs rows")
    factors = slowdown_factors(rows)
    lines = [table, "", "growth factor (max rows / min rows):"]
    for variant, factor in factors.items():
        lines.append(f"  {variant:<12} {factor:6.1f}x")
    return "\n".join(lines)


if __name__ == "__main__":
    print(render())
