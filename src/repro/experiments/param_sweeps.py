"""Experiment drivers: Tables 8–10 — parameter sensitivity on Hospital.

The paper fixes two of (λ, β, τ) and sweeps the third, observing that
the F1-score barely moves — BClean needs no parameter tuning.  The same
flatness is the reproduction target here.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.data.benchmark import load_benchmark
from repro.evaluation.metrics import evaluate_repairs
from repro.evaluation.reporting import render_table

LAMBDA_VALUES = (0.0, 1.0, 2.0, 5.0, 10.0, 15.0)   # Table 8
BETA_VALUES = (0.0, 1.0, 2.0, 10.0, 50.0)           # Table 9
TAU_VALUES = (0.1, 0.3, 0.5, 0.7, 0.9)              # Table 10

DEFAULT_ROWS = 1000


def _f1_with(config: BCleanConfig, n_rows: int, seed: int) -> float:
    bench = load_benchmark("hospital", n_rows=n_rows, seed=seed)
    engine = BClean(config, bench.constraints)
    engine.fit(bench.dirty)
    result = engine.clean()
    q = evaluate_repairs(
        bench.dirty, result.cleaned, bench.clean, bench.error_cells
    )
    return q.f1


def sweep_lambda(
    values: Sequence[float] = LAMBDA_VALUES,
    n_rows: int = DEFAULT_ROWS,
    seed: int = 0,
) -> list[dict]:
    """Table 8: vary λ with β = 2, τ = 0.5."""
    return [
        {
            "lambda": lam,
            "f1": round(_f1_with(BCleanConfig.pi(lam=lam, beta=2.0, tau=0.5), n_rows, seed), 5),
        }
        for lam in values
    ]


def sweep_beta(
    values: Sequence[float] = BETA_VALUES,
    n_rows: int = DEFAULT_ROWS,
    seed: int = 0,
) -> list[dict]:
    """Table 9: vary β with λ = 1, τ = 0.5."""
    return [
        {
            "beta": beta,
            "f1": round(_f1_with(BCleanConfig.pi(lam=1.0, beta=beta, tau=0.5), n_rows, seed), 5),
        }
        for beta in values
    ]


def sweep_tau(
    values: Sequence[float] = TAU_VALUES,
    n_rows: int = DEFAULT_ROWS,
    seed: int = 0,
) -> list[dict]:
    """Table 10: vary τ with λ = 1, β = 2."""
    return [
        {
            "tau": tau,
            "f1": round(_f1_with(BCleanConfig.pi(lam=1.0, beta=2.0, tau=tau), n_rows, seed), 5),
        }
        for tau in values
    ]


def run(n_rows: int = DEFAULT_ROWS, seed: int = 0) -> dict[str, list[dict]]:
    """All three sweeps."""
    return {
        "table8_lambda": sweep_lambda(n_rows=n_rows, seed=seed),
        "table9_beta": sweep_beta(n_rows=n_rows, seed=seed),
        "table10_tau": sweep_tau(n_rows=n_rows, seed=seed),
    }


def render(results: dict[str, list[dict]] | None = None) -> str:
    """All three parameter tables."""
    results = results or run()
    parts = [
        render_table(results["table8_lambda"], title="Table 8: varying lambda (Hospital)"),
        render_table(results["table9_beta"], title="Table 9: varying beta (Hospital)"),
        render_table(results["table10_tau"], title="Table 10: varying tau (Hospital)"),
    ]
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(render())
