"""Ablation drivers for the design choices DESIGN.md calls out.

Not paper tables — these justify BClean's individual design decisions
on our substrate:

1. compensatory score on/off (the §5 error-amplification guard),
2. inference mode: BASIC vs PI vs PIP (quality *and* runtime),
3. structure learner: FDX vs hill-climbing vs Chow–Liu vs PC vs MMHC,
4. similarity softening vs strict-equality FD profiling,
5. domain-pruning top-k sweep (runtime vs recall).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.bayesnet.structure.fdx import FDXConfig
from repro.core.config import BCleanConfig, InferenceMode
from repro.core.engine import BClean
from repro.data.benchmark import load_benchmark
from repro.evaluation.metrics import evaluate_repairs
from repro.evaluation.reporting import render_table
from repro.obs import Span


def _measure(config: BCleanConfig, instance) -> dict:
    with Span("ablation.measure") as span:
        engine = BClean(config, instance.constraints)
        engine.fit(instance.dirty, dag=instance.user_network())
        result = engine.clean()
    q = evaluate_repairs(
        instance.dirty, result.cleaned, instance.clean, instance.error_cells
    )
    return {
        "precision": round(q.precision, 3),
        "recall": round(q.recall, 3),
        "f1": round(q.f1, 3),
        "seconds": round(span.seconds, 2),
        "cells_skipped": result.stats.cells_skipped_pruning,
        "candidates": result.stats.candidates_evaluated,
    }


def compensatory_ablation(
    dataset: str = "hospital", n_rows: int = 1000, seed: int = 0
) -> list[dict]:
    """Compensatory scoring model on vs off (§5, Example 2)."""
    inst = load_benchmark(dataset, n_rows=n_rows, seed=seed)
    rows = []
    for label, on in (("with Score_comp", True), ("without Score_comp", False)):
        config = BCleanConfig.pi(use_compensatory=on)
        rows.append({"config": label, **_measure(config, inst)})
    return rows


def mode_ablation(
    dataset: str = "hospital", n_rows: int = 1000, seed: int = 0
) -> list[dict]:
    """BASIC vs PARTITIONED vs PARTITIONED_PRUNED (quality + runtime)."""
    inst = load_benchmark(dataset, n_rows=n_rows, seed=seed)
    rows = []
    for mode in InferenceMode:
        config = BCleanConfig(mode=mode)
        rows.append({"mode": mode.value, **_measure(config, inst)})
    return rows


def structure_ablation(
    dataset: str = "hospital", n_rows: int = 1000, seed: int = 0
) -> list[dict]:
    """FDX vs hill-climbing vs Chow–Liu vs PC vs MMHC as the constructor."""
    inst = load_benchmark(dataset, n_rows=n_rows, seed=seed)
    rows = []
    for learner in ("fdx", "hillclimb", "chowliu", "pc", "mmhc"):
        config = BCleanConfig.pi(structure=learner)
        with Span("ablation.structure", args={"learner": learner}) as span:
            engine = BClean(config, inst.constraints)
            engine.fit(inst.dirty)  # no user network: compare raw learners
            result = engine.clean()
        q = evaluate_repairs(
            inst.dirty, result.cleaned, inst.clean, inst.error_cells
        )
        rows.append(
            {
                "learner": learner,
                "n_edges": engine.dag.n_edges,
                "precision": round(q.precision, 3),
                "recall": round(q.recall, 3),
                "f1": round(q.f1, 3),
                "seconds": round(span.seconds, 2),
            }
        )
    return rows


def similarity_ablation(
    dataset: str = "hospital", n_rows: int = 1000, seed: int = 0
) -> list[dict]:
    """Softened-FD similarity vs strict equality in the FDX profiler."""
    inst = load_benchmark(dataset, n_rows=n_rows, seed=seed)
    rows = []
    for label, strict in (("softened (edit sim)", False), ("strict equality", True)):
        config = BCleanConfig.pi()
        config = replace(config, fdx=FDXConfig(use_strict_equality=strict))
        rows.append({"profiler": label, **_measure(config, inst)})
    return rows


def domain_pruning_sweep(
    dataset: str = "hospital",
    n_rows: int = 1000,
    top_ks: Sequence[int] = (4, 8, 16, 32, 64),
    seed: int = 0,
) -> list[dict]:
    """TF-IDF domain-pruning cap: recall vs runtime trade (§6.2)."""
    inst = load_benchmark(dataset, n_rows=n_rows, seed=seed)
    rows = []
    for k in top_ks:
        config = BCleanConfig.pip(domain_prune_top_k=k)
        rows.append({"top_k": k, **_measure(config, inst)})
    return rows


def run(dataset: str = "hospital", n_rows: int = 1000, seed: int = 0) -> dict:
    """All five ablations."""
    return {
        "compensatory": compensatory_ablation(dataset, n_rows, seed),
        "mode": mode_ablation(dataset, n_rows, seed),
        "structure": structure_ablation(dataset, n_rows, seed),
        "similarity": similarity_ablation(dataset, n_rows, seed),
        "domain_pruning": domain_pruning_sweep(dataset, n_rows, seed=seed),
    }


def render(results: dict | None = None) -> str:
    """All ablations as text tables."""
    results = results or run()
    return "\n\n".join(
        render_table(rows, title=f"Ablation: {name}")
        for name, rows in results.items()
    )


if __name__ == "__main__":
    print(render())
