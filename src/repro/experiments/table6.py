"""Experiment driver: Table 6 — recall per error type (T / M / I).

For Soccer, Inpatient, and Facilities, measures each system's recall
broken down by the injected error type.  The paper's claim: BClean is
the most *balanced* across types, where e.g. PClean collapses on
missing values and Raha+Baran on inconsistencies.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.data.benchmark import load_benchmark
from repro.evaluation.reporting import render_table
from repro.evaluation.runner import MethodReport, run_system
from repro.evaluation.systems import (
    BCleanSystem,
    HoloCleanSystem,
    PCleanSystem,
    RahaBaranSystem,
)

DEFAULT_DATASETS = ("soccer", "inpatient", "facilities")
DEFAULT_SIZES = {"soccer": 3000, "inpatient": 2000, "facilities": 2000}


def run(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    sizes: Mapping[str, int] | None = None,
    seed: int = 0,
) -> list[MethodReport]:
    """Run the four Table 6 systems with per-type recall enabled."""
    sizes = dict(DEFAULT_SIZES, **(sizes or {}))
    systems = [
        BCleanSystem.pi(),
        PCleanSystem(),
        HoloCleanSystem(),
        RahaBaranSystem(),
    ]
    reports = []
    for name in datasets:
        instance = load_benchmark(
            name, n_rows=sizes.get(name), seed=seed,
            error_types=("T", "M", "I"),
        )
        for s in systems:
            reports.append(run_system(s, instance, with_type_recall=True))
    return reports


def render(reports: list[MethodReport]) -> str:
    """One row per (system, dataset) with T/M/I recall columns."""
    rows = []
    for r in reports:
        rows.append(
            {
                "system": r.system,
                "dataset": r.dataset,
                "T": round(r.recall_by_type.get("T", 0.0), 3),
                "M": round(r.recall_by_type.get("M", 0.0), 3),
                "I": round(r.recall_by_type.get("I", 0.0), 3),
            }
        )
    return render_table(rows, title="Table 6: recall by error type")


if __name__ == "__main__":
    print(render(run()))
