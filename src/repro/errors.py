"""Exception hierarchy for the repro (BClean) library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """A table or operation violates the declared schema.

    Raised for unknown attribute names, duplicate attributes, or row
    width mismatches.
    """


class TypeInferenceError(ReproError):
    """Automatic attribute type inference failed or was contradictory."""


class CSVFormatError(ReproError, ValueError):
    """A CSV file could not be parsed into a table.

    Also a :class:`ValueError`, so callers streaming chunks through
    generic loaders can catch malformed input without importing the
    repro error hierarchy.
    """


class GraphError(ReproError):
    """An operation on a DAG is invalid (cycle, unknown node, ...)."""


class CycleError(GraphError):
    """Adding an edge would create a directed cycle."""


class CPTError(ReproError):
    """A conditional probability table is malformed or inconsistent."""


class InferenceError(ReproError):
    """Bayesian inference could not be carried out."""


class StructureLearningError(ReproError):
    """A structure learning algorithm failed to produce a network."""


class ConvergenceError(ReproError):
    """An iterative numerical routine failed to converge."""


class ConstraintError(ReproError):
    """A user constraint specification is invalid."""


class ConstraintSpecError(ConstraintError):
    """A constraint spec string or mapping could not be parsed."""


class CleaningError(ReproError):
    """The cleaning engine hit an unrecoverable condition."""


class DatasetError(ReproError):
    """A benchmark dataset generator was misconfigured."""


class ErrorInjectionError(DatasetError):
    """Error injection parameters are invalid (e.g. rate outside [0, 1])."""


class EvaluationError(ReproError):
    """Evaluation inputs are inconsistent (e.g. mismatched table shapes)."""


class BaselineError(ReproError):
    """A baseline cleaning system was misconfigured."""
