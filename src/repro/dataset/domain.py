"""Per-attribute domain statistics.

The paper's candidate generation iterates over ``dom(A_j)`` — the set of
values observed in column ``A_j`` — and several scores (compensatory
score, tuple pruning, TF-IDF domain pruning) are built from value and
pair frequencies.  :class:`Domain` and :class:`DomainIndex` cache those
counts once per table.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.dataset.table import Cell, Table, is_null


@dataclass
class Domain:
    """Observed domain of one attribute: distinct values and frequencies."""

    attribute: str
    counts: Counter = field(default_factory=Counter)
    n_total: int = 0
    n_null: int = 0

    @classmethod
    def from_column(
        cls,
        attribute: str,
        values: Iterable[Cell],
        weights: Iterable[int] | None = None,
    ) -> "Domain":
        """Collect the domain of ``values`` (NULLs counted separately).

        ``weights`` are optional integer multiplicities aligned with
        ``values`` (the deduplicated-stream form of
        :mod:`repro.exec.fit_stream`): value ``i`` then counts
        ``weights[i]`` times.  Because the struct table lists values in
        stream first-appearance order, the resulting counter — counts
        *and* insertion order, which ``most_common`` tie-breaking relies
        on — is identical to a full-stream pass.
        """
        dom = cls(attribute)
        if weights is None:
            for v in values:
                dom.n_total += 1
                if is_null(v):
                    dom.n_null += 1
                else:
                    dom.counts[v] += 1
            return dom
        for v, w in zip(values, weights):
            w = int(w)
            dom.n_total += w
            if is_null(v):
                dom.n_null += w
            else:
                dom.counts[v] += w
        return dom

    @property
    def values(self) -> list[Cell]:
        """Distinct non-null values, most frequent first."""
        return [v for v, _ in self.counts.most_common()]

    @property
    def size(self) -> int:
        """Number of distinct non-null values."""
        return len(self.counts)

    def frequency(self, value: Cell) -> int:
        """Occurrence count of ``value`` (0 if absent or NULL)."""
        if is_null(value):
            return 0
        return self.counts.get(value, 0)

    def relative_frequency(self, value: Cell) -> float:
        """``count(value) / n_total`` — the empirical prior used as the
        value-frequency part of the compensatory model (§3)."""
        if self.n_total == 0:
            return 0.0
        return self.frequency(value) / self.n_total

    def most_common(self, k: int | None = None) -> list[tuple[Cell, int]]:
        """The ``k`` most frequent values with their counts."""
        return self.counts.most_common(k)

    def __contains__(self, value: object) -> bool:
        return value in self.counts


class DomainIndex:
    """Domains of every attribute of a table, computed once.

    ``row_counts`` are optional per-row integer multiplicities (the
    deduplicated-stream form): every domain then counts row ``i``
    ``row_counts[i]`` times, identical to indexing the full stream.
    """

    def __init__(self, table: Table, row_counts=None):
        self.table = table
        weights = None if row_counts is None else list(row_counts)
        self._domains = {
            name: Domain.from_column(name, table.column(name), weights)
            for name in table.schema.names
        }

    def __getitem__(self, attribute: str) -> Domain:
        return self._domains[attribute]

    def domain(self, attribute: str) -> Domain:
        """Domain of ``attribute``."""
        return self._domains[attribute]

    def candidate_values(self, attribute: str, cap: int | None = None) -> list[Cell]:
        """Distinct values of ``attribute`` (optionally the top ``cap`` by
        frequency) — the raw candidate pool before pruning."""
        values = self._domains[attribute].values
        if cap is not None:
            return values[:cap]
        return values

    def total_distinct(self) -> int:
        """Sum of domain sizes over all attributes."""
        return sum(d.size for d in self._domains.values())
