"""Cell-level diffs between two tables over the same schema.

Evaluation (precision/recall of repairs, §7.1) reduces to comparing three
tables cell-by-cell: the dirty input, the cleaned output, and the ground
truth.  :func:`diff_cells` produces the primitive both metrics and repair
reports are built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.dataset.table import Cell, Table, is_null
from repro.errors import EvaluationError


@dataclass(frozen=True)
class CellDiff:
    """One differing cell between two aligned tables."""

    row: int
    attribute: str
    left: Cell
    right: Cell


def _check_aligned(a: Table, b: Table) -> None:
    if a.schema.names != b.schema.names:
        raise EvaluationError(
            f"tables have different attributes: {a.schema.names} vs {b.schema.names}"
        )
    if a.n_rows != b.n_rows:
        raise EvaluationError(
            f"tables have different row counts: {a.n_rows} vs {b.n_rows}"
        )


def cells_equal(a: Cell, b: Cell) -> bool:
    """Cell equality with NULL ≡ NULL and numeric/string canonicalisation.

    ``1 == "1"`` and ``0.5 == "0.5"`` compare equal so that coercion
    differences between pipelines do not register as spurious repairs.
    """
    if is_null(a) and is_null(b):
        return True
    if is_null(a) or is_null(b):
        return False
    if a == b:
        return True
    return _canon(a) == _canon(b)


def _canon(v: Cell) -> str:
    s = str(v).strip()
    try:
        f = float(s)
    except (TypeError, ValueError):
        return s
    # Strings like "inf"/"nan" parse as floats but are not numerals.
    if f != f or f in (float("inf"), float("-inf")):
        return s
    if f == int(f):
        return str(int(f))
    return repr(f)


def iter_diff(left: Table, right: Table) -> Iterator[CellDiff]:
    """Yield every cell where ``left`` and ``right`` disagree."""
    _check_aligned(left, right)
    for j, name in enumerate(left.schema.names):
        lcol, rcol = left.columns[j], right.columns[j]
        for i in range(left.n_rows):
            if not cells_equal(lcol[i], rcol[i]):
                yield CellDiff(i, name, lcol[i], rcol[i])


def diff_cells(left: Table, right: Table) -> list[CellDiff]:
    """All differing cells, materialised."""
    return list(iter_diff(left, right))


def diff_mask(left: Table, right: Table) -> set[tuple[int, str]]:
    """The set of ``(row, attribute)`` coordinates where the tables differ."""
    return {(d.row, d.attribute) for d in iter_diff(left, right)}


def hamming(left: Table, right: Table) -> int:
    """Number of differing cells."""
    return sum(1 for _ in iter_diff(left, right))
