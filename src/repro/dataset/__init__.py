"""Relational substrate: schemas, tables, CSV I/O, domains, diffs."""

from repro.dataset.diff import CellDiff, cells_equal, diff_cells, diff_mask, hamming
from repro.dataset.domain import Domain, DomainIndex
from repro.dataset.encoding import (
    NULL_CODE,
    UNSEEN_CODE,
    AttributeVocabulary,
    TableEncoding,
)
from repro.dataset.io import (
    iter_csv_chunks,
    read_csv,
    read_csv_text,
    to_csv_text,
    write_csv,
)
from repro.dataset.profile import (
    ColumnProfile,
    FDCandidate,
    TableProfile,
    fd_candidates,
    profile_column,
    profile_table,
)
from repro.dataset.schema import Attribute, AttrType, Schema
from repro.dataset.table import Cell, Row, Table, infer_attr_type, infer_schema, is_null

__all__ = [
    "Attribute",
    "AttrType",
    "AttributeVocabulary",
    "NULL_CODE",
    "UNSEEN_CODE",
    "TableEncoding",
    "Cell",
    "CellDiff",
    "ColumnProfile",
    "FDCandidate",
    "Domain",
    "DomainIndex",
    "Row",
    "Schema",
    "Table",
    "TableProfile",
    "cells_equal",
    "diff_cells",
    "diff_mask",
    "fd_candidates",
    "hamming",
    "infer_attr_type",
    "infer_schema",
    "is_null",
    "profile_column",
    "profile_table",
    "iter_csv_chunks",
    "read_csv",
    "read_csv_text",
    "to_csv_text",
    "write_csv",
]
