"""Relational schema primitives.

A :class:`Schema` is an ordered collection of named, typed
:class:`Attribute` objects.  The cleaning algorithms in this package treat
cells as discrete values, but the *logical* type of an attribute still
matters: similarity functions, user constraints, and error injection all
dispatch on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import SchemaError


class AttrType(enum.Enum):
    """Logical type of an attribute.

    TEXT
        Free-form strings (names, addresses).
    CATEGORICAL
        Strings drawn from a small closed vocabulary (states, codes).
    INTEGER
        Whole numbers stored as ``int``.
    FLOAT
        Real numbers stored as ``float``.
    """

    TEXT = "text"
    CATEGORICAL = "categorical"
    INTEGER = "integer"
    FLOAT = "float"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type are compared numerically."""
        return self in (AttrType.INTEGER, AttrType.FLOAT)

    @property
    def is_textual(self) -> bool:
        """Whether values of this type are compared by edit distance."""
        return self in (AttrType.TEXT, AttrType.CATEGORICAL)


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation.

    Parameters
    ----------
    name:
        Attribute name, unique within a schema.
    attr_type:
        Logical type used by similarity functions and constraints.
    nullable:
        Whether NULL (``None``) is a legal clean value. Most benchmark
        attributes are non-nullable; the error injector introduces NULLs
        as *missing-value* errors regardless.
    """

    name: str
    attr_type: AttrType = AttrType.TEXT
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}:{self.attr_type.value}"


@dataclass
class Schema:
    """An ordered, uniquely-named list of attributes."""

    attributes: list[Attribute] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names: {dupes}")
        self._index = {a.name: i for i, a in enumerate(self.attributes)}

    # -- construction helpers -------------------------------------------------

    @classmethod
    def of(cls, *specs: str | Attribute) -> "Schema":
        """Build a schema from ``"name:type"`` strings or Attribute objects.

        >>> Schema.of("city", "zip:categorical", "abv:float").names
        ['city', 'zip', 'abv']
        """
        attrs: list[Attribute] = []
        for spec in specs:
            if isinstance(spec, Attribute):
                attrs.append(spec)
                continue
            if ":" in spec:
                name, _, type_name = spec.partition(":")
                try:
                    attr_type = AttrType(type_name)
                except ValueError as exc:
                    raise SchemaError(f"unknown attribute type {type_name!r}") from exc
                attrs.append(Attribute(name, attr_type))
            else:
                attrs.append(Attribute(spec))
        return cls(attrs)

    # -- lookups ---------------------------------------------------------------

    @property
    def names(self) -> list[str]:
        """Attribute names in declaration order."""
        return [a.name for a in self.attributes]

    def index_of(self, name: str) -> int:
        """Position of attribute ``name`` (raises SchemaError if unknown)."""
        try:
            return self._index[name]
        except KeyError as exc:
            raise SchemaError(f"unknown attribute {name!r}") from exc

    def attribute(self, name: str) -> Attribute:
        """The :class:`Attribute` named ``name``."""
        return self.attributes[self.index_of(name)]

    def type_of(self, name: str) -> AttrType:
        """Logical type of attribute ``name``."""
        return self.attribute(name).attr_type

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.attributes == other.attributes

    # -- derivation --------------------------------------------------------------

    def project(self, names: Iterable[str]) -> "Schema":
        """A new schema containing only ``names``, in the given order."""
        return Schema([self.attribute(n) for n in names])

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """A new schema with attributes renamed via ``mapping``."""
        attrs = [
            Attribute(mapping.get(a.name, a.name), a.attr_type, a.nullable)
            for a in self.attributes
        ]
        return Schema(attrs)
