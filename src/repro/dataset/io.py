"""CSV input/output for :class:`~repro.dataset.table.Table`.

The reader infers a schema (or accepts one), coerces numeric columns, and
maps common NULL spellings to ``None``.  The writer is the exact inverse,
so ``read_csv(write_csv(t))`` round-trips cell-for-cell.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Sequence

from repro.dataset.schema import Schema
from repro.dataset.table import Table, coerce_column, infer_schema, is_null
from repro.errors import CSVFormatError

NULL_TOKEN = ""


def read_csv(
    path: str | Path,
    schema: Schema | None = None,
    delimiter: str = ",",
    categorical_threshold: int = 64,
) -> Table:
    """Read a CSV file with a header row into a :class:`Table`.

    Parameters
    ----------
    path:
        File to read.
    schema:
        Optional explicit schema.  When given, the header must contain
        exactly the schema's attribute names (in order) and columns are
        coerced to the declared types.  When omitted, types are inferred.
    delimiter:
        Field separator.
    categorical_threshold:
        Max distinct values for a string column to be inferred as
        CATEGORICAL (only used when ``schema`` is None).
    """
    text = Path(path).read_text(encoding="utf-8")
    return read_csv_text(
        text,
        schema=schema,
        delimiter=delimiter,
        categorical_threshold=categorical_threshold,
    )


def read_csv_text(
    text: str,
    schema: Schema | None = None,
    delimiter: str = ",",
    categorical_threshold: int = 64,
) -> Table:
    """Like :func:`read_csv` but from an in-memory string."""
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    try:
        header = next(reader)
    except StopIteration as exc:
        raise CSVFormatError("empty CSV: no header row") from exc

    raw_rows: list[Sequence[str]] = []
    for lineno, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != len(header):
            raise CSVFormatError(
                f"line {lineno}: expected {len(header)} fields, got {len(row)}"
            )
        raw_rows.append(row)

    if schema is None:
        schema = infer_schema(header, raw_rows, categorical_threshold)
    elif header != schema.names:
        raise CSVFormatError(
            f"header {header!r} does not match schema attributes {schema.names!r}"
        )

    columns: list[list] = [[] for _ in header]
    for row in raw_rows:
        for j, v in enumerate(row):
            columns[j].append(None if is_null(v) else v)
    columns = [
        coerce_column(col, attr.attr_type)
        for col, attr in zip(columns, schema.attributes)
    ]
    return Table(schema, columns)


def write_csv(table: Table, path: str | Path, delimiter: str = ",") -> None:
    """Write ``table`` to ``path`` with a header row; NULLs become empty fields."""
    Path(path).write_text(to_csv_text(table, delimiter=delimiter), encoding="utf-8")


def to_csv_text(table: Table, delimiter: str = ",") -> str:
    """Render ``table`` as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf, delimiter=delimiter, lineterminator="\n")
    writer.writerow(table.schema.names)
    for row in table.rows():
        writer.writerow(
            [NULL_TOKEN if v is None else str(v) for v in row.values()]
        )
    return buf.getvalue()
