"""CSV input/output for :class:`~repro.dataset.table.Table`.

The reader infers a schema (or accepts one), coerces numeric columns, and
maps common NULL spellings to ``None``.  The writer is the exact inverse,
so ``read_csv(write_csv(t))`` round-trips cell-for-cell.

Two reading shapes share one streaming core:

- :func:`read_csv` materialises the whole file as a single
  :class:`Table`, feeding the ``csv`` reader straight from the file
  handle (the file is never held as one giant string);
- :func:`iter_csv_chunks` yields the file as a sequence of row-block
  :class:`Table`\\ s of at most ``chunk_rows`` rows each — the ingest
  stage of the out-of-core cleaning pipeline
  (:mod:`repro.exec.stream`).  The schema is settled on the first
  block (inferred from it when not given explicitly) and applied to
  every later block, so all chunks agree on attribute types.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.dataset.schema import Schema
from repro.dataset.table import Table, coerce_column, infer_schema, is_null
from repro.errors import CSVFormatError

NULL_TOKEN = ""


def read_csv(
    path: str | Path,
    schema: Schema | None = None,
    delimiter: str = ",",
    categorical_threshold: int = 64,
) -> Table:
    """Read a CSV file with a header row into a :class:`Table`.

    Parameters
    ----------
    path:
        File to read.
    schema:
        Optional explicit schema.  When given, the header must contain
        exactly the schema's attribute names (in order) and columns are
        coerced to the declared types.  When omitted, types are inferred.
    delimiter:
        Field separator.
    categorical_threshold:
        Max distinct values for a string column to be inferred as
        CATEGORICAL (only used when ``schema`` is None).
    """
    with open(path, newline="", encoding="utf-8") as handle:
        return _read_csv_stream(
            handle,
            schema=schema,
            delimiter=delimiter,
            categorical_threshold=categorical_threshold,
        )


def read_csv_text(
    text: str,
    schema: Schema | None = None,
    delimiter: str = ",",
    categorical_threshold: int = 64,
) -> Table:
    """Like :func:`read_csv` but from an in-memory string."""
    return _read_csv_stream(
        io.StringIO(text),
        schema=schema,
        delimiter=delimiter,
        categorical_threshold=categorical_threshold,
    )


def iter_csv_chunks(
    path: str | Path,
    chunk_rows: int,
    schema: Schema | None = None,
    delimiter: str = ",",
    categorical_threshold: int = 64,
) -> Iterator[Table]:
    """Stream a CSV file as :class:`Table` blocks of ``chunk_rows`` rows.

    Only one block of raw rows is resident at a time, so arbitrarily
    large files can be processed with bounded memory.  When ``schema``
    is ``None`` it is inferred from the *first* block alone and then
    fixed — hand an explicit schema when the first ``chunk_rows`` rows
    may not be representative (e.g. a numeric column whose early rows
    are all NULL).  An empty data section yields no chunks (but a
    missing header still raises), so ``list(iter_csv_chunks(p, k))``
    concatenates back to exactly ``read_csv(p)`` for every ``k``.
    """
    if chunk_rows < 1:
        raise CSVFormatError(f"chunk_rows must be positive, got {chunk_rows}")
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        header = _read_header(reader, schema)
        block: list[Sequence[str]] = []
        for row in _validated_rows(reader, header):
            block.append(row)
            if len(block) == chunk_rows:
                if schema is None:
                    schema = infer_schema(header, block, categorical_threshold)
                yield _block_table(schema, block)
                block = []
        if block:
            if schema is None:
                schema = infer_schema(header, block, categorical_threshold)
            yield _block_table(schema, block)


def _read_csv_stream(
    stream,
    schema: Schema | None,
    delimiter: str,
    categorical_threshold: int,
) -> Table:
    """The shared single-table reader: consume ``stream`` row by row
    (never materialising the file as one string) and build the table."""
    reader = csv.reader(stream, delimiter=delimiter)
    header = _read_header(reader, schema)
    raw_rows = list(_validated_rows(reader, header))
    if schema is None:
        schema = infer_schema(header, raw_rows, categorical_threshold)
    return _block_table(schema, raw_rows)


def _read_header(reader, schema: Schema | None) -> list[str]:
    """Consume and check the header row."""
    try:
        header = next(reader)
    except StopIteration as exc:
        raise CSVFormatError("empty CSV: no header row") from exc
    if schema is not None and header != schema.names:
        raise CSVFormatError(
            f"header {header!r} does not match schema attributes {schema.names!r}"
        )
    return header


def _validated_rows(
    reader, header: Sequence[str]
) -> Iterator[Sequence[str]]:
    """Yield data rows, skipping blank lines and checking field counts.

    A width mismatch names the column where the row diverges from the
    header-settled schema — in a chunked stream the bad line may be
    millions of rows past the first block, so "expected 7, got 6" alone
    leaves nothing to grep the source data for.
    """
    for lineno, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) < len(header):
            raise CSVFormatError(
                f"line {lineno}: expected {len(header)} fields, got "
                f"{len(row)} — row ends before column "
                f"{header[len(row)]!r}"
            )
        if len(row) > len(header):
            raise CSVFormatError(
                f"line {lineno}: expected {len(header)} fields, got "
                f"{len(row)} — {len(row) - len(header)} extra field(s) "
                f"after last column {header[-1]!r}"
            )
        yield row


def _block_table(schema: Schema, raw_rows: Iterable[Sequence[str]]) -> Table:
    """NULL-map and type-coerce one block of raw rows into a table."""
    columns: list[list] = [[] for _ in schema.names]
    for row in raw_rows:
        for j, v in enumerate(row):
            columns[j].append(None if is_null(v) else v)
    columns = [
        coerce_column(col, attr.attr_type)
        for col, attr in zip(columns, schema.attributes)
    ]
    return Table(schema, columns)


def write_csv(table: Table, path: str | Path, delimiter: str = ",") -> None:
    """Write ``table`` to ``path`` with a header row; NULLs become empty fields.

    Rows stream onto the open handle one at a time — the file is never
    rendered as one in-memory string first, matching the reading side's
    streaming contract (a table near the memory ceiling must be
    writable without a same-sized text copy alongside it).
    """
    with open(path, "w", newline="", encoding="utf-8") as handle:
        write_csv_header(handle, table.schema, delimiter=delimiter)
        append_csv_rows(handle, table, delimiter=delimiter)


def append_csv_rows(
    handle, table: Table, delimiter: str = ","
) -> None:
    """Write ``table``'s data rows (no header) onto an open text handle —
    the emit primitive of the streaming cleaner, so chunked output never
    holds more than one block."""
    writer = csv.writer(handle, delimiter=delimiter, lineterminator="\n")
    for row in table.rows():
        writer.writerow(
            [NULL_TOKEN if v is None else str(v) for v in row.values()]
        )


def write_csv_header(handle, schema: Schema, delimiter: str = ",") -> None:
    """Write just the header row onto an open text handle."""
    writer = csv.writer(handle, delimiter=delimiter, lineterminator="\n")
    writer.writerow(schema.names)


def to_csv_text(table: Table, delimiter: str = ",") -> str:
    """Render ``table`` as CSV text."""
    buf = io.StringIO()
    write_csv_header(buf, table.schema, delimiter=delimiter)
    append_csv_rows(buf, table, delimiter=delimiter)
    return buf.getvalue()
