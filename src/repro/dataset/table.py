"""A minimal typed column-store relation.

The environment provides no pandas, so :class:`Table` supplies the small
set of relational operations the cleaning algorithms need: column access,
cell mutation, row views, projection, sampling, and sorting.  Cells are
Python objects — ``str`` for textual attributes, ``int``/``float`` for
numeric ones — and NULL is represented by ``None`` throughout.

:func:`cell_key` defines the canonical identity of a cell (NULL-likes
collapse onto :data:`NULL_KEY`); :meth:`Table.encode` interns every
column under that identity into dense integer codes — the entry point
of the engine's columnar fast path (see
:mod:`repro.dataset.encoding` for the interning contract).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.dataset.schema import Attribute, AttrType, Schema
from repro.errors import SchemaError

Cell = Any  # str | int | float | None

# Sentinel used to key NULL cells inside count tables (None itself is a
# valid dict key, but a named sentinel makes dumps readable).  Lives
# here — the leaf of the import graph — so both the statistics layers
# and the interning layer can share one canonicalisation rule.
NULL_KEY = "␀NULL"


def cell_key(value: object) -> Any:
    """Canonical hashable key for a cell value (NULL-safe)."""
    if value is None:
        return NULL_KEY
    if isinstance(value, float) and value != value:  # NaN
        return NULL_KEY
    return value


def is_null(value: Cell) -> bool:
    """Whether ``value`` represents a missing cell.

    ``None``, empty strings, and the literal strings ``"NULL"`` /
    ``"null"`` / ``"nan"`` (as produced by common CSV exports) all count
    as NULL.
    """
    if value is None:
        return True
    if isinstance(value, float) and value != value:  # NaN
        return True
    if isinstance(value, str) and value.strip().lower() in ("", "null", "nan", "none"):
        return True
    return False


class Row:
    """A lightweight immutable view of one tuple of a :class:`Table`."""

    __slots__ = ("_table", "_i")

    def __init__(self, table: "Table", i: int):
        self._table = table
        self._i = i

    @property
    def index(self) -> int:
        """Zero-based row position inside the owning table."""
        return self._i

    def __getitem__(self, attr: str | int) -> Cell:
        if isinstance(attr, int):
            return self._table.columns[attr][self._i]
        j = self._table.schema.index_of(attr)
        return self._table.columns[j][self._i]

    def values(self) -> tuple[Cell, ...]:
        """All cell values of this row, in schema order."""
        return tuple(col[self._i] for col in self._table.columns)

    def as_dict(self) -> dict[str, Cell]:
        """Mapping from attribute name to cell value."""
        return {a: col[self._i] for a, col in zip(self._table.schema.names, self._table.columns)}

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.values())

    def __len__(self) -> int:
        return len(self._table.columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Row({self._i}, {self.as_dict()!r})"


class Table:
    """An in-memory relation stored column-wise.

    Columns are plain Python lists so that cells stay arbitrary objects;
    numeric-heavy work converts to numpy arrays at the call site.
    """

    def __init__(self, schema: Schema, columns: Sequence[list[Cell]]):
        if len(columns) != len(schema):
            raise SchemaError(
                f"schema has {len(schema)} attributes but {len(columns)} columns given"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns: lengths {sorted(lengths)}")
        self.schema = schema
        self.columns: list[list[Cell]] = [list(c) for c in columns]
        #: bumped by :meth:`set_cell` so encoding snapshots can validate
        #: themselves in O(1) (see :meth:`TableEncoding.matches`)
        self.mutation_count = 0

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[Cell]]) -> "Table":
        """Build a table from an iterable of row sequences."""
        cols: list[list[Cell]] = [[] for _ in range(len(schema))]
        for r, row in enumerate(rows):
            if len(row) != len(schema):
                raise SchemaError(
                    f"row {r} has {len(row)} values, schema expects {len(schema)}"
                )
            for j, v in enumerate(row):
                cols[j].append(v)
        return cls(schema, cols)

    @classmethod
    def from_dicts(cls, schema: Schema, records: Iterable[dict[str, Cell]]) -> "Table":
        """Build a table from dict records; missing keys become NULL."""
        cols: list[list[Cell]] = [[] for _ in range(len(schema))]
        names = schema.names
        for rec in records:
            unknown = set(rec) - set(names)
            if unknown:
                raise SchemaError(f"record has unknown attributes {sorted(unknown)}")
            for j, name in enumerate(names):
                cols[j].append(rec.get(name))
        return cls(schema, cols)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """A zero-row table with the given schema."""
        return cls(schema, [[] for _ in range(len(schema))])

    # -- shape ---------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of tuples."""
        return len(self.columns[0]) if self.columns else 0

    @property
    def n_cols(self) -> int:
        """Number of attributes."""
        return len(self.columns)

    @property
    def n_cells(self) -> int:
        """Total number of cells (rows × columns)."""
        return self.n_rows * self.n_cols

    def __len__(self) -> int:
        return self.n_rows

    # -- access ----------------------------------------------------------------

    def column(self, attr: str) -> list[Cell]:
        """The column named ``attr`` (the live list, not a copy)."""
        return self.columns[self.schema.index_of(attr)]

    def cell(self, i: int, attr: str | int) -> Cell:
        """Value at row ``i``, attribute ``attr`` (name or position)."""
        j = attr if isinstance(attr, int) else self.schema.index_of(attr)
        return self.columns[j][i]

    def set_cell(self, i: int, attr: str | int, value: Cell) -> None:
        """Overwrite the value at row ``i``, attribute ``attr``."""
        j = attr if isinstance(attr, int) else self.schema.index_of(attr)
        self.columns[j][i] = value
        self.mutation_count += 1

    def row(self, i: int) -> Row:
        """A view of row ``i``."""
        if not 0 <= i < self.n_rows:
            raise IndexError(f"row index {i} out of range [0, {self.n_rows})")
        return Row(self, i)

    def rows(self) -> Iterator[Row]:
        """Iterate over all row views."""
        for i in range(self.n_rows):
            yield Row(self, i)

    def iter_cells(self) -> Iterator[tuple[int, str, Cell]]:
        """Yield ``(row_index, attribute_name, value)`` for every cell."""
        for j, name in enumerate(self.schema.names):
            col = self.columns[j]
            for i in range(self.n_rows):
                yield i, name, col[i]

    def encode(self) -> "TableEncoding":
        """Intern every column to dense integer codes (columnar fast path).

        Returns a fresh :class:`~repro.dataset.encoding.TableEncoding`
        snapshot of the current cell values; later ``set_cell`` calls are
        not reflected, so hot-path components built from one encoding
        stay mutually consistent.
        """
        from repro.dataset.encoding import TableEncoding

        return TableEncoding(self)

    # -- derivation ---------------------------------------------------------------

    def copy(self) -> "Table":
        """A deep-enough copy: fresh column lists, shared cell objects."""
        return Table(self.schema, [list(c) for c in self.columns])

    def project(self, names: Sequence[str]) -> "Table":
        """A new table with only the named columns."""
        sub = self.schema.project(names)
        cols = [list(self.column(n)) for n in names]
        return Table(sub, cols)

    def head(self, n: int) -> "Table":
        """The first ``n`` rows."""
        return Table(self.schema, [c[:n] for c in self.columns])

    def slice_rows(self, start: int, stop: int) -> "Table":
        """Rows ``[start, stop)`` as a new table (list-slice semantics:
        out-of-range bounds clamp).  The row-block primitive of the
        chunked cleaning pipeline."""
        return Table(self.schema, [c[start:stop] for c in self.columns])

    def select(self, predicate: Callable[[Row], bool]) -> "Table":
        """Rows satisfying ``predicate``."""
        keep = [i for i in range(self.n_rows) if predicate(self.row(i))]
        return self.take(keep)

    def take(self, indices: Sequence[int]) -> "Table":
        """A new table containing the given row indices, in order."""
        cols = [[c[i] for i in indices] for c in self.columns]
        return Table(self.schema, cols)

    def sample(self, n: int, seed: int | None = None) -> "Table":
        """A uniform sample (without replacement) of ``n`` rows."""
        if n >= self.n_rows:
            return self.copy()
        rng = random.Random(seed)
        indices = rng.sample(range(self.n_rows), n)
        return self.take(sorted(indices))

    def argsort_by(self, attr: str) -> list[int]:
        """Row indices sorted by attribute value (NULLs last).

        Used by the FDX profiler, which sorts tuples by each attribute and
        compares only adjacent pairs (paper §4, Remarks).
        """
        col = self.column(attr)

        def key(i: int) -> tuple[int, str]:
            v = col[i]
            if is_null(v):
                return (1, "")
            return (0, str(v))

        return sorted(range(self.n_rows), key=key)

    # -- equality & display ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.schema == other.schema and self.columns == other.columns

    def to_rows(self) -> list[tuple[Cell, ...]]:
        """All rows as tuples (materialised)."""
        return [tuple(c[i] for c in self.columns) for i in range(self.n_rows)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.n_rows} rows × {self.n_cols} cols: {self.schema.names})"

    def pretty(self, limit: int = 10) -> str:
        """A fixed-width text rendering of up to ``limit`` rows."""
        names = self.schema.names
        shown = [[("NULL" if is_null(v) else str(v)) for v in row.values()]
                 for row in list(self.rows())[:limit]]
        widths = [
            max(len(names[j]), *(len(r[j]) for r in shown)) if shown else len(names[j])
            for j in range(len(names))
        ]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        sep = "-+-".join("-" * w for w in widths)
        lines = [header, sep]
        for r in shown:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(r, widths)))
        if self.n_rows > limit:
            lines.append(f"... ({self.n_rows - limit} more rows)")
        return "\n".join(lines)


def infer_attr_type(values: Iterable[Cell], categorical_threshold: int = 64) -> AttrType:
    """Infer a logical type from a sample of raw (string) values.

    Values that all parse as integers become INTEGER; all-float values
    become FLOAT; short closed vocabularies become CATEGORICAL; anything
    else is TEXT.  NULLs are ignored.
    """
    non_null = [v for v in values if not is_null(v)]
    if not non_null:
        return AttrType.TEXT

    def parses(conv: Callable[[str], Any]) -> bool:
        for v in non_null:
            try:
                conv(str(v))
            except (TypeError, ValueError):
                return False
        return True

    if parses(int):
        return AttrType.INTEGER
    if parses(float):
        return AttrType.FLOAT
    distinct = {str(v) for v in non_null}
    if len(distinct) <= categorical_threshold:
        return AttrType.CATEGORICAL
    return AttrType.TEXT


def coerce_column(values: list[Cell], attr_type: AttrType) -> list[Cell]:
    """Convert raw cells to the Python type matching ``attr_type``.

    Unparseable numerics are kept as their original strings: the cleaning
    system must tolerate dirty cells, so coercion never raises.
    """
    if not attr_type.is_numeric:
        return [None if is_null(v) else str(v) for v in values]
    out: list[Cell] = []
    conv: Callable[[str], Any] = int if attr_type == AttrType.INTEGER else float
    for v in values:
        if is_null(v):
            out.append(None)
            continue
        try:
            out.append(conv(str(v)))
        except (TypeError, ValueError):
            out.append(str(v))
    return out


def infer_schema(
    names: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    categorical_threshold: int = 64,
) -> Schema:
    """Infer a full schema from raw string rows (used by the CSV reader)."""
    attrs = []
    for j, name in enumerate(names):
        column = [row[j] for row in rows]
        attrs.append(Attribute(name, infer_attr_type(column, categorical_threshold)))
    return Schema(attrs)
