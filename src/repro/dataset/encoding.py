"""Value interning: per-attribute vocabularies and integer-coded columns.

The columnar fast path of the engine replaces `cell_key` hashing in the
inner loops with dense integer codes.  The interning contract:

- Every attribute gets an :class:`AttributeVocabulary` mapping the
  *canonical key* of a cell (``cell_key(value)`` — ``None``/NaN collapse
  to one NULL key) onto a dense code in ``[0, size)``.
- **Code 0 is reserved for NULL** in every vocabulary, whether or not
  the column contains NULLs.  Non-null keys are numbered ``1..size-1``
  in order of first appearance in the column, so codes are deterministic
  for a given table.
- ``decode(code)`` returns the representative cell value of the code:
  the first original value observed with that key (``None`` for code 0).
  Because ``cell_key`` is the identity on non-null values, the
  representative compares equal to every value that produced the code.
- Values never seen by the vocabulary encode to :data:`UNSEEN_CODE`
  (−1); every statistics structure treats −1 as "count 0 everywhere".

A :class:`TableEncoding` interns all columns of one table **once**; all
hot-path components (co-occurrence index, coded CPTs, the engine's
candidate competitions) consume the coded columns instead of re-hashing
cell objects per query.

**Incremental encoding** (:meth:`TableEncoding.encode_table`) lets the
engine clean *foreign* tables on the coded fast path: unseen values are
interned on the fly, receiving fresh codes *above* every code the fitted
statistics were built with.  Statistics consumers treat any code at or
beyond their build-time cardinality as "never observed" (count 0, CPT
fallback), which reproduces the value-level semantics where unseen
values encode to :data:`UNSEEN_CODE`.

Encodings are picklable so the parallel execution subsystem can ship
them to worker processes; the pickle drops the source-table reference
(only used by the :meth:`TableEncoding.matches` snapshot check, which
workers never perform).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dataset.table import NULL_KEY, Cell, Table, cell_key, is_null
from repro.errors import SchemaError

#: Code returned for values outside the vocabulary.
UNSEEN_CODE = -1

#: Reserved code of the NULL key in every vocabulary.
NULL_CODE = 0


class AttributeVocabulary:
    """Dense integer codes for the distinct (keyed) values of one column."""

    __slots__ = ("attribute", "_code_of", "_values", "_null_mask", "_keys")

    def __init__(self, attribute: str):
        self.attribute = attribute
        self._code_of: dict[object, int] = {NULL_KEY: NULL_CODE}
        self._values: list[Cell] = [None]
        self._null_mask: np.ndarray | None = None
        self._keys: list | None = None

    def add(self, value: Cell) -> int:
        """Intern ``value`` and return its code (idempotent)."""
        key = cell_key(value)
        code = self._code_of.get(key)
        if code is None:
            code = len(self._values)
            self._code_of[key] = code
            self._values.append(value)
            self._null_mask = None
            self._keys = None
        return code

    def encode(self, value: Cell) -> int:
        """Code of ``value`` (:data:`UNSEEN_CODE` if never interned)."""
        return self._code_of.get(cell_key(value), UNSEEN_CODE)

    def decode(self, code: int) -> Cell:
        """Representative cell value of ``code``."""
        return self._values[code]

    @property
    def size(self) -> int:
        """Number of codes (NULL included), i.e. codes are ``[0, size)``."""
        return len(self._values)

    def keys(self) -> list:
        """Canonical :func:`cell_key` of every code, aligned with codes.

        Cached (and rebuilt after incremental extension); consumers must
        treat the returned list as read-only.
        """
        if self._keys is None or len(self._keys) != self.size:
            self._keys = [cell_key(v) for v in self._values]
        return self._keys

    @property
    def null_mask(self) -> np.ndarray:
        """Boolean array over codes: True where the representative is
        NULL-*like* (``is_null``), which is broader than code 0 — e.g.
        the literal string ``"null"`` keys as itself but is still not a
        legal repair candidate."""
        if self._null_mask is None or len(self._null_mask) != self.size:
            self._null_mask = np.array(
                [is_null(v) for v in self._values], dtype=bool
            )
        return self._null_mask

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AttributeVocabulary({self.attribute!r}, {self.size} codes)"


class TableEncoding:
    """Integer-coded view of a whole table (built once, shared by all
    hot-path components).

    Attributes
    ----------
    names:
        Attribute names in schema order.
    """

    def __init__(self, table: Table):
        self.names: list[str] = list(table.schema.names)
        self._index_of = {a: j for j, a in enumerate(self.names)}
        self.n_rows = table.n_rows
        self._source = table
        self._source_mutations = table.mutation_count
        self._vocabs: dict[str, AttributeVocabulary] = {}
        self._codes: dict[str, np.ndarray] = {}
        for name in self.names:
            vocab = AttributeVocabulary(name)
            codes = np.fromiter(
                (vocab.add(v) for v in table.column(name)),
                dtype=np.int64,
                count=table.n_rows,
            )
            self._vocabs[name] = vocab
            self._codes[name] = codes

    # -- access ----------------------------------------------------------------

    def vocab(self, attribute: str) -> AttributeVocabulary:
        """Vocabulary of ``attribute``."""
        return self._vocabs[attribute]

    def codes(self, attribute: str) -> np.ndarray:
        """The coded column of ``attribute`` (int64, length ``n_rows``)."""
        return self._codes[attribute]

    def card(self, attribute: str) -> int:
        """Vocabulary size of ``attribute`` (codes are ``[0, card)``)."""
        return self._vocabs[attribute].size

    def column_index(self, attribute: str) -> int:
        """Schema position of ``attribute``."""
        return self._index_of[attribute]

    def encode(self, attribute: str, value: Cell) -> int:
        """Code of ``value`` in ``attribute`` (−1 when unseen)."""
        return self._vocabs[attribute].encode(value)

    def decode(self, attribute: str, code: int) -> Cell:
        """Representative value of ``code`` in ``attribute``."""
        return self._vocabs[attribute].decode(code)

    def matches(self, table: Table) -> bool:
        """Whether this snapshot still describes ``table``: same shape
        and every cell interning to its recorded code.

        Consumers holding fit-time statistics call this before trusting
        the coded columns — a table mutated after :meth:`Table.encode`
        (or one containing values the vocabulary never saw) fails the
        check and must take the value-level path instead.

        The source table's ``mutation_count`` makes the common case
        O(1): unchanged counter on the same object means no
        :meth:`Table.set_cell` ran since the snapshot.  Any other table
        (or a bumped counter) gets the full cell-by-cell re-interning
        scan; only mutation behind ``set_cell``'s back (writing into
        ``Table.columns`` directly) can fool the fast path.
        """
        if table is self._source:
            if table.mutation_count == self._source_mutations:
                return True
        if table.n_rows != self.n_rows or list(table.schema.names) != self.names:
            return False
        for name in self.names:
            lookup = self._vocabs[name]._code_of
            codes = self._codes[name].tolist()
            for code, value in zip(codes, table.column(name)):
                if lookup.get(cell_key(value), UNSEEN_CODE) != code:
                    return False
        return True

    def matrix(self) -> np.ndarray:
        """All coded columns stacked into an ``(n_rows, n_cols)`` array."""
        if not self.names:
            return np.empty((self.n_rows, 0), dtype=np.int64)
        return np.column_stack([self._codes[a] for a in self.names])

    def encode_row(self, row: Sequence[Cell]) -> np.ndarray:
        """Codes of one raw row given in schema order."""
        return np.array(
            [self._vocabs[a].encode(v) for a, v in zip(self.names, row)],
            dtype=np.int64,
        )

    def encode_table(self, table: Table) -> np.ndarray:
        """Coded matrix of a *foreign* table under these vocabularies,
        interning unseen values incrementally.

        The foreign table must share this encoding's schema names.  Seen
        values keep their fitted codes; unseen values extend the
        per-attribute vocabularies (idempotently — re-encoding the same
        foreign value yields the same code), so the engine's fast path
        can dedup row signatures exactly like the scalar path's
        ``cell_key`` cache.  Extension never renumbers existing codes,
        and every statistics structure built *before* the extension
        keeps its own build-time cardinality as the "seen" horizon:
        codes at or beyond it score as never-observed values.

        The fitted columns (:meth:`codes`), ``n_rows``, and the
        :meth:`matches` snapshot are untouched — this is a pure view of
        the foreign table.
        """
        if list(table.schema.names) != self.names:
            raise SchemaError(
                "foreign table schema does not match the fitted encoding: "
                f"{list(table.schema.names)} vs {self.names}"
            )
        if not self.names:
            return np.empty((table.n_rows, 0), dtype=np.int64)
        columns = []
        for name in self.names:
            vocab = self._vocabs[name]
            columns.append(
                np.fromiter(
                    (vocab.add(v) for v in table.column(name)),
                    dtype=np.int64,
                    count=table.n_rows,
                )
            )
        return np.column_stack(columns)

    def __getstate__(self) -> dict:
        """Pickle support for worker shipping: drop the source-table
        reference (it exists solely for the O(1) ``matches`` fast path,
        which only the fitting process performs)."""
        state = dict(self.__dict__)
        state["_source"] = None
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cards = {a: self.card(a) for a in self.names}
        return f"TableEncoding({self.n_rows} rows, cards={cards})"
