"""Column and table profiling: the "look before you clean" step.

Figure 2's pipeline starts from an *observed* dataset the user barely
knows.  Profiling answers the questions that come before constraint
authoring and network review: what does each column look like
(cardinality, nulls, lengths, dominant formats), and which attribute
pairs behave like FDs (the dependencies the BN construction should
find)?  The CLI's ``profile`` subcommand and the bring-your-own-CSV
example are thin layers over this module.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from repro.bayesnet.cpt import cell_key
from repro.dataset.table import Cell, Table, is_null
from repro.text.patterns import value_mask


@dataclass
class ColumnProfile:
    """Summary statistics of one column."""

    name: str
    attr_type: str
    n_values: int
    n_nulls: int
    n_distinct: int
    min_length: int
    max_length: int
    entropy: float
    top_values: list[tuple[Cell, int]]
    dominant_mask: str | None
    mask_coverage: float

    @property
    def null_fraction(self) -> float:
        """Fraction of the column that is NULL."""
        return self.n_nulls / self.n_values if self.n_values else 0.0

    @property
    def is_key_like(self) -> bool:
        """Whether the column looks like a key (all values distinct)."""
        non_null = self.n_values - self.n_nulls
        return non_null > 0 and self.n_distinct == non_null


@dataclass
class FDCandidate:
    """One observed near-functional dependency ``lhs → rhs``."""

    lhs: str
    rhs: str
    support: int
    violations: int

    @property
    def confidence(self) -> float:
        """Fraction of lhs-groups whose rhs is single-valued (weighted)."""
        total = self.support + self.violations
        return self.support / total if total else 0.0

    def __str__(self) -> str:
        return (
            f"{self.lhs} -> {self.rhs} "
            f"(confidence {self.confidence:.3f}, {self.violations} violations)"
        )


@dataclass
class TableProfile:
    """Profile of a whole table: per-column stats + FD candidates."""

    n_rows: int
    n_cols: int
    columns: list[ColumnProfile] = field(default_factory=list)
    fd_candidates: list[FDCandidate] = field(default_factory=list)

    def column(self, name: str) -> ColumnProfile:
        """Profile of one column by name."""
        for c in self.columns:
            if c.name == name:
                return c
        raise KeyError(f"no column {name!r} in profile")

    def render(self) -> str:
        """Fixed-width text report."""
        lines = [f"{self.n_rows} rows x {self.n_cols} columns"]
        header = (
            f"{'column':<24} {'type':<12} {'distinct':>8} {'nulls':>6} "
            f"{'entropy':>8} {'len':>9}  dominant mask"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for c in self.columns:
            length = f"{c.min_length}..{c.max_length}"
            mask = c.dominant_mask or "-"
            lines.append(
                f"{c.name:<24} {c.attr_type:<12} {c.n_distinct:>8} "
                f"{c.n_nulls:>6} {c.entropy:>8.2f} {length:>9}  "
                f"{mask} ({c.mask_coverage:.0%})"
            )
        if self.fd_candidates:
            lines.append("")
            lines.append("FD candidates (min confidence reached):")
            for fd in self.fd_candidates:
                lines.append(f"  {fd}")
        return "\n".join(lines)


def profile_column(name: str, attr_type: str, values: Sequence[Cell]) -> ColumnProfile:
    """Summarise one column."""
    counts: Counter = Counter()
    n_nulls = 0
    lengths: list[int] = []
    masks: Counter = Counter()
    for v in values:
        if is_null(v):
            n_nulls += 1
            continue
        counts[cell_key(v)] += 1
        s = str(v)
        lengths.append(len(s))
        masks[value_mask(v, compress=True)] += 1

    n_non_null = len(values) - n_nulls
    entropy = 0.0
    for c in counts.values():
        p = c / n_non_null
        entropy -= p * math.log2(p)

    if masks:
        dominant_mask, dominant_count = masks.most_common(1)[0]
        mask_coverage = dominant_count / n_non_null
    else:
        dominant_mask, mask_coverage = None, 0.0

    return ColumnProfile(
        name=name,
        attr_type=attr_type,
        n_values=len(values),
        n_nulls=n_nulls,
        n_distinct=len(counts),
        min_length=min(lengths) if lengths else 0,
        max_length=max(lengths) if lengths else 0,
        entropy=entropy,
        top_values=counts.most_common(5),
        dominant_mask=dominant_mask,
        mask_coverage=mask_coverage,
    )


def fd_candidates(
    table: Table,
    min_confidence: float = 0.95,
    max_lhs_distinct_fraction: float = 0.9,
) -> list[FDCandidate]:
    """Near-FDs ``lhs → rhs`` observed in the data.

    For each ordered attribute pair, rows are grouped by the lhs value;
    within each group the majority rhs value counts as support and every
    other row as a violation (the softened-FD view of §4, at the level
    of exact counts).  Key-like lhs columns are skipped: a column with
    (almost) all-distinct values trivially "determines" everything.
    """
    names = table.schema.names
    n = table.n_rows
    out: list[FDCandidate] = []
    columns = {
        a: [cell_key(v) for v in table.column(a)] for a in names
    }
    for lhs in names:
        lcol = columns[lhs]
        non_null = [v for v in lcol if not is_null(v)]
        if not non_null:
            continue
        if len(set(non_null)) > max_lhs_distinct_fraction * len(non_null):
            continue  # key-like: trivial FDs only
        groups: dict[object, list[int]] = {}
        for i, v in enumerate(lcol):
            if not is_null(v):
                groups.setdefault(v, []).append(i)
        for rhs in names:
            if rhs == lhs:
                continue
            rcol = columns[rhs]
            support = 0
            violations = 0
            for rows in groups.values():
                counter = Counter(rcol[i] for i in rows)
                majority = counter.most_common(1)[0][1]
                support += majority
                violations += sum(counter.values()) - majority
            candidate = FDCandidate(lhs, rhs, support, violations)
            if candidate.confidence >= min_confidence:
                out.append(candidate)
    out.sort(key=lambda fd: (-fd.confidence, fd.lhs, fd.rhs))
    return out


def profile_table(
    table: Table,
    min_fd_confidence: float = 0.95,
    include_fds: bool = True,
) -> TableProfile:
    """Profile every column and (optionally) mine FD candidates."""
    columns = [
        profile_column(
            attr,
            table.schema.attribute(attr).attr_type.value,
            table.column(attr),
        )
        for attr in table.schema.names
    ]
    fds = (
        fd_candidates(table, min_confidence=min_fd_confidence)
        if include_fds
        else []
    )
    return TableProfile(
        n_rows=table.n_rows,
        n_cols=table.n_cols,
        columns=columns,
        fd_candidates=fds,
    )
