"""Sharded fit: parallel co-occurrence pair builds and CPT count passes.

PRs 1–2 made ``clean()`` columnar and sharded; this module does the same
for the two row-pass-heavy pieces of ``fit()``:

- **per-attribute-pair co-occurrence builds** (Algorithm 2): the
  ``m·(m−1)/2`` unordered pairs are independent, and each is one
  :func:`~repro.core.cooccurrence.build_pair_arrays` call over the coded
  columns;
- **per-node CPT count passes**: each family's distinct
  *(parent-configuration, value)* counts are one
  :func:`~repro.stats.infotheory.joint_code_counts` call — also
  independent per node.  Single-parent families are *not* dispatched:
  the engine re-slices them from the pair arrays built above (see
  :meth:`~repro.bayesnet.model.DiscreteBayesNet.fit_columnar`), so their
  counting cost is zero.

Both task kinds are planned by the same cost-balanced
:func:`~repro.exec.planner.plan_shards` used for cleaning (cost ∝ rows ×
columns touched) and executed through the same session-scoped backends.
The state follows the session split of :mod:`repro.exec.state`: the
:class:`FitJobState` snapshot holds only the **static** coded column
arrays (plus cardinalities and row weights), shipped to process workers
once per :class:`~repro.exec.session.ExecSession`; each job's task
table travels as a tiny per-dispatch :class:`FitTasks` payload.  One
engine ``fit()`` therefore runs its pair job *and* its CPT job on the
same warm pool, shipping the coded columns once.  Results are merged
deterministically by task index — so the assembled statistics are
byte-identical to the serial build for every backend and shard count
(the worker runs the *same* numpy calls on the same arrays; only the
schedule differs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.cooccurrence import PairArrays, build_pair_arrays
from repro.errors import CleaningError
from repro.exec.planner import (
    AUTO_FIT_COST_THRESHOLD,
    OVERSUBSCRIBE,
    Shard,
    plan_shards,
    resolve_executor,
)
from repro.exec.session import ExecSession
from repro.stats.infotheory import joint_code_counts

#: planner "column" ids of the two fit task kinds
PAIR_TASKS = 0
CPT_TASKS = 1


@dataclass
class FitShardResult:
    """Payloads of one fit shard: one result tuple per task uid.

    For pair tasks the payload is ``(forward, reverse)``
    :class:`~repro.core.cooccurrence.PairArrays`; for CPT tasks it is
    the ``(uniq_cols, counts, first_rows)`` triple of
    :func:`~repro.stats.infotheory.joint_code_counts`.
    """

    shard_id: int
    column: int
    uids: np.ndarray
    payloads: list


@dataclass(frozen=True)
class FitTasks:
    """The per-dispatch payload of one fit job: its task tables.

    ``pair_tasks`` lists ``(j, k)`` column-index pairs (``j < k``) whose
    co-occurrence arrays to build; ``cpt_tasks`` lists
    ``(child, parents)`` column-index families whose distinct count
    arrays to extract.  Shard ``uids`` index into these tuples.
    """

    pair_tasks: tuple = ()
    cpt_tasks: tuple = ()


class FitJobState:
    """Picklable **static** snapshot of everything a fit worker needs.

    Parameters
    ----------
    columns:
        The coded columns in schema order (int64 arrays of equal
        length).
    cards:
        Build-time vocabulary cardinality per column.
    weights:
        Per-row confidence weights (Algorithm 2's +1 / −β).
    """

    def __init__(
        self,
        columns: Sequence[np.ndarray],
        cards: Sequence[int],
        weights: np.ndarray,
    ):
        self.columns = list(columns)
        self.cards = list(cards)
        self.weights = weights

    def run_shard(self, shard: Shard, tasks: FitTasks) -> FitShardResult:
        """Run one slice of pair builds or CPT count passes (a pure
        function of the snapshot plus the job's task table, like the
        cleaning kernel)."""
        payloads = []
        if shard.column == PAIR_TASKS:
            for uid in shard.uids.tolist():
                j, k = tasks.pair_tasks[uid]
                payloads.append(
                    build_pair_arrays(
                        self.columns[j],
                        self.cards[j],
                        self.columns[k],
                        self.cards[k],
                        self.weights,
                    )
                )
        elif shard.column == CPT_TASKS:
            for uid in shard.uids.tolist():
                child, parents = tasks.cpt_tasks[uid]
                payloads.append(
                    joint_code_counts(
                        [self.columns[child], *(self.columns[p] for p in parents)]
                    )
                )
        else:
            raise CleaningError(f"unknown fit task kind {shard.column}")
        return FitShardResult(shard.shard_id, shard.column, shard.uids, payloads)


def build_fit_state(
    encoding, names: Sequence[str], weights: np.ndarray
) -> FitJobState:
    """The static fit snapshot: coded columns, cardinalities, weights."""
    return FitJobState(
        [encoding.codes(a) for a in names],
        [encoding.card(a) for a in names],
        weights,
    )


def run_fit_job(
    state: FitJobState,
    pair_tasks: Sequence[tuple[int, int]],
    cpt_tasks: Sequence[tuple[int, tuple[int, ...]]],
    executor: str,
    n_jobs: int,
    session: ExecSession | None = None,
) -> tuple[list, list, dict]:
    """Plan, dispatch, and deterministically merge one fit job.

    Returns ``(pair_payloads, cpt_payloads, diagnostics)`` where the
    payload lists align with ``pair_tasks`` / ``cpt_tasks``.  Work is
    cut into cost-balanced shards (cost ∝ rows × columns a task
    touches) and dispatched through ``session`` — the caller's, so
    several jobs (the engine's pair build, then its CPT passes) reuse
    one warm pool and ship ``state`` once; an ephemeral session is
    opened and closed here when none is given.  Because every payload
    is scattered back by its task index, the merge is independent of
    backend, shard count, and completion order.

    ``executor="auto"`` resolves here, after planning: serial unless
    the plan's total rows-touched estimate clears
    :data:`~repro.exec.planner.AUTO_FIT_COST_THRESHOLD` (the resolved
    name lands in the diagnostics next to the requested one).
    """
    pair_tasks = list(pair_tasks)
    cpt_tasks = list(cpt_tasks)
    n_rows = len(state.weights)
    work = []
    if pair_tasks:
        costs = np.full(len(pair_tasks), 2.0 * n_rows, dtype=np.float64)
        work.append(
            (PAIR_TASKS, "__pairs__", np.arange(len(pair_tasks)), costs)
        )
    if cpt_tasks:
        costs = np.array(
            [n_rows * (1.0 + len(ps)) for _, ps in cpt_tasks],
            dtype=np.float64,
        )
        work.append(
            (CPT_TASKS, "__cpts__", np.arange(len(cpt_tasks)), costs)
        )
    hint = 1 if executor == "serial" else n_jobs * OVERSUBSCRIBE
    plan = plan_shards(work, hint)
    resolved = resolve_executor(
        executor,
        plan.total_cost,
        plan.n_shards,
        n_jobs,
        threshold=AUTO_FIT_COST_THRESHOLD,
    )
    own_session = session is None
    if session is None:
        session = ExecSession(state, n_jobs)
    elif session.state is not state:
        raise CleaningError("run_fit_job session wraps a different snapshot")
    if (
        executor == "auto"
        and resolved == "serial"
        and n_jobs > 1
        and plan.n_shards > 1
        and session.is_warm("process")
    ):
        # An earlier job of this session (the pair build) already paid
        # the pool spawn and the snapshot ship — a later job below the
        # threshold still wins by riding the warm workers rather than
        # idling them (mirrors the stream driver's sticky resolution).
        resolved = "process"
    try:
        # The job span wraps the dispatch (which the session nests its
        # own dispatch + shard spans inside) and carries the task mix,
        # so pair builds and per-node count passes are separable in the
        # trace; the counters make them visible in profile() too.
        with session.tracer.span(
            "fit.job",
            cat="fit",
            pair_tasks=len(pair_tasks),
            cpt_tasks=len(cpt_tasks),
            backend=resolved,
            n_shards=plan.n_shards,
        ):
            results = session.dispatch(
                resolved,
                FitTasks(tuple(pair_tasks), tuple(cpt_tasks)),
                plan.shards,
            )
        session.tracer.add_counter("fit_pair_tasks", len(pair_tasks))
        session.tracer.add_counter("fit_cpt_tasks", len(cpt_tasks))
        backend = session.backend(resolved)
    finally:
        if own_session:
            session.close()

    pair_payloads: list = [None] * len(pair_tasks)
    cpt_payloads: list = [None] * len(cpt_tasks)
    for result in results:
        target = pair_payloads if result.column == PAIR_TASKS else cpt_payloads
        for uid, payload in zip(result.uids.tolist(), result.payloads):
            if target[uid] is not None:
                raise CleaningError(
                    f"fit shard {result.shard_id} overlaps task {uid}"
                )
            target[uid] = payload
    if any(p is None for p in pair_payloads) or any(
        p is None for p in cpt_payloads
    ):
        raise CleaningError("fit plan left tasks unexecuted")

    diagnostics = {
        "fit_executor": resolved,
        "n_jobs": 1 if resolved == "serial" else n_jobs,
        "n_shards": plan.n_shards,
        "n_pair_tasks": len(pair_tasks),
        "n_cpt_tasks": len(cpt_tasks),
    }
    if executor == "auto":
        diagnostics["auto"] = True
    for flag in ("fell_back", "ran_serially", "pool_broken"):
        if getattr(backend, flag, False):
            key = "process_fallback" if flag == "fell_back" else flag
            diagnostics[key] = True
    if getattr(backend, "shm_used", False):
        diagnostics["shm"] = True
    return pair_payloads, cpt_payloads, diagnostics


def _resolve_state(
    session: ExecSession | None, encoding, names, weights
) -> FitJobState:
    """The snapshot a job runs against: the session's when one is
    given — verified against the caller's arguments so a session built
    over one table cannot silently count another's columns — a fresh
    one otherwise."""
    if session is None:
        return build_fit_state(encoding, names, weights)
    state = session.state
    if len(state.columns) != len(names) or not np.array_equal(
        state.weights, weights
    ):
        raise CleaningError(
            "fit session snapshot does not match the requested job "
            "(different columns or row weights)"
        )
    return state


def sharded_pair_arrays(
    encoding,
    names: Sequence[str],
    weights: np.ndarray,
    executor: str,
    n_jobs: int,
    session: ExecSession | None = None,
) -> tuple[dict[tuple[str, str], PairArrays], dict]:
    """Build every ordered pair's co-occurrence arrays via the backends.

    Returns the ``pair_arrays`` mapping
    :class:`~repro.core.cooccurrence.CooccurrenceIndex` accepts, plus
    the job diagnostics.  Pass the engine's fit ``session`` to run on
    its warm pool; otherwise an ephemeral one is used.
    """
    m = len(names)
    pair_tasks = [(j, k) for j in range(m) for k in range(j + 1, m)]
    state = _resolve_state(session, encoding, names, weights)
    pair_payloads, _, diag = run_fit_job(
        state, pair_tasks, (), executor, n_jobs, session=session
    )
    pairs: dict[tuple[str, str], PairArrays] = {}
    for (j, k), (forward, reverse) in zip(pair_tasks, pair_payloads):
        pairs[(names[j], names[k])] = forward
        pairs[(names[k], names[j])] = reverse
    return pairs, diag


def sharded_family_arrays(
    encoding,
    names: Sequence[str],
    families: Sequence[tuple[str, Sequence[str]]],
    weights: np.ndarray,
    executor: str,
    n_jobs: int,
    session: ExecSession | None = None,
) -> tuple[dict[str, tuple], dict]:
    """Extract the distinct family count arrays of ``families`` via the
    backends (the per-node half of the parallel fit).

    ``families`` lists ``(node, parents)`` in the order the caller wants
    them dispatched; the returned mapping feeds
    :meth:`~repro.bayesnet.model.DiscreteBayesNet.fit_columnar`.  Pass
    the engine's fit ``session`` to reuse the pool (and the coded
    columns already resident in its workers) from the pair job.
    """
    index_of = {a: j for j, a in enumerate(names)}
    cpt_tasks = [
        (index_of[node], tuple(index_of[p] for p in parents))
        for node, parents in families
    ]
    state = _resolve_state(session, encoding, names, weights)
    _, cpt_payloads, diag = run_fit_job(
        state, (), cpt_tasks, executor, n_jobs, session=session
    )
    return {
        node: payload
        for (node, _), payload in zip(families, cpt_payloads)
    }, diag
