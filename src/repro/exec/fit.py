"""Sharded fit: parallel co-occurrence pair builds and CPT count passes.

PRs 1–2 made ``clean()`` columnar and sharded; this module does the same
for the two row-pass-heavy pieces of ``fit()``:

- **per-attribute-pair co-occurrence builds** (Algorithm 2): the
  ``m·(m−1)/2`` unordered pairs are independent, and each is one
  :func:`~repro.core.cooccurrence.build_pair_arrays` call over the coded
  columns;
- **per-node CPT count passes**: each family's distinct
  *(parent-configuration, value)* counts are one
  :func:`~repro.stats.infotheory.joint_code_counts` call — also
  independent per node.  Single-parent families are *not* dispatched:
  the engine re-slices them from the pair arrays built above (see
  :meth:`~repro.bayesnet.model.DiscreteBayesNet.fit_columnar`), so their
  counting cost is zero.

Both task kinds are planned by the same cost-balanced
:func:`~repro.exec.planner.plan_shards` used for cleaning (cost ∝ rows ×
columns touched) and executed by the same
:func:`~repro.exec.backends.get_backend` worker backends; the
:class:`FitJobState` snapshot ships only the coded column arrays plus
the task tables, and results are merged deterministically by task index
— so the assembled statistics are byte-identical to the serial build for
every backend and shard count (the worker runs the *same* numpy calls on
the same arrays; only the schedule differs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.cooccurrence import PairArrays, build_pair_arrays
from repro.errors import CleaningError
from repro.exec.backends import get_backend
from repro.exec.planner import (
    AUTO_FIT_COST_THRESHOLD,
    OVERSUBSCRIBE,
    Shard,
    plan_shards,
    resolve_executor,
)
from repro.stats.infotheory import joint_code_counts

#: planner "column" ids of the two fit task kinds
PAIR_TASKS = 0
CPT_TASKS = 1


@dataclass
class FitShardResult:
    """Payloads of one fit shard: one result tuple per task uid.

    For pair tasks the payload is ``(forward, reverse)``
    :class:`~repro.core.cooccurrence.PairArrays`; for CPT tasks it is
    the ``(uniq_cols, counts, first_rows)`` triple of
    :func:`~repro.stats.infotheory.joint_code_counts`.
    """

    shard_id: int
    column: int
    uids: np.ndarray
    payloads: list


class FitJobState:
    """Picklable snapshot of everything a fit worker needs.

    Parameters
    ----------
    columns:
        The coded columns in schema order (int64 arrays of equal
        length).
    cards:
        Build-time vocabulary cardinality per column.
    weights:
        Per-row confidence weights (Algorithm 2's +1 / −β).
    pair_tasks:
        ``(j, k)`` column-index pairs (``j < k``) whose co-occurrence
        arrays to build.
    cpt_tasks:
        ``(child, parents)`` column-index families whose distinct count
        arrays to extract.
    """

    def __init__(
        self,
        columns: Sequence[np.ndarray],
        cards: Sequence[int],
        weights: np.ndarray,
        pair_tasks: Sequence[tuple[int, int]],
        cpt_tasks: Sequence[tuple[int, tuple[int, ...]]],
    ):
        self.columns = list(columns)
        self.cards = list(cards)
        self.weights = weights
        self.pair_tasks = list(pair_tasks)
        self.cpt_tasks = list(cpt_tasks)

    def run_shard(self, shard: Shard) -> FitShardResult:
        """Run one slice of pair builds or CPT count passes (a pure
        function of the snapshot, like the cleaning kernel)."""
        payloads = []
        if shard.column == PAIR_TASKS:
            for uid in shard.uids.tolist():
                j, k = self.pair_tasks[uid]
                payloads.append(
                    build_pair_arrays(
                        self.columns[j],
                        self.cards[j],
                        self.columns[k],
                        self.cards[k],
                        self.weights,
                    )
                )
        elif shard.column == CPT_TASKS:
            for uid in shard.uids.tolist():
                child, parents = self.cpt_tasks[uid]
                payloads.append(
                    joint_code_counts(
                        [self.columns[child], *(self.columns[p] for p in parents)]
                    )
                )
        else:
            raise CleaningError(f"unknown fit task kind {shard.column}")
        return FitShardResult(shard.shard_id, shard.column, shard.uids, payloads)


def run_fit_job(
    state: FitJobState, executor: str, n_jobs: int
) -> tuple[list, list, dict]:
    """Plan, dispatch, and deterministically merge all fit tasks.

    Returns ``(pair_payloads, cpt_payloads, diagnostics)`` where the
    payload lists align with ``state.pair_tasks`` / ``state.cpt_tasks``.
    Work is cut into cost-balanced shards (cost ∝ rows × columns a task
    touches) and run by the configured backend; because every payload is
    scattered back by its task index, the merge is independent of
    backend, shard count, and completion order.

    ``executor="auto"`` resolves here, after planning: serial unless
    the plan's total rows-touched estimate clears
    :data:`~repro.exec.planner.AUTO_FIT_COST_THRESHOLD` (the resolved
    name lands in the diagnostics next to the requested one).
    """
    n_rows = len(state.weights)
    work = []
    if state.pair_tasks:
        costs = np.full(len(state.pair_tasks), 2.0 * n_rows, dtype=np.float64)
        work.append(
            (PAIR_TASKS, "__pairs__", np.arange(len(state.pair_tasks)), costs)
        )
    if state.cpt_tasks:
        costs = np.array(
            [n_rows * (1.0 + len(ps)) for _, ps in state.cpt_tasks],
            dtype=np.float64,
        )
        work.append(
            (CPT_TASKS, "__cpts__", np.arange(len(state.cpt_tasks)), costs)
        )
    hint = 1 if executor == "serial" else n_jobs * OVERSUBSCRIBE
    plan = plan_shards(work, hint)
    resolved = resolve_executor(
        executor,
        plan.total_cost,
        plan.n_shards,
        n_jobs,
        threshold=AUTO_FIT_COST_THRESHOLD,
    )
    backend = get_backend(resolved, n_jobs)
    results = backend.run(state, plan.shards)

    pair_payloads: list = [None] * len(state.pair_tasks)
    cpt_payloads: list = [None] * len(state.cpt_tasks)
    for result in results:
        target = pair_payloads if result.column == PAIR_TASKS else cpt_payloads
        for uid, payload in zip(result.uids.tolist(), result.payloads):
            if target[uid] is not None:
                raise CleaningError(
                    f"fit shard {result.shard_id} overlaps task {uid}"
                )
            target[uid] = payload
    if any(p is None for p in pair_payloads) or any(
        p is None for p in cpt_payloads
    ):
        raise CleaningError("fit plan left tasks unexecuted")

    diagnostics = {
        "fit_executor": resolved,
        "n_jobs": 1 if resolved == "serial" else n_jobs,
        "n_shards": plan.n_shards,
        "n_pair_tasks": len(state.pair_tasks),
        "n_cpt_tasks": len(state.cpt_tasks),
    }
    if executor == "auto":
        diagnostics["auto"] = True
    if getattr(backend, "fell_back", False):
        diagnostics["process_fallback"] = True
    if getattr(backend, "ran_serially", False):
        diagnostics["ran_serially"] = True
    if getattr(backend, "shm_used", False):
        diagnostics["shm"] = True
    return pair_payloads, cpt_payloads, diagnostics


def sharded_pair_arrays(
    encoding,
    names: Sequence[str],
    weights: np.ndarray,
    executor: str,
    n_jobs: int,
) -> tuple[dict[tuple[str, str], PairArrays], dict]:
    """Build every ordered pair's co-occurrence arrays via the backends.

    Returns the ``pair_arrays`` mapping
    :class:`~repro.core.cooccurrence.CooccurrenceIndex` accepts, plus
    the job diagnostics.
    """
    m = len(names)
    pair_tasks = [(j, k) for j in range(m) for k in range(j + 1, m)]
    state = FitJobState(
        [encoding.codes(a) for a in names],
        [encoding.card(a) for a in names],
        weights,
        pair_tasks,
        (),
    )
    pair_payloads, _, diag = run_fit_job(state, executor, n_jobs)
    pairs: dict[tuple[str, str], PairArrays] = {}
    for (j, k), (forward, reverse) in zip(pair_tasks, pair_payloads):
        pairs[(names[j], names[k])] = forward
        pairs[(names[k], names[j])] = reverse
    return pairs, diag


def sharded_family_arrays(
    encoding,
    names: Sequence[str],
    families: Sequence[tuple[str, Sequence[str]]],
    weights: np.ndarray,
    executor: str,
    n_jobs: int,
) -> tuple[dict[str, tuple], dict]:
    """Extract the distinct family count arrays of ``families`` via the
    backends (the per-node half of the parallel fit).

    ``families`` lists ``(node, parents)`` in the order the caller wants
    them dispatched; the returned mapping feeds
    :meth:`~repro.bayesnet.model.DiscreteBayesNet.fit_columnar`.
    """
    index_of = {a: j for j, a in enumerate(names)}
    cpt_tasks = [
        (index_of[node], tuple(index_of[p] for p in parents))
        for node, parents in families
    ]
    state = FitJobState(
        [encoding.codes(a) for a in names],
        [encoding.card(a) for a in names],
        weights,
        (),
        cpt_tasks,
    )
    _, cpt_payloads, diag = run_fit_job(state, executor, n_jobs)
    return {
        node: payload
        for (node, _), payload in zip(families, cpt_payloads)
    }, diag
