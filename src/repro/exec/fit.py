"""Sharded fit: parallel co-occurrence pair builds, CPT count passes,
MMPC scans, and family-score evaluations.

PRs 1–2 made ``clean()`` columnar and sharded; this module does the same
for the row-pass-heavy pieces of ``fit()``:

- **per-attribute-pair co-occurrence builds** (Algorithm 2): the
  ``m·(m−1)/2`` unordered pairs are independent, and each is one
  :func:`~repro.core.cooccurrence.build_pair_arrays` call over the coded
  columns;
- **per-node CPT count passes**: each family's distinct
  *(parent-configuration, value)* counts are one
  :func:`~repro.stats.infotheory.joint_code_counts` call — also
  independent per node.  Single-parent families are *not* dispatched:
  the engine re-slices them from the pair arrays built above (see
  :meth:`~repro.bayesnet.model.DiscreteBayesNet.fit_columnar`), so their
  counting cost is zero;
- **per-target MMPC scans** (structure search phase 1): each target's
  grow/shrink loop touches a cache whose keys all start with that
  target, so the per-target runs are embarrassingly parallel — workers
  build a fresh :class:`~repro.bayesnet.structure.mmhc._AssocCache` from
  the coded columns and return ``(cpc, tests, memo items)``; the driver
  absorbs the memos so its cache holds exactly what a shared serial one
  would;
- **family-score evaluations** (structure search phase 2): hill-climbing
  prefetches each sweep's uncached family keys and scores them
  worker-side via the very same group-score functions
  (:func:`~repro.bayesnet.structure.scores.bic_group_score` and
  friends) the driver classes delegate to — identical float operation
  sequence, bit-identical values.

All task kinds are planned by the same cost-balanced
:func:`~repro.exec.planner.plan_shards` used for cleaning (cost ∝ rows ×
columns touched) and executed through the same session-scoped backends.
The state follows the session split of :mod:`repro.exec.state`: the
:class:`FitJobState` snapshot holds only the **static** coded column
arrays (plus cardinalities, row weights, and — for deduplicated streams
— row multiplicities and first-appearance indices), shipped to process
workers once per :class:`~repro.exec.session.ExecSession`; each job's
task table travels as a tiny per-dispatch :class:`FitTasks` payload.
One engine ``fit()`` therefore runs its pair job, its structure jobs,
*and* its CPT job on the same warm pool, shipping the coded columns
once.  Results are merged deterministically by task index — so the
assembled statistics are byte-identical to the serial build for every
backend and shard count (the worker runs the *same* numpy calls on the
same arrays; only the schedule differs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.cooccurrence import (
    PairArrays,
    build_pair_arrays,
    build_pair_arrays_stream,
)
from repro.errors import CleaningError
from repro.exec.planner import (
    AUTO_FIT_COST_THRESHOLD,
    OVERSUBSCRIBE,
    Shard,
    plan_shards,
    resolve_executor,
)
from repro.exec.session import ExecSession
from repro.stats.infotheory import joint_code_counts

#: planner "column" ids of the fit task kinds
PAIR_TASKS = 0
CPT_TASKS = 1
MMPC_TASKS = 2
SCORE_TASKS = 3


@dataclass
class FitShardResult:
    """Payloads of one fit shard: one result tuple per task uid.

    For pair tasks the payload is ``(forward, reverse)``
    :class:`~repro.core.cooccurrence.PairArrays`; for CPT tasks it is
    the ``(uniq_cols, counts, first_rows)`` triple of
    :func:`~repro.stats.infotheory.joint_code_counts`; for MMPC tasks it
    is ``(sorted cpc members, n_tests, memo items)``; for score tasks it
    is the family-score float.
    """

    shard_id: int
    column: int
    uids: np.ndarray
    payloads: list


@dataclass(frozen=True)
class FitTasks:
    """The per-dispatch payload of one fit job: its task tables.

    ``pair_tasks`` lists ``(j, k)`` column-index pairs (``j < k``) whose
    co-occurrence arrays to build; ``cpt_tasks`` lists
    ``(child, parents)`` column-index families whose distinct count
    arrays to extract; ``mmpc_tasks`` lists target attribute *names*
    whose CPC sets to grow (with ``mmpc_params = (alpha,
    max_condition)``); ``score_tasks`` lists ``(node, parents)`` name
    families to score (with ``score_params = (kind, ess, n_rows)``).
    Shard ``uids`` index into these tuples.
    """

    pair_tasks: tuple = ()
    cpt_tasks: tuple = ()
    mmpc_tasks: tuple = ()
    score_tasks: tuple = ()
    mmpc_params: tuple = ()
    score_params: tuple = ()


class FitJobState:
    """Picklable **static** snapshot of everything a fit worker needs.

    Parameters
    ----------
    columns:
        The coded columns in schema order (int64 arrays of equal
        length).
    cards:
        Build-time vocabulary cardinality per column.
    weights:
        Per-row confidence weights (Algorithm 2's +1 / −β).
    names:
        Attribute names aligned with ``columns`` (required by the
        name-keyed structure-search tasks).
    row_counts / row_firsts / n_rows:
        Deduplicated-stream form (:mod:`repro.exec.fit_stream`): the
        columns then hold the stream's distinct rows, row ``i`` counted
        ``row_counts[i]`` times and first seen at global stream index
        ``row_firsts[i]``, out of ``n_rows`` total.  ``None`` for a
        plain whole-table fit.
    """

    def __init__(
        self,
        columns: Sequence[np.ndarray],
        cards: Sequence[int],
        weights: np.ndarray,
        names: Sequence[str] | None = None,
        row_counts: np.ndarray | None = None,
        row_firsts: np.ndarray | None = None,
        n_rows: int | None = None,
    ):
        self.columns = list(columns)
        self.cards = list(cards)
        self.weights = weights
        self.names = list(names) if names is not None else None
        self.row_counts = row_counts
        self.row_firsts = row_firsts
        self.n_rows = int(n_rows) if n_rows is not None else len(weights)

    def run_shard(self, shard: Shard, tasks: FitTasks) -> FitShardResult:
        """Run one slice of fit tasks (a pure function of the snapshot
        plus the job's task table, like the cleaning kernel)."""
        payloads = []
        if shard.column == PAIR_TASKS:
            for uid in shard.uids.tolist():
                j, k = tasks.pair_tasks[uid]
                if self.row_counts is None:
                    built = build_pair_arrays(
                        self.columns[j],
                        self.cards[j],
                        self.columns[k],
                        self.cards[k],
                        self.weights,
                    )
                else:
                    built = build_pair_arrays_stream(
                        self.columns[j],
                        self.cards[j],
                        self.columns[k],
                        self.cards[k],
                        self.weights,
                        self.row_counts,
                        self.row_firsts,
                    )
                payloads.append(built)
        elif shard.column == CPT_TASKS:
            for uid in shard.uids.tolist():
                child, parents = tasks.cpt_tasks[uid]
                payloads.append(
                    joint_code_counts(
                        [self.columns[child], *(self.columns[p] for p in parents)],
                        row_counts=self.row_counts,
                        row_firsts=self.row_firsts,
                    )
                )
        elif shard.column == MMPC_TASKS:
            # Worker-side import: the structure package is only needed
            # by structure jobs, and importing it lazily keeps the
            # exec layer's import graph acyclic.
            from repro.bayesnet.structure.mmhc import _AssocCache, _mmpc_core

            alpha, max_condition = tasks.mmpc_params
            columns = dict(zip(self.names, self.columns))
            for uid in shard.uids.tolist():
                target = tasks.mmpc_tasks[uid]
                cache = _AssocCache.from_columns(
                    columns,
                    alpha,
                    max_condition,
                    row_counts=self.row_counts,
                )
                members = sorted(_mmpc_core(self.names, target, cache))
                payloads.append(
                    (members, cache.tests, list(cache._cache.items()))
                )
        elif shard.column == SCORE_TASKS:
            from repro.bayesnet.structure.scores import (
                bdeu_group_score,
                bic_group_score,
                family_group_counts,
                k2_group_score,
            )

            kind, ess, n_rows = tasks.score_params
            index_of = {a: j for j, a in enumerate(self.names)}
            for uid in shard.uids.tolist():
                node, parents = tasks.score_tasks[uid]
                child = self.columns[index_of[node]]
                groups = family_group_counts(
                    [child, *(self.columns[index_of[p]] for p in parents)],
                    row_counts=self.row_counts,
                    row_firsts=self.row_firsts,
                )
                r = len(np.unique(child))
                if kind == "bic":
                    value = bic_group_score(groups, r, n_rows)
                elif kind == "k2":
                    value = k2_group_score(groups, r)
                elif kind == "bdeu":
                    value = bdeu_group_score(groups, r, ess)
                else:
                    raise CleaningError(f"unknown score kind {kind!r}")
                payloads.append(value)
        else:
            raise CleaningError(f"unknown fit task kind {shard.column}")
        return FitShardResult(shard.shard_id, shard.column, shard.uids, payloads)


def build_fit_state(
    encoding,
    names: Sequence[str],
    weights: np.ndarray,
    row_counts: np.ndarray | None = None,
    row_firsts: np.ndarray | None = None,
    n_rows: int | None = None,
) -> FitJobState:
    """The static fit snapshot: coded columns, cardinalities, weights,
    and (for deduplicated streams) multiplicities."""
    return FitJobState(
        [encoding.codes(a) for a in names],
        [encoding.card(a) for a in names],
        weights,
        names=names,
        row_counts=row_counts,
        row_firsts=row_firsts,
        n_rows=n_rows,
    )


def _dispatch_job(
    state: FitJobState,
    tasks: FitTasks,
    work: list,
    sizes: dict[int, int],
    executor: str,
    n_jobs: int,
    session: ExecSession | None,
    span_kwargs: dict,
    counters: dict[str, int],
) -> tuple[dict[int, list], dict]:
    """Plan, dispatch, and deterministically merge one fit job.

    The shared engine behind :func:`run_fit_job`, :func:`run_mmpc_job`,
    and :func:`run_score_job`: cost-balanced shard planning, ``auto``
    resolution (with the sticky warm-pool upgrade), session ownership,
    the ``fit.job`` span, and the by-task-index merge that makes every
    job's output independent of backend, shard count, and completion
    order.  Returns ``(payloads by task kind, diagnostics)``.
    """
    hint = 1 if executor == "serial" else n_jobs * OVERSUBSCRIBE
    plan = plan_shards(work, hint)
    resolved = resolve_executor(
        executor,
        plan.total_cost,
        plan.n_shards,
        n_jobs,
        threshold=AUTO_FIT_COST_THRESHOLD,
    )
    own_session = session is None
    if session is None:
        session = ExecSession(state, n_jobs)
    elif session.state is not state:
        raise CleaningError("run_fit_job session wraps a different snapshot")
    if (
        executor == "auto"
        and resolved == "serial"
        and n_jobs > 1
        and plan.n_shards > 1
        and session.is_warm("process")
    ):
        # An earlier job of this session (the pair build) already paid
        # the pool spawn and the snapshot ship — a later job below the
        # threshold still wins by riding the warm workers rather than
        # idling them (mirrors the stream driver's sticky resolution).
        resolved = "process"
    try:
        # The job span wraps the dispatch (which the session nests its
        # own dispatch + shard spans inside) and carries the task mix,
        # so the job kinds are separable in the trace; the counters make
        # them visible in profile() too.
        with session.tracer.span(
            "fit.job",
            cat="fit",
            backend=resolved,
            n_shards=plan.n_shards,
            **span_kwargs,
        ):
            results = session.dispatch(resolved, tasks, plan.shards)
        for name, value in counters.items():
            session.tracer.add_counter(name, value)
        backend = session.backend(resolved)
    finally:
        if own_session:
            session.close()

    payloads: dict[int, list] = {
        kind: [None] * n for kind, n in sizes.items()
    }
    for result in results:
        target = payloads[result.column]
        for uid, payload in zip(result.uids.tolist(), result.payloads):
            if target[uid] is not None:
                raise CleaningError(
                    f"fit shard {result.shard_id} overlaps task {uid}"
                )
            target[uid] = payload
    if any(p is None for plist in payloads.values() for p in plist):
        raise CleaningError("fit plan left tasks unexecuted")

    diagnostics = {
        "fit_executor": resolved,
        "n_jobs": 1 if resolved == "serial" else n_jobs,
        "n_shards": plan.n_shards,
    }
    for kind, n in sizes.items():
        diagnostics[_TASK_COUNT_KEYS[kind]] = n
    if executor == "auto":
        diagnostics["auto"] = True
    for flag in ("fell_back", "ran_serially", "pool_broken"):
        if getattr(backend, flag, False):
            key = "process_fallback" if flag == "fell_back" else flag
            diagnostics[key] = True
    if diagnostics.get("ran_serially"):
        reason = getattr(backend, "serial_reason", None)
        if reason:
            diagnostics["ran_serially_reason"] = reason
    if getattr(backend, "shm_used", False):
        diagnostics["shm"] = True
    return payloads, diagnostics


_TASK_COUNT_KEYS = {
    PAIR_TASKS: "n_pair_tasks",
    CPT_TASKS: "n_cpt_tasks",
    MMPC_TASKS: "n_mmpc_tasks",
    SCORE_TASKS: "n_score_tasks",
}


def run_fit_job(
    state: FitJobState,
    pair_tasks: Sequence[tuple[int, int]],
    cpt_tasks: Sequence[tuple[int, tuple[int, ...]]],
    executor: str,
    n_jobs: int,
    session: ExecSession | None = None,
) -> tuple[list, list, dict]:
    """Plan, dispatch, and deterministically merge one counting job.

    Returns ``(pair_payloads, cpt_payloads, diagnostics)`` where the
    payload lists align with ``pair_tasks`` / ``cpt_tasks``.  Work is
    cut into cost-balanced shards (cost ∝ rows × columns a task
    touches) and dispatched through ``session`` — the caller's, so
    several jobs (the engine's pair build, then its CPT passes) reuse
    one warm pool and ship ``state`` once; an ephemeral session is
    opened and closed here when none is given.  Because every payload
    is scattered back by its task index, the merge is independent of
    backend, shard count, and completion order.

    ``executor="auto"`` resolves here, after planning: serial unless
    the plan's total rows-touched estimate clears
    :data:`~repro.exec.planner.AUTO_FIT_COST_THRESHOLD` (the resolved
    name lands in the diagnostics next to the requested one).
    """
    pair_tasks = list(pair_tasks)
    cpt_tasks = list(cpt_tasks)
    n_rows = len(state.weights)
    work = []
    if pair_tasks:
        costs = np.full(len(pair_tasks), 2.0 * n_rows, dtype=np.float64)
        work.append(
            (PAIR_TASKS, "__pairs__", np.arange(len(pair_tasks)), costs)
        )
    if cpt_tasks:
        costs = np.array(
            [n_rows * (1.0 + len(ps)) for _, ps in cpt_tasks],
            dtype=np.float64,
        )
        work.append(
            (CPT_TASKS, "__cpts__", np.arange(len(cpt_tasks)), costs)
        )
    payloads, diagnostics = _dispatch_job(
        state,
        FitTasks(tuple(pair_tasks), tuple(cpt_tasks)),
        work,
        {PAIR_TASKS: len(pair_tasks), CPT_TASKS: len(cpt_tasks)},
        executor,
        n_jobs,
        session,
        {"pair_tasks": len(pair_tasks), "cpt_tasks": len(cpt_tasks)},
        {
            "fit_pair_tasks": len(pair_tasks),
            "fit_cpt_tasks": len(cpt_tasks),
        },
    )
    return payloads[PAIR_TASKS], payloads[CPT_TASKS], diagnostics


def run_mmpc_job(
    state: FitJobState,
    targets: Sequence[str],
    alpha: float,
    max_condition: int,
    executor: str,
    n_jobs: int,
    session: ExecSession | None = None,
    tracer=None,
) -> tuple[list, dict]:
    """Run the per-target MMPC scans of the structure search as a fit
    job over the session backends.

    Returns ``(results, diagnostics)`` with one ``(sorted cpc members,
    n_tests, memo items)`` tuple per target, aligned with ``targets``.
    Each worker grows one target's CPC set with a fresh association
    cache over the snapshot's coded columns — per-target caches are
    exact because every memo key an MMPC run produces starts with its
    target, so nothing is shared across targets in the serial path
    either.  The driver absorbs the returned memo items, ending up with
    the same cache a shared serial run would hold.
    """
    if state.names is None:
        raise CleaningError("MMPC job needs a named fit snapshot")
    targets = list(targets)
    n_rows = len(state.weights)
    m = len(state.columns)
    # Every target's scan probes G² tests over all other columns; the
    # per-target cost is flat in expectation, rows × columns.
    costs = np.full(len(targets), float(n_rows) * m, dtype=np.float64)
    work = [(MMPC_TASKS, "__mmpc__", np.arange(len(targets)), costs)]
    payloads, diagnostics = _dispatch_job(
        state,
        FitTasks(
            mmpc_tasks=tuple(targets),
            mmpc_params=(alpha, max_condition),
        ),
        work,
        {MMPC_TASKS: len(targets)},
        executor,
        n_jobs,
        session,
        {"mmpc_tasks": len(targets)},
        {"fit_mmpc_tasks": len(targets)},
    )
    return payloads[MMPC_TASKS], diagnostics


def run_score_job(
    state: FitJobState,
    keys: Sequence[tuple[str, tuple[str, ...]]],
    kind: str,
    ess: float,
    n_rows: int,
    executor: str,
    n_jobs: int,
    session: ExecSession | None = None,
    tracer=None,
) -> tuple[list, dict]:
    """Evaluate family scores ``(node, sorted parents)`` as a fit job.

    Returns ``(values, diagnostics)`` with one float per key, aligned
    with ``keys``.  Workers group family counts with
    :func:`~repro.bayesnet.structure.scores.family_group_counts` and
    apply the same module-level group-score function the driver classes
    delegate to — the identical float operation sequence, so a
    prefetched score primed into the scorer cache is bit-identical to
    the one the driver would have computed.  ``n_rows`` is the score
    normaliser (the stream total for deduplicated streams, the table
    row count otherwise).
    """
    if state.names is None:
        raise CleaningError("score job needs a named fit snapshot")
    keys = list(keys)
    d = len(state.weights)
    costs = np.array(
        [d * (1.0 + len(parents)) for _, parents in keys], dtype=np.float64
    )
    work = [(SCORE_TASKS, "__scores__", np.arange(len(keys)), costs)]
    payloads, diagnostics = _dispatch_job(
        state,
        FitTasks(
            score_tasks=tuple(keys),
            score_params=(kind, float(ess), int(n_rows)),
        ),
        work,
        {SCORE_TASKS: len(keys)},
        executor,
        n_jobs,
        session,
        {"score_tasks": len(keys)},
        {"fit_score_tasks": len(keys)},
    )
    return payloads[SCORE_TASKS], diagnostics


def _resolve_state(
    session: ExecSession | None, encoding, names, weights
) -> FitJobState:
    """The snapshot a job runs against: the session's when one is
    given — verified against the caller's arguments so a session built
    over one table cannot silently count another's columns — a fresh
    one otherwise."""
    if session is None:
        return build_fit_state(encoding, names, weights)
    state = session.state
    if len(state.columns) != len(names) or not np.array_equal(
        state.weights, weights
    ):
        raise CleaningError(
            "fit session snapshot does not match the requested job "
            "(different columns or row weights)"
        )
    return state


def sharded_pair_arrays(
    encoding,
    names: Sequence[str],
    weights: np.ndarray,
    executor: str,
    n_jobs: int,
    session: ExecSession | None = None,
) -> tuple[dict[tuple[str, str], PairArrays], dict]:
    """Build every ordered pair's co-occurrence arrays via the backends.

    Returns the ``pair_arrays`` mapping
    :class:`~repro.core.cooccurrence.CooccurrenceIndex` accepts, plus
    the job diagnostics.  Pass the engine's fit ``session`` to run on
    its warm pool; otherwise an ephemeral one is used.  A session over a
    deduplicated-stream snapshot produces the weighted
    (:func:`~repro.core.cooccurrence.build_pair_arrays_stream`) arrays —
    byte-identical to building over the full stream.
    """
    m = len(names)
    pair_tasks = [(j, k) for j in range(m) for k in range(j + 1, m)]
    state = _resolve_state(session, encoding, names, weights)
    pair_payloads, _, diag = run_fit_job(
        state, pair_tasks, (), executor, n_jobs, session=session
    )
    pairs: dict[tuple[str, str], PairArrays] = {}
    for (j, k), (forward, reverse) in zip(pair_tasks, pair_payloads):
        pairs[(names[j], names[k])] = forward
        pairs[(names[k], names[j])] = reverse
    return pairs, diag


def sharded_family_arrays(
    encoding,
    names: Sequence[str],
    families: Sequence[tuple[str, Sequence[str]]],
    weights: np.ndarray,
    executor: str,
    n_jobs: int,
    session: ExecSession | None = None,
) -> tuple[dict[str, tuple], dict]:
    """Extract the distinct family count arrays of ``families`` via the
    backends (the per-node half of the parallel fit).

    ``families`` lists ``(node, parents)`` in the order the caller wants
    them dispatched; the returned mapping feeds
    :meth:`~repro.bayesnet.model.DiscreteBayesNet.fit_columnar`.  Pass
    the engine's fit ``session`` to reuse the pool (and the coded
    columns already resident in its workers) from the pair job.
    """
    index_of = {a: j for j, a in enumerate(names)}
    cpt_tasks = [
        (index_of[node], tuple(index_of[p] for p in parents))
        for node, parents in families
    ]
    state = _resolve_state(session, encoding, names, weights)
    _, cpt_payloads, diag = run_fit_job(
        state, (), cpt_tasks, executor, n_jobs, session=session
    )
    return {
        node: payload
        for (node, _), payload in zip(families, cpt_payloads)
    }, diag
