"""Deterministic reassembly of per-shard — and per-chunk — results.

Every shard decides a disjoint set of (attribute, unique row signature)
competitions, so merging is pure scatter: write each shard's decision
arrays into the per-attribute buffers at its ``uids``.  No ordering of
the incoming results can change the outcome — the merged buffers, and
therefore the ``CleaningResult`` the engine emits from them (repairs are
broadcast row-major afterwards), are byte-identical to the serial
single-shard path regardless of backend, worker count, or completion
order.  The merge still *verifies* disjointness: a shard plan bug that
assigned one competition twice raises instead of silently letting the
racier write win.

The chunked pipeline (:mod:`repro.exec.stream`) adds a second, outer
merge level: each row chunk produces its own repair list (rows in
global row-major order within the chunk), and
:func:`concat_chunk_repairs` concatenates them in chunk order — with
the same paranoia, verifying that consecutive chunks cover
strictly-ascending row ranges so the concatenation equals the
whole-table row-major emission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.repairs import Repair
from repro.errors import CleaningError
from repro.exec.state import ShardResult


@dataclass
class MergedDecisions:
    """Per-attribute decision buffers plus aggregated work counters."""

    #: column index → per-unique-signature repair code (−1 = keep)
    decided: dict[int, np.ndarray] = field(default_factory=dict)
    #: column index → incumbent score per unique signature
    incumbent_scores: dict[int, np.ndarray] = field(default_factory=dict)
    #: column index → winner score per unique signature
    best_scores: dict[int, np.ndarray] = field(default_factory=dict)
    candidates_evaluated: int = 0
    candidates_filtered_uc: int = 0
    n_competitions: int = 0
    #: competitions answered from the session cache (no dispatch, no
    #: candidates evaluated — the effort counters above cover fresh
    #: work only)
    n_cached: int = 0


def merge_shard_results(
    results: Sequence[ShardResult],
    n_uniq: int,
    columns: Sequence[int],
    cached: Mapping[int, tuple] | None = None,
) -> MergedDecisions:
    """Scatter shard results — and cached decisions — into per-attribute
    buffers.

    ``columns`` lists every column the plan covered, so attributes whose
    competitions were all pruned away still get (empty) buffers and the
    broadcast loop stays uniform.  ``cached`` carries the chunk's
    session-cache hits per column as ``(uids, decided,
    incumbent_scores, best_scores)`` arrays (see
    :func:`repro.exec.planner.partition_cached`): they are spliced into
    the same buffers the fresh shard results scatter into, claiming
    their competitions first so the overlap check also catches a plan
    bug that dispatched an already-answered competition.
    """
    merged = MergedDecisions()
    claimed: dict[int, np.ndarray] = {}
    for j in columns:
        merged.decided[j] = np.full(n_uniq, -1, dtype=np.int64)
        merged.incumbent_scores[j] = np.zeros(n_uniq, dtype=np.float64)
        merged.best_scores[j] = np.zeros(n_uniq, dtype=np.float64)
        claimed[j] = np.zeros(n_uniq, dtype=bool)

    for j, hit in (cached or {}).items():
        if j not in merged.decided:
            raise CleaningError(f"cached results report unplanned column {j}")
        uids, decided, inc_scores, best_scores = hit
        claimed[j][uids] = True
        merged.decided[j][uids] = decided
        merged.incumbent_scores[j][uids] = inc_scores
        merged.best_scores[j][uids] = best_scores
        merged.n_cached += len(uids)

    for result in results:
        j = result.column
        if j not in merged.decided:
            raise CleaningError(
                f"shard {result.shard_id} reports unplanned column {j}"
            )
        mask = claimed[j]
        if mask[result.uids].any():
            raise CleaningError(
                f"shard {result.shard_id} overlaps an already-merged "
                f"competition of column {j}"
            )
        mask[result.uids] = True
        merged.decided[j][result.uids] = result.decided
        merged.incumbent_scores[j][result.uids] = result.incumbent_scores
        merged.best_scores[j][result.uids] = result.best_scores
        merged.candidates_evaluated += result.candidates_evaluated
        merged.candidates_filtered_uc += result.candidates_filtered_uc
        merged.n_competitions += result.n_competitions
    return merged


def concat_chunk_repairs(
    per_chunk: Sequence[Sequence[Repair]],
) -> list[Repair]:
    """Concatenate per-chunk repair lists in chunk order.

    Chunks partition the table into consecutive row ranges, so the
    correct global order is simply chunk order — but a driver bug that
    emitted chunks out of order (or overlapped their row ranges) would
    silently corrupt the "byte-identical to the whole-table run"
    contract, so ascending row order across the seams is verified.
    """
    merged: list[Repair] = []
    for chunk_index, repairs in enumerate(per_chunk):
        # Chunks cover disjoint row ranges, so even an *equal* row at a
        # seam means two chunks claimed the same row.
        if merged and repairs and repairs[0].row <= merged[-1].row:
            raise CleaningError(
                f"chunk {chunk_index} repairs start at row "
                f"{repairs[0].row}, not after the previous chunk's "
                f"last row {merged[-1].row}"
            )
        merged.extend(repairs)
    return merged
