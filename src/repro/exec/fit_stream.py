"""Streaming out-of-core fit: mergeable sufficient statistics.

``BClean.fit_csv`` (and ``fit(table, chunk_rows=...)``) must never hold
more than one row block in memory, yet produce the **byte-identical**
DAG, CPTs, and downstream repairs of the whole-table fit.  The key
observation: every statistic the fit consumes — co-occurrence pair
counts, per-family CPT counts, marginals, entropies, G² tests, family
scores — is a pure function of the *multiset of row signatures*, plus
first-appearance indices for deterministic ordering.  So the streaming
fit folds each chunk into a :class:`SuffStats` accumulator holding only
the stream's **distinct coded rows** with int64 multiplicities and
global first-appearance indices, and the downstream kernels
(:func:`~repro.stats.infotheory.joint_code_counts`,
:func:`~repro.core.cooccurrence.build_pair_arrays_stream`) accept
``row_counts`` / ``row_firsts`` to weight them back up exactly.

Three invariants make the equivalence *bit*-level, not just
statistical:

- **Vocabulary identity.**  Chunks are interned through one
  accumulating :class:`~repro.dataset.encoding.TableEncoding` that
  mints codes in stream order (idempotently, never renumbering).  The
  finalized distinct-row table keeps its rows in global
  first-appearance order, so a value's first appearance *in the struct
  table* is exactly the signature that carried its first appearance *in
  the stream* — re-encoding the struct table therefore reproduces the
  full stream's vocabularies code for code (NULL = 0, then
  first-appearance order).
- **Integer-exact weighting.**  All raw counts are int64 multiplicity
  sums (``np.add.at``) — the same integers a whole-stream
  ``return_counts`` pass yields; confidence-weighted sums add
  ``row_counts · weight`` per signature, every addend an
  exactly-representable float64, so sums match the full pass bit for
  bit (tuple confidence is a pure function of the row's values, so all
  duplicates of a signature share one weight).
- **Order identity.**  ``row_firsts`` carries global stream indices;
  every downstream sort-by-first-appearance (CPT entry walks, CSR
  tie-breaking, candidate orders) sees the exact indices the full pass
  would.

What stays row-level: the structure learner's default FDX profiler
sorts raw tuples, so the accumulator keeps a bounded **reservoir
sample** (Algorithm R, seeded, one draw per row past the cap — the
sample is a deterministic function of the stream alone, invariant to
chunk boundaries).  Streams no longer than the reservoir cap reproduce
the whole table exactly; ``fit(table, chunk_rows=...)`` always profiles
the real table.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator

import numpy as np

from repro.dataset.encoding import TableEncoding
from repro.dataset.table import Table
from repro.errors import CleaningError, SchemaError
from repro.exec.planner import extrapolate_stream_cost

#: default bound on the row-level reservoir sample kept for the
#: structure learner (``BCleanConfig.fit_reservoir_rows``).
DEFAULT_RESERVOIR_ROWS = 10_000

#: default row-block size of ``BClean.fit_csv`` when neither the call
#: nor ``BCleanConfig.fit_chunk_rows`` picks one
DEFAULT_CHUNK_ROWS = 4096


class SuffStats:
    """Mergeable sufficient statistics of a row stream.

    Feed row blocks in stream order through :meth:`update`; at any point
    :meth:`finalize` (or the lazy properties) yields the distinct-row
    **struct table** with its encoding, multiplicities, and global
    first-appearance indices — everything the weighted fit kernels need
    to reproduce the whole-stream statistics exactly.  Updating after a
    finalize simply invalidates the finalized view; the accumulator is
    the unit the incremental refit (``fit_update``) folds new rows into.

    Parameters
    ----------
    reservoir_rows:
        Cap of the row-level reservoir sample (``0`` disables it).
    seed:
        Seed of the reservoir's RNG — the sample is a deterministic
        function of ``(seed, stream)``, independent of chunk boundaries.
    """

    def __init__(
        self,
        reservoir_rows: int = DEFAULT_RESERVOIR_ROWS,
        seed: int = 0,
    ):
        self.schema = None
        self._acc: TableEncoding | None = None
        self._index: dict[bytes, int] = {}
        self._rows: list[np.ndarray] = []
        self._counts: list[int] = []
        self._firsts: list[int] = []
        self.n_rows = 0
        self.n_chunks = 0
        self.reservoir_rows = int(reservoir_rows)
        self._rng = random.Random(seed)
        self._reservoir: list[tuple] = []
        self._final: tuple | None = None

    @property
    def n_distinct(self) -> int:
        """Number of distinct row signatures accumulated so far."""
        return len(self._rows)

    def update(self, chunk: Table) -> "SuffStats":
        """Fold one row block (in stream order) into the statistics."""
        if self.schema is None:
            self.schema = chunk.schema
        elif list(chunk.schema.names) != list(self.schema.names):
            raise SchemaError(
                "stream chunk schema does not match the accumulated one: "
                f"{list(chunk.schema.names)} vs {list(self.schema.names)}"
            )
        self.n_chunks += 1
        if chunk.n_rows == 0:
            return self
        self._final = None
        offset = self.n_rows
        if self._acc is None:
            # First block: build the accumulating encoding over it (codes
            # minted in stream order); later blocks intern incrementally.
            self._acc = TableEncoding(chunk)
            matrix = self._acc.matrix()
        else:
            matrix = self._acc.encode_table(chunk)

        uniq, first_idx, inverse, cnts = np.unique(
            matrix,
            axis=0,
            return_index=True,
            return_inverse=True,
            return_counts=True,
        )
        # np.unique sorts lexicographically; walk the distinct signatures
        # in *chunk-appearance* order instead so dict insertion order —
        # and therefore the struct table's row order — is global
        # first-appearance order, which the vocabulary-identity proof
        # depends on.
        order = np.argsort(first_idx, kind="stable")
        index = self._index
        for i in order.tolist():
            key = uniq[i].tobytes()
            pos = index.get(key)
            if pos is None:
                index[key] = len(self._rows)
                self._rows.append(uniq[i])
                self._counts.append(int(cnts[i]))
                self._firsts.append(offset + int(first_idx[i]))
            else:
                self._counts[pos] += int(cnts[i])

        cap = self.reservoir_rows
        if cap > 0:
            reservoir = self._reservoir
            rng = self._rng
            columns = chunk.columns
            for i in range(chunk.n_rows):
                t = offset + i
                if t < cap:
                    reservoir.append(tuple(col[i] for col in columns))
                else:
                    # Algorithm R: exactly one draw per row past the cap,
                    # so the sample is chunk-boundary invariant.
                    j = rng.randint(0, t)
                    if j < cap:
                        reservoir[j] = tuple(col[i] for col in columns)
        self.n_rows += chunk.n_rows
        return self

    def finalize(self) -> tuple[Table, TableEncoding, np.ndarray, np.ndarray]:
        """``(table, encoding, row_counts, row_firsts)`` of the stream.

        ``table`` holds the distinct row signatures in global
        first-appearance order (representative cell values, decoded
        through the accumulating vocabularies); ``encoding`` is a fresh
        :class:`~repro.dataset.encoding.TableEncoding` of it — identical,
        code for code, to the encoding of the full stream.  Cached until
        the next :meth:`update`.
        """
        if self._final is not None:
            return self._final
        if self.schema is None:
            raise CleaningError("SuffStats.finalize before any update()")
        names = self.schema.names
        d = len(self._rows)
        if d:
            matrix = np.vstack(self._rows)
        else:
            matrix = np.empty((0, len(names)), dtype=np.int64)
        columns = []
        for j, name in enumerate(names):
            vocab = self._acc.vocab(name)
            columns.append([vocab.decode(int(c)) for c in matrix[:, j]])
        table = Table(self.schema, columns)
        encoding = TableEncoding(table)
        for name in names:
            if encoding.card(name) != self._acc.card(name):
                raise CleaningError(
                    f"struct vocabulary of {name!r} diverged from the "
                    "stream's — distinct-row order lost first-appearance "
                    "order"
                )
        self._final = (
            table,
            encoding,
            np.asarray(self._counts, dtype=np.int64),
            np.asarray(self._firsts, dtype=np.int64),
        )
        return self._final

    @property
    def table(self) -> Table:
        """The struct (distinct-row) table, in first-appearance order."""
        return self.finalize()[0]

    @property
    def encoding(self) -> TableEncoding:
        """Encoding of the struct table = encoding of the full stream."""
        return self.finalize()[1]

    @property
    def row_counts(self) -> np.ndarray:
        """int64 multiplicity of each struct row in the stream."""
        return self.finalize()[2]

    @property
    def row_firsts(self) -> np.ndarray:
        """Global stream index of each struct row's first appearance."""
        return self.finalize()[3]

    def reservoir_table(self) -> Table:
        """The bounded row-level sample as a table (for the row-order
        needs of the structure profiler).  Equals the whole stream when
        it never exceeded the cap."""
        if self.schema is None:
            raise CleaningError("SuffStats.reservoir_table before update()")
        return Table.from_rows(self.schema, self._reservoir)

    @property
    def reservoir_exact(self) -> bool:
        """Whether the reservoir holds the *entire* stream (no row ever
        displaced — streams no longer than the cap)."""
        return self.reservoir_rows > 0 and self.n_rows <= self.reservoir_rows

    @classmethod
    def from_finalized(
        cls,
        table: Table,
        encoding: TableEncoding,
        row_counts: np.ndarray,
        row_firsts: np.ndarray,
        n_rows: int,
        n_chunks: int = 1,
        reservoir_rows: int = DEFAULT_RESERVOIR_ROWS,
        seed: int = 0,
    ) -> "SuffStats":
        """Rehydrate an accumulator from persisted finalized statistics
        (the model registry's streamed reload).

        Counting state is exact: every statistic derived from the
        rehydrated accumulator — and any rows folded in later via
        :meth:`update` — matches an accumulator that never left memory.
        Only the row-level reservoir is approximate (the raw stream is
        gone): it is rebuilt by expanding the distinct rows in
        first-appearance order by their multiplicities up to the cap,
        which preserves the row *population* but not the original
        sample, so a later FDX re-profile may differ from the
        never-persisted engine's.
        """
        stats = cls(reservoir_rows=reservoir_rows, seed=seed)
        stats.schema = table.schema
        stats._acc = encoding
        matrix = encoding.matrix()
        stats._rows = [matrix[i] for i in range(table.n_rows)]
        stats._counts = [int(c) for c in row_counts]
        stats._firsts = [int(f) for f in row_firsts]
        stats._index = {row.tobytes(): i for i, row in enumerate(stats._rows)}
        stats.n_rows = int(n_rows)
        stats.n_chunks = int(n_chunks)
        if reservoir_rows > 0:
            reservoir: list[tuple] = []
            for i in range(table.n_rows):
                reps = min(
                    int(row_counts[i]), reservoir_rows - len(reservoir)
                )
                if reps <= 0:
                    break
                row = tuple(col[i] for col in table.columns)
                reservoir.extend([row] * reps)
            stats._reservoir = reservoir
        stats._final = (
            table,
            encoding,
            np.asarray(row_counts, dtype=np.int64),
            np.asarray(row_firsts, dtype=np.int64),
        )
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SuffStats({self.n_rows} rows, {self.n_distinct} distinct, "
            f"{self.n_chunks} chunks)"
        )


def suffstats_from_chunks(
    chunks: Iterable[Table],
    reservoir_rows: int = DEFAULT_RESERVOIR_ROWS,
    seed: int = 0,
    tracer=None,
) -> SuffStats:
    """Accumulate a :class:`SuffStats` over an iterable of row blocks
    (one block resident at a time).  With a ``tracer``, each block folds
    under a ``fit.stream.chunk`` span."""
    stats = SuffStats(reservoir_rows=reservoir_rows, seed=seed)
    for chunk in chunks:
        if tracer is not None:
            with tracer.span(
                "fit.stream.chunk",
                cat="fit",
                rows=chunk.n_rows,
                distinct=stats.n_distinct,
            ):
                stats.update(chunk)
        else:
            stats.update(chunk)
    return stats


def iter_table_chunks(table: Table, chunk_rows: int) -> Iterator[Table]:
    """Slice an in-memory table into row blocks of ``chunk_rows``."""
    if chunk_rows <= 0:
        raise CleaningError(f"chunk_rows must be positive, got {chunk_rows}")
    for start in range(0, table.n_rows, chunk_rows):
        yield table.slice_rows(start, start + chunk_rows)
    if table.n_rows == 0:
        yield table


def suffstats_from_table(
    table: Table,
    chunk_rows: int,
    reservoir_rows: int = DEFAULT_RESERVOIR_ROWS,
    seed: int = 0,
    tracer=None,
) -> SuffStats:
    """Accumulate statistics over an in-memory table in row blocks —
    exercising the exact chunked code path of the CSV stream (identity
    tests run both against the whole-table fit)."""
    return suffstats_from_chunks(
        iter_table_chunks(table, chunk_rows),
        reservoir_rows=reservoir_rows,
        seed=seed,
        tracer=tracer,
    )


def suffstats_from_csv(
    source,
    chunk_rows: int,
    schema=None,
    delimiter: str = ",",
    reservoir_rows: int = DEFAULT_RESERVOIR_ROWS,
    seed: int = 0,
    tracer=None,
) -> SuffStats:
    """Accumulate statistics over a CSV file without ever materialising
    it: :func:`~repro.dataset.io.iter_csv_chunks` yields one typed row
    block at a time, and only the deduplicated signatures survive."""
    from repro.dataset.io import iter_csv_chunks

    return suffstats_from_chunks(
        iter_csv_chunks(source, chunk_rows, schema=schema, delimiter=delimiter),
        reservoir_rows=reservoir_rows,
        seed=seed,
        tracer=tracer,
    )


def weighted_marginal_counts(
    codes: np.ndarray, card: int, row_counts: np.ndarray
) -> np.ndarray:
    """Per-code marginal counts of one struct column, multiplicities
    applied — the int64 values ``np.bincount`` would yield on the full
    stream."""
    counts = np.zeros(card, dtype=np.int64)
    np.add.at(counts, codes, np.asarray(row_counts, dtype=np.int64))
    return counts


def estimate_stream_fit_cost(
    n_distinct: int,
    n_attrs: int,
    rows_seen: int | None = None,
    total_rows: int | None = None,
) -> float:
    """Whole-stream fit cost estimate in the fit planner's rows-touched
    units (the quantity ``fit_executor="auto"`` weighs against
    :data:`~repro.exec.planner.AUTO_FIT_COST_THRESHOLD`).

    The dominant dispatched work of a streamed fit is the pair job: 2
    rows-touched per attribute pair per **distinct** signature — the
    deduplicated stream is what the workers actually scan.  The shape
    follows :func:`~repro.exec.planner.extrapolate_stream_cost`: when
    the accumulator has only seen part of a stream of known length, the
    cost observed so far is scaled by the remaining fraction, so the
    session decision matches the full-stream one instead of flapping on
    early cheap chunks.
    """
    m = max(0, int(n_attrs))
    cum = 2.0 * float(max(0, n_distinct)) * (m * (m - 1) / 2.0)
    if rows_seen is None:
        return cum
    return extrapolate_stream_cost(cum, rows_seen, total_rows)
