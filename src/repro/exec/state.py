"""Read-only execution state and the per-shard competition kernel.

The execution state is split along the session seam of
:mod:`repro.exec.backends`:

- :class:`FitState` is the **static** picklable snapshot of everything a
  candidate competition needs after ``fit()``: the shared table
  encoding, the co-occurrence index, the coded CPT matrices (via the
  columnar scorer), the compensatory scorer, the domain pruner, the BN
  partition, and the per-attribute domain candidate codes.  It is
  constant for a whole ``clean()`` (indeed for the fit's lifetime), so a
  persistent worker pool ships it exactly **once** — through the pool
  initializer — no matter how many row chunks the clean dispatches.
- :class:`ChunkView` is the small **per-dispatch** view of the rows
  being cleaned right now: the chunk's deduplicated row signatures,
  their confidence weights, and the per-attribute NULL/UC code masks
  (which can grow between chunks when incremental encoding mints codes
  for a foreign table's unseen values — that is why they ride with the
  chunk, not the snapshot).

Everything in the snapshot is *read-only* during cleaning — the only
mutations are lazy per-process caches (CSR inverted indexes, dense
co-occurrence profiles, dict probe views), which are dropped on pickling
and rebuilt on demand inside each worker.  That makes one ``FitState``
safe to share across threads (cache races are idempotent writes of
identical values) and cheap to ship to processes once per *session*.
Its statistics index only build-time codes, so a worker's snapshot stays
valid even while the parent's encoding keeps extending: codes the
statistics never saw probe as never-observed by construction.

:meth:`FitState.run_shard` is the execution kernel: it runs every
competition of one :class:`~repro.exec.planner.Shard` against one
:class:`ChunkView` and returns a :class:`ShardResult` of repair codes
and scores.  Within a shard, competitions are scored in *batch*:
candidate pools of equal length are stacked into one ``(B, P)`` matrix
and every Markov-blanket factor is resolved for the whole batch with a
single :class:`~repro.bayesnet.model.ColumnarNetScorer` matrix op (the
ROADMAP's "parallel competitions" item).  Each competition's arithmetic
is element-for-element identical to the single-competition path, so
results are byte-identical regardless of backend, shard count, or batch
grouping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.bayesnet.model import ColumnarNetScorer
from repro.core.compensatory import CompensatoryScorer, log_compensatory_pool
from repro.core.config import BCleanConfig, InferenceMode
from repro.core.cooccurrence import CooccurrenceIndex
from repro.core.partition import SubNetwork
from repro.core.pruning import DomainPruner
from repro.dataset.encoding import TableEncoding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.planner import Shard


@dataclass
class ShardResult:
    """Per-competition decisions of one shard.

    ``decided[i]`` is the repair code for unique row ``uids[i]`` (−1
    keeps the observed value); the score arrays carry the incumbent and
    winner totals the engine records on emitted repairs.  The counters
    aggregate the shard's share of the work statistics.
    """

    shard_id: int
    column: int
    uids: np.ndarray
    decided: np.ndarray
    incumbent_scores: np.ndarray
    best_scores: np.ndarray
    candidates_evaluated: int = 0
    candidates_filtered_uc: int = 0

    @property
    def n_competitions(self) -> int:
        return len(self.uids)


@dataclass
class ChunkView:
    """The per-dispatch view of the rows being cleaned.

    Attributes
    ----------
    uniq_rows:
        ``(n_uniq, m)`` deduplicated coded row signatures of the chunk
        being cleaned.
    uniq_weights:
        Per-signature confidence weight (what the signature's rows
        contributed to Algorithm 2's accumulator; 1.0 for foreign rows).
    null_masks, uc_masks:
        Per-attribute boolean masks over the *current* (possibly
        extended) code range — re-snapshotted per chunk because foreign
        chunks mint new codes as they are encoded.  ``uc_masks`` may be
        empty when user constraints are disabled.
    """

    uniq_rows: np.ndarray
    uniq_weights: np.ndarray
    null_masks: dict[str, np.ndarray]
    uc_masks: dict[str, np.ndarray]


class FitState:
    """Everything a worker needs to run competitions, frozen after fit.

    Parameters
    ----------
    config:
        The engine configuration (scoring knobs; executor knobs are read
        by the engine, not the kernel).
    encoding:
        Shared table interning (possibly incrementally extended for a
        foreign table).  The kernel only reads build-time facts from it
        (per-attribute cardinalities for scratch sizing), so a snapshot
        shipped at session open stays valid for every later chunk.
    cooc, comp, pruner, scorer, subnets:
        The fitted statistics components, exactly as the engine built
        them.
    names:
        Attribute names in schema order.
    domain_codes:
        Per-attribute domain candidate codes, most frequent first
        (fit-time values, hence static).
    """

    def __init__(
        self,
        config: BCleanConfig,
        encoding: TableEncoding,
        cooc: CooccurrenceIndex,
        comp: CompensatoryScorer,
        pruner: DomainPruner,
        scorer: ColumnarNetScorer,
        subnets: Mapping[str, SubNetwork],
        names: Sequence[str],
        domain_codes: Mapping[str, np.ndarray],
    ):
        self.config = config
        self.encoding = encoding
        self.cooc = cooc
        self.comp = comp
        self.pruner = pruner
        self.scorer = scorer
        self.subnets = dict(subnets)
        self.names = list(names)
        self.domain_codes = dict(domain_codes)

    # -- kernel ------------------------------------------------------------------

    def run_shard(self, shard: "Shard", view: ChunkView) -> ShardResult:
        """Run all competitions of ``shard`` against ``view`` (pure
        function of snapshot + view — see the module docstring for the
        batching scheme)."""
        cfg = self.config
        j = shard.column
        attr = self.names[j]
        uids = shard.uids
        m = len(self.names)
        context_cols = [k for k in range(m) if k != j]
        subnet = self.subnets[attr]
        n = len(uids)

        decided = np.full(n, -1, dtype=np.int64)
        inc_scores = np.zeros(n, dtype=np.float64)
        best_scores = np.zeros(n, dtype=np.float64)
        evaluated = 0
        filtered_uc = 0
        # Pool-membership scratch is shard-local: shards of one attribute
        # may run concurrently, so the mark/reset pattern must not share.
        scratch = np.zeros(self.encoding.card(attr), dtype=bool)

        # Pass 1 — candidate pools and compensatory terms (pool-sized
        # work, inherently per-competition).
        pools: list[np.ndarray] = []
        comp_logs: list[np.ndarray] = []
        inc_idxs = np.empty(n, dtype=np.int64)
        for pos in range(n):
            row_codes = view.uniq_rows[uids[pos]]
            current_code = int(row_codes[j])
            pool, n_filtered = self._pool(
                attr, j, row_codes, context_cols, scratch, view
            )
            filtered_uc += n_filtered
            hits = np.nonzero(pool == current_code)[0]
            if len(hits) == 0:
                pool = np.append(pool, current_code)
                inc_idx = len(pool) - 1
            else:
                inc_idx = int(hits[0])
            evaluated += len(pool)
            if cfg.use_compensatory:
                raw = self.comp.score_pool(
                    pool,
                    row_codes,
                    attr,
                    context_cols,
                    incumbent_index=inc_idx,
                    self_weight=float(view.uniq_weights[uids[pos]]),
                )
                comp_log = cfg.comp_weight * log_compensatory_pool(
                    raw, cfg.comp_smoothing
                )
            else:
                comp_log = np.zeros(len(pool), dtype=np.float64)
            pools.append(pool)
            comp_logs.append(comp_log)
            inc_idxs[pos] = inc_idx

        # Pass 2 — batched BN scoring: stack equal-length pools and score
        # each stack with one matrix op per blanket factor.
        bn_rows: list[np.ndarray | None] = [None] * n
        if cfg.mode != InferenceMode.BASIC and subnet.is_isolated:
            # §6.1: isolated nodes contribute a constant that cancels.
            for pos in range(n):
                bn_rows[pos] = np.zeros(len(pools[pos]), dtype=np.float64)
        else:
            groups: dict[int, list[int]] = {}
            for pos in range(n):
                groups.setdefault(len(pools[pos]), []).append(pos)
            for members in groups.values():
                cand2d = np.vstack([pools[p] for p in members])
                rows2d = view.uniq_rows[uids[np.asarray(members)]]
                if cfg.mode == InferenceMode.BASIC:
                    bn2d = self.scorer.joint_log_scores_batch(attr, cand2d, rows2d)
                else:
                    bn2d = self.scorer.blanket_log_scores_batch(attr, cand2d, rows2d)
                for row_i, pos in enumerate(members):
                    bn_rows[pos] = bn2d[row_i]

        # Pass 3 — decisions (the tail of one candidate competition,
        # unchanged arithmetic: penalty, margin, argmax, support vetoes).
        null_mask = view.null_masks[attr]
        uc_mask = view.uc_masks.get(attr) if cfg.use_ucs else None
        for pos in range(n):
            row_codes = view.uniq_rows[uids[pos]]
            current_code = int(row_codes[j])
            pool = pools[pos]
            inc_idx = int(inc_idxs[pos])

            incumbent_penalty = 0.0
            if uc_mask is not None and not uc_mask[current_code]:
                incumbent_penalty = cfg.uc_violation_penalty
            incumbent_null = bool(null_mask[current_code])
            margin = (
                cfg.repair_margin
                if self._supported(
                    attr, current_code, row_codes, context_cols, 2, incumbent_null
                )
                else cfg.unsupported_margin
            )

            totals = bn_rows[pos] + comp_logs[pos]
            totals[inc_idx] = totals[inc_idx] - incumbent_penalty + margin
            best_idx = int(np.argmax(totals))
            best_code = int(pool[best_idx])
            best_score = float(totals[best_idx])
            incumbent_score = float(totals[inc_idx])

            forced = incumbent_null or incumbent_penalty > 0
            if (
                forced
                and best_code != current_code
                and not self._supported(
                    attr, best_code, row_codes, context_cols,
                    cfg.min_fill_support, False,
                )
            ):
                inc_scores[pos] = incumbent_score
                best_scores[pos] = incumbent_score
                continue
            inc_scores[pos] = incumbent_score
            best_scores[pos] = best_score
            if best_score > incumbent_score and best_code != current_code:
                decided[pos] = best_code

        return ShardResult(
            shard.shard_id,
            j,
            uids,
            decided,
            inc_scores,
            best_scores,
            candidates_evaluated=evaluated,
            candidates_filtered_uc=filtered_uc,
        )

    # -- pool construction --------------------------------------------------------

    def _pool(
        self,
        attr: str,
        j: int,
        row_codes: np.ndarray,
        context_cols: Sequence[int],
        scratch: np.ndarray,
        view: ChunkView,
    ) -> tuple[np.ndarray, int]:
        """The coded candidate pool, ordered exactly as the scalar
        reference: context candidates by (−strength, first appearance),
        domain top-up, UC filter, strength-stable cap, TF-IDF pruning in
        PIP mode.  Returns ``(pool, n_filtered_by_uc)``."""
        cfg = self.config
        cooc = self.cooc
        names = self.names
        cap = cfg.effective_candidate_cap()

        lists = [
            cooc.cooccurring_codes(attr, names[k], int(row_codes[k]))
            for k in context_cols
        ]
        concat = (
            np.concatenate(lists) if lists else np.empty(0, dtype=np.int64)
        )
        null_mask = view.null_masks[attr]
        concat = concat[~null_mask[concat]]
        cand, first_pos = np.unique(concat, return_index=True)
        strength = np.zeros(len(cand), dtype=np.float64)
        for k in context_cols:
            strength += cooc.pair_counts_for(
                attr, cand, names[k], int(row_codes[k])
            )
        # Stable sort by −strength over first-appearance order.
        order = np.lexsort((first_pos, -strength))
        ordered = cand[order]
        ordered_strength = strength[order]
        if cap is not None:
            ordered = ordered[:cap]
            ordered_strength = ordered_strength[:cap]

        # Top up with globally frequent values (the domain prior); a
        # truncated context candidate re-entering here keeps its
        # accumulated strength for the cap re-sort.
        domain = self.domain_codes[attr]
        top = domain[:cap] if cap is not None else domain
        scratch[ordered] = True
        extra = top[~scratch[top]]
        scratch[ordered] = False
        if len(extra):
            if len(cand):
                pos = np.minimum(np.searchsorted(cand, extra), len(cand) - 1)
                extra_strength = np.where(cand[pos] == extra, strength[pos], 0.0)
            else:
                extra_strength = np.zeros(len(extra), dtype=np.float64)
            ordered = np.concatenate([ordered, extra])
            ordered_strength = np.concatenate([ordered_strength, extra_strength])

        filtered = 0
        if cfg.use_ucs:
            ok = view.uc_masks[attr][ordered]
            filtered = int((~ok).sum())
            ordered = ordered[ok]
            ordered_strength = ordered_strength[ok]

        if cap is not None and len(ordered) > cap:
            resort = np.argsort(-ordered_strength, kind="stable")
            ordered = ordered[resort][:cap]

        if cfg.mode == InferenceMode.PARTITIONED_PRUNED:
            ordered = self.pruner.prune_codes(
                ordered, row_codes, attr, context_cols
            )
        return ordered, filtered

    def _supported(
        self,
        attr: str,
        code: int,
        row_codes: np.ndarray,
        context_cols: Sequence[int],
        need: int,
        value_is_null: bool,
    ) -> bool:
        """Co-occurrence support check (incumbent protection with
        ``need=2``, forced-repair evidence with ``need=min_fill_support``)."""
        if value_is_null:
            return False
        cooc = self.cooc
        names = self.names
        for k in context_cols:
            if cooc.pair_count_codes(attr, code, names[k], int(row_codes[k])) >= need:
                return True
        return False
