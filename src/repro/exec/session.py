"""Execution sessions: one worker pool + one snapshot per job stream.

PR 4's chunked pipeline broke the amortisation the paper's scale story
rests on: every chunk of a ``process`` clean spawned a fresh
``ProcessPoolExecutor``, re-pickled and re-shipped the static fit
statistics, and rebuilt every worker cache — fixed costs that §6
amortises over the *whole table* were being paid per row block.

:class:`ExecSession` closes that gap.  It owns the worker-pool and
shared-memory lifecycle for one whole job stream — a ``clean()``'s
chunks, or a fit's pair + CPT jobs — around the session-scoped backends
of :mod:`repro.exec.backends`:

- the static state (a :class:`~repro.exec.state.FitState` or
  :class:`~repro.exec.fit.FitJobState`) is bound at construction and
  shipped to process workers exactly once, via the pool initializer,
  when the first process dispatch creates the pool;
- each :meth:`dispatch` sends only its per-dispatch payload (a
  :class:`~repro.exec.state.ChunkView`, a
  :class:`~repro.exec.fit.FitTasks`) plus the planned shards to the
  already-warm workers;
- backends are created lazily per executor name, so an adaptive stream
  that resolves some chunks to ``serial`` and some to ``process``
  holds exactly one pool, and an all-serial stream holds none;
- :meth:`close` joins the workers and unlinks the snapshot segment.

``persistent=False`` (the ``BCleanConfig.persistent_pool`` escape
hatch) keeps the session API but restores per-dispatch pool teardown —
the pre-session behaviour, kept for hosts where long-lived pools are
unwelcome.

Alongside the pool the session owns the **cross-chunk competition
cache** (:class:`~repro.exec.cache.CompetitionCache`, when the driver
enables one): the bounded-LRU memo of competition outcomes that lets a
signature recurring across row chunks skip its re-run entirely.  It
lives here — not on the driver — because its lifetime *is* the
session's: the memo stays valid exactly as long as the static state it
was computed against, which is what a future resident-engine
("cleaning as a service") session will keep warm across many cleans of
one fit.

The session changes *scheduling only*: every dispatch remains a pure
function of (static state, payload), and a cache hit replays a value
that is itself such a pure function — so repairs stay byte-identical
to the serial whole-table run no matter how dispatches map onto pools
or how many competitions the cache answers.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import CleaningError
from repro.exec.backends import get_backend
from repro.exec.cache import CompetitionCache
from repro.exec.planner import Shard
from repro.obs import NULL_TRACER


class ExecSession:
    """Owns backends (and their pools/segments) for one job stream.

    Parameters
    ----------
    state:
        The static read-only snapshot every dispatch executes against.
    n_jobs:
        Worker count for the parallel backends.
    persistent:
        Keep pools (and the shipped snapshot) alive between dispatches;
        ``False`` tears them down after every dispatch.
    use_shm:
        Attempt the shared-memory transport for process snapshots and
        payloads (tests force the pickle path by passing ``False``).
    competition_cache:
        The session's cross-chunk competition memo, or ``None`` when
        the job stream cannot reuse results (whole-table cleans, fit
        jobs) or the cache is disabled.
    tracer:
        The observability tracer the session's dispatches report to;
        the default :data:`~repro.obs.NULL_TRACER` keeps every path
        no-op (and keeps untraced dispatch payloads byte-identical to
        a build without tracing).
    """

    def __init__(
        self,
        state,
        n_jobs: int,
        persistent: bool = True,
        use_shm: bool = True,
        competition_cache: CompetitionCache | None = None,
        tracer=NULL_TRACER,
    ):
        self.state = state
        self.n_jobs = max(1, n_jobs)
        self.persistent = persistent
        self.use_shm = use_shm
        self.competition_cache = competition_cache
        self.tracer = tracer
        self._backends: dict[str, object] = {}
        self._closed = False
        # Reference count for shared (resident) sessions: the creator
        # holds the initial reference; every attached job stream
        # acquires/releases around its use, and the session closes when
        # the last holder releases.  A per-clean session never shares,
        # so its single reference makes release() equivalent to close().
        self._refs = 1

    # -- lifecycle ---------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether the session has been closed (no new dispatches)."""
        return self._closed

    def acquire(self) -> "ExecSession":
        """Take a reference on a shared session (resident engines hand
        the same warm session to many job streams; each stream brackets
        its use with acquire/release)."""
        if self._closed:
            raise CleaningError("ExecSession is closed")
        self._refs += 1
        return self

    def release(self) -> None:
        """Drop one reference; the last release closes the session."""
        if self._closed:
            return
        self._refs -= 1
        if self._refs <= 0:
            self.close()

    def backend(self, name: str):
        """The session's backend for ``name``, created (and opened on
        the static state) at first use."""
        backend = self._backends.get(name)
        if backend is None:
            if self._closed:
                raise CleaningError("ExecSession is closed")
            backend = get_backend(
                name,
                self.n_jobs,
                use_shm=self.use_shm,
                persistent=self.persistent,
                tracer=self.tracer,
            )
            backend.open(self.state)
            self._backends[name] = backend
        return backend

    def is_warm(self, name: str) -> bool:
        """Whether the ``name`` backend already holds a live pool whose
        workers have the snapshot resident — i.e. another dispatch on it
        pays only its payload ship, no fixed costs."""
        backend = self._backends.get(name)
        return bool(backend is not None and getattr(backend, "is_warm", False))

    def dispatch(self, name: str, payload, shards: Sequence[Shard]) -> list:
        """Run one planned job on the ``name`` backend's warm workers.

        When tracing is enabled the dispatch is wrapped in a
        ``dispatch`` span and the backend's per-shard timings (worker
        reported for process pools, driver timed otherwise) are merged
        into the trace, clamped to the dispatch window.
        """
        if self._closed:
            raise CleaningError("ExecSession is closed")
        backend = self.backend(name)
        tracer = self.tracer
        if not tracer.enabled:
            return backend.dispatch(payload, shards)
        with tracer.span(
            "dispatch", cat="exec", backend=name, n_shards=len(shards)
        ) as span:
            results = backend.dispatch(payload, shards)
        tracer.add_worker_spans(
            "shard",
            getattr(backend, "shard_times", ()),
            lo=span.start,
            hi=span.start + span.seconds,
        )
        return results

    def close(self) -> None:
        """Join every pool and release every segment (idempotent).

        The backends stay listed so the aggregated diagnostics remain
        readable after the session ends; only new dispatches are
        refused.  A second close is a no-op: it must not re-invoke
        ``backend.close()`` (double pool teardown) nor emit a second
        ``session_close`` trace event — resident sessions are routinely
        closed twice (engine shutdown plus ``__exit__``).
        """
        if self._closed:
            return
        self._closed = True
        self._refs = 0
        with self.tracer.span("session_close", cat="session"):
            for backend in self._backends.values():
                backend.close()

    def __enter__(self) -> "ExecSession":
        return self

    def __exit__(self, *exc) -> None:
        # Context exit is an owner-scope close, not a release: the
        # ``with`` block bounds the session's whole lifetime.
        self.close()

    # -- aggregated diagnostics --------------------------------------------------

    @property
    def pools_created(self) -> int:
        """Worker pools spawned over the session (thread + process)."""
        return sum(
            getattr(b, "pools_created", 0) for b in self._backends.values()
        )

    @property
    def snapshot_ships(self) -> int:
        """Static snapshot serialisations shipped to process pools."""
        return sum(
            getattr(b, "snapshot_ships", 0) for b in self._backends.values()
        )

    @property
    def shm_used(self) -> bool:
        return any(
            getattr(b, "shm_used", False) for b in self._backends.values()
        )

    def flags(self) -> dict:
        """Sticky degradation flags across every backend the session
        created, in the diagnostics' key vocabulary.  ``ran_serially``
        carries its reason alongside (``ran_serially_reason``) so a
        diagnostics consumer never has to reconcile "ran serially" with
        a positive shard count on its own."""
        out: dict = {}
        for backend in self._backends.values():
            if getattr(backend, "fell_back", False):
                out["process_fallback"] = True
            if getattr(backend, "pool_broken", False):
                out["pool_broken"] = True
            if getattr(backend, "ran_serially", False):
                out["ran_serially"] = True
                reason = getattr(backend, "serial_reason", None)
                if reason and "ran_serially_reason" not in out:
                    out["ran_serially_reason"] = reason
        return out
