"""Session-scoped cross-chunk competition result cache.

The chunked pipeline of :mod:`repro.exec.stream` deduplicates row
signatures *within* each chunk, but a signature recurring in several
chunks used to re-run its full Bayesian candidate competition once per
chunk — ``BENCH_stream.json`` showed the streaming clean paying for its
memory win with up to ~7× wall-clock on a repetitive stream.  BayesWipe
(arXiv:1506.08908) and PClean (arXiv:2007.11838) both reach big-data
scale by reusing inference results across recurring records; this
module is that reuse for BClean's competitions.

:class:`CompetitionCache` is a bounded-LRU memo living on the clean's
:class:`~repro.exec.session.ExecSession` — the same seam that owns
warm-pool reuse, so a future resident-engine ("cleaning as a service")
session keeps its competition memo warm across requests for free.  It
maps the **full competition identity** to the competition's outcome:

key
    ``(column, weight, row_signature_bytes)`` — exactly the scalar
    path's memo signature (``core/engine.py``, ``_best_candidate``):
    the attribute under repair, the tuple's confidence weight class
    (1.0 for foreign rows), and the complete coded row signature.  The
    incumbent code is ``row_signature[column]``, so it is part of the
    key by construction.
value
    ``(decided_code, incumbent_score, best_score)`` — the winning
    repair code (−1 keeps the observed value) plus the two totals the
    engine records on emitted repairs.

Correctness rests on the kernel being a **pure function** of (static
fit state, competition identity): every statistic a competition reads —
co-occurrence counts, CPT matrices, domain candidate order, NULL/UC
verdicts of existing codes — is frozen at fit time and indexes
build-time codes only.  Incremental encoding may mint new codes
mid-stream, but a minted code changes no existing code's verdict and a
signature containing one is simply a new key.  A cache hit therefore
returns bit-for-bit the floats a re-run would produce, at any chunk
size, on any backend, and under any eviction pressure — eviction only
converts a would-be hit back into a (recomputed, identical) miss.
"""

from __future__ import annotations

from collections import OrderedDict

#: cached outcome: (decided repair code or −1, incumbent score, best score)
CachedOutcome = tuple[int, float, float]

#: cache key: (column index, tuple weight, coded row signature bytes)
CacheKey = tuple[int, float, bytes]


def competition_key(column: int, weight: float, row_bytes: bytes) -> CacheKey:
    """The full competition identity (see the module docstring)."""
    return (column, weight, row_bytes)


class CompetitionCache:
    """Bounded-LRU memo of competition outcomes.

    ``max_entries`` bounds the entry count for unbounded streams; the
    least recently *used* (probed or inserted) entry is evicted first,
    so the hot signatures of a drifting stream stay resident.  The
    counters feed ``diagnostics["stream"]``: ``hits``/``misses`` count
    probes (a probe before any entry exists is a miss), ``evictions``
    counts entries dropped to the bound.
    """

    def __init__(self, max_entries: int):
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be positive, got {max_entries}"
            )
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[CacheKey, CachedOutcome] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: CacheKey) -> CachedOutcome | None:
        """Probe (and LRU-touch) one competition identity."""
        outcome = self._data.get(key)
        if outcome is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return outcome

    def put(self, key: CacheKey, outcome: CachedOutcome) -> None:
        """Insert one freshly computed outcome (refreshes an existing
        key's LRU position; evicts the coldest entry at the bound)."""
        if key in self._data:
            self._data.move_to_end(key)
            self._data[key] = outcome
            return
        if len(self._data) >= self.max_entries:
            self._data.popitem(last=False)
            self.evictions += 1
        self._data[key] = outcome

    def stats(self) -> dict[str, int]:
        """The diagnostics block: probe and occupancy counters."""
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_evictions": self.evictions,
            "cache_entries": len(self._data),
            "cache_max_entries": self.max_entries,
        }
