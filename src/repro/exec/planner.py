"""Shard planning: partition the competition list for parallel workers.

After deduplication the cleaning workload is a list of independent
candidate competitions — one per (attribute, unique row signature) —
with read-only fit state.  The planner slices that list into
:class:`Shard`\\ s, the unit a worker backend executes.

Shards are **cost-balanced**, not count-balanced: competition cost is
dominated by the candidate-pool size, which varies by orders of
magnitude between a near-unique context (a handful of co-occurring
values) and a low-selectivity one (the whole attribute domain).
:func:`estimate_competition_costs` estimates each competition's pool
from the marginal counts of its context values — an O(1) proxy per
(competition, context attribute) that needs no CSR index build — and
:func:`plan_shards` cuts each attribute's competition list at
equal-cost boundaries (a cumulative-sum split, so the plan is a pure
function of the cost vector: deterministic for a given table and
configuration, independent of backend and timing).

Shards never mix attributes: within one attribute the equal-length
candidate pools that enable batched scoring are far more common, and
the per-shard setup (context columns, masks, scratch) stays trivial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.cooccurrence import CooccurrenceIndex
from repro.exec.cache import CompetitionCache, competition_key

#: shards per worker the auto planner aims for — enough slack for the
#: cost estimate to be off without idling workers at the tail.
OVERSUBSCRIBE = 4

#: bounds of the auto-sized session competition cache
#: (``BCleanConfig.competition_cache=None``): the floor keeps small
#: streams fully resident, the ceiling bounds driver memory for
#: unbounded streams (an entry is a coded row signature plus three
#: scalars — a few hundred bytes).
CACHE_MIN_ENTRIES = 1 << 14
CACHE_MAX_ENTRIES = 1 << 18

#: estimated fixed cost of one competition (scoring, argmax, bookkeeping)
#: in pool-entry units, so empty-pool competitions still count.
COMPETITION_OVERHEAD = 8.0

#: planned total cost (pool-entry units) above which ``executor="auto"``
#: prefers the process backend for a clean.  Below it the snapshot
#: shipping + pool spawn overhead dominates any multi-core win: the
#: tiny fixture tables plan a few thousand units, the paper-scale
#: soccer-1500 bench plans well over a million.
AUTO_CLEAN_COST_THRESHOLD = 200_000.0

#: the same switch for ``fit_executor="auto"``, in the fit planner's
#: rows-touched units.  One row-unit is a fraction of a fused-code
#: numpy pass — far cheaper than one competition — so the break-even
#: table is much larger than for cleaning.
AUTO_FIT_COST_THRESHOLD = 2_000_000.0


def resolve_executor(
    requested: str, total_cost: float, n_shards: int, n_jobs: int,
    threshold: float = AUTO_CLEAN_COST_THRESHOLD,
) -> str:
    """The concrete backend ``executor="auto"`` selects for one job.

    Anything other than ``"auto"`` passes through unchanged.  ``auto``
    picks ``"process"`` only when parallelism can exist at all (more
    than one worker *and* more than one shard) and the total-cost
    estimate clears ``threshold`` — otherwise the always-cheap serial
    path wins.  For a chunked stream the caller passes the
    **whole-stream** cost estimate (see
    :func:`extrapolate_stream_cost`), not the chunk's own: pool startup
    and the snapshot ship are paid once per
    :class:`~repro.exec.session.ExecSession`, so the break-even point
    belongs to the stream, not to any single row block.  The choice
    affects wall-clock only: every backend produces byte-identical
    results.
    """
    if requested != "auto":
        return requested
    if n_jobs > 1 and n_shards > 1 and total_cost >= threshold:
        return "process"
    return "serial"


def extrapolate_stream_cost(
    cum_cost: float,
    rows_planned: int,
    total_rows: int | None,
    dedup_factor: float = 1.0,
) -> float:
    """Estimate a whole stream's total *deduplicated* cost from the
    chunks planned so far.

    When the stream's total row count is known up front (an in-memory
    table cleaned in blocks), the cumulative planned cost is scaled by
    the fraction of rows already planned — so the very first chunk of a
    uniform table already sees (approximately) the whole-table cost,
    and the executor resolution matches the un-chunked run instead of
    flapping to serial because one block looks cheap.  When the total
    is unknown (a CSV streamed off disk), the cumulative cost itself is
    the best available lower bound: the resolution upgrades to
    ``process`` as soon as enough of the file has proven the stream
    expensive, and the session keeps that pool warm from then on.

    ``dedup_factor`` corrects the linear extrapolation for signatures
    recurring *across* chunks: per-chunk planning re-materialises a
    recurring signature in every chunk it appears in, so scaling the
    cumulative chunk-level cost by rows alone overestimates repetitive
    streams relative to the whole-table plan the ``auto`` threshold was
    calibrated against.  Callers pass the observed ratio of
    stream-distinct to chunk-distinct signatures (1.0 = no cross-chunk
    repetition; see ``StreamDriver``).  With the session competition
    cache active the cumulative cost already covers only cache *misses*
    — expected hits are subtracted at the source — and the factor stays
    1.0 (applying both would double-discount).
    """
    if total_rows is None or rows_planned <= 0 or total_rows <= rows_planned:
        return cum_cost * dedup_factor
    return cum_cost * dedup_factor * (total_rows / rows_planned)


def default_cache_entries(
    n_competitions: int, rows_planned: int, total_rows: int | None
) -> int:
    """Auto bound for the session competition cache
    (``BCleanConfig.competition_cache=None``): enough entries for every
    planned competition of the stream — the first chunk's competition
    count extrapolated over the stream's rows, doubled for estimate
    slack — clamped to [:data:`CACHE_MIN_ENTRIES`,
    :data:`CACHE_MAX_ENTRIES`] so a cheap stream stays fully resident
    and an unbounded one cannot grow the driver without limit."""
    est = extrapolate_stream_cost(
        float(max(n_competitions, 1)), rows_planned, total_rows
    )
    return int(min(max(2 * est, CACHE_MIN_ENTRIES), CACHE_MAX_ENTRIES))


def partition_cached(
    cache: CompetitionCache | None,
    column: int,
    uids: np.ndarray,
    row_keys: Sequence[bytes],
    weights: np.ndarray,
) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None]:
    """Split one attribute's competition list into cache misses and hits.

    Probes ``cache`` with the full competition identity of every
    planned competition (``uids`` index the chunk's deduplicated
    signatures; ``row_keys``/``weights`` align with them).  Returns the
    miss ``uids`` — sharded and dispatched exactly as an uncached plan
    — and, when any probe hit, the hit arrays ``(uids, decided,
    incumbent_scores, best_scores)`` the merge splices driver-side with
    zero dispatch.  With no cache (or a cold one) everything is a miss
    and the plan is byte-identical to the uncached path.
    """
    if cache is None or len(uids) == 0:
        return uids, None
    hit_uids: list[int] = []
    decided: list[int] = []
    inc_scores: list[float] = []
    best_scores: list[float] = []
    miss = np.ones(len(uids), dtype=bool)
    for pos, uid in enumerate(uids):
        outcome = cache.get(
            competition_key(column, float(weights[uid]), row_keys[uid])
        )
        if outcome is None:
            continue
        miss[pos] = False
        hit_uids.append(int(uid))
        decided.append(outcome[0])
        inc_scores.append(outcome[1])
        best_scores.append(outcome[2])
    if not hit_uids:
        return uids, None
    hits = (
        np.asarray(hit_uids, dtype=np.int64),
        np.asarray(decided, dtype=np.int64),
        np.asarray(inc_scores, dtype=np.float64),
        np.asarray(best_scores, dtype=np.float64),
    )
    return uids[miss], hits


@dataclass(frozen=True, eq=False)
class Shard:
    """One work unit: a slice of one attribute's competition list.

    ``uids`` indexes into the planned table's deduplicated row-signature
    array (``FitState.uniq_rows``); ``cost`` is the planner's estimate,
    kept for diagnostics and tests.
    """

    shard_id: int
    column: int
    attr: str
    uids: np.ndarray
    cost: float = 0.0


@dataclass
class ShardPlan:
    """The full execution plan of one ``clean()`` call."""

    shards: list[Shard] = field(default_factory=list)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_competitions(self) -> int:
        return sum(len(s.uids) for s in self.shards)

    @property
    def total_cost(self) -> float:
        return sum(s.cost for s in self.shards)


def estimate_competition_costs(
    cooc: CooccurrenceIndex,
    attr: str,
    uniq_rows: np.ndarray,
    context_cols: Sequence[int],
    names: Sequence[str],
    cap: int | None,
) -> np.ndarray:
    """Per-competition cost estimate for one attribute's signatures.

    A context value occurring in ``c`` tuples contributes at most
    ``min(c, card(attr))`` distinct candidates; the pool is the union
    over context attributes, capped by ``candidate_cap``.  Codes the
    statistics never saw (incremental foreign encoding) contribute 0.
    """
    n = len(uniq_rows)
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    card_a = len(cooc.counts_array(attr))
    est = np.zeros(n, dtype=np.float64)
    for k in context_cols:
        ctx_counts = cooc.counts_for(names[k], uniq_rows[:, k])
        est += np.minimum(ctx_counts, card_a)
    if cap is not None:
        est = np.minimum(est, cap)
    return est + COMPETITION_OVERHEAD


def plan_shards(
    work: Sequence[tuple[int, str, np.ndarray, np.ndarray]],
    n_shards_hint: int,
    shard_size: int | None = None,
) -> ShardPlan:
    """Cut per-attribute competition lists into a shard plan.

    Parameters
    ----------
    work:
        One ``(column, attr, uids, costs)`` entry per attribute, where
        ``costs`` aligns with ``uids``.
    n_shards_hint:
        Target number of shards across the whole plan (typically
        ``n_jobs × OVERSUBSCRIBE``; 1 collapses to one shard per
        attribute).  Ignored when ``shard_size`` is given.
    shard_size:
        Fixed number of competitions per shard (the explicit
        ``BCleanConfig.shard_size`` knob); overrides cost balancing.
    """
    plan = ShardPlan()
    total_cost = float(sum(float(costs.sum()) for _, _, _, costs in work))
    for column, attr, uids, costs in work:
        if len(uids) == 0:
            continue
        if shard_size is not None:
            bounds = list(range(0, len(uids), shard_size)) + [len(uids)]
        else:
            attr_cost = float(costs.sum())
            k = 1
            if n_shards_hint > 1 and total_cost > 0:
                k = max(1, round(n_shards_hint * attr_cost / total_cost))
                k = min(k, len(uids))
            cum = np.cumsum(costs)
            targets = attr_cost * np.arange(1, k) / k
            cuts = np.searchsorted(cum, targets, side="left") + 1
            bounds = [0] + sorted(set(int(c) for c in cuts) - {0}) + [len(uids)]
            bounds = sorted(set(min(b, len(uids)) for b in bounds))
        for start, stop in zip(bounds, bounds[1:]):
            if stop <= start:
                continue
            plan.shards.append(
                Shard(
                    shard_id=len(plan.shards),
                    column=column,
                    attr=attr,
                    uids=uids[start:stop],
                    cost=float(costs[start:stop].sum()),
                )
            )
    return plan
