"""The staged cleaning pipeline: ingest → encode → detect → plan →
execute → merge → emit.

This module is the driver of the columnar clean path.  What used to be
one monolithic ``BClean._clean_columnar`` body is decomposed into
explicit stages, each consuming/producing a :class:`RowChunk`-anchored
state object:

ingest
    Produce row blocks: slices of the fitted table, slices of a foreign
    in-memory table, or CSV blocks streamed off disk
    (:func:`repro.dataset.io.iter_csv_chunks`) — the out-of-core case,
    where no stage ever holds more than one block.
encode
    Integer-code the block.  Fitted-table blocks are zero-copy slices
    of the fit-time coded matrix; foreign blocks go through
    :meth:`~repro.dataset.encoding.TableEncoding.encode_table`, whose
    incremental code-minting keeps every chunk on the columnar fast
    path (unseen values get fresh codes all statistics treat as
    never-observed).
detect
    The §6.2 tuple-pruning filter (PIP mode): per-attribute boolean
    skip masks over the block's rows.
plan
    Deduplicate the block's row signatures, estimate per-competition
    costs, and cut cost-balanced :class:`~repro.exec.planner.Shard`\\ s;
    ``executor="auto"`` resolves serial vs process here, from the
    **whole-stream** cost estimate (the cumulative planned cost,
    extrapolated to the stream's known total rows when cleaning an
    in-memory table) — pool startup is paid once per session, so the
    break-even belongs to the stream, not to any single block.
execute
    Pack the block's per-chunk view into a
    :class:`~repro.exec.state.ChunkView` and dispatch the shards
    through the clean's :class:`~repro.exec.session.ExecSession`: the
    worker pool is created once, the static
    :class:`~repro.exec.state.FitState` snapshot is shipped once (via
    shared memory when the host allows — :mod:`repro.exec.shm`), and
    every later chunk reaches already-warm workers carrying only its
    own view.
merge
    Scatter the shard results into per-attribute decision buffers
    (:func:`~repro.exec.merge.merge_shard_results`).
emit
    Broadcast per-signature decisions back to the block's rows —
    into an in-memory cleaned table (:class:`TableSink`) or appended
    to an output CSV (:class:`CsvSink`) — emitting repairs in global
    row-major order.

**Chunked output is byte-identical to the whole-table run at every
chunk size.**  Every candidate competition is a pure function of its
row signature and the frozen fit statistics, per-row weights and filter
scores are row-local, foreign code-minting happens in row order
regardless of block boundaries, and chunks emit in order — so chunk
boundaries can reorder *work*, never *results*.  The only observable
difference is effort bookkeeping: without the session cache a signature
recurring in several chunks re-runs its competition once per chunk, so
``candidates_evaluated`` / ``cache_size`` may exceed the whole-table
counts; with it the recurring run is answered from the memo instead and
``candidates_evaluated`` may *undershoot* the uncached chunked counts
(repairs, scores, and the cells counters are identical either way).

Chunked streams additionally carry the **session competition cache**
(:mod:`repro.exec.cache`, ``BCleanConfig.competition_cache``): the plan
stage probes every deduplicated competition against the session's
bounded-LRU memo, hits are answered driver-side with zero dispatch
(spliced back in the merge stage), and fresh shard results are inserted
after each deterministic merge — so a signature recurring across chunks
pays its full Bayesian competition exactly once per session, not once
per chunk.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from repro.core.config import InferenceMode
from repro.core.pruning import (
    tuple_filter_scores_all_rows,
    tuple_filter_scores_coded,
)
from repro.core.repairs import CleaningStats, Repair
from repro.dataset.io import append_csv_rows, iter_csv_chunks, write_csv_header
from repro.dataset.table import Table
from repro.errors import CleaningError
from repro.exec.cache import CompetitionCache, competition_key
from repro.exec.merge import (
    MergedDecisions,
    concat_chunk_repairs,
    merge_shard_results,
)
from repro.exec.planner import (
    OVERSUBSCRIBE,
    ShardPlan,
    default_cache_entries,
    estimate_competition_costs,
    extrapolate_stream_cost,
    partition_cached,
    plan_shards,
    resolve_executor,
)
from repro.exec.session import ExecSession
from repro.exec.state import ChunkView
from repro.obs import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import BClean


# -- chunk-state objects (one per pipeline stage) ------------------------------


@dataclass
class RowChunk:
    """One ingested row block.

    ``table`` holds the materialised rows for foreign blocks; fitted-
    table blocks leave it ``None`` (their cells live in the engine's
    fitted table, addressed through ``start``).
    """

    index: int
    start: int
    n_rows: int
    table: Table | None = None


@dataclass
class EncodedChunk:
    """A chunk after the encode stage: coded rows plus row weights."""

    chunk: RowChunk
    codes: np.ndarray
    weights: np.ndarray
    fitted: bool


@dataclass
class DetectedChunk:
    """A chunk after detection: per-column row skip masks (PIP only)."""

    encoded: EncodedChunk
    skip_rows: dict[int, np.ndarray] = field(default_factory=dict)


@dataclass
class PlannedChunk:
    """A chunk after planning: deduplicated signatures and a shard plan.

    ``row_keys`` (chunked streams only) are the per-unique-signature
    byte keys the session cache is probed and filled with; ``cached``
    carries the plan stage's cache hits per column — competitions the
    execute stage never dispatches, spliced back in the merge.
    """

    detected: DetectedChunk
    uniq_rows: np.ndarray
    inverse: np.ndarray
    uniq_weights: np.ndarray
    columns: list[int]
    plan: ShardPlan
    executor: str
    row_keys: list[bytes] = field(default_factory=list)
    cached: dict[int, tuple] = field(default_factory=dict)


@dataclass
class ChunkDecisions:
    """A chunk after execute+merge: per-signature decision buffers."""

    planned: PlannedChunk
    merged: MergedDecisions


# -- emit sinks ----------------------------------------------------------------


class TableSink:
    """Emit repairs into an in-memory cleaned table (the classic
    ``CleaningResult`` shape)."""

    def __init__(self, source: Table, cleaned: Table):
        self._source = source
        self._cleaned = cleaned
        self._current: list[Repair] = []

    def repair(
        self,
        chunk: RowChunk,
        local_row: int,
        column: int,
        attr: str,
        new_value,
        incumbent_score: float,
        best_score: float,
    ) -> None:
        source = chunk.table if chunk.table is not None else self._source
        source_row = local_row if chunk.table is not None else chunk.start + local_row
        row = chunk.start + local_row
        self._cleaned.set_cell(row, attr, new_value)
        self._current.append(
            Repair(
                row,
                attr,
                source.columns[column][source_row],
                new_value,
                incumbent_score,
                best_score,
            )
        )

    def chunk_done(self, chunk: RowChunk) -> list[Repair]:
        """Cells were written in place — just hand back the chunk's
        repair list for the outer merge."""
        repairs, self._current = self._current, []
        return repairs


class CsvSink:
    """Emit cleaned rows onto an open CSV handle, one block at a time.

    The cleaned table is never materialised — this is the out-of-core
    emit stage.  Repairs are still recorded (with global row indices)
    so the caller gets the usual provenance.
    """

    def __init__(self, handle, delimiter: str = ","):
        self._handle = handle
        self._delimiter = delimiter
        self._current: list[Repair] = []
        self._pending: dict[tuple[int, int], object] = {}

    def repair(
        self,
        chunk: RowChunk,
        local_row: int,
        column: int,
        attr: str,
        new_value,
        incumbent_score: float,
        best_score: float,
    ) -> None:
        if chunk.table is None:  # pragma: no cover - CSV chunks carry tables
            raise CleaningError("CsvSink needs materialised chunk rows")
        self._pending[(local_row, column)] = new_value
        self._current.append(
            Repair(
                chunk.start + local_row,
                attr,
                chunk.table.columns[column][local_row],
                new_value,
                incumbent_score,
                best_score,
            )
        )

    def chunk_done(self, chunk: RowChunk) -> list[Repair]:
        table = chunk.table
        if self._pending:
            table = table.copy()
            for (local_row, column), value in self._pending.items():
                table.set_cell(local_row, table.schema.names[column], value)
            self._pending = {}
        append_csv_rows(self._handle, table, delimiter=self._delimiter)
        repairs, self._current = self._current, []
        return repairs


# -- the driver ----------------------------------------------------------------


class StreamDriver:
    """Runs the staged pipeline over one clean() invocation.

    The driver is built per clean from the engine's fitted components
    and accumulates the work counters / execution diagnostics the
    engine folds into its :class:`~repro.core.repairs.CleaningResult`.
    """

    def __init__(
        self,
        engine: "BClean",
        scorer,
        tracer=NULL_TRACER,
        session: ExecSession | None = None,
        config=None,
    ):
        self.engine = engine
        # ``config`` lets the serving front override *scheduling* knobs
        # (executor, n_jobs, chunk_rows) for one stream; scoring knobs
        # must match the engine's (the session's FitState carries them).
        self.cfg = config if config is not None else engine.config
        self.enc = engine._encoding
        self.names: list[str] = list(engine.table.schema.names)
        self.scorer = scorer
        self.tracer = tracer
        self.n_jobs = self.cfg.n_jobs or os.cpu_count() or 1
        # per-clean lazy caches for fitted-table chunking
        self._fitted_matrix: np.ndarray | None = None
        self._fitted_filter: dict[str, np.ndarray] = {}
        # the clean's execution session: opened at the first executed
        # chunk, closed at emit-end (see run()); one pool + one static
        # snapshot ship for the whole stream.  An *external* (resident)
        # session outlives the stream: the driver acquires a reference
        # on first use, shares the session's competition cache, and
        # releases — never closes — at emit-end.
        self._session: ExecSession | None = None
        self._external = session
        # whole-stream auto-resolution state
        self._cum_plan_cost = 0.0
        self._rows_planned = 0
        #: stream length when known up front (in-memory tables); None
        #: for CSV streams, where the cumulative cost stands in
        self._total_rows: int | None = None
        self._auto_process = False
        # the session competition cache: a per-clean stream sizes its
        # own at the first chunk's plan (so None until then even when
        # enabled); a stream on an external session reuses the
        # session's cache — the memo spans every clean of the resident
        # engine, not just this stream's chunks
        self._cache: CompetitionCache | None = (
            session.competition_cache if session is not None else None
        )
        # cross-chunk signature-repetition tracking for the dedup-aware
        # cost extrapolation (only maintained when the cache is off —
        # with it on the cumulative plan cost is already miss-only)
        self._stream_sigs: set[int] = set()
        self._chunk_uniq_total = 0
        # aggregated outcome
        self.competitions_run = 0
        self.n_chunks = 0
        self.total_shards = 0
        self.backend_counts: dict[str, int] = {}
        self.flags: dict[str, bool] = {}
        self.shm_used = False
        self.pools_created = 0
        self.snapshot_ships = 0
        self.incremental = False
        #: the block size chunks were actually cut at (None = whole table)
        self.effective_chunk_rows = self.cfg.chunk_rows

    # -- ingest -----------------------------------------------------------------

    def _table_chunks(self, table: Table, fitted: bool) -> Iterator[RowChunk]:
        """Slice an in-memory table into row blocks (one block covering
        everything when ``chunk_rows`` is off)."""
        n = table.n_rows
        step = self.cfg.chunk_rows or n
        if fitted:
            for index, start in enumerate(range(0, n, max(step, 1))):
                yield RowChunk(index, start, min(step, n - start), table=None)
        elif self.cfg.chunk_rows is None:
            if n:
                yield RowChunk(0, 0, n, table=table)
        else:
            for index, start in enumerate(range(0, n, step)):
                yield RowChunk(
                    index, start, min(step, n - start),
                    table=table.slice_rows(start, start + step),
                )

    def _csv_chunks(self, path, delimiter: str) -> Iterator[RowChunk]:
        """Stream a foreign CSV as row blocks under the fitted schema —
        the first block never waits for the rest of the file."""
        chunk_rows = self.cfg.chunk_rows or DEFAULT_CSV_CHUNK_ROWS
        self.effective_chunk_rows = chunk_rows
        start = 0
        for index, block in enumerate(
            iter_csv_chunks(
                path,
                chunk_rows,
                schema=self.engine.table.schema,
                delimiter=delimiter,
            )
        ):
            yield RowChunk(index, start, block.n_rows, table=block)
            start += block.n_rows

    # -- encode -----------------------------------------------------------------

    def _matrix(self) -> np.ndarray:
        if self._fitted_matrix is None:
            self._fitted_matrix = self.enc.matrix()
        return self._fitted_matrix

    def encode(self, chunk: RowChunk, fitted: bool) -> EncodedChunk:
        if fitted:
            stop = chunk.start + chunk.n_rows
            codes = self._matrix()[chunk.start : stop]
            weights = self.engine.cooc.row_weights[chunk.start : stop]
        else:
            codes = self.enc.encode_table(chunk.table)
            weights = np.ones(chunk.n_rows, dtype=np.float64)
        return EncodedChunk(chunk, codes, weights, fitted)

    # -- detect -----------------------------------------------------------------

    def _fitted_filter_scores(self, attr: str) -> np.ndarray:
        scores = self._fitted_filter.get(attr)
        if scores is None:
            scores = tuple_filter_scores_all_rows(self.engine.cooc, attr)
            self._fitted_filter[attr] = scores
        return scores

    def detect(self, encoded: EncodedChunk, stats: CleaningStats) -> DetectedChunk:
        """Tuple pruning (§6.2): mark reliable, non-NULL cells to skip.

        Outside PIP mode every cell is inspected and the masks stay
        empty.
        """
        chunk = encoded.chunk
        n = chunk.n_rows
        detected = DetectedChunk(encoded)
        if self.cfg.mode != InferenceMode.PARTITIONED_PRUNED:
            stats.cells_inspected += n * len(self.names)
            return detected
        for j, attr in enumerate(self.names):
            if encoded.fitted:
                filter_scores = self._fitted_filter_scores(attr)[
                    chunk.start : chunk.start + n
                ]
            else:
                filter_scores = tuple_filter_scores_coded(
                    self.engine.cooc, attr, encoded.codes, self.names
                )
            null_mask = self.enc.vocab(attr).null_mask
            skip_rows = (filter_scores >= self.cfg.tau_clean) & ~null_mask[
                encoded.codes[:, j]
            ]
            n_skipped = int(skip_rows.sum())
            stats.cells_skipped_pruning += n_skipped
            stats.cells_inspected += n - n_skipped
            detected.skip_rows[j] = skip_rows
        return detected

    # -- plan -------------------------------------------------------------------

    def plan(self, detected: DetectedChunk) -> PlannedChunk:
        """Deduplicate signatures, estimate costs, cut shards, and pick
        the backend (resolving ``executor="auto"`` from the stream-level
        cost estimate)."""
        cfg = self.cfg
        encoded = detected.encoded
        uniq_rows, first_rows, inverse = np.unique(
            encoded.codes, axis=0, return_index=True, return_inverse=True
        )
        inverse = inverse.reshape(-1)
        n_uniq = len(uniq_rows)
        uniq_weights = encoded.weights[first_rows]

        # An external-session stream computes row keys even un-chunked:
        # the resident session's cache can answer a signature seen by
        # any *earlier* clean, and fresh outcomes must be insertable.
        chunked = (
            self.effective_chunk_rows is not None or self._external is not None
        )
        row_keys: list[bytes] = (
            [uniq_rows[i].tobytes() for i in range(n_uniq)] if chunked else []
        )
        if chunked and not self._cache_enabled():
            self._track_signatures(row_keys)

        cached: dict[int, tuple] = {}
        work: list[tuple[int, str, np.ndarray]] = []
        for j, attr in enumerate(self.names):
            skip_rows = detected.skip_rows.get(j)
            if skip_rows is None:
                skip_uniq = np.zeros(n_uniq, dtype=bool)
            else:
                skip_uniq = skip_rows[first_rows]
            uids = np.nonzero(~skip_uniq)[0]
            uids, hits = partition_cached(
                self._cache, j, uids, row_keys, uniq_weights
            )
            if hits is not None:
                cached[j] = hits
            work.append((j, attr, uids))

        if cfg.executor == "serial" or (
            cfg.executor == "auto" and self.n_jobs == 1
        ):
            hint = 1
        else:
            hint = self.n_jobs * OVERSUBSCRIBE
        # Pool-size cost estimates steer the cost-balanced planner and
        # the auto-executor choice; one-shard-per-attribute (hint 1)
        # and fixed shard_size plans never read them, so skip the
        # estimation pass there.
        balancing = cfg.shard_size is None and hint > 1
        m = len(self.names)
        costed_work = [
            (
                j,
                attr,
                uids,
                estimate_competition_costs(
                    self.engine.cooc,
                    attr,
                    uniq_rows[uids],
                    [k for k in range(m) if k != j],
                    self.names,
                    cfg.effective_candidate_cap(),
                )
                if balancing
                else np.ones(len(uids), dtype=np.float64),
            )
            for j, attr, uids in work
        ]
        plan = plan_shards(costed_work, hint, cfg.shard_size)
        self._cum_plan_cost += plan.total_cost
        self._rows_planned += encoded.chunk.n_rows
        if (
            self._cache is None
            and self._external is None
            and self._cache_enabled()
        ):
            # The cache is created only now because the auto bound is
            # sized from this first chunk's extrapolated competition
            # count.  Its competitions were planned before any probe
            # could happen — count them as the misses they would have
            # been, so hits + misses equals the stream's probe total.
            bound = cfg.competition_cache or default_cache_entries(
                plan.n_competitions, self._rows_planned, self._total_rows
            )
            self._cache = CompetitionCache(bound)
            self._cache.misses += plan.n_competitions
        executor = self._resolve_backend(plan)
        return PlannedChunk(
            detected,
            uniq_rows,
            inverse,
            uniq_weights,
            [w[0] for w in work],
            plan,
            executor,
            row_keys=row_keys,
            cached=cached,
        )

    def _cache_enabled(self) -> bool:
        """Whether this stream carries the session competition cache:
        chunked streams can see a signature twice across their chunks,
        and a stream on an external (resident) session can see one
        across *cleans* — a whole-table clean on a private session
        deduplicates everything in its single plan, so only those stay
        uncached.  ``competition_cache=0`` disables it outright."""
        return self.cfg.competition_cache != 0 and (
            self.effective_chunk_rows is not None
            or self._external is not None
        )

    def _track_signatures(self, row_keys: list[bytes]) -> None:
        """Accumulate the cache-off stream's signature-repetition ratio
        for :meth:`_dedup_factor` (capped: past ``SIG_TRACK_CAP``
        distinct signatures the ratio freezes at its last value rather
        than growing driver memory without bound)."""
        if len(self._stream_sigs) >= SIG_TRACK_CAP:
            return
        self._chunk_uniq_total += len(row_keys)
        self._stream_sigs.update(hash(k) for k in row_keys)

    def _dedup_factor(self) -> float:
        """Observed stream-distinct / chunk-distinct signature ratio —
        the :func:`extrapolate_stream_cost` correction for signatures
        recurring across chunks.  1.0 with the cache active: its plans
        already cost only the misses, so discounting again would count
        the repetition twice."""
        if self._cache is not None or self._chunk_uniq_total <= 0:
            return 1.0
        return len(self._stream_sigs) / self._chunk_uniq_total

    def _resolve_backend(self, plan: ShardPlan) -> str:
        """Resolve ``executor="auto"`` for one chunk from the stream's
        cost, not the chunk's.

        Once a chunk has resolved to ``process`` the session's pool is
        warm, so every later chunk that can use it does — the marginal
        cost of a dispatch is one small payload ship, far below any
        re-decision threshold (unless pools are non-persistent, where
        each dispatch pays full price and the estimate must re-clear
        the bar).  Backend choice never affects results, only
        wall-clock.
        """
        cfg = self.cfg
        if cfg.executor != "auto":
            return cfg.executor
        # A resident session whose process pool is already warm extends
        # the same logic across cleans: the pool spawn and snapshot ship
        # were paid by an earlier stream, so this one inherits them.
        warm_resident = (
            self._external is not None and self._external.is_warm("process")
        )
        if (
            (self._auto_process or warm_resident)
            and cfg.persistent_pool
            and self.n_jobs > 1
            and plan.n_shards > 1
        ):
            self._auto_process = True
            return "process"
        # Without a persistent pool every process dispatch pays the full
        # spawn + snapshot ship again, so each chunk must clear the
        # threshold on its own cost — only a warm session may bill the
        # fixed costs to the stream.
        cost = (
            extrapolate_stream_cost(
                self._cum_plan_cost,
                self._rows_planned,
                self._total_rows,
                dedup_factor=self._dedup_factor(),
            )
            if cfg.persistent_pool
            else plan.total_cost
        )
        resolved = resolve_executor("auto", cost, plan.n_shards, self.n_jobs)
        if resolved == "process":
            self._auto_process = True
        return resolved

    # -- execute + merge --------------------------------------------------------

    def session(self) -> ExecSession:
        """The stream's execution session (opened on first use): one
        worker pool and one static-snapshot ship for the whole stream.

        With an external (resident) session the driver takes a
        reference on it instead of building its own — the pool, the
        shipped snapshot, and the competition cache all belong to the
        resident engine and survive this stream."""
        if self._session is None:
            if self._external is not None:
                self._session = self._external.acquire()
            else:
                self._session = ExecSession(
                    self.engine.fit_state(self.scorer),
                    self.n_jobs,
                    persistent=self.cfg.persistent_pool,
                    competition_cache=self._cache,
                    tracer=self.tracer,
                )
        return self._session

    def _close_session(self) -> None:
        """Emit-end: fold the session's pool/ship counters into the
        driver's diagnostics, then join workers and release segments —
        or, for an external session, just drop the stream's reference
        (the resident engine owns the lifetime; ``ExecSession.close``
        emits the ``session_close`` trace event when it really ends)."""
        if self._session is None:
            return
        self.pools_created = self._session.pools_created
        self.snapshot_ships = self._session.snapshot_ships
        if self._external is not None:
            self._session.release()
        else:
            self._session.close()

    def dispatch_chunk(self, planned: PlannedChunk) -> list:
        """The execute stage proper: pack the chunk view and run the
        planned shards on the session's backend (an all-cache-hit chunk
        dispatches nothing)."""
        cfg = self.cfg
        engine = self.engine
        names = self.names
        session = self.session()
        if planned.plan.shards:
            view = ChunkView(
                planned.uniq_rows,
                planned.uniq_weights,
                {a: self.enc.vocab(a).null_mask for a in names},
                {a: engine._uc_code_mask(a) for a in names}
                if cfg.use_ucs
                else {},
            )
            results = session.dispatch(
                planned.executor, view, planned.plan.shards
            )
        else:
            # every competition of this chunk was answered from the
            # session cache — nothing to ship, no pool gets created
            results = []
        self.total_shards += planned.plan.n_shards
        self.backend_counts[planned.executor] = (
            self.backend_counts.get(planned.executor, 0) + 1
        )
        self.flags.update(session.flags())
        if session.shm_used:
            self.shm_used = True
        return results

    def merge_chunk(
        self, planned: PlannedChunk, results: list, stats: CleaningStats
    ) -> ChunkDecisions:
        """The merge stage: scatter shard results (and cache hits) into
        decision buffers, then feed fresh outcomes to the session
        cache."""
        merged = merge_shard_results(
            results,
            len(planned.uniq_rows),
            planned.columns,
            cached=planned.cached or None,
        )
        if self._cache is not None:
            self._insert_results(planned, results)
        stats.candidates_evaluated += merged.candidates_evaluated
        stats.candidates_filtered_uc += merged.candidates_filtered_uc
        self.competitions_run += merged.n_competitions + merged.n_cached
        return ChunkDecisions(planned, merged)

    def execute(self, planned: PlannedChunk, stats: CleaningStats) -> ChunkDecisions:
        """Execute + merge in one call (the pipeline's ``run`` keeps the
        stages apart so each gets its own trace span)."""
        return self.merge_chunk(planned, self.dispatch_chunk(planned), stats)

    def _insert_results(self, planned: PlannedChunk, results) -> None:
        """Insert the chunk's freshly computed competition outcomes into
        the session cache, after the deterministic merge — so later
        chunks (and a future resident session's later cleans) answer
        the same competition identity without dispatching."""
        cache = self._cache
        keys = planned.row_keys
        weights = planned.uniq_weights
        for result in results:
            j = result.column
            for pos in range(len(result.uids)):
                uid = int(result.uids[pos])
                cache.put(
                    competition_key(j, float(weights[uid]), keys[uid]),
                    (
                        int(result.decided[pos]),
                        float(result.incumbent_scores[pos]),
                        float(result.best_scores[pos]),
                    ),
                )

    # -- emit -------------------------------------------------------------------

    def emit(self, decisions: ChunkDecisions, sink) -> list[Repair]:
        """Broadcast per-signature decisions back to every row of the
        chunk, in the scalar path's row-major repair order; returns the
        chunk's repair list for the outer (chunk-level) merge."""
        planned = decisions.planned
        merged = decisions.merged
        chunk = planned.detected.encoded.chunk
        for local_i in range(chunk.n_rows):
            uid = planned.inverse[local_i]
            for j, attr in enumerate(self.names):
                code = merged.decided[j][uid]
                if code >= 0:
                    sink.repair(
                        chunk,
                        local_i,
                        j,
                        attr,
                        self.enc.decode(attr, int(code)),
                        float(merged.incumbent_scores[j][uid]),
                        float(merged.best_scores[j][uid]),
                    )
        return sink.chunk_done(chunk)

    # -- drivers ----------------------------------------------------------------

    def run(
        self,
        chunks: Iterable[RowChunk],
        fitted: bool,
        stats: CleaningStats,
        sink,
    ) -> list[Repair]:
        """Push every chunk through encode → detect → plan → execute →
        merge → emit, then concatenate the per-chunk repairs.  Chunks
        are processed strictly one at a time, so peak memory is one
        block plus the frozen fit statistics.  The execution session —
        worker pool, shipped snapshot — spans all chunks and is closed
        (workers joined, segments released) at emit-end.

        Each stage of each chunk runs under its own trace span (a no-op
        with tracing disabled); the plan span carries the chunk's cache
        probe/hit deltas, so per-chunk cache effectiveness is readable
        straight off the trace.
        """
        self.incremental = not fitted
        m = len(self.names)
        per_chunk: list[list[Repair]] = []
        tracer = self.tracer
        it = iter(chunks)
        try:
            while True:
                # ingest is the pull itself: for CSV streams this span
                # is the disk read + parse of the next block
                with tracer.span("ingest", cat="stream"):
                    chunk = next(it, None)
                if chunk is None:
                    break
                if chunk.n_rows == 0:
                    continue
                self.n_chunks += 1
                stats.cells_total += chunk.n_rows * m
                if m == 0:
                    continue
                with tracer.span("encode", cat="stream", chunk=chunk.index):
                    encoded = self.encode(chunk, fitted)
                with tracer.span("detect", cat="stream", chunk=chunk.index):
                    detected = self.detect(encoded, stats)
                with tracer.span("plan", cat="stream", chunk=chunk.index) as span:
                    hits0, misses0 = self._cache_counts()
                    planned = self.plan(detected)
                    if self._cache is not None:
                        hits1, misses1 = self._cache_counts()
                        span.add(
                            cache_probes=(hits1 - hits0) + (misses1 - misses0),
                            cache_hits=hits1 - hits0,
                        )
                with tracer.span(
                    "execute", cat="stream", chunk=chunk.index,
                    backend=planned.executor,
                    n_shards=planned.plan.n_shards,
                ):
                    results = self.dispatch_chunk(planned)
                with tracer.span("merge", cat="stream", chunk=chunk.index):
                    decisions = self.merge_chunk(planned, results, stats)
                with tracer.span("emit", cat="stream", chunk=chunk.index):
                    per_chunk.append(self.emit(decisions, sink))
        finally:
            self._close_session()
        return concat_chunk_repairs(per_chunk)

    def _cache_counts(self) -> tuple[int, int]:
        cache = self._cache
        return (cache.hits, cache.misses) if cache is not None else (0, 0)

    def clean_table(
        self,
        table: Table,
        fitted: bool,
        stats: CleaningStats,
        cleaned: Table,
        repairs: list[Repair],
    ) -> None:
        """The in-memory clean: whole-table (one chunk) or chunked."""
        self._total_rows = table.n_rows
        sink = TableSink(table, cleaned)
        repairs.extend(
            self.run(self._table_chunks(table, fitted), fitted, stats, sink)
        )

    def clean_csv(
        self,
        src,
        dst,
        stats: CleaningStats,
        repairs: list[Repair],
        delimiter: str = ",",
    ) -> None:
        """The out-of-core clean: CSV in, CSV out, one block resident."""
        with open(dst, "w", newline="", encoding="utf-8") as handle:
            write_csv_header(handle, self.engine.table.schema, delimiter=delimiter)
            sink = CsvSink(handle, delimiter=delimiter)
            repairs.extend(
                self.run(self._csv_chunks(src, delimiter), False, stats, sink)
            )

    # -- diagnostics ------------------------------------------------------------

    def exec_diagnostics(self, requested: str) -> dict:
        """The ``exec`` diagnostics block (same shape as before the
        pipeline refactor, plus auto/shm annotations)."""
        if self.n_chunks <= 1 and requested != "auto":
            n_jobs = 1 if requested == "serial" else self.n_jobs
        else:
            resolved = set(self.backend_counts)
            n_jobs = 1 if resolved <= {"serial"} else self.n_jobs
        diag = {
            "executor": requested,
            "n_jobs": n_jobs,
            "n_shards": self.total_shards,
            "incremental_encoding": self.incremental,
        }
        if requested == "auto":
            # Report the stream's sticky resolution, chunked or not: a
            # stream that ever went to process stays there (the pool is
            # warm), so that is its resolved backend even if early
            # cheap chunks ran serial before the estimate crossed the
            # threshold.
            if self._auto_process or "process" in self.backend_counts:
                diag["resolved"] = "process"
            else:
                diag["resolved"] = next(iter(self.backend_counts), "serial")
        diag.update(self.flags)
        if self.shm_used:
            diag["shm"] = True
        return diag

    def stream_diagnostics(self) -> dict:
        """The ``stream`` diagnostics block (chunked runs only),
        mirroring the ``fit_exec`` shape: chunk count, per-backend
        chunk counts, shared-memory usage, and the session's
        amortisation counters — a healthy persistent ``process`` stream
        shows ``pools_created == 1`` and ``snapshot_ships == 1``
        however many chunks ran.  The competition-cache counters ride
        along: on a repetitive stream ``cache_hits`` counts the
        competitions answered without any dispatch (all three stay 0
        when the cache is disabled)."""
        out = {
            "chunk_rows": self.effective_chunk_rows,
            "n_chunks": self.n_chunks,
            "backends": dict(sorted(self.backend_counts.items())),
            "shm": self.shm_used,
            "pools_created": self.pools_created,
            "snapshot_ships": self.snapshot_ships,
        }
        if self._cache is not None:
            out.update(self._cache.stats())
        else:
            out.update(
                {"cache_hits": 0, "cache_misses": 0, "cache_evictions": 0}
            )
        return out


#: CSV block size when ``clean_csv`` runs without an explicit
#: ``chunk_rows`` — small enough to bound memory, large enough that
#: per-chunk dedup still collapses most repeated signatures.
DEFAULT_CSV_CHUNK_ROWS = 4096

#: distinct-signature tracking cap for the cache-off dedup factor —
#: past it the factor freezes instead of growing the driver's hash set
#: without bound (the set holds Python ints: ~60 MB at the cap).
SIG_TRACK_CAP = 1 << 21
