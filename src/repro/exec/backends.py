"""Worker backends: serial, thread-pool, and process-pool execution.

A backend takes a :class:`~repro.exec.state.FitState` plus the planned
shards and returns one :class:`~repro.exec.state.ShardResult` per shard.
Because every shard is a pure function of the read-only snapshot, the
three backends are interchangeable — results are byte-identical; only
wall-clock differs:

``serial``
    Runs shards in-process, in plan order.  No overhead, no
    parallelism; the default (and the baseline every equivalence test
    pins the others against).

``thread``
    A ``ThreadPoolExecutor``.  Shares the snapshot by reference (zero
    shipping cost) but executes under the GIL, so speedup comes only
    from the numpy portions of the kernel that release it.  Useful for
    wide tables with large pools; modest elsewhere.

``process``
    A ``ProcessPoolExecutor``.  The snapshot is serialised **once** and
    shipped to each worker through the pool initializer (not per task);
    workers rebuild lazy caches locally.  The snapshot's large numpy
    arrays travel through one ``multiprocessing.shared_memory`` segment
    (:mod:`repro.exec.shm` — workers map the same physical pages
    instead of each deserialising a private copy; only the scalar shell
    is pickled), falling back to the classic all-in-band pickle when
    the host offers no shared memory.  True multi-core scaling at the
    cost of one snapshot serialisation per dispatch — the right backend
    for paper-scale tables.  If the host cannot create a process pool
    at all (sandboxed environments without semaphore support), the
    backend falls back to serial execution and records it in
    :attr:`ProcessBackend.fell_back` so the engine can surface the
    downgrade in its diagnostics.
"""

from __future__ import annotations

import atexit
import gc
import pickle
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Protocol, Sequence

from repro.errors import CleaningError
from repro.exec import shm as shm_transport
from repro.exec.planner import Shard
from repro.exec.state import FitState, ShardResult

#: recognised ``BCleanConfig.executor`` values
EXECUTOR_NAMES = ("serial", "thread", "process")


class Backend(Protocol):
    """Common backend interface (structural)."""

    def run(self, state: FitState, shards: Sequence[Shard]) -> list[ShardResult]:
        ...  # pragma: no cover - protocol


class SerialBackend:
    """In-process execution, plan order."""

    name = "serial"

    def run(self, state: FitState, shards: Sequence[Shard]) -> list[ShardResult]:
        return [state.run_shard(shard) for shard in shards]


class ThreadBackend:
    """``ThreadPoolExecutor`` over a shared snapshot."""

    name = "thread"

    def __init__(self, n_jobs: int):
        self.n_jobs = max(1, n_jobs)
        #: set when the run short-circuited to plain serial execution
        #: (one worker or one shard) — surfaced in engine diagnostics so
        #: timings are not misread as pool overhead
        self.ran_serially = False

    def run(self, state: FitState, shards: Sequence[Shard]) -> list[ShardResult]:
        if len(shards) <= 1 or self.n_jobs == 1:
            self.ran_serially = True
            return SerialBackend().run(state, shards)
        with ThreadPoolExecutor(max_workers=self.n_jobs) as pool:
            return list(pool.map(state.run_shard, shards))


# Worker-side state of the process backend: installed once per worker by
# the pool initializer, read by every task that worker executes.  The
# shared-memory mapping (if any) is pinned alongside the state — the
# state's arrays are zero-copy views into it.
_WORKER_STATE: FitState | None = None
_WORKER_SHM = None


def _worker_init(payload: bytes) -> None:
    global _WORKER_STATE
    _WORKER_STATE = pickle.loads(payload)


def _worker_init_shm(shell: "shm_transport.ShmShell") -> None:
    global _WORKER_STATE, _WORKER_SHM
    _WORKER_STATE, _WORKER_SHM = shm_transport.unpack(shell)
    # Detach deliberately at worker exit: drop the state first so the
    # zero-copy array views release their buffer exports, then unmap.
    # Leaving both to interpreter-shutdown GC risks the mapping's
    # destructor running while views are still alive (teardown order is
    # unspecified), which would print an ignored BufferError per worker.
    atexit.register(_worker_detach_shm)


def _worker_detach_shm() -> None:
    global _WORKER_STATE, _WORKER_SHM
    _WORKER_STATE = None
    gc.collect()  # the snapshot graph may hold reference cycles
    if _WORKER_SHM is not None:
        try:
            _WORKER_SHM.close()
        except BufferError:  # pragma: no cover - a view outlived the state
            pass
        _WORKER_SHM = None


def _worker_run(shard: Shard) -> ShardResult:
    if _WORKER_STATE is None:  # pragma: no cover - initializer always ran
        raise CleaningError("process worker used before initialisation")
    return _WORKER_STATE.run_shard(shard)


class ProcessBackend:
    """``ProcessPoolExecutor`` with a one-shot snapshot (shm or pickle)."""

    name = "process"

    def __init__(self, n_jobs: int, use_shm: bool = True):
        self.n_jobs = max(1, n_jobs)
        #: whether to attempt the shared-memory transport at all (tests
        #: force the pickle path by passing False)
        self.use_shm = use_shm
        #: set when the host refused a process pool and serial ran instead
        self.fell_back = False
        #: set when the run short-circuited to serial (one worker or one
        #: shard): no pool was created and no snapshot was shipped
        self.ran_serially = False
        #: set when the snapshot's arrays travelled via shared memory
        self.shm_used = False
        #: out-of-band bytes shipped through the segment (diagnostics)
        self.shm_bytes = 0

    def run(self, state: FitState, shards: Sequence[Shard]) -> list[ShardResult]:
        if len(shards) <= 1 or self.n_jobs == 1:
            self.ran_serially = True
            return SerialBackend().run(state, shards)
        snapshot = shm_transport.pack(state) if self.use_shm else None
        try:
            if snapshot is not None:
                self.shm_used = True
                self.shm_bytes = snapshot.array_bytes
                initializer, initargs = _worker_init_shm, (snapshot.shell,)
            else:
                payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
                initializer, initargs = _worker_init, (payload,)
            with ProcessPoolExecutor(
                max_workers=min(self.n_jobs, len(shards)),
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                return list(pool.map(_worker_run, shards))
        except (OSError, BrokenExecutor):
            # The *pool* could not be created (no semaphores, fork
            # blocked...) or its workers were killed (BrokenExecutor —
            # e.g. a worker that failed to map the segment).  Shard
            # execution itself does no IO, so this is an environment
            # limitation: degrade to the always-correct serial path and
            # let the engine report it.
            self.fell_back = True
            self.ran_serially = True
            self.shm_used = False
            return SerialBackend().run(state, shards)
        finally:
            # Workers have been joined by the pool's context exit, so
            # the segment can be unlinked; their mappings died with them.
            if snapshot is not None:
                snapshot.release()


def get_backend(name: str, n_jobs: int) -> SerialBackend | ThreadBackend | ProcessBackend:
    """Instantiate the backend selected by ``BCleanConfig.executor``.

    ``"auto"`` is not a backend — callers resolve it first with
    :func:`repro.exec.planner.resolve_executor` (it needs the plan's
    cost estimate, which only the call site has).
    """
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(n_jobs)
    if name == "process":
        return ProcessBackend(n_jobs)
    raise CleaningError(
        f"unknown executor {name!r}; choose from {EXECUTOR_NAMES}"
    )
