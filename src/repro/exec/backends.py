"""Worker backends: serial, thread-pool, and process-pool execution.

A backend is **session-scoped**: it is opened once per
:class:`~repro.exec.session.ExecSession` with the static read-only
state (a :class:`~repro.exec.state.FitState` or
:class:`~repro.exec.fit.FitJobState`), then receives any number of
:meth:`dispatch` calls — one per row chunk or fit job — each carrying
only the small per-dispatch payload (a
:class:`~repro.exec.state.ChunkView`, a
:class:`~repro.exec.fit.FitTasks`) plus the planned shards, and finally
:meth:`close` releases the pool and any shared-memory segment.  Because
every shard is a pure function of (static state, payload), the three
backends are interchangeable — results are byte-identical; only
wall-clock differs:

``serial``
    Runs shards in-process, in plan order.  No overhead, no
    parallelism; the default (and the baseline every equivalence test
    pins the others against).

``thread``
    A ``ThreadPoolExecutor``, created at the first dispatch that can
    use it and kept warm for the rest of the session.  Shares state and
    payload by reference (zero shipping cost) but executes under the
    GIL, so speedup comes only from the numpy portions of the kernel
    that release it.

``process``
    A ``ProcessPoolExecutor``.  The static state is serialised **once
    per session** and shipped to each worker through the pool
    initializer — not per dispatch, and emphatically not per chunk: a
    chunked clean used to pay one pool spawn and one snapshot ship per
    chunk; a session pays both exactly once (``pools_created`` /
    ``snapshot_ships`` count them for the diagnostics).  The static
    snapshot's large numpy arrays travel through one
    ``multiprocessing.shared_memory`` segment (:mod:`repro.exec.shm` —
    workers map the same physical pages instead of each deserialising a
    private copy; only the scalar shell is pickled), falling back to
    the classic all-in-band pickle when the host offers no shared
    memory.  Each dispatch then ships only its payload: through a
    small, short-lived shm segment of its own when it is big enough to
    be worth one, in-band with the tasks otherwise; workers cache the
    payload per dispatch so the pool's task stream stays tiny.  If the
    host cannot create a process pool at all (sandboxed environments
    without semaphore support), or the pool's workers die mid-session,
    the backend degrades to serial execution and records it in
    :attr:`ProcessBackend.fell_back` (plus
    :attr:`ProcessBackend.pool_broken` when a live pool was lost, as
    opposed to never coming up) so the engine can surface the downgrade
    in its diagnostics.

``persistent=False`` (the ``BCleanConfig.persistent_pool`` escape
hatch) restores the pre-session behaviour: the pool and snapshot are
torn down after every dispatch.
"""

from __future__ import annotations

import atexit
import gc
import os
import pickle
import threading
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Protocol, Sequence

from repro.errors import CleaningError
from repro.exec import shm as shm_transport
from repro.exec.planner import Shard
from repro.exec.state import ShardResult
from repro.obs import DRIVER_TID, NULL_TRACER, clock

#: recognised ``BCleanConfig.executor`` values
EXECUTOR_NAMES = ("serial", "thread", "process")

#: per-dispatch payloads below this many out-of-band bytes ship in-band
#: with the tasks instead of through their own shm segment — a segment
#: per few-KB chunk costs more in syscalls than it saves in copies.
PAYLOAD_SHM_MIN_BYTES = 1 << 15


class Backend(Protocol):
    """Common session-scoped backend interface (structural)."""

    def open(self, state) -> None:
        ...  # pragma: no cover - protocol

    def dispatch(self, payload, shards: Sequence[Shard]) -> list[ShardResult]:
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        ...  # pragma: no cover - protocol


def _run_timed_serial(state, payload, shards, times: list) -> list[ShardResult]:
    """Serial shard loop that also records ``(shard_id, start, dur,
    track)`` per shard into ``times`` — the in-driver counterpart of the
    timed worker protocol, on the driver's own trace track."""
    times.clear()
    results = []
    for shard in shards:
        start = clock()
        results.append(state.run_shard(shard, payload))
        times.append((shard.shard_id, start, clock() - start, DRIVER_TID))
    return results


class SerialBackend:
    """In-process execution, plan order."""

    name = "serial"
    pools_created = 0
    snapshot_ships = 0

    def __init__(self, tracer=NULL_TRACER):
        self._state = None
        self.tracer = tracer
        #: last dispatch's ``(shard_id, start, dur, track)`` tuples —
        #: populated only when tracing is enabled; the session merges
        #: them into the trace after each dispatch
        self.shard_times: list = []

    def open(self, state) -> None:
        self._state = state

    def dispatch(self, payload, shards: Sequence[Shard]) -> list[ShardResult]:
        if not self.tracer.enabled:
            return [self._state.run_shard(shard, payload) for shard in shards]
        return _run_timed_serial(self._state, payload, shards, self.shard_times)

    def close(self) -> None:
        self._state = None


class ThreadBackend:
    """``ThreadPoolExecutor`` over a shared snapshot, warm per session."""

    name = "thread"
    snapshot_ships = 0  # threads share the state by reference

    def __init__(self, n_jobs: int, persistent: bool = True, tracer=NULL_TRACER):
        self.n_jobs = max(1, n_jobs)
        #: keep the pool alive between dispatches (sessions); False
        #: tears it down after every dispatch
        self.persistent = persistent
        #: set when a dispatch short-circuited to plain serial execution
        #: (one worker or one shard) — surfaced in engine diagnostics so
        #: timings are not misread as pool overhead
        self.ran_serially = False
        #: why the short-circuit happened ("n_jobs=1" / "single_shard"),
        #: recorded alongside ``ran_serially`` so diagnostics that also
        #: report a shard count are not read as contradictory
        self.serial_reason: str | None = None
        #: thread pools spawned over the session's lifetime
        self.pools_created = 0
        self.tracer = tracer
        #: last dispatch's ``(shard_id, start, dur, thread)`` tuples
        #: (tracing only); each worker thread's ident is its trace track
        self.shard_times: list = []
        self._state = None
        self._pool: ThreadPoolExecutor | None = None

    def open(self, state) -> None:
        self._state = state

    @property
    def is_warm(self) -> bool:
        """Whether a live pool is ready to take dispatches."""
        return self._pool is not None

    def dispatch(self, payload, shards: Sequence[Shard]) -> list[ShardResult]:
        tracer = self.tracer
        if self._pool is None and (len(shards) <= 1 or self.n_jobs == 1):
            self.ran_serially = True
            if self.serial_reason is None:
                self.serial_reason = (
                    "n_jobs=1" if self.n_jobs == 1 else "single_shard"
                )
            if not tracer.enabled:
                return [self._state.run_shard(s, payload) for s in shards]
            return _run_timed_serial(
                self._state, payload, shards, self.shard_times
            )
        if self._pool is None:
            with tracer.span(
                "pool_create", cat="session", backend=self.name,
                workers=self.n_jobs,
            ):
                self._pool = ThreadPoolExecutor(max_workers=self.n_jobs)
            self.pools_created += 1
        if tracer.enabled:
            self.shard_times.clear()
            times = self.shard_times

            def run(s):
                start = clock()
                result = self._state.run_shard(s, payload)
                # list.append is GIL-atomic; each worker thread's ident
                # becomes its trace track
                times.append(
                    (s.shard_id, start, clock() - start,
                     threading.get_ident())
                )
                return result
        else:
            def run(s):
                return self._state.run_shard(s, payload)
        try:
            return list(self._pool.map(run, shards))
        finally:
            if not self.persistent:
                self._shutdown_pool()

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def close(self) -> None:
        self._shutdown_pool()
        self._state = None


# Worker-side state of the process backend: the static snapshot is
# installed once per worker by the pool initializer; the per-dispatch
# payload is installed by the first task of each dispatch that reaches
# the worker and cached for that dispatch's remaining tasks.  The
# shared-memory mappings (if any) are pinned alongside — the arrays are
# zero-copy views into them.
_WORKER_STATE = None
_WORKER_SHM = None
#: ``(dispatch_id, payload, shm | None)`` of the payload this worker
#: currently has installed
_WORKER_PAYLOAD = None
#: payload segments whose close was deferred by a BufferError (a stray
#: view outlived its payload) — closed at worker exit instead
_WORKER_DEFERRED: list = []


def _worker_init(payload: bytes) -> None:
    global _WORKER_STATE
    _WORKER_STATE = pickle.loads(payload)
    atexit.register(_worker_teardown)


def _worker_init_shm(shell: "shm_transport.ShmShell") -> None:
    global _WORKER_STATE, _WORKER_SHM
    _WORKER_STATE, _WORKER_SHM = shm_transport.unpack(shell)
    # Detach deliberately at worker exit: drop the state first so the
    # zero-copy array views release their buffer exports, then unmap.
    # Leaving both to interpreter-shutdown GC risks the mapping's
    # destructor running while views are still alive (teardown order is
    # unspecified), which would print an ignored BufferError per worker.
    atexit.register(_worker_teardown)


def _worker_release_payload() -> None:
    global _WORKER_PAYLOAD
    if _WORKER_PAYLOAD is None:
        return
    _, _, segment = _WORKER_PAYLOAD
    _WORKER_PAYLOAD = None
    if segment is not None:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - a view outlived the payload
            _WORKER_DEFERRED.append(segment)


def _worker_teardown() -> None:
    global _WORKER_STATE, _WORKER_SHM
    _worker_release_payload()
    for segment in _WORKER_DEFERRED:  # pragma: no cover - deferred closes
        try:
            segment.close()
        except BufferError:
            pass
    _WORKER_DEFERRED.clear()
    _WORKER_STATE = None
    gc.collect()  # the snapshot graph may hold reference cycles
    if _WORKER_SHM is not None:
        try:
            _WORKER_SHM.close()
        except BufferError:  # pragma: no cover - a view outlived the state
            pass
        _WORKER_SHM = None


def _worker_run(task) -> ShardResult:
    """Run one shard: install the task's dispatch payload (first task of
    a dispatch to reach this worker pays it; the rest hit the cache),
    then execute against the session-static snapshot.

    Tasks are 3-tuples ``(dispatch_id, ship, shard)`` — or, only when
    the driver is tracing, 4-tuples whose extra flag asks the worker to
    time ``run_shard`` and return ``(result, (shard_id, start, dur,
    pid))`` so the driver can merge per-shard worker spans.  Untraced
    dispatches keep the exact 3-tuple wire format (and bare-result
    returns) they had before tracing existed.
    """
    timed = len(task) == 4
    dispatch_id, ship, shard = task[0], task[1], task[2]
    if _WORKER_STATE is None:  # pragma: no cover - initializer always ran
        raise CleaningError("process worker used before initialisation")
    global _WORKER_PAYLOAD
    if _WORKER_PAYLOAD is None or _WORKER_PAYLOAD[0] != dispatch_id:
        _worker_release_payload()
        kind, data = ship
        if kind == "shm":
            payload, segment = shm_transport.unpack(data)
        else:
            payload, segment = pickle.loads(data), None
        _WORKER_PAYLOAD = (dispatch_id, payload, segment)
    if not timed:
        return _WORKER_STATE.run_shard(shard, _WORKER_PAYLOAD[1])
    start = clock()
    result = _WORKER_STATE.run_shard(shard, _WORKER_PAYLOAD[1])
    return result, (shard.shard_id, start, clock() - start, os.getpid())


class ProcessBackend:
    """``ProcessPoolExecutor`` with a once-per-session snapshot ship."""

    name = "process"

    def __init__(
        self,
        n_jobs: int,
        use_shm: bool = True,
        persistent: bool = True,
        tracer=NULL_TRACER,
    ):
        self.n_jobs = max(1, n_jobs)
        self.tracer = tracer
        #: last dispatch's ``(shard_id, start, dur, pid)`` tuples
        #: (tracing only) — worker-reported for pool dispatches,
        #: driver-timed on the serial/degraded paths
        self.shard_times: list = []
        #: whether to attempt the shared-memory transport at all (tests
        #: force the pickle path by passing False)
        self.use_shm = use_shm
        #: keep pool + snapshot alive between dispatches (sessions);
        #: False tears both down after every dispatch
        self.persistent = persistent
        #: set when an environment limitation degraded execution to
        #: serial (pool refused, or workers lost)
        self.fell_back = False
        #: set when the degradation happened *after* a pool was live
        #: (workers died mid-session) — distinguishes "pool never
        #: created" from "pool broke mid-run" in the diagnostics
        self.pool_broken = False
        #: set when a dispatch short-circuited to serial (one worker or
        #: one shard before any pool existed): no pool was created and
        #: no snapshot was shipped
        self.ran_serially = False
        #: why serial execution happened ("n_jobs=1" / "single_shard" /
        #: "degraded") — the provenance companion of ``ran_serially``
        self.serial_reason: str | None = None
        #: set when the snapshot's arrays travelled via shared memory
        self.shm_used = False
        #: out-of-band bytes shipped through the static segment
        self.shm_bytes = 0
        #: process pools spawned over the session's lifetime (exactly 1
        #: for a healthy persistent session, however many chunks ran)
        self.pools_created = 0
        #: static snapshot serialisations (shm or pickle) — mirrors
        #: ``pools_created``: one ship per pool
        self.snapshot_ships = 0
        self._state = None
        self._pool: ProcessPoolExecutor | None = None
        self._snapshot: shm_transport.PackedSnapshot | None = None
        self._degraded = False
        self._dispatch_seq = 0

    def open(self, state) -> None:
        self._state = state

    @property
    def is_warm(self) -> bool:
        """Whether a live pool (with the snapshot already resident in
        its workers) is ready to take dispatches."""
        return self._pool is not None and not self._degraded

    def _serial(self, payload, shards: Sequence[Shard]) -> list[ShardResult]:
        self.ran_serially = True
        if self.serial_reason is None:
            if self._degraded:
                self.serial_reason = "degraded"
            elif self.n_jobs == 1:
                self.serial_reason = "n_jobs=1"
            else:
                self.serial_reason = "single_shard"
        if not self.tracer.enabled:
            return [self._state.run_shard(s, payload) for s in shards]
        return _run_timed_serial(self._state, payload, shards, self.shard_times)

    def _ensure_pool(self, n_shards: int) -> None:
        """Spawn the pool and ship the static snapshot (once per healthy
        session).  On failure the transient shm state is rolled back and
        the error propagates to :meth:`dispatch`'s fallback."""
        if self._pool is not None:
            return
        with self.tracer.span("snapshot_ship", cat="session") as ship_span:
            snapshot = shm_transport.pack(self._state) if self.use_shm else None
            if snapshot is not None:
                self.shm_used = True
                self.shm_bytes = snapshot.array_bytes
                initializer, initargs = _worker_init_shm, (snapshot.shell,)
                ship_span.add(transport="shm", bytes=snapshot.array_bytes)
                self.tracer.add_counter("snapshot_bytes", snapshot.array_bytes)
            else:
                blob = pickle.dumps(
                    self._state, protocol=pickle.HIGHEST_PROTOCOL
                )
                initializer, initargs = _worker_init, (blob,)
                ship_span.add(transport="pickle", bytes=len(blob))
                self.tracer.add_counter("snapshot_bytes", len(blob))
        # A persistent pool outlives this dispatch, and later chunks may
        # plan far more shards than the first — size it by the session's
        # worker budget, not this dispatch's shard count (which only
        # bounds one-shot pools, where idle workers would be pure spawn
        # cost).
        workers = (
            self.n_jobs
            if self.persistent
            else min(self.n_jobs, max(n_shards, 1))
        )
        try:
            with self.tracer.span(
                "pool_create", cat="session", backend=self.name,
                workers=workers,
            ):
                self._pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=initializer,
                    initargs=initargs,
                )
        except BaseException:
            if snapshot is not None:
                snapshot.release()
            self.shm_used = False
            self.shm_bytes = 0
            raise
        self._snapshot = snapshot
        self.pools_created += 1
        self.snapshot_ships += 1

    def dispatch(self, payload, shards: Sequence[Shard]) -> list[ShardResult]:
        shards = list(shards)
        if not shards:
            return []
        if self._degraded or (
            self._pool is None and (len(shards) <= 1 or self.n_jobs == 1)
        ):
            return self._serial(payload, shards)
        self._dispatch_seq += 1
        packed = None
        try:
            self._ensure_pool(len(shards))
            if self.use_shm:
                packed = shm_transport.pack(
                    payload, min_bytes=PAYLOAD_SHM_MIN_BYTES
                )
            if packed is not None:
                ship = ("shm", packed.shell)
            else:
                # No segment (tiny payload or no shm): serialise the
                # payload once here rather than letting pool.map pickle
                # the live object into every task — the bytes still ride
                # each task tuple, but workers deserialise them once per
                # dispatch (the cache below), not once per shard.
                ship = (
                    "blob",
                    pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
                )
            self.tracer.add_counter(
                "payload_bytes",
                packed.array_bytes if packed is not None else len(ship[1]),
            )
            if self.tracer.enabled:
                # 4-tuple tasks ask workers to time run_shard and pair
                # each result with a (shard_id, start, dur, pid) tuple;
                # untraced dispatches keep the 3-tuple wire format.
                tasks = [
                    (self._dispatch_seq, ship, shard, True)
                    for shard in shards
                ]
                self.shard_times.clear()
                results = []
                for result, timing in self._pool.map(_worker_run, tasks):
                    results.append(result)
                    self.shard_times.append(timing)
                return results
            tasks = [(self._dispatch_seq, ship, shard) for shard in shards]
            return list(self._pool.map(_worker_run, tasks))
        except (OSError, BrokenExecutor):
            # The pool could not be created (no semaphores, fork
            # blocked...) or its workers were killed mid-session
            # (BrokenExecutor — e.g. a worker that failed to map a
            # segment, or died under memory pressure).  Shard execution
            # itself does no IO, so this is an environment limitation:
            # degrade to the always-correct serial path for the rest of
            # the session and let the engine report it.
            self.pool_broken = self._pool is not None
            self.fell_back = True
            self.tracer.instant(
                "pool_fallback", cat="session", pool_broken=self.pool_broken
            )
            self._teardown_pool()
            # Reset the shm diagnostics *together*: after a fallback no
            # shared memory is in play, so `shm: false` must not be
            # paired with a stale positive byte count.
            self.shm_used = False
            self.shm_bytes = 0
            self._degraded = True
            return self._serial(payload, shards)
        finally:
            # The dispatch's payload segment is only needed until every
            # task returned (workers that cached it keep their own
            # mapping until the next dispatch or exit); the static
            # snapshot outlives dispatches unless non-persistent.
            if packed is not None:
                packed.release()
            if not self.persistent:
                self._teardown_pool()

    def _teardown_pool(self) -> None:
        """Join the workers and unlink the static segment (their
        mappings die with them; attaches are untracked)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._snapshot is not None:
            self._snapshot.release()
            self._snapshot = None

    def close(self) -> None:
        self._teardown_pool()
        self._state = None


def get_backend(
    name: str,
    n_jobs: int,
    use_shm: bool = True,
    persistent: bool = True,
    tracer=NULL_TRACER,
) -> SerialBackend | ThreadBackend | ProcessBackend:
    """Instantiate the backend selected by ``BCleanConfig.executor``.

    ``"auto"`` is not a backend — callers resolve it first with
    :func:`repro.exec.planner.resolve_executor` (it needs the plan's
    cost estimate, which only the call site has).
    """
    if name == "serial":
        return SerialBackend(tracer=tracer)
    if name == "thread":
        return ThreadBackend(n_jobs, persistent=persistent, tracer=tracer)
    if name == "process":
        return ProcessBackend(
            n_jobs, use_shm=use_shm, persistent=persistent, tracer=tracer
        )
    raise CleaningError(
        f"unknown executor {name!r}; choose from {EXECUTOR_NAMES}"
    )
