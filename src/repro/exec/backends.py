"""Worker backends: serial, thread-pool, and process-pool execution.

A backend takes a :class:`~repro.exec.state.FitState` plus the planned
shards and returns one :class:`~repro.exec.state.ShardResult` per shard.
Because every shard is a pure function of the read-only snapshot, the
three backends are interchangeable — results are byte-identical; only
wall-clock differs:

``serial``
    Runs shards in-process, in plan order.  No overhead, no
    parallelism; the default (and the baseline every equivalence test
    pins the others against).

``thread``
    A ``ThreadPoolExecutor``.  Shares the snapshot by reference (zero
    shipping cost) but executes under the GIL, so speedup comes only
    from the numpy portions of the kernel that release it.  Useful for
    wide tables with large pools; modest elsewhere.

``process``
    A ``ProcessPoolExecutor``.  The snapshot is pickled **once** and
    shipped to each worker through the pool initializer (not per task);
    workers rebuild lazy caches locally.  True multi-core scaling at
    the cost of one snapshot serialisation per ``clean()`` — the right
    backend for paper-scale tables.  If the host cannot create a
    process pool at all (sandboxed environments without semaphore
    support), the backend falls back to serial execution and records it
    in :attr:`ProcessBackend.fell_back` so the engine can surface the
    downgrade in its diagnostics.
"""

from __future__ import annotations

import pickle
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Protocol, Sequence

from repro.errors import CleaningError
from repro.exec.planner import Shard
from repro.exec.state import FitState, ShardResult

#: recognised ``BCleanConfig.executor`` values
EXECUTOR_NAMES = ("serial", "thread", "process")


class Backend(Protocol):
    """Common backend interface (structural)."""

    def run(self, state: FitState, shards: Sequence[Shard]) -> list[ShardResult]:
        ...  # pragma: no cover - protocol


class SerialBackend:
    """In-process execution, plan order."""

    name = "serial"

    def run(self, state: FitState, shards: Sequence[Shard]) -> list[ShardResult]:
        return [state.run_shard(shard) for shard in shards]


class ThreadBackend:
    """``ThreadPoolExecutor`` over a shared snapshot."""

    name = "thread"

    def __init__(self, n_jobs: int):
        self.n_jobs = max(1, n_jobs)
        #: set when the run short-circuited to plain serial execution
        #: (one worker or one shard) — surfaced in engine diagnostics so
        #: timings are not misread as pool overhead
        self.ran_serially = False

    def run(self, state: FitState, shards: Sequence[Shard]) -> list[ShardResult]:
        if len(shards) <= 1 or self.n_jobs == 1:
            self.ran_serially = True
            return SerialBackend().run(state, shards)
        with ThreadPoolExecutor(max_workers=self.n_jobs) as pool:
            return list(pool.map(state.run_shard, shards))


# Worker-side state of the process backend: installed once per worker by
# the pool initializer, read by every task that worker executes.
_WORKER_STATE: FitState | None = None


def _worker_init(payload: bytes) -> None:
    global _WORKER_STATE
    _WORKER_STATE = pickle.loads(payload)


def _worker_run(shard: Shard) -> ShardResult:
    if _WORKER_STATE is None:  # pragma: no cover - initializer always ran
        raise CleaningError("process worker used before initialisation")
    return _WORKER_STATE.run_shard(shard)


class ProcessBackend:
    """``ProcessPoolExecutor`` with a one-shot pickled snapshot."""

    name = "process"

    def __init__(self, n_jobs: int):
        self.n_jobs = max(1, n_jobs)
        #: set when the host refused a process pool and serial ran instead
        self.fell_back = False
        #: set when the run short-circuited to serial (one worker or one
        #: shard): no pool was created and no snapshot was pickled
        self.ran_serially = False

    def run(self, state: FitState, shards: Sequence[Shard]) -> list[ShardResult]:
        if len(shards) <= 1 or self.n_jobs == 1:
            self.ran_serially = True
            return SerialBackend().run(state, shards)
        try:
            payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
            with ProcessPoolExecutor(
                max_workers=min(self.n_jobs, len(shards)),
                initializer=_worker_init,
                initargs=(payload,),
            ) as pool:
                return list(pool.map(_worker_run, shards))
        except (OSError, BrokenExecutor):
            # The *pool* could not be created (no semaphores, fork
            # blocked...) or its workers were killed (BrokenExecutor).
            # Shard execution itself does no IO, so this is an
            # environment limitation: degrade to the always-correct
            # serial path and let the engine report it.
            self.fell_back = True
            self.ran_serially = True
            return SerialBackend().run(state, shards)


def get_backend(name: str, n_jobs: int) -> SerialBackend | ThreadBackend | ProcessBackend:
    """Instantiate the backend selected by ``BCleanConfig.executor``."""
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(n_jobs)
    if name == "process":
        return ProcessBackend(n_jobs)
    raise CleaningError(
        f"unknown executor {name!r}; choose from {EXECUTOR_NAMES}"
    )
