"""Shared-memory shipping of read-only snapshots to process workers.

The process backend used to pickle the whole
:class:`~repro.exec.state.FitState` — including every large numpy array
(coded columns, co-occurrence pair arrays, dense CPT log-prob matrices,
deduplicated row signatures) — into one byte string per ``clean()``.
For wide tables those arrays dominate the payload, and every worker
received (and held) its own private copy.

This module splits the snapshot with pickle protocol 5's out-of-band
buffer machinery instead:

- :func:`pack` pickles only the *scalar shell* of the object graph.
  Every contiguous numpy array surfaces as a :class:`pickle.PickleBuffer`
  via the ``buffer_callback`` hook; their bytes are packed, 8-byte
  aligned, into **one** ``multiprocessing.shared_memory`` segment.
- workers call :func:`unpack` with the (small) shell plus the segment
  name: the buffers are reconstructed as zero-copy ``memoryview`` slices
  of the mapped segment, so the arrays of every worker alias the same
  physical pages — no per-worker copy, no per-worker deserialisation of
  array payloads.

The snapshot contract (arrays are never written after fit) is what makes
the aliasing safe; it is the same contract the thread backend already
relies on when sharing the state by reference.

Two payload shapes travel through the same pack/unpack pair:

- the **static snapshot** — the frozen fit statistics, packed once per
  :class:`~repro.exec.session.ExecSession` and shipped through the pool
  initializer;
- the **per-dispatch payload** — one chunk's deduplicated rows and
  masks, packed per dispatch.  These are orders of magnitude smaller,
  so callers pass ``min_bytes`` to keep genuinely tiny payloads on the
  plain in-band pickle path (a segment per few-KB dispatch would cost
  more in syscalls than it saves in copies).

When the host cannot provide shared memory (no ``/dev/shm``, sandboxed
semaphores, zero array bytes to ship) :func:`pack` returns ``None`` and
the caller falls back to the classic all-in-band pickle — behaviour is
identical either way, only the shipping cost differs.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

try:  # pragma: no cover - import always succeeds on CPython ≥3.8
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - platforms without shm support
    shared_memory = None  # type: ignore[assignment]

#: buffer offsets are rounded up to this many bytes so reconstructed
#: numpy arrays keep natural alignment for their dtypes
_ALIGN = 8


@dataclass(frozen=True)
class ShmShell:
    """The picklable part of a packed snapshot: the in-band shell plus
    the directory of out-of-band buffers inside the shared segment."""

    shell: bytes
    segment_name: str
    offsets: tuple[int, ...]
    lengths: tuple[int, ...]

    @property
    def n_buffers(self) -> int:
        return len(self.offsets)


class PackedSnapshot:
    """A snapshot packed into shared memory, owned by the packing side.

    The owner must call :meth:`release` (close + unlink) once every
    worker that will attach has finished — typically right after the
    process pool is joined.
    """

    def __init__(self, shm, shell: ShmShell, array_bytes: int):
        self._shm = shm
        self.shell = shell
        #: total out-of-band bytes shipped through the segment
        self.array_bytes = array_bytes

    def release(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        try:
            self._shm.close()
            self._shm.unlink()
        except OSError:  # pragma: no cover - already gone
            pass
        self._shm = None


def pack(obj, min_bytes: int = 0) -> PackedSnapshot | None:
    """Pack ``obj`` into (scalar shell, one shared-memory segment).

    Returns ``None`` when shared memory cannot be used here — no shm
    support, nothing buffer-like to ship out-of-band, fewer than
    ``min_bytes`` of out-of-band payload (a segment is not worth its
    syscalls for tiny per-dispatch payloads), or segment creation
    refused by the host — in which case the caller should ship a plain
    pickle instead.
    """
    if shared_memory is None:
        return None
    buffers: list[pickle.PickleBuffer] = []
    try:
        shell = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
        views = [b.raw() for b in buffers]
    except (pickle.PicklingError, BufferError, ValueError):
        return None
    if not views:
        return None
    offsets: list[int] = []
    total = 0
    for view in views:
        total = -(-total // _ALIGN) * _ALIGN  # round up to alignment
        offsets.append(total)
        total += view.nbytes
    if total == 0 or total < min_bytes:
        return None
    try:
        shm = shared_memory.SharedMemory(create=True, size=total)
    except OSError:
        return None
    for view, offset in zip(views, offsets):
        shm.buf[offset : offset + view.nbytes] = view
    lengths = tuple(v.nbytes for v in views)
    return PackedSnapshot(
        shm,
        ShmShell(shell, shm.name, tuple(offsets), lengths),
        array_bytes=total,
    )


def attach(segment_name: str):
    """Attach an existing segment *without* resource tracking.

    ``SharedMemory(name=...)`` registers every attach with a
    ``resource_tracker`` — but an attaching worker does not own the
    segment, so on CPython ≥ 3.8 that registration makes worker
    teardown warn about (and, when the worker runs its own tracker,
    double-unlink) a segment whose lifetime belongs to the packing
    side.  CPython ≥ 3.13 has ``track=False`` for exactly this; on
    older interpreters the registration call is suppressed around the
    attach.  Suppression — not register-then-unregister — matters:
    pool workers forked on Linux *share* the parent's tracker process,
    where an unregister would strip the owner's own legitimate
    registration and turn its eventual release into a tracker error.
    Either way only the owner's :meth:`PackedSnapshot.release` ever
    unlinks.
    """
    if shared_memory is None:  # pragma: no cover - guarded by pack()
        raise OSError("shared memory is not available on this platform")
    try:
        return shared_memory.SharedMemory(
            name=segment_name, create=False, track=False
        )
    except TypeError:  # CPython < 3.13: no track parameter
        pass
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - tracker always importable
        return shared_memory.SharedMemory(name=segment_name, create=False)
    original = resource_tracker.register

    def _skip_shared_memory(name, rtype):
        if rtype != "shared_memory":  # pragma: no cover - shm only
            original(name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=segment_name, create=False)
    finally:
        resource_tracker.register = original


def unpack(shell: ShmShell):
    """Rebuild the object in a worker: attach the segment and feed its
    slices back as the out-of-band buffers.

    Returns ``(obj, shm)``.  The caller must keep ``shm`` referenced for
    as long as the object lives — the arrays are zero-copy views of the
    mapping — and ``close()`` it at process teardown (never ``unlink()``:
    the packing side owns the segment, and the attach is untracked so
    the worker's ``resource_tracker`` stays out of the segment's
    lifetime — see :func:`attach`).
    """
    shm = attach(shell.segment_name)
    views = [
        shm.buf[offset : offset + length]
        for offset, length in zip(shell.offsets, shell.lengths)
    ]
    obj = pickle.loads(shell.shell, buffers=views)
    return obj, shm
