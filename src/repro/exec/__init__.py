"""Sharded parallel execution of the cleaning workload.

The subsystem turns ``BClean.clean()`` into a planned, sharded job:

- :mod:`repro.exec.planner` slices the deduplicated competition list
  into cost-balanced :class:`~repro.exec.planner.Shard`\\ s;
- :mod:`repro.exec.state` freezes the fitted statistics into a
  picklable, read-only :class:`~repro.exec.state.FitState` whose
  :meth:`~repro.exec.state.FitState.run_shard` kernel batch-scores
  competitions;
- :mod:`repro.exec.backends` executes shards serially, on a thread
  pool, or on a process pool (``BCleanConfig.executor``), scoped to a
  :class:`~repro.exec.session.ExecSession` that owns the pool and
  shared-memory lifecycle for a whole job stream — one pool spawn and
  one static-snapshot ship per ``clean()`` (or ``fit()``), however
  many chunks dispatch (``BCleanConfig.persistent_pool``);
- :mod:`repro.exec.merge` reassembles shard results deterministically;
- :mod:`repro.exec.cache` memoises competition outcomes across the row
  chunks of one session (``BCleanConfig.competition_cache``), so a
  signature recurring in several chunks dispatches its competition
  exactly once per stream.

Every shard is a pure function of the snapshot, so all backends and
shard counts produce byte-identical ``CleaningResult``\\ s.

``fit()`` is sharded through the same planner and backends:
:mod:`repro.exec.fit` dispatches the per-attribute-pair co-occurrence
builds and per-node CPT count passes (``BCleanConfig.fit_executor``),
merging results deterministically by task index — the fitted statistics
are byte-identical to the serial build.

On top of those seams, :mod:`repro.exec.stream` stages the clean as an
explicit pipeline (ingest → encode → detect → plan → execute → merge →
emit) over :class:`~repro.exec.stream.RowChunk`\\ s — enabling
out-of-core chunked cleaning with byte-identical repairs —
:mod:`repro.exec.shm` ships process-backend snapshots through one
shared-memory segment instead of per-worker pickles, and
:func:`~repro.exec.planner.resolve_executor` turns ``executor="auto"``
into serial/process from the plan's cost estimate.
"""

from repro.exec.backends import (
    EXECUTOR_NAMES,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
)
from repro.exec.cache import CompetitionCache, competition_key
from repro.exec.fit import (
    FitJobState,
    FitShardResult,
    FitTasks,
    build_fit_state,
    run_fit_job,
    run_mmpc_job,
    run_score_job,
    sharded_family_arrays,
    sharded_pair_arrays,
)
from repro.exec.fit_stream import (
    DEFAULT_CHUNK_ROWS,
    DEFAULT_RESERVOIR_ROWS,
    SuffStats,
    estimate_stream_fit_cost,
    iter_table_chunks,
    suffstats_from_chunks,
    suffstats_from_csv,
    suffstats_from_table,
)
from repro.exec.merge import (
    MergedDecisions,
    concat_chunk_repairs,
    merge_shard_results,
)
from repro.exec.planner import (
    AUTO_CLEAN_COST_THRESHOLD,
    AUTO_FIT_COST_THRESHOLD,
    CACHE_MAX_ENTRIES,
    CACHE_MIN_ENTRIES,
    OVERSUBSCRIBE,
    Shard,
    ShardPlan,
    default_cache_entries,
    estimate_competition_costs,
    extrapolate_stream_cost,
    partition_cached,
    plan_shards,
    resolve_executor,
)
from repro.exec.session import ExecSession
from repro.exec.state import ChunkView, FitState, ShardResult
from repro.exec.stream import (
    CsvSink,
    RowChunk,
    StreamDriver,
    TableSink,
)

__all__ = [
    "AUTO_CLEAN_COST_THRESHOLD",
    "AUTO_FIT_COST_THRESHOLD",
    "CACHE_MAX_ENTRIES",
    "CACHE_MIN_ENTRIES",
    "ChunkView",
    "DEFAULT_CHUNK_ROWS",
    "DEFAULT_RESERVOIR_ROWS",
    "CompetitionCache",
    "CsvSink",
    "EXECUTOR_NAMES",
    "ExecSession",
    "FitJobState",
    "FitShardResult",
    "FitState",
    "FitTasks",
    "MergedDecisions",
    "OVERSUBSCRIBE",
    "ProcessBackend",
    "RowChunk",
    "SerialBackend",
    "Shard",
    "ShardPlan",
    "ShardResult",
    "StreamDriver",
    "SuffStats",
    "TableSink",
    "ThreadBackend",
    "build_fit_state",
    "competition_key",
    "concat_chunk_repairs",
    "default_cache_entries",
    "estimate_competition_costs",
    "estimate_stream_fit_cost",
    "extrapolate_stream_cost",
    "get_backend",
    "iter_table_chunks",
    "merge_shard_results",
    "partition_cached",
    "plan_shards",
    "resolve_executor",
    "run_fit_job",
    "run_mmpc_job",
    "run_score_job",
    "sharded_family_arrays",
    "sharded_pair_arrays",
    "suffstats_from_chunks",
    "suffstats_from_csv",
    "suffstats_from_table",
]
