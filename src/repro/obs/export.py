"""Chrome trace-event schema validation.

CI runs a traced smoke and validates the emitted file with
:func:`validate_chrome_trace` before uploading it as an artifact; the
same checks back the nesting assertions in the test suite.  The
validator enforces the structural subset this repo emits (``X``
complete events, ``M`` metadata, ``C`` counters, instants) plus the
invariant the viewer relies on to draw a sensible flame chart: on any
one ``(pid, tid)`` track, complete events nest — each event either
follows the previous one or sits fully inside it.
"""

from __future__ import annotations

import json

#: event phases this repo emits
_PHASES = {"X", "M", "C", "i", "I"}

#: slack (µs) for the 3-decimal rounding of exported timestamps
_EPS = 0.01


def validate_chrome_trace(obj) -> list[str]:
    """Return a list of problems with ``obj`` as a Chrome trace
    (empty = valid).

    Checks the container shape, the per-event required fields, and
    per-track nesting of ``"X"`` events (end ≥ start; every event
    either starts at/after the enclosing event's end or ends within
    it).
    """
    problems: list[str] = []
    if not isinstance(obj, dict) or not isinstance(obj.get("traceEvents"), list):
        return ["top level must be an object with a 'traceEvents' list"]
    tracks: dict[tuple, list[tuple]] = {}
    for index, event in enumerate(obj["traceEvents"]):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing/empty 'name'")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: '{field}' must be an int")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: 'ts' must be a number >= 0")
            continue
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'dur' must be a number >= 0")
                continue
            tracks.setdefault((event.get("pid"), event.get("tid")), []).append(
                (ts, ts + dur, event["name"], index)
            )
    for (pid, tid), spans in tracks.items():
        # stack check: sorted by start (longest first on ties), every
        # span must fit inside whatever span is open above it
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack: list[tuple] = []
        for ts, end, name, index in spans:
            while stack and ts >= stack[-1][1] - _EPS:
                stack.pop()
            if stack and end > stack[-1][1] + _EPS:
                problems.append(
                    f"traceEvents[{index}]: '{name}' (tid {tid}) overlaps "
                    f"'{stack[-1][2]}' without nesting "
                    f"([{ts}, {end}] vs [{stack[-1][0]}, {stack[-1][1]}])"
                )
                continue
            stack.append((ts, end, name, index))
    return problems


def validate_chrome_trace_file(path) -> list[str]:
    """:func:`validate_chrome_trace` over a JSON file on disk."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            obj = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: {exc}"]
    return validate_chrome_trace(obj)
