"""Observability: the tracing + metrics substrate of the exec stack.

Every layer of the cleaning pipeline — the seven streaming stages, the
session-scoped backends and their worker shards, the sharded fit jobs,
the structure-learning phases — reports wall-clock through one
:class:`~repro.obs.tracer.Tracer` of nested monotonic-clock spans and
counters.  Two exporters read it:

- :meth:`Tracer.chrome_trace` / :meth:`Tracer.write` emit Chrome
  trace-event JSON (load it at https://ui.perfetto.dev or
  ``chrome://tracing``): driver stages on one track, each worker's
  shard spans on its own, so stragglers and pool warm-up are visible
  at a glance;
- :meth:`Tracer.profile` aggregates the same spans into the
  ``diagnostics["profile"]`` block (per-stage wall seconds, shard-time
  min/max/imbalance, bytes shipped) that benchmarks and future serving
  code read as one schema.

Tracing is **off by default** and free when off: the disabled tracer is
the shared :data:`NULL_TRACER` singleton whose ``span()`` returns one
reusable no-op context manager — no per-call allocation, no state — and
nothing tracing-related ever rides a dispatch payload, so disabled-mode
pickles are byte-identical to an untraced build.  Enabling tracing
(``BCleanConfig.trace`` / ``profile``, ``BClean.clean(trace=...)``,
``--trace``) changes observability only: repairs stay byte-identical.

The module is a leaf — it imports nothing from :mod:`repro` — so any
layer (``core``, ``exec``, ``bayesnet``, ``evaluation``) can depend on
it without cycles.  :func:`clock` is the single monotonic clock every
reported duration comes from.
"""

from repro.obs.export import validate_chrome_trace
from repro.obs.tracer import (
    DRIVER_TID,
    NULL_TRACER,
    STAGES,
    NullTracer,
    Span,
    Tracer,
    clock,
)

__all__ = [
    "DRIVER_TID",
    "NULL_TRACER",
    "STAGES",
    "NullTracer",
    "Span",
    "Tracer",
    "clock",
    "validate_chrome_trace",
]
