"""The tracer: nested monotonic-clock spans, counters, and aggregation.

Design constraints (they shaped every decision here):

- **Free when off.**  The disabled default is :data:`NULL_TRACER`, a
  shared singleton whose ``span()`` hands back one module-level no-op
  context manager — no allocation per call, no branches in worker
  kernels, and nothing tracing-related on any dispatch payload, so the
  bytes a disabled-mode dispatch pickles are identical to a build
  without tracing at all.
- **One clock.**  :func:`clock` (``time.perf_counter``) is the
  monotonic clock behind every span, the engine's
  :class:`~repro.core.repairs.Stopwatch`, and the experiment timers —
  so a stage breakdown and the wall-clock it must sum to can never
  come from different clocks.  On Linux ``perf_counter`` reads the
  system-wide ``CLOCK_MONOTONIC``, which is why worker-process shard
  timestamps line up with driver spans; they are additionally clamped
  into their dispatch window (:meth:`Tracer.add_worker_spans`) so the
  exported trace nests correctly even where the epochs drift.
- **Worker timing travels as data, not objects.**  Workers never see
  the tracer; a timed dispatch returns compact
  ``(shard_id, start, dur, worker)`` tuples alongside each result and
  the driver merges them — the only direction that grows is
  worker→driver, never the dispatch payload.

Spans are recorded on ``__exit__`` as flat complete events (the Chrome
trace-event model): nesting is implied by time containment per track,
so there is no tree to maintain and a crashed stage still records
everything that finished before it.
"""

from __future__ import annotations

import json
import os
import time
from typing import Iterable, Sequence

#: the single monotonic clock every reported duration comes from
clock = time.perf_counter

#: trace track (Chrome ``tid``) of the driver's pipeline spans; worker
#: shard spans ride their own per-worker tracks
DRIVER_TID = 1

#: the seven streaming pipeline stages, in order — the span names
#: :meth:`Tracer.profile` folds into ``profile["stages"]``
STAGES = ("ingest", "encode", "detect", "plan", "execute", "merge", "emit")


class Span:
    """One timed region on the shared clock.

    Usable bound to a tracer (``tracer.span(...)`` records it on exit)
    or standalone (``with Span("x") as sp: ...; sp.seconds``) — the
    standalone form is what the experiment drivers use in place of
    their old ad-hoc ``perf_counter()`` pairs, so every duration in the
    repo reads the same clock through the same API.
    """

    __slots__ = (
        "name", "cat", "args", "start", "seconds", "tid", "_tracer", "_root",
    )

    def __init__(
        self,
        name: str,
        cat: str = "clean",
        tracer: "Tracer | None" = None,
        root: bool = False,
        args: dict | None = None,
        tid: int = DRIVER_TID,
    ):
        self.name = name
        self.cat = cat
        self.args = args
        self.start = 0.0
        self.seconds = 0.0
        self.tid = tid
        self._tracer = tracer
        self._root = root

    def add(self, **args) -> None:
        """Attach key/value annotations (e.g. the plan stage's cache
        probe/hit counts) to the span before it closes."""
        if self.args is None:
            self.args = {}
        self.args.update(args)

    def __enter__(self) -> "Span":
        self.start = clock()
        return self

    def __exit__(self, *exc) -> bool:
        self.seconds = clock() - self.start
        if self._tracer is not None:
            self._tracer._record(self)
        return False


class _NullSpan:
    """The shared do-nothing span: one instance serves every disabled
    call site."""

    __slots__ = ()
    name = ""
    start = 0.0
    seconds = 0.0

    def add(self, **args) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: a stateless singleton of no-ops.

    ``enabled`` is the one attribute call sites may branch on when
    even building a span's kwargs would be wasteful (worker timing,
    payload byte counting).
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str, cat: str = "clean", root: bool = False, **args):
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "clean", **args) -> None:
        pass

    def add_counter(self, name: str, value: float = 1.0) -> None:
        pass

    def add_worker_spans(self, name, times, lo, hi, cat: str = "exec") -> None:
        pass

    def mark(self) -> int:
        return 0

    def profile(self, since: int = 0) -> dict:
        return {}


#: the shared disabled tracer — every layer's default
NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans, instants, worker shard timings, and counters.

    Events are appended in completion order; :meth:`mark` returns a
    checkpoint so one tracer can span ``fit()`` plus several
    ``clean()``s and still aggregate each clean's profile separately
    (the exported Chrome trace always carries everything).
    """

    enabled = True

    def __init__(self):
        #: clock value all exported timestamps are relative to
        self.t0 = clock()
        #: flat event dicts: name/cat/tid/start/dur/args/shard
        self._events: list[dict] = []
        #: accumulated named counters (e.g. ``snapshot_bytes``)
        self.counters: dict[str, float] = {}
        self._root_index: int | None = None

    # -- recording ---------------------------------------------------------------

    def span(
        self,
        name: str,
        cat: str = "clean",
        root: bool = False,
        tid: int = DRIVER_TID,
        **args,
    ) -> Span:
        """A new span, recorded when its ``with`` exits.

        ``tid`` places the span on a trace track other than the
        driver's — the serving front records each request's latency on
        a per-request track so concurrent requests never have to nest
        inside one another (nesting is only enforced per track).
        """
        return Span(name, cat, tracer=self, root=root, args=args or None, tid=tid)

    def _record(self, span: Span) -> None:
        if span._root:
            self._root_index = len(self._events)
        self._events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "tid": span.tid,
                "start": span.start,
                "dur": span.seconds,
                "args": span.args,
                "shard": False,
            }
        )

    def instant(self, name: str, cat: str = "clean", **args) -> None:
        """A zero-duration marker (e.g. a broken-pool fallback)."""
        self._events.append(
            {
                "name": name,
                "cat": cat,
                "tid": DRIVER_TID,
                "start": clock(),
                "dur": 0.0,
                "args": args or None,
                "shard": False,
            }
        )

    def add_counter(self, name: str, value: float = 1.0) -> None:
        """Accumulate a named counter (summed; exported on the root
        span and in ``profile()["counters"]``)."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def add_worker_spans(
        self,
        name: str,
        times: Iterable[Sequence],
        lo: float,
        hi: float,
        cat: str = "exec",
    ) -> None:
        """Merge a dispatch's worker-side ``(shard_id, start, dur,
        worker)`` tuples, clamped into the dispatch window ``[lo, hi]``
        so the trace nests even where a worker's clock epoch drifts
        from the driver's."""
        for shard_id, start, dur, worker in times:
            start = min(max(start, lo), hi)
            end = min(max(start + dur, start), hi)
            self._events.append(
                {
                    "name": name,
                    "cat": cat,
                    "tid": int(worker),
                    "start": start,
                    "dur": end - start,
                    "args": {"shard_id": int(shard_id)},
                    "shard": True,
                }
            )

    def mark(self) -> int:
        """Checkpoint: events recorded so far (pass to ``profile``)."""
        return len(self._events)

    # -- aggregation ---------------------------------------------------------------

    def profile(self, since: int = 0) -> dict:
        """The ``diagnostics["profile"]`` block over events after
        ``since``: per-stage wall seconds, every span name's aggregate,
        shard-time spread, bytes shipped, and the raw counters."""
        spans: dict[str, dict] = {}
        shard_durs: list[float] = []
        for event in self._events[since:]:
            if event["shard"]:
                shard_durs.append(event["dur"])
                continue
            agg = spans.setdefault(
                event["name"], {"count": 0, "seconds": 0.0}
            )
            agg["count"] += 1
            agg["seconds"] += event["dur"]
        out: dict = {
            "stages": {
                name: round(spans[name]["seconds"], 6)
                for name in STAGES
                if name in spans
            },
            "spans": {
                name: {"count": agg["count"], "seconds": round(agg["seconds"], 6)}
                for name, agg in sorted(spans.items())
            },
        }
        if shard_durs:
            mean = sum(shard_durs) / len(shard_durs)
            out["shards"] = {
                "n": len(shard_durs),
                "min_s": round(min(shard_durs), 6),
                "max_s": round(max(shard_durs), 6),
                "mean_s": round(mean, 6),
                "imbalance": round(max(shard_durs) / mean, 3) if mean > 0 else 1.0,
            }
        out["bytes_shipped"] = int(
            self.counters.get("snapshot_bytes", 0)
            + self.counters.get("payload_bytes", 0)
        )
        out["counters"] = {k: v for k, v in sorted(self.counters.items())}
        return out

    # -- export ---------------------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The Chrome trace-event JSON object (Perfetto-loadable).

        Driver spans become complete (``"X"``) events on the driver
        track; each worker's shard spans land on a track named after
        it; counters ride the root span's args and one ``"C"`` event
        each, so they chart in the trace viewer too.
        """
        pid = os.getpid()
        events: list[dict] = [
            _meta(pid, 0, "process_name", "bclean"),
            _meta(pid, DRIVER_TID, "thread_name", "driver"),
        ]
        worker_tids: set[int] = set()
        span_tids: set[int] = set()
        end_us = 0.0
        for index, event in enumerate(self._events):
            ts = round((event["start"] - self.t0) * 1e6, 3)
            dur = round(event["dur"] * 1e6, 3)
            end_us = max(end_us, ts + dur)
            out = {
                "ph": "X",
                "name": event["name"],
                "cat": event["cat"],
                "pid": pid,
                "tid": event["tid"],
                "ts": ts,
                "dur": dur,
            }
            args = dict(event["args"]) if event["args"] else {}
            if index == self._root_index and self.counters:
                args["counters"] = {
                    k: v for k, v in sorted(self.counters.items())
                }
            if args:
                out["args"] = args
            if event["shard"]:
                worker_tids.add(event["tid"])
            elif event["tid"] != DRIVER_TID:
                span_tids.add(event["tid"])
            events.append(out)
        for tid in sorted(worker_tids - {DRIVER_TID}):
            events.append(_meta(pid, tid, "thread_name", f"worker-{tid}"))
        for tid in sorted(span_tids - worker_tids):
            events.append(_meta(pid, tid, "thread_name", f"track-{tid}"))
        for name, value in sorted(self.counters.items()):
            events.append(
                {
                    "ph": "C",
                    "name": name,
                    "pid": pid,
                    "tid": DRIVER_TID,
                    "ts": end_us,
                    "args": {name: value},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path) -> None:
        """Serialise :meth:`chrome_trace` to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, indent=1)
            handle.write("\n")


def _meta(pid: int, tid: int, kind: str, label: str) -> dict:
    return {"ph": "M", "name": kind, "pid": pid, "tid": tid, "args": {"name": label}}
