"""``python -m repro.obs validate trace.json`` — trace file validation.

Exit status 0 when every named file passes
:func:`repro.obs.export.validate_chrome_trace`, 1 otherwise (problems
printed one per line).  CI uses this to gate the traced smoke's
artifact upload.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.export import validate_chrome_trace_file


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs")
    sub = parser.add_subparsers(dest="command", required=True)
    val = sub.add_parser("validate", help="validate Chrome trace-event JSON files")
    val.add_argument("paths", nargs="+", help="trace file(s) to validate")
    args = parser.parse_args(argv)

    failed = False
    for path in args.paths:
        problems = validate_chrome_trace_file(path)
        if problems:
            failed = True
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
