"""A BayesWipe-style baseline (De et al., JDIQ 2016).

The paper positions BClean against "existing Bayesian methods" and
credits BayesWipe as the inspiration for the compensatory score (§5).
BayesWipe cleans generatively: it learns a *tree-structured* Bayes net
over the attributes (we use Chow–Liu, as the original does), attaches a
noisy-channel error model (edit-distance kernel for strings, identity
for exact matches), and replaces each tuple with the candidate clean
tuple maximising ``P(T*)·P(T | T*)``.

Candidate clean tuples are generated per cell (not per full tuple —
the original's tuple-level search is exponential) from domain values
within a small edit radius plus the conditional mode, which matches the
published system's pruned candidate index.

Expected behaviour (the paper's +2 % claim): close to BClean on clean,
FD-rich data, but less robust — no compensatory correction, so CPT
errors learned from dirty data propagate directly, and no UC filtering.
"""

from __future__ import annotations

import math

from repro.bayesnet.cpt import cell_key
from repro.bayesnet.model import DiscreteBayesNet
from repro.bayesnet.structure.chowliu import chow_liu_tree
from repro.dataset.domain import DomainIndex
from repro.dataset.table import Cell, Table, is_null
from repro.errors import BaselineError
from repro.text.levenshtein import levenshtein_within

#: probability the channel corrupts a cell
_ERROR_PROB = 0.08
#: per-edit decay of the typo kernel
_EDIT_DECAY = 0.1
#: edit radius for candidate generation
_EDIT_RADIUS = 2
#: candidate cap per cell
_MAX_CANDIDATES = 50


class BayesWipeCleaner:
    """Generative cleaning with a Chow–Liu network + noisy channel."""

    def __init__(self, root: str | None = None, alpha: float = 0.5):
        self.root = root
        self.alpha = alpha
        self.bn: DiscreteBayesNet | None = None

    def fit(self, table: Table) -> "BayesWipeCleaner":
        """Learn the tree BN and candidate index from the dirty data."""
        self.table = table
        dag = chow_liu_tree(table, root=self.root)
        self.bn = DiscreteBayesNet.fit(table, dag, alpha=self.alpha)
        self.domains = DomainIndex(table)
        self._edit_index = {
            a: self.domains.candidate_values(a, cap=3000)
            for a in table.schema.names
        }
        return self

    def _channel(self, observed: Cell, latent: Cell) -> float:
        """``log P(observed | latent)`` under the noisy channel."""
        if is_null(observed):
            return math.log(_ERROR_PROB)
        if cell_key(observed) == cell_key(latent):
            return math.log(1.0 - _ERROR_PROB)
        d = levenshtein_within(str(observed), str(latent), _EDIT_RADIUS)
        if d is not None:
            return math.log(_ERROR_PROB) + d * math.log(_EDIT_DECAY)
        return math.log(_ERROR_PROB) + (_EDIT_RADIUS + 2) * math.log(_EDIT_DECAY)

    def _candidates(self, attr: str, observed: Cell, row: dict) -> list[Cell]:
        pool: list[Cell] = []
        seen: set[object] = set()

        def push(v: Cell) -> None:
            k = cell_key(v)
            if k not in seen and not is_null(v):
                seen.add(k)
                pool.append(v)

        domain = self.domains[attr]
        # Latent clean values need independent support: a singleton
        # string is channel output, not a source value (same rule as the
        # original's source-distribution estimation).
        if not is_null(observed) and domain.frequency(observed) >= 2:
            push(observed)
        if not is_null(observed):
            # edit-radius neighbours in the domain
            for v in self._edit_index[attr]:
                if len(pool) >= _MAX_CANDIDATES:
                    break
                if domain.frequency(v) < 2:
                    continue
                if levenshtein_within(str(observed), str(v), _EDIT_RADIUS) is not None:
                    push(v)
        # conditional mode given the tree parent
        cpt = self.bn.cpts[attr]
        parent_values = tuple(row[p] for p in cpt.parent_names)
        mode = cpt.map_value(parent_values)
        if mode is not None:
            push(mode)
        for v in self.domains.candidate_values(attr, cap=10):
            if domain.frequency(v) >= 2:
                push(v)
        if not pool and not is_null(observed):
            push(observed)
        return pool[:_MAX_CANDIDATES]

    def clean(self, table: Table | None = None) -> Table:
        """Per-cell MAP under ``P(latent | blanket) · P(observed | latent)``."""
        if self.bn is None:
            raise BaselineError("fit() must be called before clean()")
        table = table if table is not None else self.table
        cleaned = table.copy()
        names = table.schema.names
        cache: dict[tuple, Cell] = {}
        for i in range(table.n_rows):
            row = {a: table.columns[j][i] for j, a in enumerate(names)}
            for attr in names:
                observed = row[attr]
                blanket = tuple(
                    cell_key(row[b])
                    for b in sorted(self.bn.dag.markov_blanket(attr))
                )
                sig = (attr, blanket, cell_key(observed))
                if sig in cache:
                    best = cache[sig]
                else:
                    best = self._map_cell(attr, observed, row)
                    cache[sig] = best
                if best is not None and cell_key(best) != cell_key(observed):
                    cleaned.set_cell(i, attr, best)
        return cleaned

    def _map_cell(self, attr: str, observed: Cell, row: dict) -> Cell | None:
        best, best_score = None, -math.inf
        for c in self._candidates(attr, observed, row):
            score = self.bn.blanket_log_score(attr, c, row) + self._channel(
                observed, c
            )
            if score > best_score:
                best, best_score = c, score
        return best


def bayeswipe_clean(table: Table, root: str | None = None) -> Table:
    """One-shot convenience wrapper."""
    return BayesWipeCleaner(root).fit(table).clean()
