"""The Raha+Baran baseline: few-shot detection + correction.

Raha (Mahdavi et al., SIGMOD 2019) detects errors with an ensemble of
unsupervised detectors whose per-cell votes form feature vectors; cells
are clustered per column and ~20 labelled tuples propagate error/clean
labels through the clusters.  Baran (Mahdavi & Abedjan, PVLDB 2020)
corrects the detected cells with value-based, vicinity-based, and
domain-based corrector models, weighted by how often each corrector
reproduced the labelled repairs.

The pipeline's defining weakness is preserved: correction only sees the
cells detection flagged, so detection misses propagate (the low recall
of Table 4/6).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from repro.bayesnet.cpt import cell_key
from repro.constraints.fd import FDLookup, discover_fds
from repro.core.cooccurrence import CooccurrenceIndex
from repro.dataset.domain import DomainIndex
from repro.dataset.table import Cell, Table, is_null
from repro.errors import BaselineError
from repro.text.levenshtein import levenshtein_within
from repro.text.patterns import PatternProfile
from repro.text.tokenize import NgramLanguageModel

_N_LABELED = 20          # tuples labelled for detection (Raha)
_N_CORRECTED = 20        # tuples with corrections (Baran) — "20+20"
_RARITY_THRESHOLD = 0.8
_FREQ_THRESHOLD = 0.002
_LM_Z = -1.5


@dataclass
class LabeledTuples:
    """The expert's 20+20 budget: row indices plus their clean rows."""

    detection_rows: list[int]
    correction_rows: list[int]
    clean: Table

    @classmethod
    def sample(cls, dirty: Table, clean: Table, seed: int = 0) -> "LabeledTuples":
        """Sample the labelling budget uniformly (seeded)."""
        rng = random.Random(seed)
        n = dirty.n_rows
        det = rng.sample(range(n), min(_N_LABELED, n))
        remaining = [i for i in range(n) if i not in set(det)]
        cor = rng.sample(remaining, min(_N_CORRECTED, len(remaining))) if remaining else det
        return cls(det, cor, clean)


class RahaDetector:
    """The detector ensemble + cluster label propagation."""

    def __init__(self, table: Table, labeled: LabeledTuples):
        self.table = table
        self.labeled = labeled
        self._profiles = {
            a: PatternProfile(table.column(a)) for a in table.schema.names
        }
        self._lms = {
            a: NgramLanguageModel(table.column(a)) for a in table.schema.names
        }
        self._domains = DomainIndex(table)
        self._fds = [
            FDLookup(d.fd, table)
            for d in discover_fds(table, min_confidence=0.85, max_lhs_size=1)
        ]
        self._lm_stats = self._column_lm_stats()

    def _column_lm_stats(self) -> dict[str, tuple[float, float]]:
        stats = {}
        for a in self.table.schema.names:
            scores = [
                self._lms[a].score(v)
                for v in self.table.column(a)
                if not is_null(v)
            ]
            if not scores:
                stats[a] = (0.0, 1.0)
                continue
            mean = sum(scores) / len(scores)
            var = sum((s - mean) ** 2 for s in scores) / max(1, len(scores) - 1)
            stats[a] = (mean, max(var, 1e-12) ** 0.5)
        return stats

    def feature_vector(self, i: int, attr: str) -> tuple[int, ...]:
        """Binary detector votes for one cell."""
        value = self.table.cell(i, attr)
        votes = []
        votes.append(1 if is_null(value) else 0)
        votes.append(
            1 if self._profiles[attr].rarity(value) > _RARITY_THRESHOLD else 0
        )
        rel = (
            self._domains[attr].relative_frequency(value)
            if not is_null(value)
            else 0.0
        )
        votes.append(1 if 0.0 < rel < _FREQ_THRESHOLD else 0)
        mean, std = self._lm_stats[attr]
        z = (self._lms[attr].score(value) - mean) / std if not is_null(value) else 0.0
        votes.append(1 if z < _LM_Z else 0)
        row = self.table.row(i).as_dict()
        fd_violation = any(
            lookup.fd.rhs == attr and lookup.violates(row) for lookup in self._fds
        )
        votes.append(1 if fd_violation else 0)
        return tuple(votes)

    def detect(self) -> set[tuple[int, str]]:
        """Flagged cells after cluster-level label propagation."""
        flagged: set[tuple[int, str]] = set()
        labeled_rows = set(self.labeled.detection_rows)
        for attr in self.table.schema.names:
            clusters: dict[tuple[int, ...], list[int]] = {}
            for i in range(self.table.n_rows):
                clusters.setdefault(self.feature_vector(i, attr), []).append(i)
            for signature, members in clusters.items():
                labeled_members = [i for i in members if i in labeled_rows]
                if labeled_members:
                    # Propagate the labelled majority through the cluster.
                    dirty_votes = sum(
                        1
                        for i in labeled_members
                        if _cell_is_error(self.table, self.labeled.clean, i, attr)
                    )
                    is_dirty = dirty_votes * 2 > len(labeled_members)
                else:
                    # No label reaches this cluster: majority detector vote.
                    is_dirty = sum(signature) >= 2
                if is_dirty:
                    flagged.update((i, attr) for i in members)
        return flagged


def _cell_is_error(dirty: Table, clean: Table, i: int, attr: str) -> bool:
    from repro.dataset.diff import cells_equal

    return not cells_equal(dirty.cell(i, attr), clean.cell(i, attr))


class BaranCorrector:
    """The corrector ensemble, weighted on the labelled repairs."""

    def __init__(self, table: Table, labeled: LabeledTuples):
        self.table = table
        self.labeled = labeled
        self.cooc = CooccurrenceIndex(table)
        self.domains = DomainIndex(table)
        self._fds = [
            FDLookup(d.fd, table)
            for d in discover_fds(table, min_confidence=0.85, max_lhs_size=1)
        ]
        self.weights = self._learn_weights()

    # Corrector models ---------------------------------------------------------

    def _value_candidates(self, attr: str, value: Cell) -> list[Cell]:
        """Edit-distance neighbours inside the column domain (typo fixes)."""
        if is_null(value):
            return []
        out = []
        for v in self.domains.candidate_values(attr, cap=2000):
            if cell_key(v) == cell_key(value):
                continue
            if levenshtein_within(str(value), str(v), 2) is not None:
                out.append(v)
        return out[:10]

    def _vicinity_candidates(self, attr: str, row: dict[str, Cell]) -> list[Cell]:
        """Values that co-occur most with the rest of the tuple.

        Counts come from one batched
        :meth:`CooccurrenceIndex.pair_counts_for` probe per context
        attribute (aligned with the CSR-backed candidate lists) instead
        of a per-pair probe per candidate; the Counter accumulation —
        and therefore the most-common tie-breaking — is unchanged.
        """
        scores: Counter = Counter()
        enc = self.cooc.encoding
        for a in self.table.schema.names:
            if a == attr:
                continue
            context_code = enc.encode(a, row[a])
            codes = self.cooc.cooccurring_codes(attr, a, context_code)
            if len(codes) == 0:
                continue
            counts = self.cooc.pair_counts_for(attr, codes, a, context_code)
            for v, count in zip(
                self.cooc.cooccurring_values(attr, a, row[a]), counts
            ):
                scores[v] += int(count)
        return [v for v, _ in scores.most_common(5)]

    def _fd_candidates(self, attr: str, row: dict[str, Cell]) -> list[Cell]:
        out = []
        for lookup in self._fds:
            if lookup.fd.rhs == attr:
                expected = lookup.expected(row)
                if expected is not None:
                    out.append(expected)
        return out

    def _domain_candidates(self, attr: str) -> list[Cell]:
        return [v for v, _ in self.domains[attr].most_common(3)]

    _MODELS = ("value", "vicinity", "fd", "domain")

    def _model_candidates(
        self, model: str, attr: str, row: dict[str, Cell]
    ) -> list[Cell]:
        if model == "value":
            return self._value_candidates(attr, row[attr])
        if model == "vicinity":
            return self._vicinity_candidates(attr, row)
        if model == "fd":
            return self._fd_candidates(attr, row)
        return self._domain_candidates(attr)

    # Weight learning -------------------------------------------------------------

    def _learn_weights(self) -> dict[str, float]:
        """Weight each corrector by accuracy on the labelled repairs."""
        hits = {m: 1.0 for m in self._MODELS}  # add-one prior
        trials = {m: 2.0 for m in self._MODELS}
        clean = self.labeled.clean
        for i in self.labeled.correction_rows:
            row = self.table.row(i).as_dict()
            for attr in self.table.schema.names:
                if not _cell_is_error(self.table, clean, i, attr):
                    continue
                truth = clean.cell(i, attr)
                for m in self._MODELS:
                    candidates = self._model_candidates(m, attr, row)
                    if not candidates:
                        continue
                    trials[m] += 1.0
                    if any(cell_key(c) == cell_key(truth) for c in candidates):
                        hits[m] += 1.0
        return {m: hits[m] / trials[m] for m in self._MODELS}

    # Correction ---------------------------------------------------------------------

    def correct(self, i: int, attr: str) -> Cell | None:
        """The weighted-ensemble repair for one detected cell."""
        row = self.table.row(i).as_dict()
        scores: Counter = Counter()
        values: dict[object, Cell] = {}
        for m in self._MODELS:
            weight = self.weights[m]
            for rank, c in enumerate(self._model_candidates(m, attr, row)):
                k = cell_key(c)
                scores[k] += weight / (1 + rank)
                values.setdefault(k, c)
        if not scores:
            return None
        best_key, _ = scores.most_common(1)[0]
        return values[best_key]


class RahaBaranCleaner:
    """Detection feeding correction — the combined system."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def fit(self, dirty: Table, clean_reference: Table) -> "RahaBaranCleaner":
        """``clean_reference`` supplies the 20+20 expert labels only —
        the pipeline never reads unlabelled ground truth."""
        if dirty.n_rows != clean_reference.n_rows:
            raise BaselineError("dirty and reference tables must align")
        self.dirty = dirty
        self.labeled = LabeledTuples.sample(dirty, clean_reference, self.seed)
        self.detector = RahaDetector(dirty, self.labeled)
        self.corrector = BaranCorrector(dirty, self.labeled)
        return self

    def clean(self) -> Table:
        """Detect, then correct only the detected cells."""
        flagged = self.detector.detect()
        cleaned = self.dirty.copy()
        for i, attr in sorted(flagged):
            repair = self.corrector.correct(i, attr)
            if repair is not None and cell_key(repair) != cell_key(
                self.dirty.cell(i, attr)
            ):
                cleaned.set_cell(i, attr, repair)
        return cleaned


def raha_baran_clean(dirty: Table, clean_reference: Table, seed: int = 0) -> Table:
    """One-shot convenience wrapper."""
    return RahaBaranCleaner(seed).fit(dirty, clean_reference).clean()
