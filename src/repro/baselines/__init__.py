"""Competing cleaning systems re-implemented from scratch."""

from repro.baselines.garf import GarfCleaner, ValueRule, garf_clean
from repro.baselines.holoclean import HoloCleanCleaner, holoclean_clean
from repro.baselines.pclean import PCleanCleaner, pclean_clean
from repro.baselines.pclean_model import PCleanAttribute, PCleanModel
from repro.baselines.raha_baran import (
    BaranCorrector,
    LabeledTuples,
    RahaBaranCleaner,
    RahaDetector,
    raha_baran_clean,
)

__all__ = [
    "BaranCorrector",
    "GarfCleaner",
    "HoloCleanCleaner",
    "LabeledTuples",
    "PCleanAttribute",
    "PCleanCleaner",
    "PCleanModel",
    "RahaBaranCleaner",
    "RahaDetector",
    "ValueRule",
    "garf_clean",
    "holoclean_clean",
    "pclean_clean",
    "raha_baran_clean",
]
