"""The PClean baseline: PPL-style generative cleaning.

PClean (Lew et al., AISTATS 2021) cleans by posterior inference in a
user-authored generative model: latent clean records generate the
observations through error channels.  Our re-implementation interprets
the declarative :class:`~repro.baselines.pclean_model.PCleanModel`:

- per attribute, an empirical prior P(v) (or conditional prior
  P(v | parents) when the program declares parents),
- an observation channel P(obs | v): exact match, typo (edit-distance
  kernel, for "string"/"number" attributes), or missing.

Per-cell MAP inference scores each candidate clean value by
``log prior + log channel`` and repairs when a candidate beats the
incumbent.  The system's quality therefore tracks the program's quality
— exactly the sensitivity the paper reports (excellent on Flights,
poor on Soccer/Beers where the programs are crude).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Mapping

from repro.baselines.pclean_model import PCleanAttribute, PCleanModel
from repro.bayesnet.cpt import cell_key
from repro.dataset.domain import DomainIndex
from repro.dataset.table import Cell, Table, is_null
from repro.errors import BaselineError
from repro.text.levenshtein import levenshtein_within

#: per-edit decay of the typo channel likelihood
_TYPO_DECAY = 0.08
#: candidate cap per cell
_MAX_CANDIDATES = 60
#: minimum occurrence count for a value to enter the latent (clean)
#: domain: PClean's latent variables range over *modeled clean* values;
#: singleton strings are overwhelmingly error-channel output.  This is
#: what lets PClean normalise typos away — and what makes it destroy
#: legitimately rare values when the program is misspecified (the
#: near-zero Beers row of Table 4).
_MIN_LATENT_SUPPORT = 2


class PCleanCleaner:
    """MAP inference over a :class:`PCleanModel`."""

    def __init__(self, model: PCleanModel):
        self.model = model
        self._priors: dict[str, Counter] = {}
        self._cond: dict[str, dict[tuple, Counter]] = {}
        self._domains: DomainIndex | None = None

    # -- fitting -----------------------------------------------------------------

    def fit(self, table: Table) -> "PCleanCleaner":
        """Estimate the empirical priors of the program from data."""
        missing = set(self.model.names) - set(table.schema.names)
        if missing:
            raise BaselineError(
                f"model attributes {sorted(missing)} absent from table"
            )
        self.table = table
        self._domains = DomainIndex(table)
        for spec in self.model.attributes:
            col = table.column(spec.name)
            self._priors[spec.name] = Counter(
                v for v in col if not is_null(v)
            )
            if spec.parents:
                cond: dict[tuple, Counter] = defaultdict(Counter)
                parent_cols = [table.column(p) for p in spec.parents]
                for i, v in enumerate(col):
                    if is_null(v):
                        continue
                    config = tuple(cell_key(pc[i]) for pc in parent_cols)
                    cond[config][v] += 1
                self._cond[spec.name] = dict(cond)
        return self

    # -- scoring -------------------------------------------------------------------

    def _log_prior(
        self, spec: PCleanAttribute, value: Cell, row: Mapping[str, Cell]
    ) -> float:
        prior = self._priors[spec.name]
        total = sum(prior.values())
        size = max(1, len(prior))
        if spec.parents:
            config = tuple(cell_key(row[p]) for p in spec.parents)
            cond = self._cond.get(spec.name, {}).get(config)
            if cond is not None:
                ctotal = sum(cond.values())
                return math.log((cond.get(value, 0) + 0.5) / (ctotal + 0.5 * size))
        return math.log((prior.get(value, 0) + 0.5) / (total + 0.5 * size))

    def _log_channel(self, spec: PCleanAttribute, observed: Cell, value: Cell) -> float:
        """``log P(observed | latent clean value)``."""
        clean_mass = max(1e-9, 1.0 - spec.typo_prob - spec.missing_prob)
        if is_null(observed):
            return math.log(max(spec.missing_prob, 1e-9))
        if str(observed) == str(value):
            return math.log(clean_mass)
        if spec.dist in ("string", "number"):
            d = levenshtein_within(
                str(observed), str(value), spec.max_typo_distance
            )
            if d is not None:
                return math.log(max(spec.typo_prob, 1e-9)) + d * math.log(_TYPO_DECAY)
        # categorical mismatch: uniform error mass over the domain
        size = max(2, len(self._priors[spec.name]))
        return math.log(max(spec.typo_prob, 1e-9) / size)

    def _candidates(
        self, spec: PCleanAttribute, observed: Cell, row: Mapping[str, Cell]
    ) -> list[Cell]:
        pool: list[Cell] = []
        seen: set[object] = set()

        def push(v: Cell) -> None:
            k = cell_key(v)
            if k not in seen and not is_null(v):
                seen.add(k)
                pool.append(v)

        support = _MIN_LATENT_SUPPORT
        if spec.parents:
            config = tuple(cell_key(row[p]) for p in spec.parents)
            cond = self._cond.get(spec.name, {}).get(config)
            if cond is not None:
                for v, count in cond.most_common(_MAX_CANDIDATES):
                    if self._priors[spec.name].get(v, 0) >= support:
                        push(v)
        for v, count in self._priors[spec.name].most_common(_MAX_CANDIDATES):
            if count >= support:
                push(v)
            if len(pool) >= _MAX_CANDIDATES:
                break
        # The observation itself is a legal latent value only when it has
        # independent support; a singleton string is channel noise.
        if not is_null(observed) and self._priors[spec.name].get(observed, 0) >= support:
            push(observed)
        if not pool and not is_null(observed):
            push(observed)
        return pool

    # -- cleaning -------------------------------------------------------------------

    def clean(self, table: Table | None = None) -> Table:
        """MAP-repair every modelled cell."""
        if self._domains is None:
            raise BaselineError("fit() must be called before clean()")
        table = table if table is not None else self.table
        cleaned = table.copy()
        names = table.schema.names
        cache: dict[tuple, Cell] = {}
        for i in range(table.n_rows):
            row = {a: table.columns[j][i] for j, a in enumerate(names)}
            for spec in self.model.attributes:
                observed = row[spec.name]
                parents_sig = tuple(cell_key(row[p]) for p in spec.parents)
                sig = (spec.name, parents_sig, cell_key(observed))
                if sig in cache:
                    best = cache[sig]
                else:
                    best = self._map_value(spec, observed, row)
                    cache[sig] = best
                if best is not None and cell_key(best) != cell_key(observed):
                    cleaned.set_cell(i, spec.name, best)
        return cleaned

    def _map_value(
        self, spec: PCleanAttribute, observed: Cell, row: Mapping[str, Cell]
    ) -> Cell | None:
        best: Cell | None = None
        best_score = -math.inf
        for c in self._candidates(spec, observed, row):
            score = self._log_prior(spec, c, row) + self._log_channel(
                spec, observed, c
            )
            if score > best_score:
                best, best_score = c, score
        return best


def pclean_clean(table: Table, model: PCleanModel) -> Table:
    """One-shot convenience wrapper."""
    return PCleanCleaner(model).fit(table).clean()
