"""The Garf baseline: self-supervised rule mining + repair.

Garf (Peng et al., PVLDB 2022) trains a SeqGAN over tuple sequences and
distils *explainable repair rules* of the form ``X=x → Y=y``, which it
then applies to the data — no user input at all.  We reproduce the
rule-centric behaviour with a direct miner: value-level implication
rules with support/confidence thresholds (the fixed points a SeqGAN
converges to on relational data are exactly the high-confidence
co-occurrence rules), applied iteratively until fixpoint.

Characteristic behaviour (matching Table 4): precision near 1 — a rule
must be strongly supported before it fires — but low recall, since
typos in attributes that never anchor a confident rule (numeric
columns, free text, very dirty columns) are untouchable.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.bayesnet.cpt import cell_key
from repro.dataset.table import Cell, Table, is_null
from repro.errors import BaselineError


@dataclass(frozen=True)
class ValueRule:
    """``lhs_attr = lhs_value → rhs_attr = rhs_value`` with evidence."""

    lhs_attr: str
    lhs_value: object
    rhs_attr: str
    rhs_value: Cell
    support: int
    confidence: float

    def __str__(self) -> str:
        return (
            f"{self.lhs_attr}={self.lhs_value!r} -> "
            f"{self.rhs_attr}={self.rhs_value!r} "
            f"(sup={self.support}, conf={self.confidence:.2f})"
        )


class GarfCleaner:
    """Mine value rules from the dirty data, apply until fixpoint."""

    def __init__(
        self,
        min_support: int = 3,
        min_confidence: float = 0.9,
        max_iterations: int = 3,
    ):
        if min_support < 1:
            raise BaselineError(f"min_support must be ≥ 1, got {min_support}")
        if not 0.0 < min_confidence <= 1.0:
            raise BaselineError(
                f"min_confidence must be in (0, 1], got {min_confidence}"
            )
        self.min_support = min_support
        self.min_confidence = min_confidence
        self.max_iterations = max_iterations
        self.rules: list[ValueRule] = []

    def mine_rules(self, table: Table) -> list[ValueRule]:
        """All value rules passing the support/confidence thresholds.

        Only *non-trivial* LHS values qualify: a value whose group is a
        single tuple supports nothing (and would make every cell a rule).
        """
        rules: list[ValueRule] = []
        names = table.schema.names
        for lhs in names:
            lcol = table.column(lhs)
            groups: dict[object, list[int]] = defaultdict(list)
            for i, v in enumerate(lcol):
                if not is_null(v):
                    groups[cell_key(v)].append(i)
            for rhs in names:
                if rhs == lhs:
                    continue
                rcol = table.column(rhs)
                for lhs_value, rows in groups.items():
                    if len(rows) < self.min_support:
                        continue
                    counter = Counter(
                        rcol[i] for i in rows if not is_null(rcol[i])
                    )
                    if not counter:
                        continue
                    rhs_value, count = counter.most_common(1)[0]
                    total = sum(counter.values())
                    confidence = count / total
                    if count >= self.min_support and confidence >= self.min_confidence:
                        rules.append(
                            ValueRule(
                                lhs, lhs_value, rhs, rhs_value, count, confidence
                            )
                        )
        return rules

    def clean(self, table: Table) -> Table:
        """Iteratively repair rule violations until fixpoint."""
        current = table.copy()
        for _ in range(self.max_iterations):
            self.rules = self.mine_rules(current)
            by_lhs: dict[tuple[str, object], list[ValueRule]] = defaultdict(list)
            for r in self.rules:
                by_lhs[(r.lhs_attr, r.lhs_value)].append(r)

            n_changes = 0
            names = current.schema.names
            for i in range(current.n_rows):
                row = {a: current.cell(i, a) for a in names}
                for lhs in names:
                    for rule in by_lhs.get((lhs, cell_key(row[lhs])), ()):
                        observed = row[rule.rhs_attr]
                        if cell_key(observed) != cell_key(rule.rhs_value):
                            current.set_cell(i, rule.rhs_attr, rule.rhs_value)
                            row[rule.rhs_attr] = rule.rhs_value
                            n_changes += 1
            if n_changes == 0:
                break
        return current


def garf_clean(
    table: Table,
    min_support: int = 3,
    min_confidence: float = 0.9,
) -> Table:
    """One-shot convenience wrapper."""
    return GarfCleaner(min_support, min_confidence).clean(table)
