"""The HoloClean baseline: DC-driven, weakly supervised repair.

HoloClean (Rekatsinas et al., PVLDB 2017) compiles denial constraints,
co-occurrence statistics, and minimality into features of a factor
graph, learns feature weights from the *unviolated* (presumed-clean)
part of the data, and repairs the violating cells.  We reproduce that
pipeline:

1. **Detection** — cells touched by DC violations, plus NULLs.
2. **Candidates** — domain values co-occurring with the tuple context.
3. **Features** — context co-occurrence, frequency prior, minimality,
   and consensus-of-the-violation-group.
4. **Weight learning** — logistic regression (plain numpy gradient
   ascent) on presumed-clean cells: the observed value is the positive
   example, sampled domain values are negatives.
5. **Repair** — argmax candidate for every *detected* cell only.

Characteristic behaviour (matching Table 4): precision is high — only
well-evidenced violations are touched — while recall is bounded by DC
coverage (typos in attributes no DC mentions are never repaired).
"""

from __future__ import annotations

import math
import random
from collections import Counter

import numpy as np

from repro.bayesnet.cpt import cell_key
from repro.constraints.dc import DenialConstraint, iter_violations
from repro.core.cooccurrence import CooccurrenceIndex
from repro.dataset.domain import DomainIndex
from repro.dataset.table import Cell, Table, is_null
from repro.errors import BaselineError

_N_FEATURES = 4
_MAX_CANDIDATES = 40
_TRAIN_CELLS = 2000
_EPOCHS = 12
_LR = 0.5


class HoloCleanCleaner:
    """The full detect → featurise → learn → repair pipeline."""

    def __init__(self, constraints: list[DenialConstraint], seed: int = 0):
        if not constraints:
            raise BaselineError("HoloClean needs at least one denial constraint")
        self.constraints = constraints
        self.seed = seed
        self.weights = np.zeros(_N_FEATURES)

    # -- pipeline ------------------------------------------------------------------

    def fit(self, table: Table) -> "HoloCleanCleaner":
        """Index statistics, detect violations, learn feature weights."""
        self.table = table
        self.cooc = CooccurrenceIndex(table)
        self.domains = DomainIndex(table)
        self.noisy_cells = self._detect(table)
        self._learn_weights(table)
        return self

    def _detect(self, table: Table) -> set[tuple[int, str]]:
        """Cells implicated in DC violations, plus NULL cells."""
        noisy: set[tuple[int, str]] = set()
        for dc in self.constraints:
            attrs = sorted(
                {
                    side[1]
                    for p in dc.predicates
                    for side in (p.left, p.right)
                    if side[0] != "const"
                }
            )
            for hit in iter_violations(table, dc):
                for i in hit:
                    for a in attrs:
                        noisy.add((i, a))
        for j, a in enumerate(table.schema.names):
            col = table.columns[j]
            for i in range(table.n_rows):
                if is_null(col[i]):
                    noisy.add((i, a))
        return noisy

    # -- features -------------------------------------------------------------------

    def _features_pool(
        self,
        attr: str,
        candidates: list[Cell],
        row: dict[str, Cell],
        observed: Cell,
        group_consensus: Cell | None,
    ) -> np.ndarray:
        """Feature matrix ``(P, 4)`` of a whole candidate pool.

        The context co-occurrence feature runs through the batched
        :meth:`CooccurrenceIndex.pair_counts_for` API — one sorted-key
        probe per context attribute for the entire pool instead of a
        per-(candidate, context) dict walk.  Values the encoding never
        saw count 0, exactly like the per-pair probes did.
        """
        n = max(1, self.table.n_rows)
        others = [a for a in self.table.schema.names if a != attr]
        enc = self.cooc.encoding
        codes = np.fromiter(
            (enc.encode(attr, c) for c in candidates),
            dtype=np.int64,
            count=len(candidates),
        )
        valid = codes >= 0
        safe = np.where(valid, codes, 0)
        cooc_score = np.zeros(len(candidates), dtype=np.float64)
        for a in others:
            denom = self.cooc.count(a, row[a])
            if denom > 0:
                pair = self.cooc.pair_counts_for(
                    attr, safe, a, enc.encode(a, row[a])
                )
                cooc_score += np.where(valid, pair, 0) / denom
        cooc_score /= max(1, len(others))
        freq = np.where(valid, self.cooc.counts_for(attr, safe), 0) / n
        observed_key = cell_key(observed)
        minimality = np.fromiter(
            (1.0 if cell_key(c) == observed_key else 0.0 for c in candidates),
            dtype=np.float64,
            count=len(candidates),
        )
        if group_consensus is None:
            consensus = np.zeros(len(candidates), dtype=np.float64)
        else:
            consensus_key = cell_key(group_consensus)
            consensus = np.fromiter(
                (
                    1.0 if cell_key(c) == consensus_key else 0.0
                    for c in candidates
                ),
                dtype=np.float64,
                count=len(candidates),
            )
        return np.column_stack([cooc_score, freq, minimality, consensus])

    def _features(
        self,
        attr: str,
        candidate: Cell,
        row: dict[str, Cell],
        observed: Cell,
        group_consensus: Cell | None,
    ) -> np.ndarray:
        return self._features_pool(
            attr, [candidate], row, observed, group_consensus
        )[0]

    def _learn_weights(self, table: Table) -> None:
        """Logistic weight learning on presumed-clean cells."""
        rng = random.Random(self.seed)
        names = table.schema.names
        clean_cells = [
            (i, a)
            for a in names
            for i in range(table.n_rows)
            if (i, a) not in self.noisy_cells and not is_null(table.cell(i, a))
        ]
        if not clean_cells:
            self.weights = np.array([1.0, 0.5, 1.0, 1.0])
            return
        rng.shuffle(clean_cells)
        clean_cells = clean_cells[:_TRAIN_CELLS]

        xs: list[np.ndarray] = []
        ys: list[float] = []
        for i, a in clean_cells:
            row = table.row(i).as_dict()
            observed = row[a]
            xs.append(self._features(a, observed, row, observed, None))
            ys.append(1.0)
            domain = self.domains.candidate_values(a, cap=20)
            negatives = [v for v in domain if cell_key(v) != cell_key(observed)]
            if negatives:
                neg = negatives[rng.randrange(len(negatives))]
                xs.append(self._features(a, neg, row, observed, None))
                ys.append(0.0)
        x = np.vstack(xs)
        y = np.asarray(ys)
        w = np.zeros(_N_FEATURES)
        for _ in range(_EPOCHS):
            p = 1.0 / (1.0 + np.exp(-(x @ w)))
            grad = x.T @ (y - p) / len(y)
            w += _LR * grad
        self.weights = w

    # -- repair ---------------------------------------------------------------------

    def clean(self, table: Table | None = None) -> Table:
        """Repair every detected cell with its best-scoring candidate."""
        if not hasattr(self, "table"):
            raise BaselineError("fit() must be called before clean()")
        table = table if table is not None else self.table
        cleaned = table.copy()
        consensus = self._group_consensus(table)

        for i, attr in sorted(self.noisy_cells):
            row = table.row(i).as_dict()
            observed = row[attr]
            group_best = consensus.get((i, attr))
            best, best_score = observed, -math.inf
            pool = self._candidates(attr, row, observed)
            # Featurise the whole pool in one batched pass; the argmax
            # keeps the original per-candidate dot product so scoring is
            # bit-for-bit what the scalar probes produced.
            features = self._features_pool(attr, pool, row, observed, group_best)
            for c, f in zip(pool, features):
                score = float(self.weights @ f)
                if score > best_score:
                    best, best_score = c, score
            if best is not None and cell_key(best) != cell_key(observed):
                cleaned.set_cell(i, attr, best)
        return cleaned

    def _candidates(
        self, attr: str, row: dict[str, Cell], observed: Cell
    ) -> list[Cell]:
        pool: list[Cell] = []
        seen: set[object] = set()
        for a in self.table.schema.names:
            if a == attr:
                continue
            for v in self.cooc.cooccurring_values(attr, a, row[a]):
                k = cell_key(v)
                if k not in seen and not is_null(v):
                    seen.add(k)
                    pool.append(v)
            if len(pool) >= _MAX_CANDIDATES:
                break
        for v in self.domains.candidate_values(attr, cap=_MAX_CANDIDATES):
            k = cell_key(v)
            if k not in seen:
                seen.add(k)
                pool.append(v)
        if not is_null(observed):
            k = cell_key(observed)
            if k not in seen:
                pool.append(observed)
        return pool[: _MAX_CANDIDATES + 1]

    def _group_consensus(self, table: Table) -> dict[tuple[int, str], Cell]:
        """For each FD-style DC and violating cell, the majority RHS value
        of the cell's LHS group (the repair a DC 'wants')."""
        out: dict[tuple[int, str], Cell] = {}
        for dc in self.constraints:
            fd = _as_fd(dc)
            if fd is None:
                continue
            lhs, rhs = fd
            groups: dict[object, Counter] = {}
            lcol, rcol = table.column(lhs), table.column(rhs)
            for i in range(table.n_rows):
                if is_null(rcol[i]):
                    continue
                groups.setdefault(cell_key(lcol[i]), Counter())[rcol[i]] += 1
            for i in range(table.n_rows):
                if (i, rhs) in self.noisy_cells:
                    counter = groups.get(cell_key(lcol[i]))
                    if counter:
                        out[(i, rhs)] = counter.most_common(1)[0][0]
        return out


def _as_fd(dc: DenialConstraint) -> tuple[str, str] | None:
    """Recognise the two-predicate FD encoding ``t1.A=t2.A ∧ t1.B≠t2.B``."""
    if len(dc.predicates) != 2:
        return None
    eq = [p for p in dc.predicates if p.op == "="]
    ne = [p for p in dc.predicates if p.op == "!="]
    if len(eq) != 1 or len(ne) != 1:
        return None
    lhs = eq[0].left[1] if eq[0].left[0] != "const" else None
    rhs = ne[0].left[1] if ne[0].left[0] != "const" else None
    if lhs and rhs:
        return lhs, rhs
    return None


def holoclean_clean(
    table: Table, constraints: list[DenialConstraint], seed: int = 0
) -> Table:
    """One-shot convenience wrapper."""
    return HoloCleanCleaner(constraints, seed).fit(table).clean()
