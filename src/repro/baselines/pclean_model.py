"""Model programs for the PClean baseline.

PClean (Lew et al., AISTATS 2021) requires users to author a
domain-specific probabilistic program: attribute groupings, compliant
distributions, and error models.  Our baseline consumes the same
information through :class:`PCleanModel` — a declarative spec that the
inference engine in :mod:`repro.baselines.pclean` interprets.  Each
benchmark dataset ships a hand-written program, mirroring the paper's
setup where "people familiar with PClean author the data models"
(Table 4 footnote); the quality of those programs — excellent for
Flights, crude for Soccer — is part of what Table 4 measures.

``render_ppl`` pretty-prints the spec as pseudo-PPL so the #lines-of-PPL
column of Table 2 has a concrete analogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BaselineError


@dataclass(frozen=True)
class PCleanAttribute:
    """One attribute's generative spec.

    Attributes
    ----------
    name:
        Attribute name.
    dist:
        "categorical" (empirical prior over observed values), "string"
        (categorical prior + typo channel), or "number" (categorical
        prior over observed numerals + typo channel).
    parents:
        Attributes this one is conditioned on (the sub-record structure
        PClean programs express); empty means marginal.
    typo_prob:
        Prior probability that the observation passed a typo channel.
    missing_prob:
        Prior probability that the observation was dropped (NULL).
    max_typo_distance:
        Edit-distance radius of the typo channel.
    """

    name: str
    dist: str = "categorical"
    parents: tuple[str, ...] = ()
    typo_prob: float = 0.05
    missing_prob: float = 0.02
    max_typo_distance: int = 2

    def __post_init__(self) -> None:
        if self.dist not in ("categorical", "string", "number"):
            raise BaselineError(f"unknown distribution {self.dist!r}")
        if not 0.0 <= self.typo_prob < 1.0:
            raise BaselineError(f"typo_prob must be in [0, 1), got {self.typo_prob}")


@dataclass
class PCleanModel:
    """A full PClean program: ordered attribute specs + class structure."""

    dataset: str
    attributes: list[PCleanAttribute] = field(default_factory=list)
    #: latent-class partition: groups of attributes generated together
    #: (the P1..P4 partition of the paper's Example in §1).
    classes: list[tuple[str, ...]] = field(default_factory=list)

    def attribute(self, name: str) -> PCleanAttribute:
        """Spec of one attribute."""
        for a in self.attributes:
            if a.name == name:
                return a
        raise BaselineError(f"attribute {name!r} not in model {self.dataset!r}")

    @property
    def names(self) -> list[str]:
        """All modelled attribute names."""
        return [a.name for a in self.attributes]

    def render_ppl(self) -> str:
        """Pseudo-PPL rendering (drives the #lines-of-PPL statistic)."""
        lines = [f"@model class {self.dataset.capitalize()}Record:"]
        for group_idx, group in enumerate(self.classes or [tuple(self.names)]):
            lines.append(f"  class P{group_idx + 1}:")
            for name in group:
                spec = self.attribute(name)
                cond = (
                    f" given ({', '.join(spec.parents)})" if spec.parents else ""
                )
                lines.append(f"    {name} ~ {spec.dist}_prior(){cond}")
                if spec.dist in ("string", "number"):
                    lines.append(
                        f"    observe {name} via typo_channel("
                        f"p={spec.typo_prob}, d<={spec.max_typo_distance})"
                    )
                if spec.missing_prob > 0:
                    lines.append(
                        f"    observe {name} via missing_channel(p={spec.missing_prob})"
                    )
        lines.append("  return Record(" + ", ".join(self.names) + ")")
        return "\n".join(lines)

    @property
    def n_ppl_lines(self) -> int:
        """Line count of the rendered program (Table 2 analogue)."""
        return len(self.render_ppl().splitlines())
