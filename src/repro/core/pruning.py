"""Pruning strategies (§6.2): tuple pruning and TF-IDF domain pruning.

*Tuple pruning* (pre-detection) skips cells that co-occur strongly with
the rest of their tuple:

``Filter(T, A_i) = (1/(m−1)) Σ_{A_j ≠ A_i} count(T[A_i], T[A_j]) / count(T[A_j])``

— cells scoring at least ``τ_clean`` are deemed reliable and bypassed.

*Domain pruning* treats each sub-network as a semantic space (a cloze
test): every candidate v is weighted by

``score(v) = TF(v, context) · IDF(v, D) = context(v) · log(|D| / (1 + count(v, D)))``

where ``context(v)`` counts the sub-network attributes whose observed
value co-occurs with v; only the top-k candidates survive.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.core.cooccurrence import CooccurrenceIndex
from repro.dataset.table import Cell


def tuple_filter_scores_all_rows(
    index: CooccurrenceIndex, attribute: str
) -> np.ndarray:
    """``Filter(T, A_i)`` for every table row at once — the batched form
    of :func:`tuple_filter_score` the columnar engine path uses to skip
    reliable cells before any competition is materialised."""
    others = [a for a in index.names if a != attribute]
    if not others:
        return np.ones(index.n_rows, dtype=np.float64)
    total = np.zeros(index.n_rows, dtype=np.float64)
    for attr_j in others:
        denom = index.counts_array(attr_j)[index.encoding.codes(attr_j)]
        pair = index.rowwise_pair_counts(attribute, attr_j)
        total += np.where(denom > 0, pair / np.maximum(denom, 1), 0.0)
    return total / len(others)


def tuple_filter_scores_coded(
    index: CooccurrenceIndex,
    attribute: str,
    codes_mat: np.ndarray,
    names: Sequence[str],
) -> np.ndarray:
    """``Filter(T, A_i)`` for every row of an arbitrary coded matrix —
    the foreign-table form of :func:`tuple_filter_scores_all_rows`,
    where codes the statistics never saw (incrementally extended
    vocabularies) count 0 like unseen values on the value path."""
    j = list(names).index(attribute)
    others = [k for k in range(len(names)) if k != j]
    if not others:
        return np.ones(len(codes_mat), dtype=np.float64)
    total = np.zeros(len(codes_mat), dtype=np.float64)
    for k in others:
        denom = index.counts_for(names[k], codes_mat[:, k])
        pair = index.pair_counts_rows(
            attribute, codes_mat[:, j], names[k], codes_mat[:, k]
        )
        total += np.where(denom > 0, pair / np.maximum(denom, 1), 0.0)
    return total / len(others)


def tuple_filter_score(
    index: CooccurrenceIndex,
    row: Mapping[str, Cell],
    attribute: str,
) -> float:
    """``Filter(T, A_i)`` of §6.2 — mean conditional co-occurrence."""
    others = [a for a in index.names if a != attribute]
    if not others:
        return 1.0
    value = row[attribute]
    total = 0.0
    for attr_j in others:
        denom = index.count(attr_j, row[attr_j])
        if denom <= 0:
            continue
        total += index.pair_count(attribute, value, attr_j, row[attr_j]) / denom
    return total / len(others)


def should_skip_cell(
    index: CooccurrenceIndex,
    row: Mapping[str, Cell],
    attribute: str,
    tau_clean: float,
) -> bool:
    """Pre-detection verdict: True when the cell looks reliable enough
    to bypass inference in this pass."""
    return tuple_filter_score(index, row, attribute) >= tau_clean


class DomainPruner:
    """TF-IDF candidate pruning inside one sub-network."""

    def __init__(self, index: CooccurrenceIndex, top_k: int = 24):
        self.index = index
        self.top_k = top_k
        self._n = max(1, index.n_rows)

    def tfidf(
        self,
        candidate: Cell,
        row: Mapping[str, Cell],
        attribute: str,
        context_attributes: Sequence[str],
    ) -> float:
        """``score(v) = context(v) · log(|D| / (1 + count(v, D)))``."""
        context = 0
        for attr_k in context_attributes:
            if attr_k == attribute:
                continue
            if self.index.pair_count(attribute, candidate, attr_k, row[attr_k]) > 0:
                context += 1
        if context == 0:
            return 0.0
        idf = math.log(self._n / (1 + self.index.count(attribute, candidate)))
        # Rare-but-contextual values win; clamp negative IDF (values more
        # frequent than |D|/e) to a small positive floor so frequent
        # correct values are not zeroed out entirely.
        return context * max(idf, 1e-3)

    def prune(
        self,
        candidates: Sequence[Cell],
        row: Mapping[str, Cell],
        attribute: str,
        context_attributes: Sequence[str],
        keep: Sequence[Cell] = (),
    ) -> list[Cell]:
        """The top-k candidates by TF-IDF, always retaining ``keep``.

        ``keep`` lets the engine preserve the incumbent cell value so
        Algorithm 1's initialisation (c* = T_i[A_j]) survives pruning.
        """
        scored = sorted(
            candidates,
            key=lambda c: self.tfidf(c, row, attribute, context_attributes),
            reverse=True,
        )
        kept = scored[: self.top_k]
        present = set(map(_safe_key, kept))
        for k in keep:
            if _safe_key(k) not in present:
                kept.append(k)
                present.add(_safe_key(k))
        return kept

    def prune_codes(
        self,
        candidate_codes: np.ndarray,
        row_codes: np.ndarray,
        attribute: str,
        context_columns: Sequence[int],
    ) -> np.ndarray:
        """Batched :meth:`prune` over a coded candidate pool.

        Same TF-IDF ranking, computed with vectorised pair-count probes;
        the stable sort preserves the incoming pool order on ties, so
        the surviving top-k matches the scalar path element for element.
        """
        index = self.index
        context = np.zeros(len(candidate_codes), dtype=np.int64)
        for column in context_columns:
            pair = index.pair_counts_for(
                attribute,
                candidate_codes,
                index.names[column],
                int(row_codes[column]),
            )
            context += pair > 0
        counts = index.counts_array(attribute)[candidate_codes]
        idf = np.log(self._n / (1 + counts))
        tfidf = context * np.maximum(idf, 1e-3)
        order = np.argsort(-tfidf, kind="stable")
        return candidate_codes[order][: self.top_k]


def _safe_key(value: Cell) -> object:
    from repro.bayesnet.cpt import cell_key

    return cell_key(value)
