"""Repair records and cleaning results."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataset.diff import cells_equal
from repro.dataset.table import Cell, Table
from repro.obs import NULL_TRACER, clock


@dataclass(frozen=True)
class Repair:
    """One cell modification proposed by a cleaning system."""

    row: int
    attribute: str
    old_value: Cell
    new_value: Cell
    old_score: float = 0.0
    new_score: float = 0.0

    def __str__(self) -> str:
        return (
            f"[{self.row}].{self.attribute}: {self.old_value!r} -> "
            f"{self.new_value!r} (score {self.old_score:.3f} -> {self.new_score:.3f})"
        )


@dataclass
class CleaningStats:
    """Work counters of one cleaning run (drives Table 7 and ablations)."""

    cells_total: int = 0
    cells_inspected: int = 0
    cells_skipped_pruning: int = 0
    candidates_evaluated: int = 0
    candidates_filtered_uc: int = 0
    repairs_made: int = 0
    fit_seconds: float = 0.0
    clean_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Fit plus clean time (the paper's "execution time")."""
        return self.fit_seconds + self.clean_seconds


@dataclass
class CleaningResult:
    """Output of a cleaning engine: the repaired table plus provenance.

    ``cleaned`` is ``None`` for streaming cleans
    (:meth:`~repro.core.engine.BClean.clean_csv`), where the repaired
    relation is written to disk block by block instead of being
    materialised; repairs, stats, and diagnostics are recorded either
    way.  Streaming/chunked runs add a ``diagnostics["stream"]`` block
    (chunk count, per-backend chunk counts, shared-memory usage)
    mirroring the ``fit_exec`` diagnostics.
    """

    cleaned: Table | None
    repairs: list[Repair] = field(default_factory=list)
    stats: CleaningStats = field(default_factory=CleaningStats)
    diagnostics: dict = field(default_factory=dict)

    @property
    def n_repairs(self) -> int:
        """Number of cells changed."""
        return len(self.repairs)

    def repaired_cells(self) -> set[tuple[int, str]]:
        """Coordinates of all modified cells."""
        return {(r.row, r.attribute) for r in self.repairs}


def apply_repairs(table: Table, repairs: list[Repair]) -> Table:
    """A copy of ``table`` with all repairs applied."""
    out = table.copy()
    for r in repairs:
        out.set_cell(r.row, r.attribute, r.new_value)
    return out


def collect_repairs(dirty: Table, cleaned: Table) -> list[Repair]:
    """Derive repair records by diffing a dirty table against its cleaned
    version (used for baselines that return only the cleaned table)."""
    repairs = []
    for j, name in enumerate(dirty.schema.names):
        dcol, ccol = dirty.columns[j], cleaned.columns[j]
        for i in range(dirty.n_rows):
            if not cells_equal(dcol[i], ccol[i]):
                repairs.append(Repair(i, name, dcol[i], ccol[i]))
    return repairs


class Stopwatch:
    """Tiny context-manager timer used by the engines.

    Reads :func:`repro.obs.clock` — the same monotonic clock behind
    every trace span, so engine wall-clock and stage breakdowns can
    never disagree about what a second is.  When given a tracer and a
    counter name, the measured total is also surfaced as a counter on
    the trace (the engine hangs its fit/clean stopwatch totals on the
    clean root span this way).
    """

    def __init__(self, tracer=NULL_TRACER, counter: str | None = None) -> None:
        self.seconds = 0.0
        self._tracer = tracer
        self._counter = counter

    def __enter__(self) -> "Stopwatch":
        self._start = clock()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = clock() - self._start
        if self._counter is not None:
            self._tracer.add_counter(self._counter, self.seconds)
