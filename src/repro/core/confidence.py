"""Tuple confidence (Eq. 3 of the paper).

``conf(T) = max(0, (Σ 1{UC(e)=1} − λ·Σ 1{UC(e)=0}) / |T|)``

A tuple whose values all satisfy their UCs has confidence 1; each
violation both removes a satisfying vote and subtracts λ, so with λ = 1
a single violation in an m-attribute tuple yields (m − 2)/m.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.constraints.registry import UCRegistry
from repro.dataset.table import Cell, Table


def tuple_confidence(
    row: Mapping[str, Cell], registry: UCRegistry, lam: float
) -> float:
    """Confidence of one tuple under the registry's cell constraints."""
    n = len(row)
    if n == 0:
        return 0.0
    satisfied = 0
    violated = 0
    for attr, value in row.items():
        if registry.check_cell(attr, value):
            satisfied += 1
        else:
            violated += 1
    return max(0.0, (satisfied - lam * violated) / n)


def table_confidences(
    table: Table, registry: UCRegistry, lam: float
) -> list[float]:
    """Confidence of every tuple of ``table`` (one pass per column).

    Column-major evaluation: each attribute's constraints are applied to
    its whole column, then votes are folded row-wise — avoiding the
    per-row dict construction of :func:`tuple_confidence`.
    """
    n, m = table.n_rows, table.n_cols
    if m == 0:
        return []
    satisfied = [0] * n
    for attr in table.schema.names:
        constraints = registry.constraints_for(attr)
        col = table.column(attr)
        if not constraints:
            for i in range(n):
                satisfied[i] += 1
            continue
        for i, v in enumerate(col):
            if all(c.check(v) for c in constraints):
                satisfied[i] += 1
    out = []
    for s in satisfied:
        violated = m - s
        out.append(max(0.0, (s - lam * violated) / m))
    return out


def reliability_flags(
    confidences: Sequence[float], tau: float
) -> list[bool]:
    """Whether each tuple counts as reliable (conf ≥ τ, Algorithm 2)."""
    return [c >= tau for c in confidences]
