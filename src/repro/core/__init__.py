"""The BClean core: engine, scoring models, pruning, interaction."""

from repro.core.compensatory import (
    CompensatoryScorer,
    log_compensatory,
    log_compensatory_pool,
)
from repro.core.composition import COMPOSE_SEP, AttributeComposition
from repro.core.config import BCleanConfig, InferenceMode
from repro.core.confidence import (
    reliability_flags,
    table_confidences,
    tuple_confidence,
)
from repro.core.cooccurrence import CooccurrenceIndex
from repro.core.detection import (
    DetectionResult,
    ErrorDetector,
    Suspicion,
    detect_errors,
)
from repro.core.engine import BClean, clean_table
from repro.core.interaction import EditLog, NetworkEditSession
from repro.core.partition import SubNetwork, partition, partition_statistics
from repro.core.pruning import (
    DomainPruner,
    should_skip_cell,
    tuple_filter_score,
    tuple_filter_scores_all_rows,
)
from repro.core.repairs import (
    CleaningResult,
    CleaningStats,
    Repair,
    apply_repairs,
    collect_repairs,
)

__all__ = [
    "AttributeComposition",
    "BClean",
    "BCleanConfig",
    "COMPOSE_SEP",
    "CleaningResult",
    "CleaningStats",
    "CompensatoryScorer",
    "CooccurrenceIndex",
    "DetectionResult",
    "DomainPruner",
    "EditLog",
    "ErrorDetector",
    "InferenceMode",
    "NetworkEditSession",
    "Repair",
    "SubNetwork",
    "Suspicion",
    "apply_repairs",
    "clean_table",
    "collect_repairs",
    "detect_errors",
    "log_compensatory",
    "log_compensatory_pool",
    "partition",
    "partition_statistics",
    "reliability_flags",
    "should_skip_cell",
    "table_confidences",
    "tuple_confidence",
    "tuple_filter_score",
    "tuple_filter_scores_all_rows",
]
