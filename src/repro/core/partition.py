"""BN partitioning by Markov blanket (§6.1).

Each attribute A_j gets a sub-network
``A_joint = A_parent ∪ {A_j} ∪ A_child``; during inference only nodes
and edges inside the sub-network participate.  Nodes without incident
edges are *isolated*: their CPT contributes a constant (the paper models
it as uniform over the domain), so only the compensatory model can
distinguish their candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bayesnet.dag import DAG


@dataclass(frozen=True)
class SubNetwork:
    """The partition cell of one inferred node."""

    node: str
    parents: tuple[str, ...]
    children: tuple[str, ...]
    #: co-parents: other parents of this node's children — part of the
    #: Markov blanket, needed to evaluate the children's CPTs.
    coparents: tuple[str, ...] = field(default=())

    @property
    def joint(self) -> tuple[str, ...]:
        """A_joint of §6.1: parents ∪ {node} ∪ children."""
        return (*self.parents, self.node, *self.children)

    @property
    def blanket(self) -> tuple[str, ...]:
        """Full Markov blanket (parents, children, co-parents)."""
        return (*self.parents, *self.children, *self.coparents)

    @property
    def is_isolated(self) -> bool:
        """Whether the node has neither parents nor children."""
        return not self.parents and not self.children

    @property
    def size(self) -> int:
        """Number of nodes in the sub-network (including the centre)."""
        return 1 + len(self.parents) + len(self.children)


def partition(dag: DAG) -> dict[str, SubNetwork]:
    """Partition a BN into per-node sub-networks.

    Sub-networks may share nodes ("multiple sub-networks might intersect
    at a node A_k, but A_k ∈ A_joint^(i) does not affect other
    sub-networks") — the result is one :class:`SubNetwork` per node.
    """
    result: dict[str, SubNetwork] = {}
    for node in dag.nodes:
        parents = tuple(dag.parents(node))
        children = tuple(dag.children(node))
        coparents: list[str] = []
        seen = set(parents) | set(children) | {node}
        for child in children:
            for cp in dag.parents(child):
                if cp not in seen:
                    coparents.append(cp)
                    seen.add(cp)
        result[node] = SubNetwork(node, parents, children, tuple(coparents))
    return result


def partition_statistics(subnets: dict[str, SubNetwork]) -> dict[str, float]:
    """Summary numbers for reports: how much the partition shrinks work."""
    if not subnets:
        return {"n_nodes": 0, "n_isolated": 0, "mean_size": 0.0, "max_size": 0}
    sizes = [sn.size for sn in subnets.values()]
    return {
        "n_nodes": len(subnets),
        "n_isolated": sum(1 for sn in subnets.values() if sn.is_isolated),
        "mean_size": sum(sizes) / len(sizes),
        "max_size": max(sizes),
    }
