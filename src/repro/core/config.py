"""Configuration of the BClean engine.

Defaults follow §7.1 ("Parameters"): λ = 1, β = 2, τ = 0.5.  The variant
selection (basic / PI / PIP / -UC) maps onto :class:`InferenceMode` and
``use_ucs`` exactly as the paper's Table 4 rows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.bayesnet.structure.fdx import FDXConfig
from repro.errors import CleaningError


class InferenceMode(enum.Enum):
    """Which inference path the engine uses.

    BASIC
        Full-joint scoring: every candidate re-evaluates all m CPT
        factors (the unoptimised *BClean* row of Table 4/7).
    PARTITIONED
        Markov-blanket scoring only (*BCleanPI*).
    PARTITIONED_PRUNED
        Markov-blanket scoring plus tuple pruning (pre-detection) and
        TF-IDF domain pruning (*BCleanPIP*).
    """

    BASIC = "basic"
    PARTITIONED = "pi"
    PARTITIONED_PRUNED = "pip"


@dataclass
class BCleanConfig:
    """All knobs of the BClean engine.

    Attributes
    ----------
    lam:
        λ of Eq. 3 — penalty weight of UC-violating values inside the
        tuple confidence.
    beta:
        β of Algorithm 2 — penalty applied to pair counts contributed by
        low-confidence tuples.
    tau:
        τ — confidence threshold separating reliable from unreliable
        tuples.
    tau_clean:
        Threshold of the tuple-pruning filter (§6.2); cells whose
        ``Filter(T, A_i)`` is at least this value are skipped in
        PARTITIONED_PRUNED mode.
    frequency_weight:
        Weight of the value-frequency term inside the compensatory score
        (§3 lists value frequency alongside pairwise correlation).
        Defaults to 0: raw frequency lets majority values overwrite
        rare-but-valid cells on attributes with no relational signal;
        the co-occurrence sums already encode frequency where it is
        actually evidence.
    domain_prune_top_k:
        Number of candidates kept by TF-IDF domain pruning.
    candidate_cap:
        Hard cap on candidate values per cell (most frequent first);
        ``None`` disables the cap.  Applies to all modes — the paper's
        Soccer run shows why unbounded domains are intractable.
    mode:
        Inference path (see :class:`InferenceMode`).
    use_ucs:
        ``False`` gives the *BClean-UC* variant: constraints are neither
        enforced on candidates nor used in the confidence score.
    use_compensatory:
        Ablation switch for the compensatory scoring model (§5).
    comp_smoothing:
        Pseudo-count of the compensatory log-mapping, in the corr's
        conditional-lift units (probability scale).  Competitions whose
        association evidence is below this level contribute ~nothing;
        strong lifts (FD partners approach 1.0) dominate.
    comp_weight:
        Multiplier on the compensatory log-term — how strongly the
        correlation evidence can override the BN term (the §5
        error-amplification correction).
    repair_margin:
        A candidate must beat the incumbent by this much (log-space) to
        trigger a repair — near-ties keep the observed value.
    unsupported_margin:
        The (smaller) margin applied when the incumbent has *no*
        independent co-occurrence support.  Nonzero so that noise-level
        score differences cannot flip near-unique values, small so that
        genuinely evidenced repairs still fire.
    uc_violation_penalty:
        Log-space penalty on an incumbent that violates its UCs ("P[g]
        is set to 0 prior to inference", §7.3.1 — violating values
        should lose to any valid candidate).
    min_fill_support:
        A *forced* repair (NULL or UC-violating incumbent) only happens
        when the winning candidate co-occurs with the tuple context in
        at least this many tuples — guessing without evidence trades
        precision for nothing.
    use_columnar:
        Route cleaning through the columnar fast path: integer-coded
        columns, vectorised co-occurrence probes, batched blanket
        scoring, and one deduplicated competition per distinct
        (attribute, row signature).  Foreign tables sharing the fitted
        schema ride the fast path too, through incremental encoding of
        their unseen values.  Repair decisions are identical to the
        scalar path, which is retained as the reference oracle
        (``use_columnar=False``) and used automatically whenever the
        fast path cannot apply (merged-node compositions, a fitted
        table mutated since ``fit()``, or a foreign table with a
        different schema).
    executor:
        Worker backend of the sharded execution subsystem:
        ``"serial"`` (default — in-process), ``"thread"``
        (``ThreadPoolExecutor``; shares statistics by reference but
        runs under the GIL), ``"process"``
        (``ProcessPoolExecutor``; ships a read-only snapshot to each
        worker once per clean — large numpy arrays travel through one
        ``multiprocessing.shared_memory`` block when the host supports
        it, pickle otherwise — true multi-core scaling), or ``"auto"``
        (pick serial vs process per clean from the shard planner's
        total-cost estimate, see
        :func:`repro.exec.planner.resolve_executor`).  All backends
        produce byte-identical results.
    n_jobs:
        Worker count for the parallel executors; ``None`` uses the
        machine's CPU count.
    shard_size:
        Fixed number of competitions per shard; ``None`` (default)
        lets the planner cut cost-balanced shards from the estimated
        candidate-pool sizes.
    chunk_rows:
        Row-block size of the staged streaming clean
        (:mod:`repro.exec.stream`).  ``None`` (default) cleans the
        whole table as a single chunk; a positive value routes the
        columnar clean through the chunked pipeline — ingest → encode →
        detect → plan → execute → merge → emit — one row block at a
        time, producing repairs byte-identical to the whole-table run
        at every chunk size.  The scalar oracle path ignores this knob
        (it is in-memory by construction).
    competition_cache:
        Entry bound of the session-scoped cross-chunk competition cache
        (:mod:`repro.exec.cache`), active on chunked streams only: the
        bounded-LRU memo of competition outcomes keyed by (attribute,
        deduplicated row signature, tuple weight) that lets a signature
        recurring across row blocks skip its re-run — the plan stage
        answers cache hits driver-side with zero dispatch.  ``None``
        (default) auto-sizes the bound from the first chunk's
        extrapolated competition count (see
        :func:`repro.exec.planner.default_cache_entries`); a positive
        value bounds the entries explicitly; ``0`` disables the cache.
        Results are byte-identical at every setting (a hit replays what
        a re-run would compute; eviction only converts hits back into
        identical recomputations) — only wall-clock and the
        ``cache_hits`` / ``cache_misses`` / ``cache_evictions``
        diagnostics differ.
    persistent_pool:
        Keep one execution session per ``clean()`` (and per ``fit()``):
        the worker pool is created once, the static fit-statistics
        snapshot is shipped once through the pool initializer, and
        every chunk (or fit job) dispatches only its per-chunk payload
        to the already-warm workers — restoring the paper's
        amortisation of fixed costs over the whole table.  ``False``
        (the ``--no-persistent-pool`` escape hatch) tears the pool and
        snapshot down after every dispatch — the pre-session behaviour,
        for hosts where long-lived worker processes are unwelcome.
        Results are byte-identical either way; only wall-clock and the
        ``pools_created`` / ``snapshot_ships`` diagnostics differ.
    fit_executor:
        Worker backend for the sharded *fit* work (same choices and
        trade-offs as ``executor``, including ``"auto"``): the
        per-attribute-pair
        co-occurrence builds and per-node CPT count passes — independent
        by construction — are planned and dispatched through the
        :mod:`repro.exec` subsystem.  Only applies on the columnar fit
        path (``use_columnar`` with the singleton composition); the
        fitted statistics are byte-identical for every backend.
        The structure search is sharded through the same backends too:
        MMHC's per-target MMPC scans and each hill-climb sweep's family
        scores dispatch as fit jobs (see :mod:`repro.exec.fit`), with
        bit-identical DAGs and scores on every backend.
    fit_chunk_rows:
        Row-block size of the *streaming* fit
        (:mod:`repro.exec.fit_stream`).  ``None`` (default) fits from
        the whole table in one pass; a positive value folds the table
        (or the CSV of :meth:`~repro.core.engine.BClean.fit_csv`) into
        mergeable sufficient statistics one row block at a time —
        DAG, CPTs, and downstream repairs byte-identical to the
        whole-table fit at every block size.
    fit_reservoir_rows:
        Cap of the row-level reservoir sample a streamed ``fit_csv``
        keeps for the structure learner's row-order needs (FDX sorts
        raw tuples); ``0`` disables it.  Streams no longer than the cap
        are reproduced exactly; ``fit(table, chunk_rows=...)`` always
        profiles the real table and ignores this knob.
    smoothing_alpha:
        Laplace pseudo-count of the CPTs.
    fdx:
        Configuration of the FDX structure learner.
    structure:
        Structure learner name: "fdx", "hillclimb", "chowliu", or "pc".
    max_candidates_basic:
        Extra cap used in BASIC mode (full-joint scoring is m× more
        expensive per candidate).
    profile:
        Collect the observability tracer's aggregated stage/shard
        breakdown into ``diagnostics["profile"]`` (see
        :mod:`repro.obs`).  Off by default: the disabled tracer is a
        shared no-op singleton, so an unprofiled run pays nothing and
        its dispatch payloads are byte-identical to a build without
        tracing.  Repairs are byte-identical either way.
    trace:
        Path to write a Chrome trace-event JSON file of the run (open
        it at https://ui.perfetto.dev): the seven streaming stages per
        chunk, per-shard worker spans, session lifecycle events, and
        fit phases.  ``None`` (default) writes nothing.  Implies the
        tracer is active (and ``diagnostics["profile"]`` is reported)
        for the traced call.
    """

    lam: float = 1.0
    beta: float = 2.0
    tau: float = 0.5
    tau_clean: float = 0.35
    frequency_weight: float = 0.0
    domain_prune_top_k: int = 24
    candidate_cap: int | None = 120
    mode: InferenceMode = InferenceMode.PARTITIONED
    use_ucs: bool = True
    use_compensatory: bool = True
    comp_smoothing: float = 0.05
    comp_weight: float = 3.0
    repair_margin: float = 2.0
    unsupported_margin: float = 0.5
    uc_violation_penalty: float = 100.0
    min_fill_support: int = 1
    use_columnar: bool = True
    executor: str = "serial"
    n_jobs: int | None = None
    shard_size: int | None = None
    chunk_rows: int | None = None
    competition_cache: int | None = None
    persistent_pool: bool = True
    fit_executor: str = "serial"
    fit_chunk_rows: int | None = None
    fit_reservoir_rows: int = 10_000
    smoothing_alpha: float = 0.1
    fdx: FDXConfig = field(default_factory=FDXConfig)
    structure: str = "fdx"
    max_candidates_basic: int = 40
    profile: bool = False
    trace: str | None = None

    def __post_init__(self) -> None:
        if self.lam < 0:
            raise CleaningError(f"lambda must be non-negative, got {self.lam}")
        if self.beta < 0:
            raise CleaningError(f"beta must be non-negative, got {self.beta}")
        if not 0.0 <= self.tau <= 1.0:
            raise CleaningError(f"tau must be in [0, 1], got {self.tau}")
        if self.executor not in ("serial", "thread", "process", "auto"):
            raise CleaningError(
                f"executor must be 'serial', 'thread', 'process', or "
                f"'auto', got {self.executor!r}"
            )
        if self.fit_executor not in ("serial", "thread", "process", "auto"):
            raise CleaningError(
                f"fit_executor must be 'serial', 'thread', 'process', or "
                f"'auto', got {self.fit_executor!r}"
            )
        if self.n_jobs is not None and self.n_jobs < 1:
            raise CleaningError(f"n_jobs must be positive, got {self.n_jobs}")
        if self.shard_size is not None and self.shard_size < 1:
            raise CleaningError(
                f"shard_size must be positive, got {self.shard_size}"
            )
        if self.chunk_rows is not None and self.chunk_rows < 1:
            raise CleaningError(
                f"chunk_rows must be positive, got {self.chunk_rows}"
            )
        if self.fit_chunk_rows is not None and self.fit_chunk_rows < 1:
            raise CleaningError(
                f"fit_chunk_rows must be positive, got {self.fit_chunk_rows}"
            )
        if self.fit_reservoir_rows < 0:
            raise CleaningError(
                f"fit_reservoir_rows must be non-negative, "
                f"got {self.fit_reservoir_rows}"
            )
        if self.competition_cache is not None and self.competition_cache < 0:
            raise CleaningError(
                f"competition_cache must be non-negative (0 disables), "
                f"got {self.competition_cache}"
            )
        if self.trace is not None and not str(self.trace):
            raise CleaningError("trace must be a non-empty path or None")
        if isinstance(self.mode, str):
            self.mode = InferenceMode(self.mode)

    def effective_candidate_cap(self) -> int | None:
        """The candidate cap actually applied in the current mode: BASIC
        folds in ``max_candidates_basic`` (full-joint scoring is m×
        more expensive per candidate).  Shared by pool construction and
        the shard planner's cost estimate so they can never diverge."""
        cap = self.candidate_cap
        if self.mode != InferenceMode.BASIC:
            return cap
        if cap is None:
            return self.max_candidates_basic
        return min(cap, self.max_candidates_basic)

    @classmethod
    def basic(cls, **kwargs) -> "BCleanConfig":
        """The unoptimised *BClean* configuration of Table 4."""
        return cls(mode=InferenceMode.BASIC, **kwargs)

    @classmethod
    def pi(cls, **kwargs) -> "BCleanConfig":
        """The *BCleanPI* configuration (partitioned inference)."""
        return cls(mode=InferenceMode.PARTITIONED, **kwargs)

    @classmethod
    def pip(cls, **kwargs) -> "BCleanConfig":
        """The *BCleanPIP* configuration (partition + pruning)."""
        return cls(mode=InferenceMode.PARTITIONED_PRUNED, **kwargs)

    @classmethod
    def without_ucs(cls, **kwargs) -> "BCleanConfig":
        """The *BClean-UC* configuration (no user constraints)."""
        return cls(use_ucs=False, mode=InferenceMode.PARTITIONED, **kwargs)
