"""User interaction with the constructed network (§4, Figures 2(f)–(h)).

The automatically built skeleton may be noisy; BClean lets users view
the network, add or remove edges, and merge nodes.  Every edit records
which nodes were touched so that only those CPTs are re-estimated
("for efficiency, we only recalculate the CPTs for the attributes
involved in the modification").

:class:`NetworkEditSession` wraps an engine, stages edits on a copy of
the DAG/composition, and applies them atomically with :meth:`commit`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bayesnet.dag import DAG
from repro.core.composition import AttributeComposition
from repro.core.engine import BClean
from repro.errors import CleaningError, GraphError


@dataclass
class EditLog:
    """What a session changed (shown to the user, used for refitting)."""

    added_edges: list[tuple[str, str]] = field(default_factory=list)
    removed_edges: list[tuple[str, str]] = field(default_factory=list)
    merges: list[tuple[tuple[str, ...], str]] = field(default_factory=list)

    @property
    def touched_nodes(self) -> set[str]:
        """Nodes whose CPTs must be re-estimated."""
        touched: set[str] = set()
        for u, v in self.added_edges + self.removed_edges:
            touched.add(v)  # the child's CPT changes when parents change
        for _, merged in self.merges:
            touched.add(merged)
        return touched

    @property
    def is_empty(self) -> bool:
        """Whether no edit was made."""
        return not (self.added_edges or self.removed_edges or self.merges)


class NetworkEditSession:
    """Staged, atomic edits to an engine's network."""

    def __init__(self, engine: BClean):
        if engine.dag is None or engine.composition is None:
            raise CleaningError("engine must be fitted before editing its network")
        self.engine = engine
        self.dag = engine.dag.copy()
        self.composition = _copy_composition(engine.composition)
        self.log = EditLog()

    # -- viewing ------------------------------------------------------------------

    def view(self) -> str:
        """Human-readable rendering of the staged network."""
        return self.dag.pretty()

    def edges(self) -> list[tuple[str, str, float]]:
        """Staged edge list."""
        return self.dag.edges()

    # -- edits ---------------------------------------------------------------------

    def add_edge(self, u: str, v: str, weight: float = 1.0) -> "NetworkEditSession":
        """Stage adding edge ``u → v`` (chainable)."""
        self.dag.add_edge(u, v, weight)
        self.log.added_edges.append((u, v))
        return self

    def remove_edge(self, u: str, v: str) -> "NetworkEditSession":
        """Stage removing edge ``u → v`` (chainable)."""
        self.dag.remove_edge(u, v)
        self.log.removed_edges.append((u, v))
        return self

    def reverse_edge(self, u: str, v: str) -> "NetworkEditSession":
        """Stage replacing ``u → v`` with ``v → u`` (chainable)."""
        weight = self.dag.edge_weight(u, v)
        self.dag.remove_edge(u, v)
        self.dag.add_edge(v, u, weight)
        self.log.removed_edges.append((u, v))
        self.log.added_edges.append((v, u))
        return self

    def merge_nodes(
        self, nodes: list[str], name: str | None = None
    ) -> "NetworkEditSession":
        """Stage merging ``nodes`` into one super-node.

        Edge handling follows §4: edges shared by *all* merged nodes
        with some outside node A_j collapse into a single edge; edges
        held by only some of the merged nodes are dropped.
        """
        for n in nodes:
            if n not in self.dag:
                raise GraphError(f"unknown node {n!r}")
        merged_name = self.composition.merge(nodes, name)

        outside = [n for n in self.dag.nodes if n not in nodes]
        shared_in: list[tuple[str, float]] = []
        shared_out: list[tuple[str, float]] = []
        for other in outside:
            if all(self.dag.has_edge(other, n) for n in nodes):
                weight = max(self.dag.edge_weight(other, n) for n in nodes)
                shared_in.append((other, weight))
            if all(self.dag.has_edge(n, other) for n in nodes):
                weight = max(self.dag.edge_weight(n, other) for n in nodes)
                shared_out.append((other, weight))

        for n in nodes:
            self.dag.remove_node(n)
        self.dag.add_node(merged_name)
        for other, weight in shared_in:
            self.dag.add_edge(other, merged_name, weight)
        for other, weight in shared_out:
            self.dag.add_edge(merged_name, other, weight)

        self.log.merges.append((tuple(nodes), merged_name))
        return self

    # -- apply ---------------------------------------------------------------------

    def commit(self) -> EditLog:
        """Apply the staged edits to the engine and refit touched CPTs."""
        if self.log.merges:
            # A merge changes the node table itself: refit from scratch
            # with the new composition.
            self.engine.fit(
                self.engine.table, dag=self.dag, composition=self.composition
            )
        elif not self.log.is_empty:
            self.engine.dag = self.dag
            self.engine.set_network(
                self.dag, refit_nodes=sorted(self.log.touched_nodes)
            )
        return self.log


def _copy_composition(comp: AttributeComposition) -> AttributeComposition:
    """Deep copy of a composition (merges included)."""
    out = AttributeComposition(comp.attributes)
    for node in comp.nodes:
        members = comp.members(node)
        if len(members) > 1:
            out.merge(list(members), node)
    return out
