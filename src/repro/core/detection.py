"""Standalone error detection from the engine's pre-inference signals.

§6.2 is careful to distinguish tuple pruning from "standard error
detection", but the signals BClean computes before inference *are* an
error detector, and a detect-only mode is what many downstream users
want (triage before repair, or feeding a human review queue).  This
module exposes them as a public API:

- **UC violations** (§2) — the observed value fails a user constraint;
- **weak tuple support** (§6.2) — ``Filter(T, A_i)`` below ``τ_clean``:
  the value rarely co-occurs with the rest of its tuple;
- **format rarity** — the value's character-class mask is rare in its
  column (the same signal the Raha baseline votes with);
- **missingness** — NULL cells, reported as their own signal so callers
  can treat imputation separately from correction.

Each signal votes per cell; cells with at least ``min_votes`` votes are
flagged.  The result keeps per-cell signal breakdowns so a UI (or a
test) can explain *why* a cell is suspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.constraints.registry import UCRegistry
from repro.core.cooccurrence import CooccurrenceIndex
from repro.core.pruning import tuple_filter_score
from repro.dataset.table import Cell, Table, is_null
from repro.errors import CleaningError
from repro.text.patterns import PatternProfile

#: signal names, in vote order
SIGNALS = ("uc", "support", "pattern", "missing")


@dataclass(frozen=True)
class Suspicion:
    """One flagged cell with its triggering signals."""

    row: int
    attribute: str
    value: Cell
    signals: tuple[str, ...]

    @property
    def n_votes(self) -> int:
        """Number of signals that fired."""
        return len(self.signals)

    def __str__(self) -> str:
        return (
            f"[{self.row}].{self.attribute} = {self.value!r} "
            f"({', '.join(self.signals)})"
        )


@dataclass
class DetectionResult:
    """All flagged cells plus per-signal counts."""

    suspicions: list[Suspicion]
    votes_by_signal: dict[str, int] = field(default_factory=dict)
    cells_total: int = 0

    @property
    def cells(self) -> set[tuple[int, str]]:
        """Flagged (row, attribute) pairs — feeds ``detection_quality``."""
        return {(s.row, s.attribute) for s in self.suspicions}

    def for_attribute(self, attribute: str) -> list[Suspicion]:
        """Flagged cells of one column."""
        return [s for s in self.suspicions if s.attribute == attribute]

    def __len__(self) -> int:
        return len(self.suspicions)

    def __iter__(self) -> Iterator[Suspicion]:
        return iter(self.suspicions)


class ErrorDetector:
    """Vote-based detector over UC, support, pattern, and missing signals.

    Parameters
    ----------
    constraints:
        UC registry for the ``uc`` signal (omit to disable it).
    tau_clean:
        Support threshold of §6.2: cells whose ``Filter`` score is below
        this vote ``support``.  The default (0.1) is deliberately lower
        than the engine's pruning threshold — pruning errs toward
        inspecting cells, a detector errs toward precision.
    rarity_threshold:
        A value's compressed mask must be rarer than this (fraction of
        the column with a *different* mask) to vote ``pattern``.
    min_votes:
        Minimum number of distinct signals required to flag a cell.
    """

    def __init__(
        self,
        constraints: UCRegistry | None = None,
        tau_clean: float = 0.1,
        rarity_threshold: float = 0.95,
        min_votes: int = 1,
    ):
        if not 0.0 <= tau_clean <= 1.0:
            raise CleaningError(f"tau_clean must be in [0, 1], got {tau_clean}")
        if not 0.0 <= rarity_threshold <= 1.0:
            raise CleaningError(
                f"rarity_threshold must be in [0, 1], got {rarity_threshold}"
            )
        if min_votes < 1:
            raise CleaningError(f"min_votes must be >= 1, got {min_votes}")
        self.constraints = constraints
        self.tau_clean = tau_clean
        self.rarity_threshold = rarity_threshold
        self.min_votes = min_votes
        self._table: Table | None = None
        self._cooc: CooccurrenceIndex | None = None
        self._profiles: dict[str, PatternProfile] = {}

    def fit(self, table: Table) -> "ErrorDetector":
        """Build the co-occurrence index and per-column mask profiles."""
        self._table = table
        self._cooc = CooccurrenceIndex(table, None)
        self._profiles = {
            attr: PatternProfile(table.column(attr))
            for attr in table.schema.names
        }
        return self

    def detect(self, table: Table | None = None) -> DetectionResult:
        """Flag suspect cells of ``table`` (defaults to the fitted one)."""
        if self._table is None or self._cooc is None:
            raise CleaningError("fit() must be called before detect()")
        table = table if table is not None else self._table
        names = table.schema.names
        suspicions: list[Suspicion] = []
        votes_by_signal = {s: 0 for s in SIGNALS}
        for i in range(table.n_rows):
            row = {a: table.columns[j][i] for j, a in enumerate(names)}
            for attr in names:
                signals = tuple(self._cell_signals(row, attr))
                for s in signals:
                    votes_by_signal[s] += 1
                if len(signals) >= self.min_votes:
                    suspicions.append(Suspicion(i, attr, row[attr], signals))
        return DetectionResult(
            suspicions=suspicions,
            votes_by_signal=votes_by_signal,
            cells_total=table.n_rows * table.n_cols,
        )

    # -- signals -----------------------------------------------------------------

    def _cell_signals(
        self, row: Mapping[str, Cell], attribute: str
    ) -> Sequence[str]:
        value = row[attribute]
        signals: list[str] = []
        if is_null(value):
            # NULL short-circuits: the other signals are meaningless on a
            # missing value, and 'missing' is its own category.
            return ("missing",)
        if self.constraints is not None and not self.constraints.check_cell(
            attribute, value
        ):
            signals.append("uc")
        if tuple_filter_score(self._cooc, row, attribute) < self.tau_clean:
            signals.append("support")
        profile = self._profiles.get(attribute)
        if (
            profile is not None
            and profile.rarity(value) > self.rarity_threshold
        ):
            signals.append("pattern")
        return signals


def detect_errors(
    table: Table,
    constraints: UCRegistry | None = None,
    tau_clean: float = 0.1,
    min_votes: int = 1,
) -> DetectionResult:
    """One-shot convenience wrapper: fit + detect in a single call."""
    detector = ErrorDetector(
        constraints, tau_clean=tau_clean, min_votes=min_votes
    )
    detector.fit(table)
    return detector.detect()
