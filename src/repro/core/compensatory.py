"""The compensatory scoring model (§5, Eq. 2).

``Score_corr(c, t, A_j) = Σ_{A_k ≠ A_j} corr(c, t[A_k], A_j, A_k)``

plus a value-frequency term (§3 lists both "value frequency" and
"pairwise attribute correlation" as the ingredients of the compensatory
model).  The raw score is a sum of bounded correlations and can be
negative through the β penalty; since "the relative order is
significant, not the scores themselves" (§5), the engine maps scores of
one candidate competition onto (0, 1] before taking the logarithm
Algorithm 1 requires (``log(CS[A_j](c))``).

Two evaluation paths share the same arithmetic: :meth:`~CompensatoryScorer.score`
walks one candidate at a time (the scalar reference path) and
:meth:`~CompensatoryScorer.score_pool` scores a whole coded candidate
pool per context attribute through the vectorised
:meth:`~repro.core.cooccurrence.CooccurrenceIndex.corr_for` kernel.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.core.cooccurrence import CooccurrenceIndex
from repro.dataset.table import Cell


class CompensatoryScorer:
    """Computes Score_corr against a fitted co-occurrence index."""

    def __init__(
        self,
        index: CooccurrenceIndex,
        frequency_weight: float = 0.0,
    ):
        self.index = index
        self.frequency_weight = frequency_weight

    def score(
        self,
        candidate: Cell,
        row: Mapping[str, Cell],
        attribute: str,
        context_attributes: Sequence[str] | None = None,
        is_incumbent: bool = False,
        self_weight: float = 1.0,
    ) -> float:
        """Raw compensatory score of ``candidate`` for ``attribute``.

        Parameters
        ----------
        candidate:
            Candidate repair value c.
        row:
            The observed tuple (evidence t) as attribute → value.
        attribute:
            The attribute A_j being repaired.
        context_attributes:
            Which other attributes contribute correlation terms (Eq. 2
            sums over all of them).
        is_incumbent:
            True when the candidate *is* the observed cell value: its
            own row is then excluded from the correlation counts so
            self-co-occurrence does not masquerade as evidence.
        self_weight:
            The confidence weight the scored tuple contributed to
            Algorithm 2 (+1 when reliable, −β when not) — what the
            exclusion must remove.
        """
        if context_attributes is None:
            context_attributes = [a for a in self.index.names if a != attribute]
        total = 0.0
        for attr_k in context_attributes:
            if attr_k == attribute:
                continue
            total += self.index.corr(
                attribute, candidate, attr_k, row[attr_k],
                exclude_self=is_incumbent,
                self_weight=self_weight,
            )
        if self.frequency_weight and self.index.n_rows:
            freq = self.index.count(attribute, candidate) / self.index.n_rows
            total += self.frequency_weight * freq
        return total

    def score_pool(
        self,
        candidate_codes: np.ndarray,
        row_codes: np.ndarray,
        attribute: str,
        context_columns: Sequence[int],
        incumbent_index: int | None = None,
        self_weight: float = 1.0,
    ) -> np.ndarray:
        """Raw compensatory scores of a whole coded candidate pool.

        ``context_columns`` are schema positions of the context
        attributes, in the same order the scalar path sums them (so the
        float accumulation matches term for term).  ``incumbent_index``
        marks the pool entry that is the observed cell value — the only
        one whose own-row contribution is excluded.
        """
        index = self.index
        names = index.names
        total = np.zeros(len(candidate_codes), dtype=np.float64)
        for column in context_columns:
            total += index.corr_for(
                attribute,
                candidate_codes,
                names[column],
                int(row_codes[column]),
                exclude_index=incumbent_index,
                self_weight=self_weight,
            )
        if self.frequency_weight and index.n_rows:
            # counts_for (not a raw counts_array slice): the incumbent
            # entry may carry an incrementally minted code, which counts 0.
            freq = index.counts_for(attribute, candidate_codes) / index.n_rows
            total += self.frequency_weight * freq
        return total


def log_compensatory(
    scores: Mapping[Cell, float], smoothing: float = 0.05
) -> dict[Cell, float]:
    """Map raw scores of one candidate competition to log-space.

    Raw Score_corr values act as pseudo-counts: each candidate gets
    ``CS(c) = (max(s(c), 0) + smoothing) / (max_s + smoothing)`` and the
    log of that ratio is Algorithm 1's ``log(CS[A_j](c))`` term.

    The *absolute* smoothing constant is the load-bearing design choice:
    when the whole competition's scores are tiny (no real co-occurrence
    evidence, e.g. a near-unique attribute), all ratios approach 1 and
    the term contributes nothing — the BN term decides.  When scores are
    large (strong co-occurrence signal), the ratios separate by orders
    of magnitude and the compensatory term dominates, which is exactly
    the error-amplification correction of §5, Example 2.  A *relative*
    rescaling would amplify meaningless near-ties into repair-triggering
    gaps.
    """
    if not scores:
        return {}
    if smoothing <= 0:
        raise ValueError(f"smoothing must be positive, got {smoothing}")
    clipped = {c: max(s, 0.0) for c, s in scores.items()}
    peak = max(clipped.values())
    denom = peak + smoothing
    return {
        c: math.log((s + smoothing) / denom) for c, s in clipped.items()
    }


def log_compensatory_pool(
    scores: np.ndarray, smoothing: float = 0.05
) -> np.ndarray:
    """Vectorised :func:`log_compensatory` over one competition's pool."""
    if smoothing <= 0:
        raise ValueError(f"smoothing must be positive, got {smoothing}")
    if len(scores) == 0:
        return np.zeros(0, dtype=np.float64)
    clipped = np.maximum(scores, 0.0)
    denom = clipped.max() + smoothing
    return np.log((clipped + smoothing) / denom)
