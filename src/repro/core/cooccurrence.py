"""Co-occurrence statistics (Algorithm 2 of the paper).

One pass over the table builds, for every ordered attribute pair
``(A_i, A_k)``, a dictionary of value-pair statistics:

- ``raw``: plain co-occurrence counts (used by the tuple-pruning filter
  and TF-IDF domain pruning, §6.2),
- ``weighted``: confidence-weighted counts where a reliable tuple
  (conf ≥ τ) contributes +1 and an unreliable one −β (the ``corr``
  accumulator of Algorithm 2).

Querying ``corr(c, e, A_j, A_k)`` divides by |D| as in the paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.bayesnet.cpt import cell_key
from repro.dataset.table import Cell, Table


class PairStats:
    """Raw and confidence-weighted counts for one ordered attribute pair."""

    __slots__ = ("raw", "weighted")

    def __init__(self) -> None:
        self.raw: dict[tuple, int] = {}
        self.weighted: dict[tuple, float] = {}

    def add(self, key: tuple, weight: float) -> None:
        self.raw[key] = self.raw.get(key, 0) + 1
        self.weighted[key] = self.weighted.get(key, 0.0) + weight


class CooccurrenceIndex:
    """All pairwise value co-occurrence statistics of a table.

    Parameters
    ----------
    table:
        Observed (dirty) dataset D.
    confidences:
        Per-tuple confidence values (Eq. 3).  ``None`` treats every
        tuple as fully reliable — the BClean-UC setting, where no
        constraints exist to down-weight anything.
    tau:
        Reliability threshold of Algorithm 2.
    beta:
        Penalty weight of unreliable tuples.
    """

    def __init__(
        self,
        table: Table,
        confidences: Sequence[float] | None = None,
        tau: float = 0.5,
        beta: float = 2.0,
    ):
        self.n_rows = table.n_rows
        self.names = table.schema.names
        m = len(self.names)
        self._pair: dict[tuple[str, str], PairStats] = {}
        self._inverted_cache: dict[tuple[str, str], dict[object, list]] = {}
        self._value_counts: dict[str, dict[object, int]] = {
            a: {} for a in self.names
        }

        keyed_columns = [
            [cell_key(v) for v in table.column(a)] for a in self.names
        ]
        for j, a in enumerate(self.names):
            counts = self._value_counts[a]
            for v in keyed_columns[j]:
                counts[v] = counts.get(v, 0) + 1

        for j in range(m):
            for k in range(m):
                if j != k:
                    self._pair[(self.names[j], self.names[k])] = PairStats()

        for i in range(self.n_rows):
            if confidences is None:
                weight = 1.0
            else:
                weight = 1.0 if confidences[i] >= tau else -beta
            row_keys = [keyed_columns[j][i] for j in range(m)]
            for j in range(m):
                vj = row_keys[j]
                for k in range(m):
                    if j == k:
                        continue
                    self._pair[(self.names[j], self.names[k])].add(
                        (vj, row_keys[k]), weight
                    )

    # -- queries ------------------------------------------------------------------

    def count(self, attribute: str, value: Cell) -> int:
        """Marginal count of ``value`` in ``attribute``."""
        return self._value_counts[attribute].get(cell_key(value), 0)

    def pair_count(
        self, attr_a: str, value_a: Cell, attr_b: str, value_b: Cell
    ) -> int:
        """Raw co-occurrence count of ``(value_a, value_b)``."""
        stats = self._pair.get((attr_a, attr_b))
        if stats is None:
            return 0
        return stats.raw.get((cell_key(value_a), cell_key(value_b)), 0)

    #: z-multiplier of the lower confidence bound in :meth:`corr` — how
    #: strongly small-sample proportions are discounted.
    LCB_Z = 1.0

    def corr(
        self,
        attr_a: str,
        value_a: Cell,
        attr_b: str,
        value_b: Cell,
        exclude_self: bool = False,
    ) -> float:
        """Confidence-weighted conditional lift of ``value_a`` given the
        context value ``value_b``, discounted by sampling uncertainty.

        The paper's raw form, ``count(c, e)/|D|`` with β-penalised
        low-confidence tuples, is count-scaled: summed over attributes
        it conflates *popularity* with *association* (a frequent value
        co-occurs with everything).  We therefore estimate the
        conditional proportion ``p̂ = weighted_count(c, e)/count(e)``
        and report its lower confidence bound above c's base rate:

        ``corr(c, e) = max(0, p̂ − z·sd(p̂) − count(c)/|D|)``

        Three protections, each load-bearing:

        - the **LCB** (``− z·sd``) discounts sampling noise: a single
          co-occurrence in a five-row context gives p̂ = 0.2 with
          sd ≈ 0.27 — pure coincidence, clamped away — while an FD
          partner (p̂ ≈ 1 across its context group) stays strong even in
          small groups;
        - the **base rate** subtraction removes popularity: a frequent
          value co-occurs with every context at roughly its marginal
          frequency, which is no evidence of association;
        - the **clamp at zero** prevents the subtraction from biasing
          the *sum* against frequent values (every generic context would
          otherwise contribute negative mass proportional to the value's
          own frequency).

        ``exclude_self`` removes the scored tuple's own contribution —
        an incumbent value trivially co-occurs with its own row, which
        would otherwise grant it certainty-level support exactly on the
        unique contexts that provide no real evidence.
        """
        stats = self._pair.get((attr_a, attr_b))
        if stats is None or self.n_rows == 0:
            return 0.0
        ka, kb = cell_key(value_a), cell_key(value_b)
        weighted = stats.weighted.get((ka, kb), 0.0)
        n_context = self._value_counts[attr_b].get(kb, 0)
        n_value = self._value_counts[attr_a].get(ka, 0)
        if exclude_self:
            weighted -= 1.0
            n_context -= 1
            n_value -= 1
        if n_context <= 0 or weighted <= 0.0:
            return 0.0
        base_rate = max(0, n_value) / self.n_rows
        p_hat = weighted / n_context
        capped = min(p_hat, 1.0)
        variance = (capped * (1.0 - capped) + 1.0 / n_context) / n_context
        return max(0.0, p_hat - self.LCB_Z * variance ** 0.5 - base_rate)

    def cooccurring_values(self, attr_a: str, attr_b: str, value_b: Cell) -> list:
        """All values of ``attr_a`` that co-occur with ``value_b`` in
        ``attr_b`` — the generator behind TF-IDF context counting.

        Backed by a lazily built inverted index per attribute pair so
        repeated queries are O(result) instead of O(all pairs).  NULLs
        are never returned — NULL is not a repair candidate.
        """
        from repro.bayesnet.cpt import NULL_KEY

        stats = self._pair.get((attr_a, attr_b))
        if stats is None:
            return []
        index = self._inverted_cache.get((attr_a, attr_b))
        if index is None:
            index = {}
            for ka, kb in stats.raw:
                if ka != NULL_KEY:
                    index.setdefault(kb, []).append(ka)
            self._inverted_cache[(attr_a, attr_b)] = index
        return index.get(cell_key(value_b), [])

    def n_pairs_stored(self) -> int:
        """Total number of distinct value pairs stored (diagnostics)."""
        return sum(len(p.raw) for p in self._pair.values())
