"""Co-occurrence statistics (Algorithm 2 of the paper), columnar.

One vectorised pass over the *integer-coded* table builds, for every
ordered attribute pair ``(A_i, A_k)``, sorted arrays of value-pair
statistics:

- ``raw``: plain co-occurrence counts (used by the tuple-pruning filter
  and TF-IDF domain pruning, §6.2),
- ``weighted``: confidence-weighted counts where a reliable tuple
  (conf ≥ τ) contributes +1 and an unreliable one −β (the ``corr``
  accumulator of Algorithm 2).

Each ordered pair's two value codes are fused into a single integer
(``code_a * card_b + code_b``); ``numpy.unique`` over the fused column
yields the distinct pairs, their raw counts, and the row of first
occurrence, and ``numpy.bincount`` accumulates the confidence weights.
Queries run as ``searchsorted`` probes over the sorted fused keys —
batched over whole candidate pools — and a CSR-style inverted index per
pair (candidate codes grouped by context code, in order of first
appearance) replaces the lazy dict cache behind
:meth:`CooccurrenceIndex.cooccurring_values`.

The original value-level API (``corr``, ``pair_count``,
``cooccurring_values``) is preserved on top of the arrays; value
arguments are interned through the shared
:class:`~repro.dataset.encoding.TableEncoding`.  Querying
``corr(c, e, A_j, A_k)`` divides by |D| as in the paper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dataset.encoding import NULL_CODE, UNSEEN_CODE, TableEncoding
from repro.dataset.table import Cell, Table


class PairArrays:
    """Sorted fused-key statistics of one ordered attribute pair."""

    __slots__ = (
        "card_b",
        "keys",
        "raw",
        "weighted",
        "first_row",
        "_csr",
        "_raw_dict",
        "_weighted_dict",
        "_values_cache",
        "count_profiles",
        "corr_profiles",
        "count_probes",
        "corr_probes",
    )

    def __init__(
        self,
        card_b: int,
        keys: np.ndarray,
        raw: np.ndarray,
        weighted: np.ndarray,
        first_row: np.ndarray,
    ):
        self.card_b = card_b
        self.keys = keys
        self.raw = raw
        self.weighted = weighted
        self.first_row = first_row
        self._csr: tuple[np.ndarray, np.ndarray] | None = None
        # Lazy dict views for single-pair probes: a dict get beats a
        # numpy scalar searchsorted by ~30×, and the scalar reference
        # path (plus the support checks of the columnar one) probes one
        # pair at a time.
        self._raw_dict: dict[int, int] | None = None
        self._weighted_dict: dict[int, float] | None = None
        self._values_cache: dict[int, list] | None = None
        # Dense per-context profiles (keyed by context code): one vector
        # over *all* codes of attribute a, turning every probe after
        # densification into a single fancy-index slice.  A context is
        # densified only once its probe tally exceeds what a *single*
        # competition can generate (one corr probe; up to two count
        # probes, pool strength + TF-IDF pruning) — so an id-like
        # context probed by exactly one row keeps taking direct
        # pool-sized probes, never a card_a-sized profile per distinct
        # value, and the caches stay O(repeated contexts).
        self.count_profiles: dict[int, np.ndarray] = {}
        self.corr_profiles: dict[int, np.ndarray] = {}
        self.count_probes: dict[int, int] = {}
        self.corr_probes: dict[int, int] = {}

    def raw_count(self, fused: int) -> int:
        """Raw count of one fused pair code (dict-backed probe)."""
        if self._raw_dict is None:
            self._raw_dict = dict(zip(self.keys.tolist(), self.raw.tolist()))
        return self._raw_dict.get(fused, 0)

    def weighted_count(self, fused: int) -> float:
        """Weighted count of one fused pair code (dict-backed probe)."""
        if self._weighted_dict is None:
            self._weighted_dict = dict(
                zip(self.keys.tolist(), self.weighted.tolist())
            )
        return self._weighted_dict.get(fused, 0.0)

    def values_cache(self) -> dict[int, list]:
        """Per-context decoded-value lists (cooccurring_values memo)."""
        if self._values_cache is None:
            self._values_cache = {}
        return self._values_cache

    def lookup(self, fused: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(index into the stat arrays, hit mask) for fused query keys."""
        idx = np.searchsorted(self.keys, fused)
        idx_clipped = np.minimum(idx, len(self.keys) - 1) if len(self.keys) else idx
        if len(self.keys) == 0:
            return idx, np.zeros(len(fused), dtype=bool)
        hit = self.keys[idx_clipped] == fused
        return idx_clipped, hit

    def __getstate__(self) -> tuple:
        """Pickle only the built statistics; the lazy caches (dict views,
        CSR index, dense profiles, probe tallies) are per-process
        accelerations that worker processes rebuild on demand."""
        return (self.card_b, self.keys, self.raw, self.weighted, self.first_row)

    def __setstate__(self, state: tuple) -> None:
        self.__init__(*state)

    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Inverted index: ``(starts, candidates)`` where the slice
        ``candidates[starts[b]:starts[b+1]]`` lists the non-NULL codes of
        attribute *a* co-occurring with context code ``b``, in order of
        first appearance of the pair in the data (the insertion order of
        the original dict build, which downstream tie-breaking relies
        on)."""
        if self._csr is None:
            order = np.argsort(self.first_row, kind="stable")
            keys = self.keys[order]
            code_a = keys // self.card_b
            code_b = keys % self.card_b
            keep = code_a != NULL_CODE
            code_a, code_b = code_a[keep], code_b[keep]
            group = np.argsort(code_b, kind="stable")
            starts = np.searchsorted(
                code_b[group], np.arange(self.card_b + 1)
            ).astype(np.int64)
            self._csr = (starts, code_a[group])
        return self._csr

    def __len__(self) -> int:
        return len(self.keys)


def confidence_weights(
    confidences: Sequence[float] | None,
    tau: float,
    beta: float,
    n_rows: int,
) -> np.ndarray:
    """Algorithm 2's per-row accumulator weights: +1 for reliable tuples
    (conf ≥ τ), −β otherwise; all-ones when no confidences exist."""
    if confidences is None:
        return np.ones(n_rows, dtype=np.float64)
    return np.where(
        np.asarray(confidences, dtype=np.float64) >= tau, 1.0, -beta
    )


def build_pair_arrays(
    codes_a: np.ndarray,
    card_a: int,
    codes_b: np.ndarray,
    card_b: int,
    weights: np.ndarray,
) -> tuple[PairArrays, PairArrays]:
    """Build both directions of one attribute pair's statistics.

    One fused ``numpy.unique`` pass over the rows yields the forward
    ``(a, b)`` arrays; the reverse ``(b, a)`` direction is derived by
    re-fusing the distinct pairs — no second pass.  This is the unit of
    work the sharded parallel fit (:mod:`repro.exec.fit`) dispatches per
    attribute pair; the serial build below calls it in a loop, so both
    paths are byte-identical by construction.
    """
    fused = codes_a * card_b + codes_b
    keys, first, inverse, raw = np.unique(
        fused, return_index=True, return_inverse=True, return_counts=True
    )
    weighted = np.bincount(inverse, weights=weights, minlength=len(keys))
    forward = PairArrays(card_b, keys, raw, weighted, first)
    rev = (keys % card_b) * card_a + keys // card_b
    order = np.argsort(rev)
    reverse = PairArrays(
        card_a, rev[order], raw[order], weighted[order], first[order]
    )
    return forward, reverse


def build_pair_arrays_stream(
    codes_a: np.ndarray,
    card_a: int,
    codes_b: np.ndarray,
    card_b: int,
    weights: np.ndarray,
    row_counts: np.ndarray,
    row_firsts: np.ndarray | None = None,
) -> tuple[PairArrays, PairArrays]:
    """:func:`build_pair_arrays` over a deduplicated stream.

    The inputs are the *distinct-row* columns of a streamed fit
    (:mod:`repro.exec.fit_stream`): row ``i`` stands for ``row_counts[i]``
    stream rows, first seen at global index ``row_firsts[i]``, and
    ``weights[i]`` is its per-row confidence weight (identical across the
    duplicates — tuple confidence is a pure function of the row's
    values).  The outputs are **byte-identical** to running
    :func:`build_pair_arrays` over the full stream:

    - raw counts are int64 multiplicity sums (``np.add.at``), the exact
      integers ``return_counts`` would produce;
    - weighted counts sum ``row_counts · weight`` per distinct pair —
      every addend is an exactly-representable float64 integer multiple,
      so the sum equals the full pass's ``bincount`` bit for bit;
    - first rows are global stream indices (``np.minimum.at`` over
      ``row_firsts``), preserving the first-appearance orders downstream
      tie-breaking relies on.
    """
    row_counts = np.asarray(row_counts, dtype=np.int64)
    fused = codes_a * card_b + codes_b
    keys, local_first, inverse = np.unique(
        fused, return_index=True, return_inverse=True
    )
    inverse = np.ravel(inverse)
    raw = np.zeros(len(keys), dtype=np.int64)
    np.add.at(raw, inverse, row_counts)
    weighted = np.zeros(len(keys), dtype=np.float64)
    np.add.at(weighted, inverse, row_counts.astype(np.float64) * weights)
    if row_firsts is None:
        first = local_first
    else:
        first = np.full(len(keys), np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(first, inverse, np.asarray(row_firsts, dtype=np.int64))
    forward = PairArrays(card_b, keys, raw, weighted, first)
    rev = (keys % card_b) * card_a + keys // card_b
    order = np.argsort(rev)
    reverse = PairArrays(
        card_a, rev[order], raw[order], weighted[order], first[order]
    )
    return forward, reverse


class CooccurrenceIndex:
    """All pairwise value co-occurrence statistics of a table.

    Parameters
    ----------
    table:
        Observed (dirty) dataset D.
    confidences:
        Per-tuple confidence values (Eq. 3).  ``None`` treats every
        tuple as fully reliable — the BClean-UC setting, where no
        constraints exist to down-weight anything.
    tau:
        Reliability threshold of Algorithm 2.
    beta:
        Penalty weight of unreliable tuples.
    encoding:
        Optional pre-built interning of ``table`` (shared with the other
        columnar components); built internally when omitted.
    pair_arrays:
        Optional precomputed per-pair statistics — one
        :class:`PairArrays` per *ordered* attribute pair, exactly as
        :func:`build_pair_arrays` produces them (the sharded parallel
        fit passes these).  When given, they must have been built from
        this table's coded columns and ``confidences`` weights; the
        serial per-pair loop is skipped.
    row_counts / row_firsts / n_rows:
        Deduplicated-stream form (:mod:`repro.exec.fit_stream`):
        ``table`` then holds the stream's distinct rows, row ``i``
        counted ``row_counts[i]`` times and first seen at global index
        ``row_firsts[i]``, out of ``n_rows`` total stream rows.  Every
        stored statistic (marginal counts, raw/weighted pair counts,
        first rows) is then byte-identical to building over the full
        stream.
    """

    def __init__(
        self,
        table: Table,
        confidences: Sequence[float] | None = None,
        tau: float = 0.5,
        beta: float = 2.0,
        encoding: TableEncoding | None = None,
        pair_arrays: dict[tuple[str, str], PairArrays] | None = None,
        row_counts: np.ndarray | None = None,
        row_firsts: np.ndarray | None = None,
        n_rows: int | None = None,
    ):
        self.n_rows = int(n_rows) if n_rows is not None else table.n_rows
        self.names = table.schema.names
        self.encoding = encoding if encoding is not None else TableEncoding(table)
        m = len(self.names)

        weights = confidence_weights(confidences, tau, beta, table.n_rows)
        self.row_weights = weights

        if row_counts is None:
            self._counts: dict[str, np.ndarray] = {
                a: np.bincount(
                    self.encoding.codes(a), minlength=self.encoding.card(a)
                )
                for a in self.names
            }
        else:
            row_counts = np.asarray(row_counts, dtype=np.int64)
            self._counts = {}
            for a in self.names:
                counts = np.zeros(self.encoding.card(a), dtype=np.int64)
                np.add.at(counts, self.encoding.codes(a), row_counts)
                self._counts[a] = counts

        if pair_arrays is not None:
            expected = {
                (self.names[j], self.names[k])
                for j in range(m)
                for k in range(m)
                if j != k
            }
            if set(pair_arrays) != expected:
                raise ValueError(
                    "pair_arrays must cover every ordered attribute pair"
                )
            self._pair = dict(pair_arrays)
            return

        self._pair = {}
        for j in range(m):
            a = self.names[j]
            codes_a = self.encoding.codes(a)
            card_a = self.encoding.card(a)
            for k in range(j + 1, m):
                b = self.names[k]
                if row_counts is None:
                    built = build_pair_arrays(
                        codes_a,
                        card_a,
                        self.encoding.codes(b),
                        self.encoding.card(b),
                        weights,
                    )
                else:
                    built = build_pair_arrays_stream(
                        codes_a,
                        card_a,
                        self.encoding.codes(b),
                        self.encoding.card(b),
                        weights,
                        row_counts,
                        row_firsts,
                    )
                self._pair[(a, b)], self._pair[(b, a)] = built

    # -- code-level queries ---------------------------------------------------------

    def pair_stats(self, attr_a: str, attr_b: str) -> PairArrays | None:
        """The raw sorted-fused-key statistics of one ordered pair
        (``None`` for unknown attributes or ``attr_a == attr_b``).  The
        coded CPT fit re-slices these for single-parent families."""
        return self._pair.get((attr_a, attr_b))

    def counts_array(self, attribute: str) -> np.ndarray:
        """Marginal count per code of ``attribute`` (NULL code included)."""
        return self._counts[attribute]

    def counts_for(self, attribute: str, codes: np.ndarray) -> np.ndarray:
        """Marginal counts of ``codes`` — safe for codes the build never
        saw (``UNSEEN_CODE`` or incrementally extended vocabularies):
        those count 0."""
        counts = self._counts[attribute]
        if len(codes) == 0 or (
            int(codes.min()) >= 0 and int(codes.max()) < len(counts)
        ):
            return counts[codes]
        in_range = (codes >= 0) & (codes < len(counts))
        return np.where(in_range, counts[np.where(in_range, codes, 0)], 0)

    def _count_values(
        self, stats: PairArrays, codes_a: np.ndarray, code_b: int
    ) -> np.ndarray:
        """Raw counts of ``(codes_a[i], code_b)`` by direct probe."""
        idx, hit = stats.lookup(codes_a * stats.card_b + code_b)
        return np.where(hit, stats.raw[idx], 0)

    def _corr_values(
        self,
        stats: PairArrays,
        attr_a: str,
        attr_b: str,
        codes_a: np.ndarray,
        code_b: int,
    ) -> np.ndarray:
        """:meth:`corr` of ``(codes_a[i], code_b)`` — vector math, no
        self-exclusion."""
        n_context = int(self._counts[attr_b][code_b])
        if n_context <= 0:
            return np.zeros(len(codes_a), dtype=np.float64)
        idx, hit = stats.lookup(codes_a * stats.card_b + code_b)
        weighted = np.where(hit, stats.weighted[idx], 0.0)
        # Clamping non-positive weighted counts to 0 reproduces the
        # scalar early return: their p̂ becomes 0 and the final
        # max(0, ·) lands on exactly 0.
        weighted = np.maximum(weighted, 0.0)
        p_hat = weighted / n_context
        capped = np.minimum(p_hat, 1.0)
        variance = (capped * (1.0 - capped) + 1.0 / n_context) / n_context
        base_rate = self._counts[attr_a][codes_a] / self.n_rows
        out = p_hat - self.LCB_Z * np.sqrt(variance) - base_rate
        np.maximum(out, 0.0, out=out)
        return out

    def count_profile(
        self, attr_a: str, attr_b: str, code_b: int
    ) -> np.ndarray:
        """Dense raw co-occurrence counts of *every* build-time code of
        ``attr_a`` against context code ``code_b``, cached per context.
        (Codes minted later by incremental encoding count 0 and are
        guarded by the callers, so profiles stay build-card sized.)"""
        stats = self._pair.get((attr_a, attr_b))
        if stats is None or not 0 <= code_b < stats.card_b:
            return np.zeros(len(self._counts[attr_a]), dtype=np.int64)
        profile = stats.count_profiles.get(code_b)
        if profile is None:
            codes = np.arange(len(self._counts[attr_a]), dtype=np.int64)
            profile = self._count_values(stats, codes, code_b)
            stats.count_profiles[code_b] = profile
        return profile

    def corr_profile(self, attr_a: str, attr_b: str, code_b: int) -> np.ndarray:
        """Dense :meth:`corr` of every build-time code of ``attr_a``
        given context ``code_b`` — no self-exclusion — cached per
        context."""
        stats = self._pair.get((attr_a, attr_b))
        if stats is None or self.n_rows == 0 or not 0 <= code_b < stats.card_b:
            return np.zeros(len(self._counts[attr_a]), dtype=np.float64)
        profile = stats.corr_profiles.get(code_b)
        if profile is None:
            codes = np.arange(len(self._counts[attr_a]), dtype=np.int64)
            profile = self._corr_values(stats, attr_a, attr_b, codes, code_b)
            stats.corr_profiles[code_b] = profile
        return profile

    def pair_counts_for(
        self, attr_a: str, codes_a: np.ndarray, attr_b: str, code_b: int
    ) -> np.ndarray:
        """Raw co-occurrence counts of ``(codes_a[i], code_b)`` (batched).

        ``codes_a`` must hold valid codes (≥ 0).  A context probed more
        often than one competition accounts for (twice: pool strength +
        TF-IDF pruning) gets the dense cached profile; rarer contexts
        take direct pool-sized probes."""
        stats = self._pair.get((attr_a, attr_b))
        if stats is None or not 0 <= code_b < stats.card_b:
            return np.zeros(len(codes_a), dtype=np.int64)
        profile = stats.count_profiles.get(code_b)
        if profile is None:
            tally = stats.count_probes.get(code_b, 0) + 1
            if tally > 2:
                stats.count_probes.pop(code_b, None)
                profile = self.count_profile(attr_a, attr_b, code_b)
            else:
                stats.count_probes[code_b] = tally
                return self._count_values(stats, codes_a, code_b)
        return profile[codes_a]

    def pair_count_codes(
        self, attr_a: str, code_a: int, attr_b: str, code_b: int
    ) -> int:
        """Raw co-occurrence count of one code pair (single probe).

        ``code_b`` beyond the build-time cardinality must be rejected
        explicitly — its fused key could collide with a real pair's.  A
        too-large ``code_a`` only pushes the fused key past every stored
        key, which misses safely.
        """
        stats = self._pair.get((attr_a, attr_b))
        if stats is None or code_a < 0 or not 0 <= code_b < stats.card_b:
            return 0
        return stats.raw_count(code_a * stats.card_b + code_b)

    def rowwise_pair_counts(self, attr_a: str, attr_b: str) -> np.ndarray:
        """Raw count of each row's own ``(A_a, A_b)`` value pair — one
        entry per table row (drives the batched tuple-pruning filter).
        Every queried pair exists by construction."""
        stats = self._pair.get((attr_a, attr_b))
        if stats is None:
            return np.zeros(self.n_rows, dtype=np.int64)
        fused = (
            self.encoding.codes(attr_a) * stats.card_b
            + self.encoding.codes(attr_b)
        )
        idx, hit = stats.lookup(fused)
        return np.where(hit, stats.raw[idx], 0)

    def pair_counts_rows(
        self,
        attr_a: str,
        codes_a: np.ndarray,
        attr_b: str,
        codes_b: np.ndarray,
    ) -> np.ndarray:
        """Elementwise raw counts of ``(codes_a[i], codes_b[i])`` with
        full out-of-range guards — the foreign-table companion of
        :meth:`rowwise_pair_counts`, where codes minted by incremental
        encoding (or ``UNSEEN_CODE``) must count 0."""
        stats = self._pair.get((attr_a, attr_b))
        if stats is None:
            return np.zeros(len(codes_a), dtype=np.int64)
        card_a = len(self._counts[attr_a])
        valid = (
            (codes_a >= 0)
            & (codes_a < card_a)
            & (codes_b >= 0)
            & (codes_b < stats.card_b)
        )
        fused = np.where(valid, codes_a * stats.card_b + codes_b, 0)
        idx, hit = stats.lookup(fused)
        return np.where(hit & valid, stats.raw[idx], 0)

    def cooccurring_codes(
        self, attr_a: str, attr_b: str, code_b: int
    ) -> np.ndarray:
        """Codes of ``attr_a`` co-occurring with context ``code_b`` in
        ``attr_b``, in first-appearance order, NULL code excluded."""
        stats = self._pair.get((attr_a, attr_b))
        if stats is None or not 0 <= code_b < stats.card_b:
            return np.empty(0, dtype=np.int64)
        starts, candidates = stats.csr()
        return candidates[starts[code_b] : starts[code_b + 1]]

    def corr_for(
        self,
        attr_a: str,
        codes_a: np.ndarray,
        attr_b: str,
        code_b: int,
        exclude_index: int | None = None,
        self_weight: float = 1.0,
    ) -> np.ndarray:
        """Vectorised :meth:`corr` over a candidate pool (codes ≥ 0).

        Repeated contexts come from the cached :meth:`corr_profile`
        (one fancy-index slice); first-time contexts are probed
        directly at pool size.  ``exclude_index`` removes the scored
        tuple's own contribution from that one pool entry (the
        incumbent): its confidence weight ``self_weight`` leaves the
        weighted count and one observation leaves both marginals.
        """
        stats = self._pair.get((attr_a, attr_b))
        if stats is None or self.n_rows == 0 or not 0 <= code_b < stats.card_b:
            return np.zeros(len(codes_a), dtype=np.float64)
        # Codes minted after the build (incremental foreign encoding) can
        # only appear as the appended incumbent; they were never observed,
        # so their corr is exactly 0 — matching the value-level path where
        # unseen values encode to UNSEEN_CODE.
        card_a = len(self._counts[attr_a])
        oob = None
        query = codes_a
        if len(codes_a) and int(codes_a.max()) >= card_a:
            oob = codes_a >= card_a
            query = np.where(oob, 0, codes_a)
        profile = stats.corr_profiles.get(code_b)
        if profile is None and stats.corr_probes.get(code_b, 0) >= 1:
            stats.corr_probes.pop(code_b, None)
            profile = self.corr_profile(attr_a, attr_b, code_b)
        if profile is not None:
            out = profile[query]
        else:
            stats.corr_probes[code_b] = 1
            out = self._corr_values(stats, attr_a, attr_b, query, code_b)
        if oob is not None:
            out[oob] = 0.0
        if exclude_index is not None:
            out[exclude_index] = self.corr_codes(
                attr_a,
                int(codes_a[exclude_index]),
                attr_b,
                code_b,
                exclude_self=True,
                self_weight=self_weight,
            )
        return out

    def corr_codes(
        self,
        attr_a: str,
        code_a: int,
        attr_b: str,
        code_b: int,
        exclude_self: bool = False,
        self_weight: float = 1.0,
    ) -> float:
        """:meth:`corr` of one code pair (the scalar kernel both the
        value-level API and the incumbent exclusion fix-up share).

        Codes at or beyond the build-time cardinalities (incrementally
        extended vocabularies) were never observed and score exactly 0,
        like unseen values on the value-level path.
        """
        stats = self._pair.get((attr_a, attr_b))
        if stats is None or self.n_rows == 0 or code_a < 0 or code_b < 0:
            return 0.0
        if code_a >= len(self._counts[attr_a]) or code_b >= stats.card_b:
            return 0.0
        weighted = stats.weighted_count(code_a * stats.card_b + code_b)
        n_context = int(self._counts[attr_b][code_b])
        n_value = int(self._counts[attr_a][code_a])
        if exclude_self:
            weighted -= self_weight
            n_context -= 1
            n_value -= 1
        if n_context <= 0 or weighted <= 0.0:
            return 0.0
        base_rate = max(0, n_value) / self.n_rows
        p_hat = weighted / n_context
        capped = min(p_hat, 1.0)
        variance = (capped * (1.0 - capped) + 1.0 / n_context) / n_context
        return max(0.0, p_hat - self.LCB_Z * variance ** 0.5 - base_rate)

    # -- value-level queries ---------------------------------------------------------

    def count(self, attribute: str, value: Cell) -> int:
        """Marginal count of ``value`` in ``attribute``."""
        code = self.encoding.encode(attribute, value)
        counts = self._counts[attribute]
        # A code at or past the build-time cardinality was minted by
        # incremental encoding after this index was built: never observed.
        if not 0 <= code < len(counts):
            return 0
        return int(counts[code])

    def pair_count(
        self, attr_a: str, value_a: Cell, attr_b: str, value_b: Cell
    ) -> int:
        """Raw co-occurrence count of ``(value_a, value_b)``."""
        return self.pair_count_codes(
            attr_a,
            self.encoding.encode(attr_a, value_a),
            attr_b,
            self.encoding.encode(attr_b, value_b),
        )

    #: z-multiplier of the lower confidence bound in :meth:`corr` — how
    #: strongly small-sample proportions are discounted.
    LCB_Z = 1.0

    def corr(
        self,
        attr_a: str,
        value_a: Cell,
        attr_b: str,
        value_b: Cell,
        exclude_self: bool = False,
        self_weight: float = 1.0,
    ) -> float:
        """Confidence-weighted conditional lift of ``value_a`` given the
        context value ``value_b``, discounted by sampling uncertainty.

        The paper's raw form, ``count(c, e)/|D|`` with β-penalised
        low-confidence tuples, is count-scaled: summed over attributes
        it conflates *popularity* with *association* (a frequent value
        co-occurs with everything).  We therefore estimate the
        conditional proportion ``p̂ = weighted_count(c, e)/count(e)``
        and report its lower confidence bound above c's base rate:

        ``corr(c, e) = max(0, p̂ − z·sd(p̂) − count(c)/|D|)``

        Three protections, each load-bearing:

        - the **LCB** (``− z·sd``) discounts sampling noise: a single
          co-occurrence in a five-row context gives p̂ = 0.2 with
          sd ≈ 0.27 — pure coincidence, clamped away — while an FD
          partner (p̂ ≈ 1 across its context group) stays strong even in
          small groups;
        - the **base rate** subtraction removes popularity: a frequent
          value co-occurs with every context at roughly its marginal
          frequency, which is no evidence of association;
        - the **clamp at zero** prevents the subtraction from biasing
          the *sum* against frequent values (every generic context would
          otherwise contribute negative mass proportional to the value's
          own frequency).

        ``exclude_self`` removes the scored tuple's own contribution —
        an incumbent value trivially co-occurs with its own row, which
        would otherwise grant it certainty-level support exactly on the
        unique contexts that provide no real evidence.  ``self_weight``
        is the weight that tuple actually contributed to Algorithm 2's
        accumulator (+1 when reliable, −β when not): an unreliable
        tuple's exclusion must *add back* its penalty rather than
        subtract a flat 1.
        """
        return self.corr_codes(
            attr_a,
            self.encoding.encode(attr_a, value_a),
            attr_b,
            self.encoding.encode(attr_b, value_b),
            exclude_self=exclude_self,
            self_weight=self_weight,
        )

    def cooccurring_values(self, attr_a: str, attr_b: str, value_b: Cell) -> list:
        """All values of ``attr_a`` that co-occur with ``value_b`` in
        ``attr_b`` — the generator behind TF-IDF context counting.

        Backed by the CSR inverted index of the pair, so repeated
        queries are O(result).  NULLs are never returned — NULL is not a
        repair candidate.
        """
        code_b = self.encoding.encode(attr_b, value_b)
        stats = self._pair.get((attr_a, attr_b))
        if stats is None or code_b == UNSEEN_CODE:
            return []
        cache = stats.values_cache()
        values = cache.get(code_b)
        if values is None:
            vocab = self.encoding.vocab(attr_a)
            values = [
                vocab.decode(int(c))
                for c in self.cooccurring_codes(attr_a, attr_b, code_b)
            ]
            cache[code_b] = values
        return values

    def n_pairs_stored(self) -> int:
        """Total number of distinct value pairs stored (diagnostics)."""
        return sum(len(p) for p in self._pair.values())
