"""The BClean cleaning engine (Algorithm 1 and its optimised variants).

For every cell the engine scores the incumbent value and a set of
candidate repairs with

``p(c) = log BN[A_j](c) + log CS[A_j](c)``   (Algorithm 1, line 4/6)

subject to ``UC(c) = 1``, where the BN term is either the full joint
log-probability (BASIC mode — the paper's unoptimised variant whose
cost Table 7 reports) or the Markov-blanket score (PI / PIP, §6.1), and
the CS term is the compensatory score of §5 mapped to log-space.

Evidence always comes from the *observed* dataset D, never from earlier
repairs — Algorithm 1 writes into a separate D*, which is what prevents
the error-amplification cascade §5 describes.

Two cleaning paths produce identical repair decisions:

- the **columnar fast path** (default, ``BCleanConfig.use_columnar``):
  the table is interned once (:class:`~repro.dataset.encoding.TableEncoding`)
  and cleaned by the staged pipeline of :mod:`repro.exec.stream` —
  ingest → encode → detect → plan → execute → merge → emit — whose
  row chunks become planned, sharded jobs executed by the
  :mod:`repro.exec` subsystem: cost-balanced shards
  (:mod:`repro.exec.planner`), pluggable serial / thread / process
  worker backends (``BCleanConfig.executor``; ``"auto"`` picks from
  the plan's cost estimate), batch scoring of stacked competitions
  inside each shard (:meth:`repro.exec.state.FitState.run_shard`), and
  a deterministic merge of the per-shard repair arrays
  (:mod:`repro.exec.merge`).  With ``BCleanConfig.chunk_rows`` set
  (or via :meth:`BClean.clean_csv`) the same stages run one row block
  at a time — out-of-core cleaning with repairs byte-identical to the
  whole-table run.  Foreign tables sharing the fitted schema stay on
  this path through incremental encoding
  (:meth:`~repro.dataset.encoding.TableEncoding.encode_table`);
- the **scalar reference path**: the per-cell dict walk of the original
  implementation, kept as the oracle the columnar path is tested
  against, and used automatically when the fast path cannot apply
  (merged-node compositions, a foreign table with a different schema,
  or a fitted table mutated since ``fit()``).

``fit()`` follows the same design: on the columnar path the
co-occurrence build, structure-learner scores, and CPT counting all run
from the shared coded columns — optionally sharded over the
``BCleanConfig.fit_executor`` worker backends — and produce statistics
byte-identical to the scalar dict-walking fit, which remains the oracle
(see :meth:`BClean.fit`).

Both paths share candidate order, tie-breaking, and float accumulation
order; the tolerated divergences are transcendental rounding
(``numpy``'s vectorised log/sqrt may differ from ``math``'s by 1 ulp on
some platforms) and, in BASIC mode only, the regrouped joint summation
(blanket + constant rest, ~1e-12 — see
:meth:`~repro.bayesnet.model.ColumnarNetScorer.joint_log_scores_batch`) —
both far below every decision margin.  The equivalence suite asserts
identical repair lists across both paths in all modes.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Mapping, Sequence

import numpy as np

from repro.bayesnet.cpt import cell_key
from repro.bayesnet.dag import DAG
from repro.bayesnet.model import ColumnarNetScorer, DiscreteBayesNet
from repro.bayesnet.structure.chowliu import chow_liu_tree
from repro.bayesnet.structure.fdx import fdx_structure
from repro.bayesnet.structure.hillclimb import hill_climb
from repro.bayesnet.structure.mmhc import mmhc
from repro.bayesnet.structure.pc import pc_algorithm
from repro.constraints.registry import UCRegistry
from repro.core.composition import AttributeComposition
from repro.core.compensatory import CompensatoryScorer, log_compensatory
from repro.core.config import BCleanConfig, InferenceMode
from repro.core.confidence import table_confidences
from repro.core.cooccurrence import CooccurrenceIndex, confidence_weights
from repro.core.partition import SubNetwork, partition, partition_statistics
from repro.core.pruning import DomainPruner, should_skip_cell
from repro.core.repairs import CleaningResult, CleaningStats, Repair, Stopwatch
from repro.dataset.domain import DomainIndex
from repro.dataset.encoding import TableEncoding
from repro.dataset.table import Cell, Table, is_null
from repro.errors import CPTError, CleaningError, InferenceError
from repro.exec import (
    ExecSession,
    StreamDriver,
    build_fit_state,
    sharded_family_arrays,
    sharded_pair_arrays,
)
from repro.exec.cache import CompetitionCache
from repro.exec.fit_stream import (
    DEFAULT_CHUNK_ROWS,
    SuffStats,
    estimate_stream_fit_cost,
    suffstats_from_csv,
    suffstats_from_table,
)
from repro.exec.planner import AUTO_FIT_COST_THRESHOLD, CACHE_MAX_ENTRIES
from repro.exec.state import FitState
from repro.obs import NULL_TRACER, Tracer


class BClean:
    """The BClean system: fit a BN + compensatory model, then clean.

    Typical use::

        engine = BClean(BCleanConfig.pi(), constraints=registry)
        engine.fit(dirty_table)
        result = engine.clean()
        cleaned = result.cleaned
    """

    def __init__(
        self,
        config: BCleanConfig | None = None,
        constraints: UCRegistry | None = None,
    ):
        self.config = config or BCleanConfig()
        self.constraints = constraints or UCRegistry()
        self.table: Table | None = None
        self.dag: DAG | None = None
        self.bn: DiscreteBayesNet | None = None
        self.composition: AttributeComposition | None = None
        self._fit_seconds = 0.0
        self._fit_diag: dict = {}
        self._fit_session: ExecSession | None = None
        # Streaming-fit state (see fit_csv / fit_stats / fit_update):
        # the mergeable sufficient statistics the model was fitted
        # from, whether the engine never saw the raw table (csv mode),
        # and whether fit_update() has folded in rows the structure
        # has not been re-scored against yet.
        self._suffstats: SuffStats | None = None
        self._stream_fitted = False
        self._structure_stale = False
        # What set_network() refits CPTs from: a (table, encoding,
        # row_counts, row_firsts, n_rows) tuple on the coded path,
        # None when only the scalar walk applies.
        self._refit: tuple | None = None
        # The engine-held resident execution session (see open_session):
        # one warm pool + one shipped snapshot + one competition memo
        # shared by every clean until close_session() or a refit.
        self._resident: ExecSession | None = None
        # The engine's observability tracer: the shared no-op singleton
        # unless config.trace/config.profile (or a per-call trace=)
        # turns tracing on — see repro.obs for the zero-cost contract.
        self._obs = NULL_TRACER

    # -- fitting -----------------------------------------------------------------

    def fit(
        self,
        table: Table,
        dag: DAG | None = None,
        composition: AttributeComposition | None = None,
        encoding: TableEncoding | None = None,
        chunk_rows: int | None = None,
    ) -> "BClean":
        """Learn the BN and all statistics from the observed dataset.

        With ``use_columnar`` and the default singleton composition the
        whole fit pipeline runs on the shared
        :class:`~repro.dataset.encoding.TableEncoding`: the
        co-occurrence index builds from the coded columns (optionally
        sharded over the ``fit_executor`` worker backends), the
        structure learners score from coded family counts, and the CPTs
        are estimated by :meth:`DiscreteBayesNet.fit_columnar` —
        single-parent families re-sliced from the already-built pair
        arrays, the rest counted with fused-code ``numpy`` passes
        (sharded too under a parallel ``fit_executor``).  The scalar
        dict-walking fit is retained as the oracle
        (``use_columnar=False`` or merged-node compositions): CPTs are
        byte-identical, and so are the BIC/K2/BDeu structure scores
        (hence hillclimb/chowliu/pc DAGs).  The one tolerated
        divergence is MMHC's vectorised G², whose statistic matches the
        reference walk to ~1e-12 — a p-value landing within an ulp of
        ``alpha`` could in principle flip a skeleton edge, so the
        equivalence suite pins DAG identity empirically rather than by
        construction there.

        Parameters
        ----------
        table:
            The dirty dataset D.
        dag:
            Optional pre-built network (e.g. after user interaction);
            its nodes must match the composition's nodes.
        composition:
            Optional attribute grouping (merged nodes).
        encoding:
            Optional pre-built interning of ``table`` (the model
            registry's reload path: an encoding that minted extra codes
            while cleaning foreign tables must keep those codes so the
            reloaded model reproduces the in-memory one's repairs
            byte-identically).  Must describe ``table`` exactly.
        chunk_rows:
            Consume ``table`` in row blocks of this size through the
            mergeable sufficient statistics of
            :mod:`repro.exec.fit_stream` instead of whole-table passes
            (defaults to ``config.fit_chunk_rows``).  DAG, CPTs, and
            downstream repairs are byte-identical to the whole-table
            fit at every chunk size; :meth:`fit_csv` is the
            out-of-core variant where the table itself never
            materialises.
        """
        chunk = chunk_rows if chunk_rows is not None else self.config.fit_chunk_rows
        if chunk is not None:
            if composition is not None and any(
                composition.members(n) != (n,) for n in composition.nodes
            ):
                raise CleaningError(
                    "streaming fit requires the singleton composition"
                )
            if not self.config.use_columnar:
                raise CleaningError(
                    "streaming fit requires the columnar path (use_columnar)"
                )
            tracer = self._ensure_fit_tracer()
            with tracer.span(
                "fit.stream", cat="fit", chunk_rows=int(chunk), source="table"
            ) as span:
                stats = suffstats_from_table(
                    table,
                    int(chunk),
                    reservoir_rows=self.config.fit_reservoir_rows,
                    tracer=tracer,
                )
                span.add(
                    rows=stats.n_rows,
                    distinct=stats.n_distinct,
                    chunks=stats.n_chunks,
                )
            return self.fit_stats(
                stats, dag=dag, full_table=table, encoding=encoding
            )
        # A refit invalidates every statistic a resident session's
        # snapshot was built from — close it before anything changes.
        self.close_session()
        if encoding is not None and (
            encoding.n_rows != table.n_rows
            or list(encoding.names) != list(table.schema.names)
        ):
            raise CleaningError(
                "encoding does not describe the fitted table "
                f"({encoding.n_rows}×{len(encoding.names)} vs "
                f"{table.n_rows}×{len(table.schema.names)})"
            )
        if self.config.trace is not None or self.config.profile:
            # One tracer spans fit + every later clean of this engine,
            # so a written trace shows the whole lifecycle; clean()
            # aggregates its own profile from a mark.
            self._obs = Tracer()
        tracer = self._obs
        with Stopwatch(tracer, "fit_seconds") as timer, tracer.span(
            "fit", cat="fit"
        ):
            self.table = table
            self.composition = composition or AttributeComposition(
                table.schema.names
            )
            node_table = self.composition.node_table(table)
            self._node_table = node_table

            use_ucs = self.config.use_ucs and self.constraints.n_constraints > 0
            self.confidences = (
                table_confidences(table, self.constraints, self.config.lam)
                if use_ucs
                else None
            )
            self._encoding = encoding if encoding is not None else table.encode()
            columnar_fit = (
                self.config.use_columnar and self._singleton_composition()
            )
            fit_executor = (
                self.config.fit_executor if columnar_fit else "serial"
            )
            n_jobs = self.config.n_jobs or os.cpu_count() or 1
            self._fit_diag: dict = {}
            self._suffstats = None
            self._stream_fitted = False
            self._structure_stale = False
            self._refit = (
                (node_table, self._encoding, None, None, None)
                if columnar_fit
                else None
            )
            # One execution session spans the whole parallel fit: the
            # pair job and the CPT job run on the same warm pool, and
            # the coded columns are shipped to the workers exactly once.
            self._fit_session = None
            if fit_executor != "serial":
                weights = confidence_weights(
                    self.confidences,
                    self.config.tau,
                    self.config.beta,
                    table.n_rows,
                )
                self._fit_session = ExecSession(
                    build_fit_state(
                        self._encoding, table.schema.names, weights
                    ),
                    n_jobs,
                    persistent=self.config.persistent_pool,
                    tracer=tracer,
                )

            try:
                with tracer.span("fit.cooccurrence", cat="fit"):
                    self.cooc = self._build_cooccurrence(
                        table, fit_executor, n_jobs
                    )
                # On the columnar path the composition is singleton, so the
                # node table *is* the fitted table (shared column lists);
                # learning from ``table`` itself lets every
                # ``encoding.matches`` check hit the O(1) identity fast path
                # instead of re-interning all cells.
                with tracer.span(
                    "fit.structure", cat="fit", learner=self.config.structure
                ):
                    self.dag = (
                        dag
                        if dag is not None
                        else self._learn_structure(
                            table if columnar_fit else node_table,
                            self._encoding if columnar_fit else None,
                            fit_executor=fit_executor,
                            n_jobs=n_jobs,
                        )
                    )
                unknown = set(self.dag.nodes) ^ set(node_table.schema.names)
                if unknown:
                    raise CleaningError(
                        f"DAG nodes do not match composition nodes: {sorted(unknown)}"
                    )
                with tracer.span("fit.cpts", cat="fit"):
                    self.bn = self._fit_network(
                        node_table, columnar_fit, fit_executor, n_jobs
                    )
            finally:
                if self._fit_session is not None:
                    self._fit_diag["pools_created"] = (
                        self._fit_session.pools_created
                    )
                    self._fit_diag["snapshot_ships"] = (
                        self._fit_session.snapshot_ships
                    )
                    self._fit_session.close()
                    self._fit_session = None

            self.comp = CompensatoryScorer(
                self.cooc, frequency_weight=self.config.frequency_weight
            )
            self.domains = DomainIndex(table)
            self.subnets = partition(self.dag)
            self.pruner = DomainPruner(
                self.cooc, top_k=self.config.domain_prune_top_k
            )
            self._uc_cache: dict[tuple[str, object], bool] = {}
            self._cell_cache: dict[tuple, tuple[Cell, float, float]] = {}
            self._columnar: ColumnarNetScorer | None = None
            self._domain_code_cache: dict[str, np.ndarray] = {}
            self._uc_mask_cache: dict[str, np.ndarray] = {}
            self._exec_diag: dict = {}
        self._fit_seconds = timer.seconds
        return self

    def _ensure_fit_tracer(self):
        """The tracer streaming fits report to: a fresh one when the
        config asks for tracing and none is live yet, the engine's
        current tracer otherwise (``fit_update`` spans then land in the
        same trace as the original fit)."""
        if (
            self.config.trace is not None or self.config.profile
        ) and not self._obs.enabled:
            self._obs = Tracer()
        return self._obs

    def fit_csv(
        self,
        src,
        chunk_rows: int | None = None,
        schema=None,
        dag: DAG | None = None,
        delimiter: str = ",",
    ) -> "BClean":
        """Out-of-core fit: stream a CSV into mergeable sufficient
        statistics, one row block resident at a time.

        Each block of ``chunk_rows`` rows (default
        ``config.fit_chunk_rows``, else a bounded default) is folded
        into the accumulating :class:`~repro.exec.fit_stream.SuffStats`
        — distinct-row counts over an incrementally minted encoding,
        plus a bounded reservoir sample for the row-level structure
        learners — and the model is then fitted from those statistics
        by :meth:`fit_stats`.  DAG, CPTs, and downstream repairs are
        byte-identical to fitting the whole CSV in memory, at every
        chunk size and chunk boundary.

        The engine's fitted ``table`` afterwards is the *distinct-row*
        table (weighted by multiplicity); ``clean()`` of that table
        cleans each distinct row once.  Foreign tables (including
        :meth:`clean_csv` over the original file) clean exactly as
        after a whole-table fit.
        """
        chunk = (
            chunk_rows
            if chunk_rows is not None
            else (self.config.fit_chunk_rows or DEFAULT_CHUNK_ROWS)
        )
        if not self.config.use_columnar:
            raise CleaningError(
                "fit_csv() requires the columnar path (use_columnar)"
            )
        tracer = self._ensure_fit_tracer()
        with tracer.span(
            "fit.stream", cat="fit", chunk_rows=int(chunk), source=str(src)
        ) as span:
            stats = suffstats_from_csv(
                src,
                int(chunk),
                schema=schema,
                delimiter=delimiter,
                reservoir_rows=self.config.fit_reservoir_rows,
                tracer=tracer,
            )
            span.add(
                rows=stats.n_rows,
                distinct=stats.n_distinct,
                chunks=stats.n_chunks,
            )
        return self.fit_stats(stats, dag=dag)

    def fit_stats(
        self,
        stats: SuffStats,
        dag: DAG | None = None,
        full_table: Table | None = None,
        encoding: TableEncoding | None = None,
    ) -> "BClean":
        """Fit the model from accumulated streaming sufficient statistics.

        The shared core behind ``fit(chunk_rows=...)`` (which passes the
        resident ``full_table`` so the engine keeps cleaning the
        original rows), :meth:`fit_csv` (no full table — the engine
        adopts the distinct-row table), :meth:`fit_update`, and the
        model registry's streamed reload.  Every statistic — pair
        co-occurrence, structure scores, CPT counts, domains — is
        computed from the distinct rows weighted by their
        multiplicities, which the kernels guarantee bit-identical to
        the whole-table walk.
        """
        self.close_session()
        if not self.config.use_columnar:
            raise CleaningError(
                "streaming fit requires the columnar path (use_columnar)"
            )
        struct, senc, row_counts, row_firsts = stats.finalize()
        names = struct.schema.names
        n_stream = stats.n_rows
        if full_table is not None and list(full_table.schema.names) != list(
            names
        ):
            raise CleaningError(
                "table schema does not match the accumulated statistics"
            )
        if (
            encoding is not None
            and full_table is not None
            and (
                encoding.n_rows != full_table.n_rows
                or list(encoding.names) != list(names)
            )
        ):
            raise CleaningError(
                "encoding does not describe the fitted table "
                f"({encoding.n_rows}×{len(encoding.names)} vs "
                f"{full_table.n_rows}×{len(names)})"
            )
        tracer = self._ensure_fit_tracer()
        with Stopwatch(tracer, "fit_seconds") as timer, tracer.span(
            "fit", cat="fit", stream=True
        ):
            if full_table is not None:
                self.table = full_table
                self._encoding = (
                    encoding if encoding is not None else full_table.encode()
                )
            else:
                self.table = struct
                self._encoding = senc
            self.composition = AttributeComposition(names)
            self._node_table = self.table
            self._suffstats = stats
            self._stream_fitted = full_table is None
            self._structure_stale = False
            self._refit = (struct, senc, row_counts, row_firsts, n_stream)

            use_ucs = self.config.use_ucs and self.constraints.n_constraints > 0
            struct_conf = (
                table_confidences(struct, self.constraints, self.config.lam)
                if use_ucs
                else None
            )
            if full_table is not None:
                # clean() reads per-row confidences of the *fitted*
                # table, so they must stay row-aligned with it.
                self.confidences = (
                    table_confidences(
                        full_table, self.constraints, self.config.lam
                    )
                    if use_ucs
                    else None
                )
            else:
                self.confidences = struct_conf
            weights = confidence_weights(
                struct_conf, self.config.tau, self.config.beta, struct.n_rows
            )

            fit_executor = self.config.fit_executor
            n_jobs = self.config.n_jobs or os.cpu_count() or 1
            self._fit_diag = {
                "stream_fit": {
                    "n_rows": int(n_stream),
                    "n_distinct": int(stats.n_distinct),
                    "n_chunks": int(stats.n_chunks),
                    "reservoir_exact": bool(stats.reservoir_exact),
                }
            }
            if fit_executor == "auto":
                # The streamed cost model: distinct rows × attribute
                # pairs is what the sharded jobs actually scan.  Small
                # fused tables stay serial — pool spin-up would dwarf
                # the counting passes.
                est = estimate_stream_fit_cost(struct.n_rows, len(names))
                if n_jobs <= 1 or est < AUTO_FIT_COST_THRESHOLD:
                    fit_executor = "serial"
                self._fit_diag["auto"] = True
            # One session spans pair counting, the parallel structure
            # search, and CPT counting: the weighted coded columns ship
            # to the workers exactly once.
            self._fit_session = ExecSession(
                build_fit_state(
                    senc,
                    names,
                    weights,
                    row_counts=row_counts,
                    row_firsts=row_firsts,
                    n_rows=n_stream,
                ),
                n_jobs,
                persistent=self.config.persistent_pool,
                tracer=tracer,
            )
            try:
                with tracer.span("fit.cooccurrence", cat="fit"):
                    pairs, diag = sharded_pair_arrays(
                        senc,
                        names,
                        weights,
                        fit_executor,
                        n_jobs,
                        session=self._fit_session,
                    )
                    self._fit_diag.update(
                        {
                            "fit_executor": diag["fit_executor"],
                            "n_jobs": diag["n_jobs"],
                            "pair_tasks": diag["n_pair_tasks"],
                            "pair_shards": diag["n_shards"],
                        }
                    )
                    self._merge_fit_flags(diag)
                    if full_table is not None:
                        self.cooc = CooccurrenceIndex(
                            full_table,
                            self.confidences,
                            tau=self.config.tau,
                            beta=self.config.beta,
                            encoding=self._encoding,
                            pair_arrays=pairs,
                        )
                    else:
                        self.cooc = CooccurrenceIndex(
                            struct,
                            struct_conf,
                            tau=self.config.tau,
                            beta=self.config.beta,
                            encoding=senc,
                            pair_arrays=pairs,
                            row_counts=row_counts,
                            row_firsts=row_firsts,
                            n_rows=n_stream,
                        )
                with tracer.span(
                    "fit.structure", cat="fit", learner=self.config.structure
                ):
                    row_table = (
                        full_table
                        if full_table is not None
                        else stats.reservoir_table()
                    )
                    if (
                        dag is None
                        and full_table is None
                        and row_table.n_rows == 0
                        and n_stream > 0
                        and self.config.structure.lower() == "fdx"
                    ):
                        raise CleaningError(
                            "streamed fdx structure learning needs the "
                            "reservoir sample; set fit_reservoir_rows > 0"
                        )
                    self.dag = (
                        dag
                        if dag is not None
                        else self._learn_structure(
                            struct,
                            senc,
                            row_counts=row_counts,
                            row_firsts=row_firsts,
                            n_rows=n_stream,
                            row_table=row_table,
                            fit_executor=fit_executor,
                            n_jobs=n_jobs,
                        )
                    )
                unknown = set(self.dag.nodes) ^ set(names)
                if unknown:
                    raise CleaningError(
                        f"DAG nodes do not match composition nodes: {sorted(unknown)}"
                    )
                with tracer.span("fit.cpts", cat="fit"):
                    family_arrays = None
                    if fit_executor != "serial":
                        families = [
                            (node, self.dag.parents(node))
                            for node in self.dag.nodes
                            if len(self.dag.parents(node)) != 1
                        ]
                        if families:
                            family_arrays, fdiag = sharded_family_arrays(
                                senc,
                                names,
                                families,
                                weights,
                                fit_executor,
                                n_jobs,
                                session=self._fit_session,
                            )
                            self._fit_diag["cpt_tasks"] = fdiag["n_cpt_tasks"]
                            self._fit_diag["cpt_shards"] = fdiag["n_shards"]
                            self._merge_fit_flags(fdiag)
                    self.bn = DiscreteBayesNet.fit_columnar(
                        struct,
                        self.dag,
                        alpha=self.config.smoothing_alpha,
                        encoding=senc,
                        cooc=self.cooc,
                        family_arrays=family_arrays,
                        row_counts=row_counts,
                        row_firsts=row_firsts,
                        n_rows=n_stream,
                    )
            finally:
                self._fit_diag["pools_created"] = (
                    self._fit_session.pools_created
                )
                self._fit_diag["snapshot_ships"] = (
                    self._fit_session.snapshot_ships
                )
                self._fit_session.close()
                self._fit_session = None

            self.comp = CompensatoryScorer(
                self.cooc, frequency_weight=self.config.frequency_weight
            )
            self.domains = DomainIndex(struct, row_counts=row_counts)
            self.subnets = partition(self.dag)
            self.pruner = DomainPruner(
                self.cooc, top_k=self.config.domain_prune_top_k
            )
            self._uc_cache = {}
            self._cell_cache = {}
            self._columnar = None
            self._domain_code_cache = {}
            self._uc_mask_cache = {}
            self._exec_diag = {}
        self._fit_seconds = timer.seconds
        return self

    def fit_update(self, new_rows) -> "BClean":
        """Fold fresh rows into the fitted statistics and refit — the
        incremental half of the streaming fit.

        ``new_rows`` (a :class:`~repro.dataset.table.Table` or an
        iterable of row tuples under the fitted schema) is merged into
        the engine's :class:`~repro.exec.fit_stream.SuffStats` as one
        more stream chunk; co-occurrence, CPTs, domains, and pruning
        state are refit from the merged counts.  The learned DAG is
        kept — structure re-scoring is deferred (``structure_stale``
        turns true) until :meth:`refresh_structure` — so
        ``fit(A); fit_update(B)`` carries exactly the statistics of
        ``fit(A + B)`` under the same network.

        A whole-table-fitted engine upgrades lazily: its table is
        folded into fresh statistics first (one chunk), so the update
        path is available without ever having streamed.
        """
        if self.bn is None or self.table is None:
            raise CleaningError("fit() must be called before fit_update()")
        if not (self.config.use_columnar and self._singleton_composition()):
            raise CleaningError(
                "fit_update() requires the columnar path (use_columnar "
                "with the singleton composition)"
            )
        if isinstance(new_rows, Table):
            chunk = new_rows
        else:
            chunk = Table.from_rows(
                self.table.schema, [tuple(row) for row in new_rows]
            )
        stats = self._suffstats
        if stats is None:
            stats = suffstats_from_table(
                self.table,
                max(1, self.table.n_rows),
                reservoir_rows=self.config.fit_reservoir_rows,
            )
        stats.update(chunk)
        self.fit_stats(stats, dag=self.dag)
        self._structure_stale = True
        return self

    def refresh_structure(self) -> "BClean":
        """Re-learn the structure from the current statistics — the
        deferred half of :meth:`fit_update` (clears
        ``structure_stale``)."""
        if self._suffstats is None:
            raise CleaningError(
                "refresh_structure() requires a streamed fit "
                "(fit_csv/fit_update/fit with chunk_rows)"
            )
        return self.fit_stats(self._suffstats)

    @property
    def structure_stale(self) -> bool:
        """Whether :meth:`fit_update` has folded in rows the DAG has
        not been re-scored against (see :meth:`refresh_structure`)."""
        return self._structure_stale

    def _build_cooccurrence(
        self, table: Table, fit_executor: str, n_jobs: int
    ) -> CooccurrenceIndex:
        """The co-occurrence index — per-pair builds sharded over the
        ``fit_executor`` backends when one is configured."""
        if fit_executor == "serial":
            return CooccurrenceIndex(
                table,
                self.confidences,
                tau=self.config.tau,
                beta=self.config.beta,
                encoding=self._encoding,
            )
        pairs, diag = sharded_pair_arrays(
            self._encoding,
            table.schema.names,
            self._fit_session.state.weights,
            fit_executor,
            n_jobs,
            session=self._fit_session,
        )
        self._fit_diag.update(
            {
                "fit_executor": diag["fit_executor"],
                "n_jobs": diag["n_jobs"],
                "pair_tasks": diag["n_pair_tasks"],
                "pair_shards": diag["n_shards"],
            }
        )
        self._merge_fit_flags(diag)
        return CooccurrenceIndex(
            table,
            self.confidences,
            tau=self.config.tau,
            beta=self.config.beta,
            encoding=self._encoding,
            pair_arrays=pairs,
        )

    def _merge_fit_flags(self, diag: Mapping) -> None:
        """Carry backend flags of one fit job into the fit diagnostics
        (sticky across the pair and CPT jobs): pool degradations, the
        auto-executor marker, and shared-memory usage."""
        for key in (
            "process_fallback",
            "pool_broken",
            "ran_serially",
            "auto",
            "shm",
        ):
            if diag.get(key):
                self._fit_diag[key] = True
        reason = diag.get("ran_serially_reason")
        if reason and "ran_serially_reason" not in self._fit_diag:
            self._fit_diag["ran_serially_reason"] = reason

    def _fit_network(
        self,
        node_table: Table,
        columnar_fit: bool,
        fit_executor: str,
        n_jobs: int,
    ) -> DiscreteBayesNet:
        """Estimate the CPTs — coded counting on the columnar path
        (sharded per node under a parallel ``fit_executor``), the scalar
        dict walk otherwise."""
        alpha = self.config.smoothing_alpha
        if not columnar_fit:
            return DiscreteBayesNet.fit(node_table, self.dag, alpha=alpha)
        family_arrays = None
        if fit_executor != "serial":
            # Dispatch only the families the assembler cannot re-slice
            # from the co-occurrence pair arrays (single-parent ones).
            families = [
                (node, self.dag.parents(node))
                for node in self.dag.nodes
                if len(self.dag.parents(node)) != 1
            ]
            if families:
                family_arrays, diag = sharded_family_arrays(
                    self._encoding,
                    node_table.schema.names,
                    families,
                    self.cooc.row_weights,
                    fit_executor,
                    n_jobs,
                    session=self._fit_session,
                )
                self._fit_diag["cpt_tasks"] = diag["n_cpt_tasks"]
                self._fit_diag["cpt_shards"] = diag["n_shards"]
                self._merge_fit_flags(diag)
        return DiscreteBayesNet.fit_columnar(
            node_table,
            self.dag,
            alpha=alpha,
            encoding=self._encoding,
            cooc=self.cooc,
            family_arrays=family_arrays,
        )

    def _learn_structure(
        self,
        node_table: Table,
        encoding: TableEncoding | None = None,
        row_counts: np.ndarray | None = None,
        row_firsts: np.ndarray | None = None,
        n_rows: int | None = None,
        row_table: Table | None = None,
        fit_executor: str = "serial",
        n_jobs: int = 1,
    ) -> DAG:
        """Dispatch to the configured structure learner.

        Streamed fits pass the distinct-row table with its
        ``row_counts``/``row_firsts``/``n_rows`` multiplicities (scores
        and G² tests then match the full stream bit for bit) plus a
        ``row_table`` for the row-level learners (fdx); with a parallel
        ``fit_executor`` and a live fit session, MMHC shards its
        independence tests and score evaluations over the session
        backends.
        """
        total_rows = n_rows if n_rows is not None else node_table.n_rows
        if total_rows < 2:
            # Nothing to profile: an edge-free network makes cleaning a
            # no-op, which is the only defensible output for one row.
            return DAG(node_table.schema.names)
        name = self.config.structure.lower()
        if name == "fdx":
            return fdx_structure(
                row_table if row_table is not None else node_table,
                self.config.fdx,
            ).dag
        if name == "hillclimb":
            return hill_climb(
                node_table,
                encoding=encoding,
                row_counts=row_counts,
                row_firsts=row_firsts,
                n_rows=n_rows,
            ).dag
        if name == "chowliu":
            return chow_liu_tree(
                node_table, encoding=encoding, row_counts=row_counts
            )
        if name == "pc":
            return pc_algorithm(
                node_table, encoding=encoding, row_counts=row_counts
            ).dag
        if name == "mmhc":
            return mmhc(
                node_table,
                encoding=encoding,
                tracer=self._obs,
                row_counts=row_counts,
                row_firsts=row_firsts,
                n_rows=n_rows,
                exec_session=self._fit_session,
                executor=fit_executor,
                n_jobs=n_jobs,
            ).dag
        raise CleaningError(
            f"unknown structure learner {self.config.structure!r}"
        )

    def set_network(self, dag: DAG, refit_nodes: Sequence[str] | None = None) -> None:
        """Swap in an edited network (user interaction, §4).

        ``refit_nodes`` restricts CPT re-estimation to the touched
        attributes; ``None`` refits everything.

        On the columnar path (including every streamed fit) the refit
        runs through the coded counting of
        :meth:`DiscreteBayesNet.fit_columnar` — byte-identical CPTs to
        the scalar walk, without re-interning a cell; the scalar walk
        remains the path for merged-node compositions.
        """
        if self.table is None or self.bn is None:
            raise CleaningError("fit() must be called before set_network()")
        # The resident session's snapshot froze the old network (and
        # its competition memo answered competitions scored against
        # it) — both are stale now.
        self.close_session()
        self.dag = dag
        alpha = self.config.smoothing_alpha
        if self._refit is not None:
            rtable, renc, row_counts, row_firsts, n_rows = self._refit
            fitted = DiscreteBayesNet.fit_columnar(
                rtable,
                dag,
                alpha=alpha,
                encoding=renc,
                cooc=self.cooc,
                row_counts=row_counts,
                row_firsts=row_firsts,
                n_rows=n_rows,
            )
            if refit_nodes is None:
                self.bn = fitted
            else:
                cpts = {**self.bn.cpts}
                for node in refit_nodes:
                    cpts[node] = fitted.cpts[node]
                self.bn = DiscreteBayesNet(dag, cpts, alpha=alpha)
        elif refit_nodes is None:
            self.bn = DiscreteBayesNet.fit(self._node_table, dag, alpha=alpha)
        else:
            self.bn = DiscreteBayesNet(
                dag,
                {**self.bn.cpts},
                alpha=alpha,
            )
            self.bn.refit_nodes(self._node_table, list(refit_nodes))
        self.subnets = partition(dag)
        self._cell_cache.clear()
        self._columnar = None

    # -- resident execution session (cleaning as a service) ------------------------

    def fit_state(self, scorer: ColumnarNetScorer | None = None) -> FitState:
        """Freeze the fitted model into the picklable, read-only
        :class:`~repro.exec.state.FitState` snapshot every dispatch of
        the columnar clean path executes against."""
        if self.bn is None or self.table is None:
            raise CleaningError("fit() must be called before fit_state()")
        if scorer is None:
            scorer = self._columnar_scorer()
        names = list(self.table.schema.names)
        return FitState(
            self.config,
            self._encoding,
            self.cooc,
            self.comp,
            self.pruner,
            scorer,
            self.subnets,
            names,
            {a: self._domain_codes(a) for a in names},
        )

    def open_session(self, n_jobs: int | None = None) -> ExecSession:
        """Open (or return) the engine-held resident execution session.

        A per-``clean()`` session dies with its stream; a *resident*
        session is the serving shape — the worker pool stays warm, the
        static snapshot ships once, and the session's competition cache
        memoises outcomes across every clean of this fit (§6's
        amortisation applied to many requests instead of many chunks).
        While open, every columnar ``clean()``/``clean_csv()`` of this
        engine attaches to it instead of building its own.

        The engine holds one reference; callers sharing the session
        further (the serving front) bracket their use with
        :meth:`~repro.exec.session.ExecSession.acquire` /
        :meth:`~repro.exec.session.ExecSession.release`.
        :meth:`close_session` drops the engine's reference — the pool
        is joined when the last holder releases.  ``fit()`` and
        :meth:`set_network` close the session automatically: the
        snapshot (and memo) would be stale.
        """
        if self.bn is None or self.table is None:
            raise CleaningError("fit() must be called before open_session()")
        if not (self.config.use_columnar and self._singleton_composition()):
            raise CleaningError(
                "resident sessions require the columnar path (use_columnar "
                "with the singleton composition)"
            )
        if self._resident is not None and not self._resident.closed:
            return self._resident
        bound = self.config.competition_cache
        if bound is None:
            # No stream to auto-size from at open time: a resident
            # session serves an unknown number of cleans, so take the
            # planner's upper clamp (entries are a few dozen bytes).
            bound = CACHE_MAX_ENTRIES
        self._resident = ExecSession(
            self.fit_state(),
            n_jobs or self.config.n_jobs or os.cpu_count() or 1,
            persistent=self.config.persistent_pool,
            competition_cache=CompetitionCache(bound) if bound else None,
            tracer=self._obs,
        )
        return self._resident

    def close_session(self) -> None:
        """Drop the engine's reference on the resident session (if any);
        the session closes once every other holder has released too."""
        session, self._resident = self._resident, None
        if session is not None:
            session.release()

    @property
    def resident_session(self) -> ExecSession | None:
        """The open resident session, or ``None`` (never a closed one)."""
        session = self._resident
        if session is not None and session.closed:
            self._resident = None
            return None
        return session

    # -- cleaning ------------------------------------------------------------------

    def _call_tracer(self, trace) -> tuple:
        """Resolve one clean call's tracer and trace-output path.

        The engine's fit-time tracer is reused when it is live (one
        file shows fit + clean together); a per-call ``trace=`` or
        ``config.profile`` on an untraced engine gets a fresh tracer
        for just this call; otherwise the shared no-op singleton.
        """
        trace_path = trace if trace is not None else self.config.trace
        if self._obs.enabled:
            return self._obs, trace_path
        if trace_path is not None or self.config.profile:
            return Tracer(), trace_path
        return NULL_TRACER, None

    def clean(
        self, table: Table | None = None, trace: str | None = None
    ) -> CleaningResult:
        """Run Algorithm 1 over ``table`` (defaults to the fitted table).

        On the columnar path the work is delegated to the staged
        pipeline of :mod:`repro.exec.stream` — whole-table as a single
        chunk, or row blocks of ``BCleanConfig.chunk_rows`` each, with
        byte-identical repairs either way.  The scalar oracle path is
        in-memory by construction and ignores ``chunk_rows``.

        ``trace`` writes a Chrome trace-event JSON of this call (see
        :mod:`repro.obs`), overriding ``config.trace``; tracing and
        ``config.profile`` change observability only — repairs are
        byte-identical to an untraced run.
        """
        if self.bn is None or self.table is None:
            raise CleaningError("fit() must be called before clean()")
        table = table if table is not None else self.table
        stats = CleaningStats(fit_seconds=self._fit_seconds)
        repairs: list[Repair] = []
        cleaned = table.copy()

        columnar = self._columnar_applicable(table)
        self._competitions_run = 0
        self._exec_diag = {}
        self._stream_diag = {}
        tracer, trace_path = self._call_tracer(trace)
        mark = tracer.mark()
        with Stopwatch(tracer, "clean_seconds") as timer, tracer.span(
            "clean", cat="clean", root=True
        ):
            if columnar:
                try:
                    scorer = self._columnar_scorer()
                except (CPTError, InferenceError):
                    # e.g. fused parent-config overflow — the scalar
                    # oracle handles anything.
                    columnar = False
            if columnar:
                resident = self.resident_session
                driver = StreamDriver(
                    self, scorer, tracer=tracer, session=resident
                )
                driver.clean_table(
                    table, table is self.table, stats, cleaned, repairs
                )
                self._competitions_run = driver.competitions_run
                self._exec_diag = driver.exec_diagnostics(self.config.executor)
                if self.config.chunk_rows is not None or resident is not None:
                    self._stream_diag = driver.stream_diagnostics()
            else:
                self._clean_scalar(table, stats, cleaned, repairs)
        stats.clean_seconds = timer.seconds
        stats.repairs_made = len(repairs)
        # "cache_size" is the number of distinct (attribute, row
        # signature) competitions materialised: the memo table of the
        # scalar path, the up-front dedup groups of the columnar one
        # (chunked runs re-materialise signatures recurring across
        # chunks, so their count can exceed the whole-table one).
        cache_size = (
            self._competitions_run if columnar else len(self._cell_cache)
        )
        diagnostics = {
            "mode": self.config.mode.value,
            "n_edges": self.dag.n_edges,
            "partition": partition_statistics(self.subnets),
            "cache_size": cache_size,
            "columnar": columnar,
        }
        if self._exec_diag:
            diagnostics["exec"] = dict(self._exec_diag)
        if self._stream_diag:
            diagnostics["stream"] = dict(self._stream_diag)
        if self._fit_diag:
            diagnostics["fit_exec"] = dict(self._fit_diag)
        if tracer.enabled:
            diagnostics["profile"] = tracer.profile(since=mark)
            if trace_path is not None:
                tracer.write(trace_path)
        return CleaningResult(cleaned, repairs, stats, diagnostics=diagnostics)

    def clean_csv(
        self,
        src,
        dst,
        delimiter: str = ",",
        trace: str | None = None,
    ) -> CleaningResult:
        """Out-of-core clean: stream a CSV through the staged pipeline.

        ``src`` must share the fitted schema (it is read under it, in
        blocks of ``chunk_rows`` rows — or a bounded default — so the
        table is never whole in memory); the repaired rows are appended
        to ``dst`` as each block finishes.  The returned result carries
        the repairs, stats, and diagnostics but ``cleaned`` is ``None``
        — the cleaned relation lives in ``dst``.

        Requires the columnar path (``use_columnar`` with the default
        singleton composition): the scalar oracle is a per-cell dict
        walk over an in-memory table and cannot stream.
        """
        if self.bn is None or self.table is None:
            raise CleaningError("fit() must be called before clean_csv()")
        if not self.config.use_columnar or not self._singleton_composition():
            raise CleaningError(
                "clean_csv() requires the columnar path (use_columnar "
                "with the singleton composition)"
            )
        stats = CleaningStats(fit_seconds=self._fit_seconds)
        repairs: list[Repair] = []
        tracer, trace_path = self._call_tracer(trace)
        mark = tracer.mark()
        with Stopwatch(tracer, "clean_seconds") as timer, tracer.span(
            "clean", cat="clean", root=True
        ):
            scorer = self._columnar_scorer()
            driver = StreamDriver(
                self, scorer, tracer=tracer, session=self.resident_session
            )
            driver.clean_csv(src, dst, stats, repairs, delimiter=delimiter)
        stats.clean_seconds = timer.seconds
        stats.repairs_made = len(repairs)
        self._competitions_run = driver.competitions_run
        diagnostics = {
            "mode": self.config.mode.value,
            "n_edges": self.dag.n_edges,
            "partition": partition_statistics(self.subnets),
            "cache_size": driver.competitions_run,
            "columnar": True,
            "exec": driver.exec_diagnostics(self.config.executor),
            "stream": driver.stream_diagnostics(),
        }
        if self._fit_diag:
            diagnostics["fit_exec"] = dict(self._fit_diag)
        if tracer.enabled:
            diagnostics["profile"] = tracer.profile(since=mark)
            if trace_path is not None:
                tracer.write(trace_path)
        return CleaningResult(None, repairs, stats, diagnostics=diagnostics)

    def _columnar_applicable(self, table: Table) -> bool:
        """The fast path requires the singleton composition (BN nodes
        must be table attributes for coded scoring) and either the
        fitted table itself or a foreign table sharing its schema (whose
        unseen values incremental encoding interns on the fly).  A
        fitted table mutated since ``fit()`` fails the snapshot check —
        the scalar path then reads the live cells, exactly like the
        oracle."""
        if not self.config.use_columnar:
            return False
        if not self._singleton_composition():
            return False
        if table is self.table:
            return self._encoding.matches(table)
        return list(table.schema.names) == list(self.table.schema.names)

    def _singleton_composition(self) -> bool:
        """Whether every BN node is exactly one table attribute — the
        composition the coded fast paths (columnar fit, staged clean,
        streaming CSV clean) all require."""
        return all(
            self.composition.members(node) == (node,)
            for node in self.composition.nodes
        )

    def _columnar_scorer(self) -> ColumnarNetScorer:
        if self._columnar is None:
            self._columnar = ColumnarNetScorer(self.bn, self._encoding)
        return self._columnar

    # -- scalar reference path -----------------------------------------------------

    def _clean_scalar(
        self,
        table: Table,
        stats: CleaningStats,
        cleaned: Table,
        repairs: list[Repair],
    ) -> None:
        mode = self.config.mode
        names = table.schema.names
        # Per-row confidence weights exist only for the fitted table —
        # a foreign table's rows contributed nothing to Algorithm 2's
        # accumulator, so their self-exclusion removes a neutral +1.
        fitted = table is self.table
        for i in range(table.n_rows):
            row = {a: table.columns[j][i] for j, a in enumerate(names)}
            weight = self._tuple_weight(i) if fitted else 1.0
            for attr in names:
                stats.cells_total += 1
                if mode == InferenceMode.PARTITIONED_PRUNED and not is_null(
                    row[attr]
                ):
                    if should_skip_cell(
                        self.cooc, row, attr, self.config.tau_clean
                    ):
                        stats.cells_skipped_pruning += 1
                        continue
                stats.cells_inspected += 1
                best, best_score, incumbent_score = self._best_candidate(
                    attr, row, weight, stats
                )
                # The margin (incumbent protection) is already folded
                # into incumbent_score by the competition.
                if best is not None and best_score > incumbent_score:
                    if cell_key(best) != cell_key(row[attr]):
                        cleaned.set_cell(i, attr, best)
                        repairs.append(
                            Repair(
                                i,
                                attr,
                                row[attr],
                                best,
                                incumbent_score,
                                best_score,
                            )
                        )

    def _tuple_weight(self, i: int) -> float:
        """The confidence weight row ``i`` contributed to Algorithm 2's
        accumulator (what ``exclude_self`` must remove)."""
        if self.confidences is None:
            return 1.0
        return 1.0 if self.confidences[i] >= self.config.tau else -self.config.beta

    # -- per-cell inference -----------------------------------------------------------

    def _best_candidate(
        self,
        attr: str,
        row: Mapping[str, Cell],
        weight: float,
        stats: CleaningStats,
    ) -> tuple[Cell | None, float, float]:
        """(best candidate, its score, incumbent score) for one cell.

        Results are cached on the (attribute, tuple weight, scoring
        context, incumbent) signature: rows sharing their context
        values reuse the whole candidate competition.  Within one table
        the weight is a function of the row's values, but the same
        signature can carry a different weight when a *foreign* table
        is cleaned (its rows are always weight 1.0), so the weight is
        part of the key.
        """
        node = self.composition.node_of(attr)
        subnet = self.subnets[node]
        # Eq. 2 sums correlations over *all* other attributes; the BN
        # partition of §6.1 only restricts the BN term.
        context_attrs = [a for a in self.table.schema.names if a != attr]
        current = row[attr]

        sig = (
            attr,
            weight,
            tuple(cell_key(row[a]) for a in self.table.schema.names),
        )
        hit = self._cell_cache.get(sig)
        if hit is not None:
            return hit

        pool = self._candidate_pool(attr, row, context_attrs, current, stats)
        result = self._run_competition(
            attr, node, subnet, row, pool, current, context_attrs, weight, stats
        )
        self._cell_cache[sig] = result
        return result

    def _candidate_pool(
        self,
        attr: str,
        row: Mapping[str, Cell],
        context_attrs: Sequence[str],
        current: Cell,
        stats: CleaningStats,
    ) -> list[Cell]:
        """Generate candidates: context co-occurring values first, then
        the most frequent domain values, UC-filtered and capped."""
        cap = self.config.effective_candidate_cap()

        # Rank context candidates by how strongly they co-occur with the
        # tuple (summed pair counts).  Ranking by marginal frequency (or
        # flooding from the first low-selectivity context attribute)
        # drops the low-frequency-but-context-exact repairs — typically
        # the FD-partner value that *is* the correct fix.
        strength: dict[object, float] = {}
        values_by_key: dict[object, Cell] = {}
        for attr_k in context_attrs:
            context_value = row[attr_k]
            for value in self.cooc.cooccurring_values(attr, attr_k, context_value):
                if is_null(value):
                    continue
                k = cell_key(value)
                values_by_key.setdefault(k, value)
                strength[k] = strength.get(k, 0.0) + self.cooc.pair_count(
                    attr, value, attr_k, context_value
                )
        ordered = sorted(values_by_key, key=lambda k: -strength[k])
        if cap is not None:
            ordered = ordered[:cap]
        pool_keys = set(ordered)

        # Top up with globally frequent values (the domain prior).
        for value in self.domains.candidate_values(attr, cap):
            k = cell_key(value)
            if k not in pool_keys:
                pool_keys.add(k)
                values_by_key[k] = value
                ordered.append(k)

        candidates = [values_by_key[k] for k in ordered]

        if self.config.use_ucs:
            filtered = []
            for c in candidates:
                if self._uc_ok(attr, c):
                    filtered.append(c)
                else:
                    stats.candidates_filtered_uc += 1
            candidates = filtered

        if cap is not None and len(candidates) > cap:
            candidates = sorted(
                candidates,
                key=lambda c: -strength.get(cell_key(c), 0.0),
            )[:cap]
        ordered = candidates

        if self.config.mode == InferenceMode.PARTITIONED_PRUNED:
            ordered = self.pruner.prune(
                ordered, row, attr, context_attrs, keep=()
            )
        return ordered

    def _uc_ok(self, attr: str, value: Cell) -> bool:
        key = (attr, cell_key(value))
        hit = self._uc_cache.get(key)
        if hit is None:
            hit = self.constraints.check_cell(attr, value)
            self._uc_cache[key] = hit
        return hit

    def _run_competition(
        self,
        attr: str,
        node: str,
        subnet: SubNetwork,
        row: Mapping[str, Cell],
        pool: Sequence[Cell],
        current: Cell,
        context_attrs: Sequence[str],
        weight: float,
        stats: CleaningStats,
    ) -> tuple[Cell | None, float, float]:
        """Score incumbent + pool; return (best, best score, incumbent score)."""
        contenders: list[Cell] = list(pool)
        if all(cell_key(c) != cell_key(current) for c in contenders):
            contenders.append(current)

        node_row = self.composition.node_row(row)
        bn_scores: dict[object, float] = {}
        for c in contenders:
            stats.candidates_evaluated += 1
            bn_scores[cell_key(c)] = self._bn_score(attr, node, subnet, node_row, c, row)

        current_key = cell_key(current)
        if self.config.use_compensatory:
            raw = {
                cell_key(c): self.comp.score(
                    c, row, attr, context_attrs,
                    is_incumbent=cell_key(c) == current_key,
                    self_weight=weight,
                )
                for c in contenders
            }
            w = self.config.comp_weight
            comp_log = {
                k: w * v
                for k, v in log_compensatory(
                    raw, self.config.comp_smoothing
                ).items()
            }
        else:
            comp_log = {cell_key(c): 0.0 for c in contenders}

        incumbent_penalty = 0.0
        if self.config.use_ucs and not self._uc_ok(attr, current):
            # A UC-violating observation must lose to any valid candidate
            # ("P[g] is set to 0 prior to inference", §7.3.1).
            incumbent_penalty = self.config.uc_violation_penalty

        # Incumbent protection (the repair margin) only applies to values
        # with independent support: a value that never co-occurs with its
        # tuple context in any *other* row is evidently suspect and gets
        # no benefit of the doubt — the same reliability signal as the
        # tuple-pruning filter of §6.2.
        margin = (
            self.config.repair_margin
            if self._incumbent_supported(attr, current, row, context_attrs)
            else self.config.unsupported_margin
        )

        best: Cell | None = None
        best_score = -float("inf")
        incumbent_score = -float("inf")
        for c in contenders:
            k = cell_key(c)
            total = bn_scores[k] + comp_log[k]
            if k == current_key:
                total = total - incumbent_penalty + margin
                incumbent_score = total
            if total > best_score:
                best, best_score = c, total

        # A *forced* repair (the incumbent is NULL or UC-violating, i.e.
        # essentially vetoed) must still be evidence-backed: a winner
        # that never co-occurs with this tuple's context elsewhere is a
        # guess, and guesses cost precision for no recall.
        forced = is_null(current) or incumbent_penalty > 0
        if (
            forced
            and best is not None
            and cell_key(best) != current_key
            and not self._candidate_supported(attr, best, row, context_attrs)
        ):
            return current, incumbent_score, incumbent_score
        return best, best_score, incumbent_score

    def _candidate_supported(
        self,
        attr: str,
        candidate: Cell,
        row: Mapping[str, Cell],
        context_attrs: Sequence[str],
    ) -> bool:
        """Whether ``candidate`` co-occurs with the tuple context in at
        least ``min_fill_support`` tuples."""
        need = self.config.min_fill_support
        for attr_k in context_attrs:
            if self.cooc.pair_count(attr, candidate, attr_k, row[attr_k]) >= need:
                return True
        return False

    def _incumbent_supported(
        self,
        attr: str,
        current: Cell,
        row: Mapping[str, Cell],
        context_attrs: Sequence[str],
    ) -> bool:
        """Whether the observed value co-occurs with its context in at
        least one other tuple (pair count ≥ 2: itself plus one more)."""
        if is_null(current):
            return False
        for attr_k in context_attrs:
            if self.cooc.pair_count(attr, current, attr_k, row[attr_k]) >= 2:
                return True
        return False

    def _bn_score(
        self,
        attr: str,
        node: str,
        subnet: SubNetwork,
        node_row: Mapping[str, Cell],
        candidate: Cell,
        row: Mapping[str, Cell],
    ) -> float:
        node_value = self.composition.node_value_with(node, row, attr, candidate)
        if self.config.mode == InferenceMode.BASIC:
            return self.bn.joint_log_prob_with(node_row, node, node_value)
        if subnet.is_isolated:
            # §6.1: isolated nodes get a uniform CPT — a constant that
            # cancels in the candidate competition.
            return 0.0
        return self.bn.blanket_log_score(node, node_value, node_row)

    # -- columnar fast path (staged pipeline helpers) -------------------------------

    def _domain_codes(self, attr: str) -> np.ndarray:
        """Codes of the attribute's domain values, most frequent first
        (the scalar ``DomainIndex.candidate_values`` order)."""
        codes = self._domain_code_cache.get(attr)
        if codes is None:
            vocab = self._encoding.vocab(attr)
            codes = np.array(
                [vocab.encode(v) for v in self.domains.candidate_values(attr, None)],
                dtype=np.int64,
            )
            self._domain_code_cache[attr] = codes
        return codes

    def _uc_code_mask(self, attr: str) -> np.ndarray:
        """Per-code user-constraint verdicts (the coded ``_uc_cache``).

        When incremental encoding extended the vocabulary since the
        cached mask was built, only the freshly minted codes are
        checked — the verdicts of existing codes never change.
        """
        vocab = self._encoding.vocab(attr)
        mask = self._uc_mask_cache.get(attr)
        if mask is not None and len(mask) == vocab.size:
            return mask
        start = 0 if mask is None else len(mask)
        extra = np.fromiter(
            (
                self.constraints.check_cell(attr, vocab.decode(code))
                for code in range(start, vocab.size)
            ),
            dtype=bool,
            count=vocab.size - start,
        )
        mask = extra if mask is None else np.concatenate([mask, extra])
        self._uc_mask_cache[attr] = mask
        return mask


def clean_table(
    table: Table,
    config: BCleanConfig | None = None,
    constraints: UCRegistry | None = None,
    **config_overrides,
) -> CleaningResult:
    """One-shot convenience wrapper: fit + clean in a single call.

    Keyword arguments beyond ``config``/``constraints`` override the
    corresponding :class:`BCleanConfig` fields, so the new execution
    knobs are one call away without building a config first::

        clean_table(table, chunk_rows=1024, executor="auto")
        clean_table(table, BCleanConfig.pip(), n_jobs=8)
    """
    if config is None:
        config = BCleanConfig(**config_overrides)
    elif config_overrides:
        config = replace(config, **config_overrides)
    engine = BClean(config, constraints)
    engine.fit(table)
    return engine.clean()
