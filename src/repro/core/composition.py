"""Attribute → BN-node composition (supports the node-merge interaction).

§4 lets users merge BN nodes: the merged node behaves as one random
variable whose value is the tuple of its constituents' values.
:class:`AttributeComposition` maps table attributes onto BN nodes —
by default one node per attribute — and materialises the node-level
view of a table that :class:`~repro.bayesnet.model.DiscreteBayesNet`
is fitted on.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.dataset.schema import Attribute, AttrType, Schema
from repro.dataset.table import Cell, Table
from repro.errors import CleaningError

#: Separator joining constituent values inside a merged node's value.
#: A unit-separator control char cannot collide with real data.
COMPOSE_SEP = "\x1f"


class AttributeComposition:
    """Grouping of table attributes into BN nodes."""

    def __init__(self, attributes: Sequence[str]):
        self._attributes = list(attributes)
        # node name -> ordered constituent attributes
        self._groups: dict[str, tuple[str, ...]] = {
            a: (a,) for a in attributes
        }
        # attribute -> owning node
        self._owner: dict[str, str] = {a: a for a in attributes}

    # -- structure ---------------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        """Current node names."""
        return list(self._groups)

    @property
    def attributes(self) -> list[str]:
        """Underlying table attributes."""
        return list(self._attributes)

    def members(self, node: str) -> tuple[str, ...]:
        """Constituent attributes of ``node``."""
        try:
            return self._groups[node]
        except KeyError as exc:
            raise CleaningError(f"unknown node {node!r}") from exc

    def node_of(self, attribute: str) -> str:
        """The node owning ``attribute``."""
        try:
            return self._owner[attribute]
        except KeyError as exc:
            raise CleaningError(f"unknown attribute {attribute!r}") from exc

    def is_merged(self, node: str) -> bool:
        """Whether ``node`` groups more than one attribute."""
        return len(self.members(node)) > 1

    def merge(self, nodes: Sequence[str], name: str | None = None) -> str:
        """Merge several existing nodes into one; returns the new name."""
        if len(nodes) < 2:
            raise CleaningError("merging needs at least two nodes")
        members: list[str] = []
        for n in nodes:
            members.extend(self.members(n))
        merged_name = name or "+".join(nodes)
        if merged_name in self._groups and merged_name not in nodes:
            raise CleaningError(f"node name {merged_name!r} already in use")
        for n in nodes:
            del self._groups[n]
        self._groups[merged_name] = tuple(members)
        for a in members:
            self._owner[a] = merged_name
        return merged_name

    # -- value mapping ------------------------------------------------------------

    def node_value(self, node: str, row: Mapping[str, Cell]) -> Cell:
        """The node's value for a row (composed for merged nodes)."""
        members = self.members(node)
        if len(members) == 1:
            return row[members[0]]
        return COMPOSE_SEP.join(
            "" if row[a] is None else str(row[a]) for a in members
        )

    def node_value_with(
        self, node: str, row: Mapping[str, Cell], attribute: str, candidate: Cell
    ) -> Cell:
        """Node value when ``attribute`` hypothetically takes ``candidate``."""
        members = self.members(node)
        if len(members) == 1:
            return candidate if members[0] == attribute else row[members[0]]
        return COMPOSE_SEP.join(
            (
                ""
                if (candidate if a == attribute else row[a]) is None
                else str(candidate if a == attribute else row[a])
            )
            for a in members
        )

    def node_row(self, row: Mapping[str, Cell]) -> dict[str, Cell]:
        """The full node-level view of an attribute-level row."""
        return {n: self.node_value(n, row) for n in self._groups}

    def node_table(self, table: Table) -> Table:
        """The node-level view of a whole table (fitted by the BN).

        Singleton nodes share the original column lists; merged nodes get
        composed TEXT columns.
        """
        columns: list[list[Cell]] = []
        attrs: list[Attribute] = []
        for node, members in self._groups.items():
            if len(members) == 1:
                attr = members[0]
                columns.append(table.column(attr))
                attrs.append(
                    Attribute(node, table.schema.type_of(attr))
                )
            else:
                member_cols = [table.column(a) for a in members]
                composed = [
                    COMPOSE_SEP.join(
                        "" if col[i] is None else str(col[i])
                        for col in member_cols
                    )
                    for i in range(table.n_rows)
                ]
                columns.append(composed)
                attrs.append(Attribute(node, AttrType.TEXT))
        return Table(Schema(attrs), columns)
