"""Exact inference over discrete Bayesian networks.

Two engines, matching §6.1's dichotomy:

- :class:`VariableElimination` — classical exact inference via sparse
  factors.  Handles *partial* evidence (unobserved variables are summed
  out), which the substrate supports even though the cleaning engine
  conditions on full rows.  This is the expensive path the paper says
  "incurs significant computational cost".
- :func:`markov_blanket_posterior` — the partitioned shortcut: with full
  evidence only the blanket factors of the query variable matter.

Factors are dictionaries from assignments to probabilities, so factor
size tracks the *observed* support rather than the dense domain product.
"""

from __future__ import annotations

import itertools
import math
from typing import Hashable, Mapping, Sequence

from repro.bayesnet.cpt import cell_key
from repro.bayesnet.model import DiscreteBayesNet
from repro.errors import InferenceError


class Factor:
    """A sparse non-negative function over a tuple of named variables."""

    def __init__(self, variables: Sequence[str], table: Mapping[tuple, float]):
        self.variables = tuple(variables)
        self.table: dict[tuple, float] = {
            tuple(k): float(v) for k, v in table.items() if v != 0.0
        }
        for key in self.table:
            if len(key) != len(self.variables):
                raise InferenceError(
                    f"assignment {key!r} does not match variables {self.variables!r}"
                )

    @classmethod
    def from_cpt(cls, bn: DiscreteBayesNet, node: str) -> "Factor":
        """Build the factor ``P(node | parents)`` over observed support.

        The support is the cross product of each variable's observed
        domain; unseen parent configurations fall back to the node's
        marginal (the CPT's own fallback rule).
        """
        cpt = bn.cpts[node]
        variables = (*cpt.parent_names, node)
        table: dict[tuple, float] = {}
        parent_domains = [bn.cpts[p].domain for p in cpt.parent_names]
        for config in itertools.product(*parent_domains) if parent_domains else [()]:
            for value in cpt.domain:
                table[(*config, value)] = cpt.prob(value, config)
        return cls(variables, table)

    @classmethod
    def from_cpt_with_evidence(
        cls,
        bn: DiscreteBayesNet,
        node: str,
        evidence: Mapping[str, Hashable],
    ) -> "Factor":
        """``P(node | parents)`` with observed variables fixed up front.

        Evaluating the CPT directly on the (possibly *unseen*) evidence
        values keeps the marginal-fallback semantics — a plain
        :meth:`reduce` on the enumerated factor would silently drop all
        mass for evidence outside the observed domain.
        """
        cpt = bn.cpts[node]
        free = [v for v in (*cpt.parent_names, node) if v not in evidence]
        free_domains = [
            bn.cpts[v].domain for v in free
        ]
        table: dict[tuple, float] = {}
        for combo in itertools.product(*free_domains) if free_domains else [()]:
            assignment = dict(zip(free, combo))
            parent_values = tuple(
                assignment.get(p, evidence.get(p)) for p in cpt.parent_names
            )
            value = assignment.get(node, evidence.get(node))
            table[tuple(combo)] = cpt.prob(value, parent_values)
        return cls(tuple(free), table)

    def reduce(self, evidence: Mapping[str, Hashable]) -> "Factor":
        """Condition on evidence: drop assignments that disagree, project
        out the observed variables."""
        keep_idx = [
            i for i, v in enumerate(self.variables) if v not in evidence
        ]
        fixed = {
            i: cell_key(evidence[v])
            for i, v in enumerate(self.variables)
            if v in evidence
        }
        new_vars = tuple(self.variables[i] for i in keep_idx)
        new_table: dict[tuple, float] = {}
        for key, val in self.table.items():
            if all(cell_key(key[i]) == fv for i, fv in fixed.items()):
                new_key = tuple(key[i] for i in keep_idx)
                new_table[new_key] = val
        return Factor(new_vars, new_table)

    def multiply(self, other: "Factor") -> "Factor":
        """Pointwise product over the union of variables (sparse join)."""
        shared = [v for v in self.variables if v in other.variables]
        self_shared_idx = [self.variables.index(v) for v in shared]
        other_shared_idx = [other.variables.index(v) for v in shared]
        other_only_idx = [
            i for i, v in enumerate(other.variables) if v not in shared
        ]
        new_vars = self.variables + tuple(other.variables[i] for i in other_only_idx)

        # Hash-join on the shared variables.
        buckets: dict[tuple, list[tuple]] = {}
        for okey in other.table:
            sig = tuple(cell_key(okey[i]) for i in other_shared_idx)
            buckets.setdefault(sig, []).append(okey)

        new_table: dict[tuple, float] = {}
        for skey, sval in self.table.items():
            sig = tuple(cell_key(skey[i]) for i in self_shared_idx)
            for okey in buckets.get(sig, ()):
                key = skey + tuple(okey[i] for i in other_only_idx)
                new_table[key] = sval * other.table[okey]
        return Factor(new_vars, new_table)

    def marginalize(self, variable: str) -> "Factor":
        """Sum out ``variable``."""
        if variable not in self.variables:
            raise InferenceError(f"{variable!r} not in factor {self.variables!r}")
        idx = self.variables.index(variable)
        new_vars = tuple(v for v in self.variables if v != variable)
        new_table: dict[tuple, float] = {}
        for key, val in self.table.items():
            new_key = key[:idx] + key[idx + 1 :]
            new_table[new_key] = new_table.get(new_key, 0.0) + val
        return Factor(new_vars, new_table)

    def normalize(self) -> "Factor":
        """Scale so the entries sum to 1."""
        total = sum(self.table.values())
        if total <= 0:
            raise InferenceError("cannot normalise an all-zero factor")
        return Factor(self.variables, {k: v / total for k, v in self.table.items()})

    def __len__(self) -> int:
        return len(self.table)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Factor({self.variables!r}, {len(self.table)} entries)"


class VariableElimination:
    """Exact posterior queries by sum-product variable elimination."""

    def __init__(self, bn: DiscreteBayesNet):
        self.bn = bn

    def query(
        self,
        target: str,
        evidence: Mapping[str, Hashable] | None = None,
        order: Sequence[str] | None = None,
    ) -> dict[Hashable, float]:
        """``P(target | evidence)`` as a dict over the target's domain.

        Parameters
        ----------
        target:
            Query variable.
        evidence:
            Observed variable → value.  Variables absent from evidence
            (other than the target) are summed out.
        order:
            Optional elimination order for the hidden variables; defaults
            to a min-degree heuristic.
        """
        evidence = dict(evidence or {})
        if target in evidence:
            raise InferenceError(f"target {target!r} cannot be evidence")
        if target not in self.bn.dag:
            raise InferenceError(f"unknown variable {target!r}")

        factors = [
            Factor.from_cpt_with_evidence(self.bn, node, evidence)
            for node in self.bn.dag.nodes
        ]
        factors = [f for f in factors if f.variables]

        hidden = [
            v
            for v in self.bn.dag.nodes
            if v != target and v not in evidence
        ]
        if order is None:
            order = self._min_degree_order(hidden, factors)

        for var in order:
            related = [f for f in factors if var in f.variables]
            if not related:
                continue
            factors = [f for f in factors if var not in f.variables]
            product = related[0]
            for f in related[1:]:
                product = product.multiply(f)
            factors.append(product.marginalize(var))

        result = None
        for f in factors:
            if target in f.variables:
                result = f if result is None else result.multiply(f)
        if result is None:
            raise InferenceError(f"no factor mentions target {target!r}")
        # Sum out any stray variables (possible with disconnected factors).
        for v in result.variables:
            if v != target:
                result = result.marginalize(v)
        result = result.normalize()
        idx = result.variables.index(target)
        return {key[idx]: val for key, val in result.table.items()}

    @staticmethod
    def _min_degree_order(hidden: Sequence[str], factors: Sequence[Factor]) -> list[str]:
        """Greedy min-degree elimination ordering over the factor graph."""
        neighbours: dict[str, set[str]] = {h: set() for h in hidden}
        for f in factors:
            for v in f.variables:
                if v in neighbours:
                    neighbours[v].update(u for u in f.variables if u != v)
        order: list[str] = []
        remaining = set(hidden)
        while remaining:
            best = min(remaining, key=lambda v: len(neighbours[v] & remaining))
            order.append(best)
            remaining.discard(best)
        return order

    def map_value(
        self, target: str, evidence: Mapping[str, Hashable] | None = None
    ) -> Hashable:
        """The MAP value of ``target`` given evidence."""
        posterior = self.query(target, evidence)
        return max(posterior.items(), key=lambda kv: kv[1])[0]


def markov_blanket_posterior(
    bn: DiscreteBayesNet,
    node: str,
    row: Mapping[str, object],
    candidates: Sequence[object] | None = None,
) -> dict[object, float]:
    """Partitioned-inference posterior of §6.1 (full evidence required).

    Equivalent to :meth:`VariableElimination.query` with every other
    variable observed, but touches only the factors inside the node's
    Markov blanket.
    """
    return bn.posterior(node, row, candidates)


def log_sum_exp(log_values: Sequence[float]) -> float:
    """Numerically stable ``log Σ exp(x_i)``."""
    if not log_values:
        raise InferenceError("log_sum_exp of empty sequence")
    peak = max(log_values)
    if peak == -math.inf:
        return -math.inf
    return peak + math.log(sum(math.exp(v - peak) for v in log_values))
