"""Discrete Bayesian-network substrate: DAGs, CPTs, inference, learning."""

from repro.bayesnet.beliefprop import BeliefPropagation, BPResult
from repro.bayesnet.cpt import CPT, NULL_KEY, CodedCPT, cell_key
from repro.bayesnet.dag import DAG
from repro.bayesnet.inference import (
    Factor,
    VariableElimination,
    log_sum_exp,
    markov_blanket_posterior,
)
from repro.bayesnet.model import ColumnarNetScorer, DiscreteBayesNet
from repro.bayesnet.serialize import load_bn, load_dag, save_bn, save_dag

__all__ = [
    "BPResult",
    "BeliefPropagation",
    "CPT",
    "CodedCPT",
    "ColumnarNetScorer",
    "DAG",
    "DiscreteBayesNet",
    "Factor",
    "NULL_KEY",
    "VariableElimination",
    "cell_key",
    "load_bn",
    "load_dag",
    "log_sum_exp",
    "markov_blanket_posterior",
    "save_bn",
    "save_dag",
]
