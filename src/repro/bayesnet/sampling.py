"""Approximate inference by sampling (forward sampling + Gibbs).

§8 contrasts exact inference against "approximate inference, based on
sampling techniques such as Gibbs sampling" that "trades runtime
improvement for accuracy".  The substrate supports both so that the
trade-off is measurable on our networks:

- :func:`forward_sample` draws ancestral samples from the joint;
- :class:`GibbsSampler` estimates conditional posteriors under evidence,
  agreeing with variable elimination in the large-sample limit (tested).
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Hashable, Mapping

from repro.bayesnet.cpt import cell_key
from repro.bayesnet.model import DiscreteBayesNet
from repro.errors import InferenceError


def _draw(rng: random.Random, distribution: dict[Hashable, float]) -> Hashable:
    """Sample a key proportionally to its (non-negative) weight."""
    total = sum(distribution.values())
    if total <= 0:
        raise InferenceError("cannot sample from an all-zero distribution")
    r = rng.random() * total
    acc = 0.0
    last = None
    for value, weight in distribution.items():
        acc += weight
        last = value
        if r <= acc:
            return value
    return last


def forward_sample(
    bn: DiscreteBayesNet, n_samples: int, seed: int = 0
) -> list[dict[str, Hashable]]:
    """Draw ``n_samples`` ancestral samples from the joint distribution.

    Nodes are visited in topological order; each node is drawn from its
    CPT given the already-sampled parents.
    """
    if n_samples <= 0:
        raise InferenceError(f"n_samples must be positive, got {n_samples}")
    rng = random.Random(seed)
    order = bn.dag.topological_order()
    samples = []
    for _ in range(n_samples):
        row: dict[str, Hashable] = {}
        for node in order:
            cpt = bn.cpts[node]
            parent_values = tuple(row[p] for p in cpt.parent_names)
            row[node] = _draw(rng, cpt.distribution(parent_values))
        samples.append(row)
    return samples


class GibbsSampler:
    """Gibbs sampling for posterior queries under evidence."""

    def __init__(self, bn: DiscreteBayesNet, seed: int = 0):
        self.bn = bn
        self.seed = seed

    def query(
        self,
        target: str,
        evidence: Mapping[str, Hashable] | None = None,
        n_samples: int = 2000,
        burn_in: int = 200,
    ) -> dict[Hashable, float]:
        """Estimate ``P(target | evidence)`` by Gibbs sampling.

        All non-evidence variables are resampled in turn from their
        full conditionals (Markov-blanket scores); the target's visited
        states after burn-in form the estimate.
        """
        evidence = dict(evidence or {})
        if target in evidence:
            raise InferenceError(f"target {target!r} cannot be evidence")
        if target not in self.bn.dag:
            raise InferenceError(f"unknown variable {target!r}")
        rng = random.Random(self.seed)

        hidden = [v for v in self.bn.dag.nodes if v not in evidence]
        state: dict[str, Hashable] = dict(evidence)
        for v in hidden:
            domain = self.bn.cpts[v].domain
            if not domain:
                raise InferenceError(f"variable {v!r} has an empty domain")
            state[v] = domain[rng.randrange(len(domain))]

        counts: Counter = Counter()
        total_steps = burn_in + n_samples
        for step in range(total_steps):
            for v in hidden:
                weights = {
                    value: _exp_normalise_weight(self.bn, v, value, state)
                    for value in self.bn.cpts[v].domain
                }
                state[v] = _draw(rng, weights)
            if step >= burn_in:
                counts[cell_key(state[target])] += 1

        total = sum(counts.values())
        return {v: c / total for v, c in counts.items()}

    def map_value(
        self,
        target: str,
        evidence: Mapping[str, Hashable] | None = None,
        n_samples: int = 2000,
    ) -> Hashable:
        """The most visited posterior state of ``target``."""
        posterior = self.query(target, evidence, n_samples=n_samples)
        return max(posterior.items(), key=lambda kv: kv[1])[0]


def _exp_normalise_weight(
    bn: DiscreteBayesNet, node: str, value: Hashable, state: Mapping[str, Hashable]
) -> float:
    """Unnormalised full-conditional weight (blanket score, exp'd safely)."""
    import math

    score = bn.blanket_log_score(node, value, state)
    # The blanket score is a sum of log-probabilities, bounded above by
    # 0; exp underflow to 0.0 is acceptable for sampling weights.
    return math.exp(max(score, -700.0))
