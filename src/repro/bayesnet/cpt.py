"""Conditional probability tables for discrete variables.

A :class:`CPT` stores, for one variable, smoothed conditional
distributions ``P(X | parents)`` estimated from observed co-occurrence
counts.  Tables are *sparse*: only parent configurations seen in the
data are materialised, and unseen configurations fall back to the
variable's marginal distribution (the "prior probability ... inferred
from D" of §2 for parentless nodes generalises to unseen contexts).

NULL is treated as an ordinary domain symbol — the cleaning engine
repairs missing values by out-scoring NULL with a better candidate, so
the CPT must be able to both condition on and assign mass to NULL.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Hashable, Sequence

from repro.errors import CPTError

# Sentinel used to key NULL cells inside count tables (None itself is a
# valid dict key, but a named sentinel makes dumps readable).
NULL_KEY = "␀NULL"


def cell_key(value: object) -> Hashable:
    """Canonical hashable key for a cell value (NULL-safe)."""
    if value is None:
        return NULL_KEY
    if isinstance(value, float) and value != value:  # NaN
        return NULL_KEY
    return value


class CPT:
    """Laplace-smoothed conditional distribution of one discrete variable.

    Parameters
    ----------
    variable:
        Name of the child variable.
    parent_names:
        Ordered parent variable names (may be empty).
    alpha:
        Laplace (add-``alpha``) smoothing pseudo-count.
    """

    def __init__(
        self,
        variable: str,
        parent_names: Sequence[str] = (),
        alpha: float = 1.0,
    ):
        if alpha <= 0:
            raise CPTError(f"smoothing alpha must be positive, got {alpha}")
        self.variable = variable
        self.parent_names = tuple(parent_names)
        self.alpha = alpha
        self._config_counts: dict[tuple, Counter] = {}
        self._config_totals: dict[tuple, int] = {}
        self._marginal: Counter = Counter()
        self._n = 0

    # -- estimation -------------------------------------------------------------

    def observe(self, value: object, parent_values: Sequence[object] = ()) -> None:
        """Record one observation of ``variable = value`` in a parent context."""
        if len(parent_values) != len(self.parent_names):
            raise CPTError(
                f"expected {len(self.parent_names)} parent values, "
                f"got {len(parent_values)}"
            )
        vk = cell_key(value)
        config = tuple(cell_key(p) for p in parent_values)
        counts = self._config_counts.setdefault(config, Counter())
        counts[vk] += 1
        self._config_totals[config] = self._config_totals.get(config, 0) + 1
        self._marginal[vk] += 1
        self._n += 1

    def fit(
        self,
        values: Sequence[object],
        parent_columns: Sequence[Sequence[object]] = (),
    ) -> "CPT":
        """Estimate from full columns: ``values[i]`` with parents at row i."""
        if len(parent_columns) != len(self.parent_names):
            raise CPTError(
                f"expected {len(self.parent_names)} parent columns, "
                f"got {len(parent_columns)}"
            )
        for col in parent_columns:
            if len(col) != len(values):
                raise CPTError("parent column length mismatch")
        for i, v in enumerate(values):
            self.observe(v, tuple(col[i] for col in parent_columns))
        return self

    # -- queries ------------------------------------------------------------------

    @property
    def domain(self) -> list[Hashable]:
        """Distinct (keyed) values observed for the variable."""
        return list(self._marginal)

    @property
    def domain_size(self) -> int:
        """Number of distinct values (at least 1 for smoothing sanity)."""
        return max(1, len(self._marginal))

    @property
    def n_observations(self) -> int:
        """Total number of recorded observations."""
        return self._n

    @property
    def n_configs(self) -> int:
        """Number of distinct parent configurations seen."""
        return len(self._config_counts)

    def prob(self, value: object, parent_values: Sequence[object] = ()) -> float:
        """Smoothed ``P(variable = value | parents = parent_values)``.

        Falls back to the marginal distribution for parent configurations
        never seen in the data.
        """
        if len(parent_values) != len(self.parent_names):
            raise CPTError(
                f"expected {len(self.parent_names)} parent values, "
                f"got {len(parent_values)}"
            )
        vk = cell_key(value)
        config = tuple(cell_key(p) for p in parent_values)
        counts = self._config_counts.get(config)
        if counts is None:
            return self.marginal_prob(value)
        total = self._config_totals[config]
        return (counts.get(vk, 0) + self.alpha) / (
            total + self.alpha * self.domain_size
        )

    def log_prob(self, value: object, parent_values: Sequence[object] = ()) -> float:
        """``log P(value | parents)`` (never −inf thanks to smoothing)."""
        return math.log(self.prob(value, parent_values))

    def marginal_prob(self, value: object) -> float:
        """Smoothed marginal ``P(variable = value)``."""
        vk = cell_key(value)
        return (self._marginal.get(vk, 0) + self.alpha) / (
            self._n + self.alpha * self.domain_size
        )

    def distribution(self, parent_values: Sequence[object] = ()) -> dict[Hashable, float]:
        """The full conditional distribution over the observed domain.

        Only observed values are listed; their probabilities sum to less
        than 1 by the smoothing mass reserved for unseen values.
        """
        return {
            v: self.prob(v, parent_values) for v in self._marginal
        }

    def map_value(self, parent_values: Sequence[object] = ()) -> Hashable | None:
        """The most probable value in this context (None if unfitted)."""
        if not self._marginal:
            return None
        config = tuple(cell_key(p) for p in parent_values)
        counts = self._config_counts.get(config)
        if counts:
            return counts.most_common(1)[0][0]
        return self._marginal.most_common(1)[0][0]

    def seen_config(self, parent_values: Sequence[object]) -> bool:
        """Whether this exact parent configuration occurred in the data."""
        return tuple(cell_key(p) for p in parent_values) in self._config_counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CPT({self.variable!r} | {list(self.parent_names)}, "
            f"{self.domain_size} values, {self.n_configs} configs)"
        )
