"""Conditional probability tables for discrete variables.

A :class:`CPT` stores, for one variable, smoothed conditional
distributions ``P(X | parents)`` estimated from observed co-occurrence
counts.  Tables are *sparse*: only parent configurations seen in the
data are materialised, and unseen configurations fall back to the
variable's marginal distribution (the "prior probability ... inferred
from D" of §2 for parentless nodes generalises to unseen contexts).

NULL is treated as an ordinary domain symbol — the cleaning engine
repairs missing values by out-scoring NULL with a better candidate, so
the CPT must be able to both condition on and assign mass to NULL.

:class:`CodedCPT` is the columnar companion: it freezes a fitted CPT
into a dense log-probability matrix indexed by *(parent-configuration
row, value code)* under a shared :class:`~repro.dataset.encoding`
vocabulary, so one candidate competition scores as an array slice
instead of per-candidate dict walks.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import TYPE_CHECKING, Hashable, Sequence

import numpy as np

# Re-exported here for backwards compatibility; the definitions live in
# the dataset layer (the import-graph leaf) so the interning layer can
# share them without touching the bayesnet package.
from repro.dataset.table import NULL_KEY, cell_key
from repro.errors import CPTError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.dataset.encoding import AttributeVocabulary


class CPT:
    """Laplace-smoothed conditional distribution of one discrete variable.

    Parameters
    ----------
    variable:
        Name of the child variable.
    parent_names:
        Ordered parent variable names (may be empty).
    alpha:
        Laplace (add-``alpha``) smoothing pseudo-count.
    """

    def __init__(
        self,
        variable: str,
        parent_names: Sequence[str] = (),
        alpha: float = 1.0,
    ):
        if alpha <= 0:
            raise CPTError(f"smoothing alpha must be positive, got {alpha}")
        self.variable = variable
        self.parent_names = tuple(parent_names)
        self.alpha = alpha
        self._config_counts: dict[tuple, Counter] = {}
        self._config_totals: dict[tuple, int] = {}
        self._marginal: Counter = Counter()
        self._n = 0

    # -- estimation -------------------------------------------------------------

    def observe(self, value: object, parent_values: Sequence[object] = ()) -> None:
        """Record one observation of ``variable = value`` in a parent context."""
        if len(parent_values) != len(self.parent_names):
            raise CPTError(
                f"expected {len(self.parent_names)} parent values, "
                f"got {len(parent_values)}"
            )
        vk = cell_key(value)
        config = tuple(cell_key(p) for p in parent_values)
        counts = self._config_counts.setdefault(config, Counter())
        counts[vk] += 1
        self._config_totals[config] = self._config_totals.get(config, 0) + 1
        self._marginal[vk] += 1
        self._n += 1

    def fit(
        self,
        values: Sequence[object],
        parent_columns: Sequence[Sequence[object]] = (),
    ) -> "CPT":
        """Estimate from full columns: ``values[i]`` with parents at row i."""
        if len(parent_columns) != len(self.parent_names):
            raise CPTError(
                f"expected {len(self.parent_names)} parent columns, "
                f"got {len(parent_columns)}"
            )
        for col in parent_columns:
            if len(col) != len(values):
                raise CPTError("parent column length mismatch")
        for i, v in enumerate(values):
            self.observe(v, tuple(col[i] for col in parent_columns))
        return self

    @classmethod
    def from_coded_counts(
        cls,
        variable: str,
        parent_names: Sequence[str],
        alpha: float,
        vocab: "AttributeVocabulary",
        parent_vocabs: Sequence["AttributeVocabulary"],
        child_codes: np.ndarray,
        parent_code_cols: Sequence[np.ndarray],
        counts: np.ndarray,
        first_rows: np.ndarray,
        n_rows: int,
    ) -> "CPT":
        """Rebuild the exact state of a row-walking :meth:`fit` from
        distinct *(parent configuration, value)* count arrays.

        ``child_codes[i] / parent_code_cols[p][i] / counts[i] /
        first_rows[i]`` describe the i-th distinct coded family entry
        (typically the output of
        :func:`repro.stats.infotheory.joint_code_counts` over the coded
        columns, or a re-sliced co-occurrence
        :class:`~repro.core.cooccurrence.PairArrays` for single-parent
        families).  Entries are processed in ``first_rows`` order, so
        every dict — config counts, config totals, the marginal — gets
        the same keys, the same integer counts, *and the same insertion
        order* as :meth:`observe` called row by row; the result is
        indistinguishable from the scalar estimate.
        """
        if len(parent_vocabs) != len(parent_names) or len(parent_code_cols) != len(
            parent_names
        ):
            raise CPTError(
                f"expected {len(parent_names)} parent vocabularies/columns"
            )
        cpt = cls(variable, parent_names, alpha=alpha)
        order = np.argsort(np.asarray(first_rows), kind="stable")
        child_list = np.asarray(child_codes)[order].tolist()
        parent_lists = [np.asarray(c)[order].tolist() for c in parent_code_cols]
        count_list = np.asarray(counts)[order].tolist()
        child_keys = vocab.keys()
        parent_keys = [pv.keys() for pv in parent_vocabs]
        config_cache: dict[tuple, tuple] = {}
        config_counts = cpt._config_counts
        config_totals = cpt._config_totals
        marginal = cpt._marginal
        for i, (ccode, cnt) in enumerate(zip(child_list, count_list)):
            codes = tuple(col[i] for col in parent_lists)
            config = config_cache.get(codes)
            if config is None:
                config = tuple(
                    pk[c] for pk, c in zip(parent_keys, codes)
                )
                config_cache[codes] = config
            vk = child_keys[ccode]
            counter = config_counts.get(config)
            if counter is None:
                counter = config_counts[config] = Counter()
            counter[vk] += cnt
            config_totals[config] = config_totals.get(config, 0) + cnt
            marginal[vk] += cnt
        cpt._n = n_rows
        return cpt

    # -- queries ------------------------------------------------------------------

    @property
    def domain(self) -> list[Hashable]:
        """Distinct (keyed) values observed for the variable."""
        return list(self._marginal)

    @property
    def domain_size(self) -> int:
        """Number of distinct values (at least 1 for smoothing sanity)."""
        return max(1, len(self._marginal))

    @property
    def n_observations(self) -> int:
        """Total number of recorded observations."""
        return self._n

    @property
    def n_configs(self) -> int:
        """Number of distinct parent configurations seen."""
        return len(self._config_counts)

    def prob(self, value: object, parent_values: Sequence[object] = ()) -> float:
        """Smoothed ``P(variable = value | parents = parent_values)``.

        Falls back to the marginal distribution for parent configurations
        never seen in the data.
        """
        if len(parent_values) != len(self.parent_names):
            raise CPTError(
                f"expected {len(self.parent_names)} parent values, "
                f"got {len(parent_values)}"
            )
        vk = cell_key(value)
        config = tuple(cell_key(p) for p in parent_values)
        counts = self._config_counts.get(config)
        if counts is None:
            return self.marginal_prob(value)
        total = self._config_totals[config]
        return (counts.get(vk, 0) + self.alpha) / (
            total + self.alpha * self.domain_size
        )

    def log_prob(self, value: object, parent_values: Sequence[object] = ()) -> float:
        """``log P(value | parents)`` (never −inf thanks to smoothing)."""
        return math.log(self.prob(value, parent_values))

    def marginal_prob(self, value: object) -> float:
        """Smoothed marginal ``P(variable = value)``."""
        vk = cell_key(value)
        return (self._marginal.get(vk, 0) + self.alpha) / (
            self._n + self.alpha * self.domain_size
        )

    def distribution(self, parent_values: Sequence[object] = ()) -> dict[Hashable, float]:
        """The full conditional distribution over the observed domain.

        Only observed values are listed; their probabilities sum to less
        than 1 by the smoothing mass reserved for unseen values.
        """
        return {
            v: self.prob(v, parent_values) for v in self._marginal
        }

    def map_value(self, parent_values: Sequence[object] = ()) -> Hashable | None:
        """The most probable value in this context (None if unfitted)."""
        if not self._marginal:
            return None
        config = tuple(cell_key(p) for p in parent_values)
        counts = self._config_counts.get(config)
        if counts:
            return counts.most_common(1)[0][0]
        return self._marginal.most_common(1)[0][0]

    def seen_config(self, parent_values: Sequence[object]) -> bool:
        """Whether this exact parent configuration occurred in the data."""
        return tuple(cell_key(p) for p in parent_values) in self._config_counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CPT({self.variable!r} | {list(self.parent_names)}, "
            f"{self.domain_size} values, {self.n_configs} configs)"
        )


class CodedCPT:
    """Dense log-probability view of a fitted :class:`CPT` over integer
    value codes.

    ``matrix[r, v]`` is ``log P(value-code v | parent-config r)`` where
    ``r`` indexes the *observed* parent configurations (sorted by their
    mixed-radix fused code) and the extra last row holds the marginal
    fallback used for configurations never seen in the data — exactly
    the semantics of :meth:`CPT.prob`, precomputed once so a whole
    candidate pool scores as one array slice.

    Parent configurations are addressed by fusing the parents' value
    codes with mixed-radix ``strides`` (derived from the parent
    vocabularies' cardinalities); :meth:`config_rows` resolves fused
    codes to matrix rows with ``searchsorted``, unseen fusions landing
    on the fallback row.

    The CPT must have been fitted on the same table the vocabularies
    intern — every observed value/config is then encodable.
    """

    def __init__(
        self,
        cpt: CPT,
        vocab: "AttributeVocabulary",
        parent_vocabs: Sequence["AttributeVocabulary"],
    ):
        if len(parent_vocabs) != len(cpt.parent_names):
            raise CPTError(
                f"expected {len(cpt.parent_names)} parent vocabularies, "
                f"got {len(parent_vocabs)}"
            )
        self.variable = cpt.variable
        self.parent_names = cpt.parent_names

        # Build-time cardinalities are the "seen" horizon: vocabularies
        # extended later (incremental foreign encoding) mint codes at or
        # beyond them, and those codes must score as never-observed
        # values / unseen parent configurations.
        cards = [pv.size for pv in parent_vocabs]
        self.parent_cards = tuple(cards)
        strides = [1] * len(cards)
        span = 1
        for i in range(len(cards) - 1, -1, -1):
            strides[i] = span
            span *= cards[i]
            if span > 2**62:
                raise CPTError(
                    f"parent configuration space of {cpt.variable!r} "
                    "overflows the fused-code range"
                )
        self.strides = tuple(strides)

        n_values = vocab.size
        self.n_values = n_values
        alpha = cpt.alpha
        d = cpt.domain_size
        keys = vocab.keys()

        def encode_config(config: tuple) -> int:
            fused = 0
            for key, pv, stride in zip(config, parent_vocabs, strides):
                code = pv.encode(key)
                if code < 0:
                    raise CPTError(
                        f"parent value {key!r} of {cpt.variable!r} is not "
                        "in the shared vocabulary — CPT and encoding were "
                        "built from different tables"
                    )
                fused += code * stride
            return fused

        configs = sorted(
            ((encode_config(c), c) for c in cpt._config_counts),
            key=lambda fc: fc[0],
        )
        self._config_keys = np.array([f for f, _ in configs], dtype=np.int64)
        self.n_configs = len(configs)

        self.matrix = np.empty((self.n_configs + 1, n_values), dtype=np.float64)
        # unseen[r]: log-prob a value the CPT never observed gets under
        # config row r — Laplace mass alpha/denom, i.e. the matrix fill
        # value.  Lets consumers score codes minted after the build.
        self.unseen = np.empty(self.n_configs + 1, dtype=np.float64)
        code_of_key = {k: i for i, k in enumerate(keys)}
        for r, (_, config) in enumerate(configs):
            counts = cpt._config_counts[config]
            denom = cpt._config_totals[config] + alpha * d
            fill = math.log(alpha / denom)
            self.matrix[r].fill(fill)
            self.unseen[r] = fill
            for key, count in counts.items():
                self.matrix[r, code_of_key[key]] = math.log(
                    (count + alpha) / denom
                )
        denom = cpt._n + alpha * d
        self.matrix[self.n_configs] = [
            math.log((cpt._marginal.get(k, 0) + alpha) / denom) for k in keys
        ]
        self.unseen[self.n_configs] = math.log(alpha / denom)

    def config_row(self, fused: int) -> int:
        """Matrix row of one fused parent configuration (fallback row
        when the configuration never occurred)."""
        idx = int(np.searchsorted(self._config_keys, fused))
        if idx < self.n_configs and self._config_keys[idx] == fused:
            return idx
        return self.n_configs

    def config_rows(self, fused: np.ndarray) -> np.ndarray:
        """Batched :meth:`config_row` over an array of fused codes (any
        shape — the batched-competition scorer passes 2-D stacks)."""
        if self.n_configs == 0:
            return np.zeros(np.shape(fused), dtype=np.int64)
        idx = np.searchsorted(self._config_keys, fused)
        clipped = np.minimum(idx, self.n_configs - 1)
        hit = self._config_keys[clipped] == fused
        return np.where(hit, clipped, self.n_configs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CodedCPT({self.variable!r} | {list(self.parent_names)}, "
            f"{self.matrix.shape[1]} codes, {self.n_configs} configs)"
        )
