"""JSON serialisation of networks and CPTs.

The §7.3.2 workflow — auto-construct, review, hand-edit — only pays off
if the edited network can be kept: cleaning runs are repeated as data
arrives, and nobody re-edits the Flights network every morning.  This
module round-trips DAGs and fitted :class:`DiscreteBayesNet` models
through plain JSON (human-diffable, so network edits can be reviewed
like code).

NULL-keyed entries use the substrate's :data:`NULL_KEY` sentinel, and
non-string domain values are tagged with their type so integers survive
the round trip (JSON object keys are always strings).

The model registry (:mod:`repro.serve.registry`) extends the network
round-trip with the build-time :class:`~repro.dataset.encoding.TableEncoding`
(:func:`encoding_to_dict` / :func:`encoding_from_dict`): the coded
statistics a reloaded model cleans with are only byte-identical to the
in-memory ones if every code — **including codes minted incrementally
while cleaning foreign tables** — maps to the same value after the
round trip, so the encoding must travel with the network.
:func:`save_bn` accepts the encoding as an optional rider and
:func:`load_bn_bundle` hands both back.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any

import numpy as np

from repro.bayesnet.cpt import CPT
from repro.bayesnet.dag import DAG
from repro.bayesnet.model import DiscreteBayesNet
from repro.dataset.encoding import AttributeVocabulary, TableEncoding
from repro.errors import GraphError

FORMAT_VERSION = 1


def _encode_value(value: Any) -> Any:
    """A JSON-safe tagged form of one domain value."""
    if isinstance(value, bool):  # before int: bool is an int subclass
        return {"t": "bool", "v": value}
    if isinstance(value, (int, float)):
        return {"t": type(value).__name__, "v": value}
    return value  # strings (including NULL_KEY) pass through


def _decode_value(raw: Any) -> Any:
    if isinstance(raw, dict) and "t" in raw:
        if raw["t"] == "int":
            return int(raw["v"])
        if raw["t"] == "float":
            return float(raw["v"])
        if raw["t"] == "bool":
            return bool(raw["v"])
        raise GraphError(f"unknown value tag {raw['t']!r}")
    return raw


# -- DAG ---------------------------------------------------------------------


def dag_to_dict(dag: DAG) -> dict:
    """A JSON-safe description of a DAG (nodes + weighted edges)."""
    return {
        "version": FORMAT_VERSION,
        "nodes": dag.nodes,
        "edges": [
            {"from": u, "to": v, "weight": w} for u, v, w in dag.edges()
        ],
    }


def dag_from_dict(payload: dict) -> DAG:
    """Rebuild a DAG; edge insertion re-checks acyclicity."""
    try:
        nodes = payload["nodes"]
        edges = payload["edges"]
    except (KeyError, TypeError) as exc:
        raise GraphError(f"malformed DAG payload: missing {exc}") from exc
    dag = DAG(nodes)
    for edge in edges:
        dag.add_edge(edge["from"], edge["to"], edge.get("weight", 1.0))
    return dag


def save_dag(dag: DAG, path: str | Path) -> None:
    """Write a DAG as (pretty-printed, diffable) JSON."""
    Path(path).write_text(
        json.dumps(dag_to_dict(dag), indent=2) + "\n", encoding="utf-8"
    )


def load_dag(path: str | Path) -> DAG:
    """Read a DAG written by :func:`save_dag`."""
    return dag_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


# -- CPT ---------------------------------------------------------------------


def cpt_to_dict(cpt: CPT) -> dict:
    """Serialise the raw counts (not probabilities): counts compose
    under re-smoothing, probabilities do not."""
    return {
        "variable": cpt.variable,
        "parents": list(cpt.parent_names),
        "alpha": cpt.alpha,
        "configs": [
            {
                "parents": [_encode_value(p) for p in config],
                "counts": [
                    [_encode_value(v), n] for v, n in counts.items()
                ],
            }
            for config, counts in cpt._config_counts.items()
        ],
    }


def cpt_from_dict(payload: dict) -> CPT:
    """Rebuild a CPT from its count form.

    Counts are injected directly rather than replayed through
    ``observe`` — a 200k-observation CPT reloads in one pass.  The
    stored keys were produced by ``cell_key`` at save time, so they are
    already in canonical form.
    """
    cpt = CPT(
        payload["variable"],
        tuple(payload["parents"]),
        alpha=payload.get("alpha", 1.0),
    )
    for config in payload["configs"]:
        parents = tuple(_decode_value(p) for p in config["parents"])
        counts = Counter(
            {_decode_value(v): int(n) for v, n in config["counts"]}
        )
        cpt._config_counts[parents] = counts
        total = sum(counts.values())
        cpt._config_totals[parents] = total
        cpt._marginal.update(counts)
        cpt._n += total
    return cpt


# -- table encoding ----------------------------------------------------------


def encoding_to_dict(encoding: TableEncoding) -> dict:
    """A JSON-safe description of a table interning.

    Per-attribute vocabularies are stored as the representative values
    of codes ``1..size-1`` in code order (code 0 is always NULL, so it
    is implicit); replaying :meth:`AttributeVocabulary.add` over that
    list reproduces every code number exactly — minted foreign codes
    included, which is what makes a reloaded model's repairs
    byte-identical.  The fitted coded columns ride along so the fit
    table can be reconstructed without re-interning.
    """
    return {
        "version": FORMAT_VERSION,
        "n_rows": encoding.n_rows,
        "names": list(encoding.names),
        "vocabs": {
            name: [
                _encode_value(v)
                for v in encoding.vocab(name)._values[1:]
            ]
            for name in encoding.names
        },
        "codes": {
            name: encoding.codes(name).tolist() for name in encoding.names
        },
    }


def encoding_from_dict(payload: dict) -> TableEncoding:
    """Rebuild a :class:`TableEncoding` written by
    :func:`encoding_to_dict` (no source table: the ``matches`` fast
    path is re-armed by the registry once it reconstructs one)."""
    try:
        names = list(payload["names"])
        n_rows = int(payload["n_rows"])
        vocabs = payload["vocabs"]
        codes = payload["codes"]
    except (KeyError, TypeError) as exc:
        raise GraphError(f"malformed encoding payload: missing {exc}") from exc
    encoding = TableEncoding.__new__(TableEncoding)
    encoding.names = names
    encoding._index_of = {a: j for j, a in enumerate(names)}
    encoding.n_rows = n_rows
    encoding._source = None
    encoding._source_mutations = -1
    encoding._vocabs = {}
    encoding._codes = {}
    for name in names:
        vocab = AttributeVocabulary(name)
        for raw in vocabs[name]:
            vocab.add(_decode_value(raw))
        encoding._vocabs[name] = vocab
        encoding._codes[name] = np.asarray(codes[name], dtype=np.int64)
    return encoding


# -- full model --------------------------------------------------------------


def bn_to_dict(
    bn: DiscreteBayesNet, encoding: TableEncoding | None = None
) -> dict:
    """A JSON-safe description of a fitted network, optionally carrying
    the build-time table encoding (the registry's reload contract)."""
    payload = {
        "version": FORMAT_VERSION,
        "dag": dag_to_dict(bn.dag),
        "alpha": bn.alpha,
        "cpts": {node: cpt_to_dict(cpt) for node, cpt in bn.cpts.items()},
    }
    if encoding is not None:
        payload["encoding"] = encoding_to_dict(encoding)
    return payload


def bn_from_dict(payload: dict) -> DiscreteBayesNet:
    """Rebuild a fitted network written by :func:`bn_to_dict`."""
    dag = dag_from_dict(payload["dag"])
    cpts = {
        node: cpt_from_dict(raw) for node, raw in payload["cpts"].items()
    }
    return DiscreteBayesNet(dag, cpts, alpha=payload.get("alpha", 1.0))


def save_bn(
    bn: DiscreteBayesNet,
    path: str | Path,
    encoding: TableEncoding | None = None,
) -> None:
    """Write a fitted network as JSON (with its table encoding when
    given, so a reload reproduces minted codes exactly)."""
    Path(path).write_text(
        json.dumps(bn_to_dict(bn, encoding=encoding)) + "\n", encoding="utf-8"
    )


def load_bn(path: str | Path) -> DiscreteBayesNet:
    """Read a network written by :func:`save_bn`."""
    return bn_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def load_bn_bundle(
    path: str | Path,
) -> tuple[DiscreteBayesNet, TableEncoding | None]:
    """Read a network plus its encoding rider (``None`` for files
    written without one — the pre-registry format)."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    bn = bn_from_dict(payload)
    raw = payload.get("encoding")
    return bn, encoding_from_dict(raw) if raw is not None else None
