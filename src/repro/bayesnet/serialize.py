"""JSON serialisation of networks and CPTs.

The §7.3.2 workflow — auto-construct, review, hand-edit — only pays off
if the edited network can be kept: cleaning runs are repeated as data
arrives, and nobody re-edits the Flights network every morning.  This
module round-trips DAGs and fitted :class:`DiscreteBayesNet` models
through plain JSON (human-diffable, so network edits can be reviewed
like code).

NULL-keyed entries use the substrate's :data:`NULL_KEY` sentinel, and
non-string domain values are tagged with their type so integers survive
the round trip (JSON object keys are always strings).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any

from repro.bayesnet.cpt import CPT
from repro.bayesnet.dag import DAG
from repro.bayesnet.model import DiscreteBayesNet
from repro.errors import GraphError

FORMAT_VERSION = 1


def _encode_value(value: Any) -> Any:
    """A JSON-safe tagged form of one domain value."""
    if isinstance(value, bool):  # before int: bool is an int subclass
        return {"t": "bool", "v": value}
    if isinstance(value, (int, float)):
        return {"t": type(value).__name__, "v": value}
    return value  # strings (including NULL_KEY) pass through


def _decode_value(raw: Any) -> Any:
    if isinstance(raw, dict) and "t" in raw:
        if raw["t"] == "int":
            return int(raw["v"])
        if raw["t"] == "float":
            return float(raw["v"])
        if raw["t"] == "bool":
            return bool(raw["v"])
        raise GraphError(f"unknown value tag {raw['t']!r}")
    return raw


# -- DAG ---------------------------------------------------------------------


def dag_to_dict(dag: DAG) -> dict:
    """A JSON-safe description of a DAG (nodes + weighted edges)."""
    return {
        "version": FORMAT_VERSION,
        "nodes": dag.nodes,
        "edges": [
            {"from": u, "to": v, "weight": w} for u, v, w in dag.edges()
        ],
    }


def dag_from_dict(payload: dict) -> DAG:
    """Rebuild a DAG; edge insertion re-checks acyclicity."""
    try:
        nodes = payload["nodes"]
        edges = payload["edges"]
    except (KeyError, TypeError) as exc:
        raise GraphError(f"malformed DAG payload: missing {exc}") from exc
    dag = DAG(nodes)
    for edge in edges:
        dag.add_edge(edge["from"], edge["to"], edge.get("weight", 1.0))
    return dag


def save_dag(dag: DAG, path: str | Path) -> None:
    """Write a DAG as (pretty-printed, diffable) JSON."""
    Path(path).write_text(
        json.dumps(dag_to_dict(dag), indent=2) + "\n", encoding="utf-8"
    )


def load_dag(path: str | Path) -> DAG:
    """Read a DAG written by :func:`save_dag`."""
    return dag_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


# -- CPT ---------------------------------------------------------------------


def cpt_to_dict(cpt: CPT) -> dict:
    """Serialise the raw counts (not probabilities): counts compose
    under re-smoothing, probabilities do not."""
    return {
        "variable": cpt.variable,
        "parents": list(cpt.parent_names),
        "alpha": cpt.alpha,
        "configs": [
            {
                "parents": [_encode_value(p) for p in config],
                "counts": [
                    [_encode_value(v), n] for v, n in counts.items()
                ],
            }
            for config, counts in cpt._config_counts.items()
        ],
    }


def cpt_from_dict(payload: dict) -> CPT:
    """Rebuild a CPT from its count form.

    Counts are injected directly rather than replayed through
    ``observe`` — a 200k-observation CPT reloads in one pass.  The
    stored keys were produced by ``cell_key`` at save time, so they are
    already in canonical form.
    """
    cpt = CPT(
        payload["variable"],
        tuple(payload["parents"]),
        alpha=payload.get("alpha", 1.0),
    )
    for config in payload["configs"]:
        parents = tuple(_decode_value(p) for p in config["parents"])
        counts = Counter(
            {_decode_value(v): int(n) for v, n in config["counts"]}
        )
        cpt._config_counts[parents] = counts
        total = sum(counts.values())
        cpt._config_totals[parents] = total
        cpt._marginal.update(counts)
        cpt._n += total
    return cpt


# -- full model --------------------------------------------------------------


def bn_to_dict(bn: DiscreteBayesNet) -> dict:
    """A JSON-safe description of a fitted network."""
    return {
        "version": FORMAT_VERSION,
        "dag": dag_to_dict(bn.dag),
        "alpha": bn.alpha,
        "cpts": {node: cpt_to_dict(cpt) for node, cpt in bn.cpts.items()},
    }


def bn_from_dict(payload: dict) -> DiscreteBayesNet:
    """Rebuild a fitted network written by :func:`bn_to_dict`."""
    dag = dag_from_dict(payload["dag"])
    cpts = {
        node: cpt_from_dict(raw) for node, raw in payload["cpts"].items()
    }
    return DiscreteBayesNet(dag, cpts, alpha=payload.get("alpha", 1.0))


def save_bn(bn: DiscreteBayesNet, path: str | Path) -> None:
    """Write a fitted network as JSON."""
    Path(path).write_text(
        json.dumps(bn_to_dict(bn)) + "\n", encoding="utf-8"
    )


def load_bn(path: str | Path) -> DiscreteBayesNet:
    """Read a network written by :func:`save_bn`."""
    return bn_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
