"""Belief propagation (sum-product message passing) over factor graphs.

§8 lists belief propagation next to variable elimination as the exact
inference options a BN system chooses from ("methods like variable
elimination and belief propagation can be computationally intensive").
The substrate implements it so the trade-off is measurable:

- on networks whose factor graph is a *tree* (every Chow–Liu structure,
  and most thresholded FDX skeletons), message passing is **exact** and
  agrees with :class:`~repro.bayesnet.inference.VariableElimination`
  (property-tested);
- on loopy graphs it degrades gracefully to *loopy BP*, an iterative
  approximation with damping, reporting whether it converged.

Evidence is folded into the CPT factors up front (with the CPT's
marginal-fallback semantics preserved), so observed values outside the
training domain behave exactly as they do in the rest of the substrate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.bayesnet.cpt import cell_key
from repro.bayesnet.inference import Factor
from repro.bayesnet.model import DiscreteBayesNet
from repro.errors import InferenceError

#: A message is a non-negative function of one variable's domain.
Message = dict[Hashable, float]


@dataclass
class BPResult:
    """Marginals plus diagnostics from one propagation run."""

    marginals: dict[str, dict[Hashable, float]]
    converged: bool
    iterations: int
    is_tree: bool

    def marginal(self, variable: str) -> dict[Hashable, float]:
        """Posterior marginal of ``variable``."""
        if variable not in self.marginals:
            raise InferenceError(f"no marginal for variable {variable!r}")
        return self.marginals[variable]


class BeliefPropagation:
    """Sum-product inference on the factor graph of a discrete BN.

    Parameters
    ----------
    bn:
        A fitted :class:`~repro.bayesnet.model.DiscreteBayesNet`.
    max_iters:
        Iteration cap for the flooding schedule.  On a tree the schedule
        converges within the graph diameter; the cap only binds on loopy
        graphs.
    tol:
        Convergence threshold on the largest absolute change of any
        (normalised) message entry.
    damping:
        Mixing weight of the previous message when updating
        (``0`` = undamped; values around 0.5 stabilise loopy graphs).
    """

    def __init__(
        self,
        bn: DiscreteBayesNet,
        max_iters: int = 50,
        tol: float = 1e-9,
        damping: float = 0.0,
    ):
        if max_iters <= 0:
            raise InferenceError(f"max_iters must be positive, got {max_iters}")
        if not 0.0 <= damping < 1.0:
            raise InferenceError(f"damping must be in [0, 1), got {damping}")
        self.bn = bn
        self.max_iters = max_iters
        self.tol = tol
        self.damping = damping

    # -- public queries -----------------------------------------------------------

    def query(
        self, target: str, evidence: Mapping[str, Hashable] | None = None
    ) -> dict[Hashable, float]:
        """``P(target | evidence)`` over the target's observed domain."""
        result = self.run(evidence)
        return result.marginal(target)

    def map_value(
        self, target: str, evidence: Mapping[str, Hashable] | None = None
    ) -> Hashable:
        """The MAP value of ``target`` given evidence."""
        posterior = self.query(target, evidence)
        return max(posterior.items(), key=lambda kv: kv[1])[0]

    def run(self, evidence: Mapping[str, Hashable] | None = None) -> BPResult:
        """Propagate messages and return marginals for every free variable."""
        evidence = dict(evidence or {})
        for v in evidence:
            if v not in self.bn.dag:
                raise InferenceError(f"evidence variable {v!r} is unknown")

        free = [v for v in self.bn.dag.nodes if v not in evidence]
        if not free:
            raise InferenceError("all variables observed; nothing to infer")

        factors = self._build_factors(evidence)
        domains = {v: list(self.bn.cpts[v].domain) for v in free}
        graph = _FactorGraph(factors, domains)
        converged, iterations = graph.flood(
            self.max_iters, self.tol, self.damping
        )
        marginals = {v: graph.marginal(v) for v in free}
        return BPResult(
            marginals=marginals,
            converged=converged,
            iterations=iterations,
            is_tree=graph.is_tree,
        )

    # -- internals -----------------------------------------------------------------

    def _build_factors(self, evidence: Mapping[str, Hashable]) -> list[Factor]:
        """One evidence-reduced factor per CPT, dropping constants."""
        factors = []
        for node in self.bn.dag.nodes:
            f = Factor.from_cpt_with_evidence(self.bn, node, evidence)
            if f.variables:
                factors.append(f)
        return factors


class _FactorGraph:
    """Bipartite variable/factor graph with a flooding message schedule."""

    def __init__(self, factors: Sequence[Factor], domains: Mapping[str, list]):
        self.factors = list(factors)
        self.domains = dict(domains)
        self.var_neighbours: dict[str, list[int]] = {v: [] for v in domains}
        for i, f in enumerate(self.factors):
            for v in f.variables:
                if v not in self.var_neighbours:
                    raise InferenceError(
                        f"factor mentions unknown free variable {v!r}"
                    )
                self.var_neighbours[v].append(i)
        # var → factor and factor → var messages, initialised uniform.
        self.msg_vf: dict[tuple[str, int], Message] = {}
        self.msg_fv: dict[tuple[int, str], Message] = {}
        for v, neighbours in self.var_neighbours.items():
            uniform = self._uniform(v)
            for i in neighbours:
                self.msg_vf[(v, i)] = dict(uniform)
                self.msg_fv[(i, v)] = dict(uniform)

    @property
    def is_tree(self) -> bool:
        """Whether the factor graph is acyclic (BP is exact there).

        A bipartite graph with ``n`` nodes and ``e`` edges is a forest
        iff ``e = n - components``; we count components by flooding.
        """
        n_nodes = len(self.domains) + len(self.factors)
        n_edges = sum(len(ns) for ns in self.var_neighbours.values())
        return n_edges == n_nodes - self._n_components()

    def _n_components(self) -> int:
        seen_vars: set[str] = set()
        seen_factors: set[int] = set()
        components = 0
        for start in self.domains:
            if start in seen_vars:
                continue
            components += 1
            stack: list[tuple[str, object]] = [("v", start)]
            while stack:
                kind, item = stack.pop()
                if kind == "v":
                    if item in seen_vars:
                        continue
                    seen_vars.add(item)
                    stack.extend(("f", i) for i in self.var_neighbours[item])
                else:
                    if item in seen_factors:
                        continue
                    seen_factors.add(item)
                    stack.extend(
                        ("v", v) for v in self.factors[item].variables
                    )
        # Factors whose variables are all observed were dropped earlier,
        # so every remaining factor is reachable from some variable.
        return components

    def _uniform(self, variable: str) -> Message:
        domain = self.domains[variable]
        if not domain:
            raise InferenceError(f"empty domain for variable {variable!r}")
        p = 1.0 / len(domain)
        return {value: p for value in domain}

    # -- message updates -----------------------------------------------------------

    def flood(
        self, max_iters: int, tol: float, damping: float
    ) -> tuple[bool, int]:
        """Synchronous flooding until messages stabilise.

        Returns ``(converged, iterations_used)``.
        """
        for iteration in range(1, max_iters + 1):
            delta = 0.0
            new_fv = {
                (i, v): self._factor_to_var(i, v)
                for i, f in enumerate(self.factors)
                for v in f.variables
            }
            for key, msg in new_fv.items():
                delta = max(delta, self._apply(self.msg_fv, key, msg, damping))
            new_vf = {
                (v, i): self._var_to_factor(v, i)
                for v, neighbours in self.var_neighbours.items()
                for i in neighbours
            }
            for key, msg in new_vf.items():
                delta = max(delta, self._apply(self.msg_vf, key, msg, damping))
            if delta < tol:
                return True, iteration
        return False, max_iters

    def _apply(
        self,
        store: dict,
        key: tuple,
        msg: Message,
        damping: float,
    ) -> float:
        """Normalise, damp against the previous message, store; return the
        largest entry change."""
        total = sum(msg.values())
        if total <= 0:
            raise InferenceError("belief propagation produced a zero message")
        msg = {k: v / total for k, v in msg.items()}
        old = store[key]
        if damping > 0:
            msg = {
                k: damping * old.get(k, 0.0) + (1 - damping) * v
                for k, v in msg.items()
            }
        delta = max(abs(msg[k] - old.get(k, 0.0)) for k in msg)
        store[key] = msg
        return delta

    def _factor_to_var(self, factor_idx: int, target: str) -> Message:
        """``μ_{f→x}(x) = Σ_{~x} f(·) Π_{u ≠ x} μ_{u→f}(u)``."""
        f = self.factors[factor_idx]
        target_pos = f.variables.index(target)
        incoming = [
            self.msg_vf[(u, factor_idx)] if u != target else None
            for u in f.variables
        ]
        out: Message = {value: 0.0 for value in self.domains[target]}
        for key, weight in f.table.items():
            contribution = weight
            for pos, msg in enumerate(incoming):
                if msg is None:
                    continue
                contribution *= msg.get(cell_key(key[pos]), 0.0)
                if contribution == 0.0:
                    break
            if contribution:
                tk = cell_key(key[target_pos])
                out[tk] = out.get(tk, 0.0) + contribution
        return out

    def _var_to_factor(self, variable: str, factor_idx: int) -> Message:
        """``μ_{x→f}(x) = Π_{g ≠ f} μ_{g→x}(x)``."""
        out = {value: 1.0 for value in self.domains[variable]}
        for i in self.var_neighbours[variable]:
            if i == factor_idx:
                continue
            msg = self.msg_fv[(i, variable)]
            for value in out:
                out[value] *= msg.get(value, 0.0)
        return out

    def marginal(self, variable: str) -> dict[Hashable, float]:
        """Belief of ``variable``: the normalised product of its inbox."""
        belief = {value: 1.0 for value in self.domains[variable]}
        for i in self.var_neighbours[variable]:
            msg = self.msg_fv[(i, variable)]
            for value in belief:
                belief[value] *= msg.get(value, 0.0)
        total = sum(belief.values())
        if total <= 0:
            # An isolated free variable (no factors) keeps its prior.
            return self._prior(variable)
        return {value: b / total for value, b in belief.items()}

    def _prior(self, variable: str) -> dict[Hashable, float]:
        domain = self.domains[variable]
        p = 1.0 / len(domain)
        return {value: p for value in domain}


def joint_from_marginals(
    marginals: Mapping[str, Mapping[Hashable, float]],
    variables: Sequence[str],
) -> dict[tuple, float]:
    """Mean-field joint: the product of per-variable marginals.

    A diagnostic helper (exact only under independence) used by tests
    and the inference-tradeoffs example to visualise BP output.
    """
    out: dict[tuple, float] = {}
    domains = [list(marginals[v]) for v in variables]
    for combo in itertools.product(*domains):
        p = 1.0
        for v, value in zip(variables, combo):
            p *= marginals[v][value]
        out[combo] = p
    return out
