"""A discrete Bayesian network: DAG structure plus fitted CPTs.

:class:`DiscreteBayesNet` binds a :class:`~repro.bayesnet.dag.DAG` over
attribute names to one :class:`~repro.bayesnet.cpt.CPT` per node, fitted
from a :class:`~repro.dataset.table.Table`.  It exposes exactly the
quantities the cleaning engine needs:

- full joint log-probability of a tuple (the basic BClean scoring path),
- Markov-blanket log-score of a candidate value (the partitioned path),
- per-node refitting after user edits of the network (§4: "we only
  recalculate the CPTs for the attributes involved in the modification").
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.bayesnet.cpt import CPT
from repro.bayesnet.dag import DAG
from repro.dataset.table import Table
from repro.errors import InferenceError


class DiscreteBayesNet:
    """A fitted discrete BN over the attributes of a table."""

    def __init__(self, dag: DAG, cpts: Mapping[str, CPT], alpha: float = 1.0):
        missing = set(dag.nodes) - set(cpts)
        if missing:
            raise InferenceError(f"no CPT for nodes {sorted(missing)}")
        self.dag = dag
        self.cpts = dict(cpts)
        self.alpha = alpha

    # -- fitting ---------------------------------------------------------------

    @classmethod
    def fit(cls, table: Table, dag: DAG, alpha: float = 1.0) -> "DiscreteBayesNet":
        """Estimate all CPTs from ``table`` under structure ``dag``."""
        unknown = set(dag.nodes) - set(table.schema.names)
        if unknown:
            raise InferenceError(
                f"DAG nodes {sorted(unknown)} are not attributes of the table"
            )
        cpts = {
            node: cls._fit_node(table, dag, node, alpha) for node in dag.nodes
        }
        return cls(dag, cpts, alpha)

    @staticmethod
    def _fit_node(table: Table, dag: DAG, node: str, alpha: float) -> CPT:
        parents = dag.parents(node)
        cpt = CPT(node, parents, alpha=alpha)
        cpt.fit(table.column(node), [table.column(p) for p in parents])
        return cpt

    def refit_nodes(self, table: Table, nodes: Sequence[str]) -> None:
        """Re-estimate only the CPTs of ``nodes`` (after a structure edit)."""
        for node in nodes:
            if node not in self.dag:
                raise InferenceError(f"unknown node {node!r}")
            self.cpts[node] = self._fit_node(table, self.dag, node, self.alpha)

    # -- scoring ------------------------------------------------------------------

    def node_log_prob(self, node: str, value: object, row: Mapping[str, object]) -> float:
        """``log P(node = value | parents(node) = row[...])``."""
        cpt = self.cpts[node]
        parent_values = tuple(row[p] for p in cpt.parent_names)
        return cpt.log_prob(value, parent_values)

    def joint_log_prob(self, row: Mapping[str, object]) -> float:
        """Log joint probability of a complete assignment.

        This is the chain-rule factorisation of §2:
        ``Σ_i log P(T[A_i] | parents(A_i))`` — the scoring path of the
        *basic* (unpartitioned) BClean variant, which touches every node
        for every candidate.
        """
        return sum(
            self.node_log_prob(node, row[node], row) for node in self.dag.nodes
        )

    def joint_log_prob_with(
        self, row: Mapping[str, object], node: str, value: object
    ) -> float:
        """Joint log-probability of ``row`` with ``node`` replaced by ``value``."""
        patched = dict(row)
        patched[node] = value
        return self.joint_log_prob(patched)

    def blanket_log_score(
        self, node: str, value: object, row: Mapping[str, object]
    ) -> float:
        """Markov-blanket score of ``node = value`` given the rest of the row.

        ``log P(value | parents) + Σ_{c ∈ children} log P(row[c] | parents(c)
        with node := value)`` — the only terms of the joint that depend on
        ``node``, i.e. the partitioned inference of §6.1:
        ``Pr[A_j | A_connected] = Pr[A_j | A_parent] · Pr[A_child | A_j]``.
        """
        cpt = self.cpts[node]
        parent_values = tuple(row[p] for p in cpt.parent_names)
        score = cpt.log_prob(value, parent_values)
        for child in self.dag.children(node):
            ccpt = self.cpts[child]
            cparents = tuple(
                value if p == node else row[p] for p in ccpt.parent_names
            )
            score += ccpt.log_prob(row[child], cparents)
        return score

    def posterior(
        self,
        node: str,
        row: Mapping[str, object],
        candidates: Sequence[object] | None = None,
    ) -> dict[object, float]:
        """Normalised posterior over candidate values of ``node`` given the
        (complete) rest of the row.

        With full evidence, the posterior depends only on the Markov
        blanket, so this uses :meth:`blanket_log_score` and renormalises.
        """
        if candidates is None:
            candidates = self.cpts[node].domain
        if not candidates:
            raise InferenceError(f"no candidate values for node {node!r}")
        log_scores = {
            c: self.blanket_log_score(node, c, row) for c in candidates
        }
        peak = max(log_scores.values())
        weights = {c: math.exp(s - peak) for c, s in log_scores.items()}
        total = sum(weights.values())
        return {c: w / total for c, w in weights.items()}

    # -- introspection ----------------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        """Node names."""
        return self.dag.nodes

    def domain(self, node: str) -> list[object]:
        """Observed domain of ``node`` (keyed values, NULL included)."""
        return self.cpts[node].domain

    def copy(self) -> "DiscreteBayesNet":
        """Copy sharing CPTs (structure edits must refit affected nodes)."""
        return DiscreteBayesNet(self.dag.copy(), dict(self.cpts), self.alpha)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiscreteBayesNet({len(self.dag)} nodes, {self.dag.n_edges} edges)"
        )
