"""A discrete Bayesian network: DAG structure plus fitted CPTs.

:class:`DiscreteBayesNet` binds a :class:`~repro.bayesnet.dag.DAG` over
attribute names to one :class:`~repro.bayesnet.cpt.CPT` per node, fitted
from a :class:`~repro.dataset.table.Table`.  It exposes exactly the
quantities the cleaning engine needs:

- full joint log-probability of a tuple (the basic BClean scoring path),
- Markov-blanket log-score of a candidate value (the partitioned path),
- per-node refitting after user edits of the network (§4: "we only
  recalculate the CPTs for the attributes involved in the modification").

:class:`ColumnarNetScorer` is the batched companion used by the
columnar engine path: it freezes every CPT into a
:class:`~repro.bayesnet.cpt.CodedCPT` under a shared table encoding and
scores whole candidate pools per Markov blanket (or full joint) as
numpy slicing over integer codes.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.bayesnet.cpt import CPT, CodedCPT
from repro.bayesnet.dag import DAG
from repro.dataset.encoding import TableEncoding
from repro.dataset.table import Table
from repro.errors import InferenceError
from repro.stats.infotheory import joint_code_counts

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a layering cycle)
    from repro.core.cooccurrence import CooccurrenceIndex


class DiscreteBayesNet:
    """A fitted discrete BN over the attributes of a table."""

    def __init__(self, dag: DAG, cpts: Mapping[str, CPT], alpha: float = 1.0):
        missing = set(dag.nodes) - set(cpts)
        if missing:
            raise InferenceError(f"no CPT for nodes {sorted(missing)}")
        self.dag = dag
        self.cpts = dict(cpts)
        self.alpha = alpha

    # -- fitting ---------------------------------------------------------------

    @classmethod
    def fit(cls, table: Table, dag: DAG, alpha: float = 1.0) -> "DiscreteBayesNet":
        """Estimate all CPTs from ``table`` under structure ``dag``."""
        unknown = set(dag.nodes) - set(table.schema.names)
        if unknown:
            raise InferenceError(
                f"DAG nodes {sorted(unknown)} are not attributes of the table"
            )
        cpts = {
            node: cls._fit_node(table, dag, node, alpha) for node in dag.nodes
        }
        return cls(dag, cpts, alpha)

    @staticmethod
    def _fit_node(table: Table, dag: DAG, node: str, alpha: float) -> CPT:
        parents = dag.parents(node)
        cpt = CPT(node, parents, alpha=alpha)
        cpt.fit(table.column(node), [table.column(p) for p in parents])
        return cpt

    @classmethod
    def fit_columnar(
        cls,
        table: Table,
        dag: DAG,
        alpha: float = 1.0,
        *,
        encoding: TableEncoding,
        cooc: "CooccurrenceIndex | None" = None,
        family_arrays: Mapping[
            str, tuple[tuple[np.ndarray, ...], np.ndarray, np.ndarray]
        ]
        | None = None,
        row_counts: np.ndarray | None = None,
        row_firsts: np.ndarray | None = None,
        n_rows: int | None = None,
    ) -> "DiscreteBayesNet":
        """Estimate all CPTs from the *integer-coded* columns of ``table``.

        Counts come from one fused-code ``numpy`` pass per family
        (:func:`~repro.stats.infotheory.joint_code_counts`) instead of a
        per-row dict walk; :meth:`CPT.from_coded_counts` then rebuilds
        the exact scalar dict state, so the returned network is
        indistinguishable from :meth:`fit` on the same inputs — the
        scalar path remains the oracle this one is tested against.

        Parameters
        ----------
        table:
            The fitted table (must be the table ``encoding`` interned).
        encoding:
            Shared interning of ``table``; every DAG node must be one of
            its attributes (the singleton composition).
        cooc:
            Optional co-occurrence index built over the *same*
            ``encoding``.  Single-parent families are then re-sliced
            from its already-built pair arrays — no second pass over the
            rows for the most common family shape.
        family_arrays:
            Optional precomputed count arrays per node (the sharded
            parallel fit of :mod:`repro.exec.fit` passes these); nodes
            not present are counted inline.
        row_counts / row_firsts / n_rows:
            Deduplicated-stream form (:mod:`repro.exec.fit_stream`):
            ``table`` then holds the stream's distinct rows, row ``i``
            counted ``row_counts[i]`` times and first seen at global
            stream index ``row_firsts[i]``, out of ``n_rows`` total
            stream rows.  Inline counts weight up exactly; precomputed
            ``family_arrays`` / ``cooc`` payloads must already carry
            stream-weighted counts.  The CPTs are then byte-identical
            to fitting the full stream.
        """
        unknown = set(dag.nodes) - set(encoding.names)
        if unknown:
            raise InferenceError(
                f"DAG nodes {sorted(unknown)} are not attributes of the "
                "encoded table"
            )
        if table.n_rows != encoding.n_rows:
            raise InferenceError(
                "encoding does not describe the fitted table "
                f"({encoding.n_rows} coded rows vs {table.n_rows})"
            )
        if cooc is not None and cooc.encoding is not encoding:
            cooc = None
        cpts: dict[str, CPT] = {}
        for node in dag.nodes:
            parents = dag.parents(node)
            payload = None
            if family_arrays is not None:
                payload = family_arrays.get(node)
            if payload is None and len(parents) == 1 and cooc is not None:
                stats = cooc.pair_stats(node, parents[0])
                if stats is not None:
                    payload = (
                        (stats.keys // stats.card_b, stats.keys % stats.card_b),
                        stats.raw,
                        stats.first_row,
                    )
            if payload is None:
                payload = joint_code_counts(
                    [encoding.codes(node), *(encoding.codes(p) for p in parents)],
                    row_counts=row_counts,
                    row_firsts=row_firsts,
                )
            uniq, counts, first = payload
            cpts[node] = CPT.from_coded_counts(
                node,
                parents,
                alpha,
                encoding.vocab(node),
                [encoding.vocab(p) for p in parents],
                uniq[0],
                uniq[1:],
                counts,
                first,
                n_rows=n_rows if n_rows is not None else encoding.n_rows,
            )
        return cls(dag, cpts, alpha)

    def refit_nodes(self, table: Table, nodes: Sequence[str]) -> None:
        """Re-estimate only the CPTs of ``nodes`` (after a structure edit)."""
        for node in nodes:
            if node not in self.dag:
                raise InferenceError(f"unknown node {node!r}")
            self.cpts[node] = self._fit_node(table, self.dag, node, self.alpha)

    # -- scoring ------------------------------------------------------------------

    def node_log_prob(self, node: str, value: object, row: Mapping[str, object]) -> float:
        """``log P(node = value | parents(node) = row[...])``."""
        cpt = self.cpts[node]
        parent_values = tuple(row[p] for p in cpt.parent_names)
        return cpt.log_prob(value, parent_values)

    def joint_log_prob(self, row: Mapping[str, object]) -> float:
        """Log joint probability of a complete assignment.

        This is the chain-rule factorisation of §2:
        ``Σ_i log P(T[A_i] | parents(A_i))`` — the scoring path of the
        *basic* (unpartitioned) BClean variant, which touches every node
        for every candidate.
        """
        return sum(
            self.node_log_prob(node, row[node], row) for node in self.dag.nodes
        )

    def joint_log_prob_with(
        self, row: Mapping[str, object], node: str, value: object
    ) -> float:
        """Joint log-probability of ``row`` with ``node`` replaced by ``value``."""
        patched = dict(row)
        patched[node] = value
        return self.joint_log_prob(patched)

    def blanket_log_score(
        self, node: str, value: object, row: Mapping[str, object]
    ) -> float:
        """Markov-blanket score of ``node = value`` given the rest of the row.

        ``log P(value | parents) + Σ_{c ∈ children} log P(row[c] | parents(c)
        with node := value)`` — the only terms of the joint that depend on
        ``node``, i.e. the partitioned inference of §6.1:
        ``Pr[A_j | A_connected] = Pr[A_j | A_parent] · Pr[A_child | A_j]``.
        """
        cpt = self.cpts[node]
        parent_values = tuple(row[p] for p in cpt.parent_names)
        score = cpt.log_prob(value, parent_values)
        for child in self.dag.children(node):
            ccpt = self.cpts[child]
            cparents = tuple(
                value if p == node else row[p] for p in ccpt.parent_names
            )
            score += ccpt.log_prob(row[child], cparents)
        return score

    def posterior(
        self,
        node: str,
        row: Mapping[str, object],
        candidates: Sequence[object] | None = None,
    ) -> dict[object, float]:
        """Normalised posterior over candidate values of ``node`` given the
        (complete) rest of the row.

        With full evidence, the posterior depends only on the Markov
        blanket, so this uses :meth:`blanket_log_score` and renormalises.
        """
        if candidates is None:
            candidates = self.cpts[node].domain
        if not candidates:
            raise InferenceError(f"no candidate values for node {node!r}")
        from repro.bayesnet.inference import log_sum_exp

        log_scores = {
            c: self.blanket_log_score(node, c, row) for c in candidates
        }
        log_total = log_sum_exp(list(log_scores.values()))
        return {c: math.exp(s - log_total) for c, s in log_scores.items()}

    # -- introspection ----------------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        """Node names."""
        return self.dag.nodes

    def domain(self, node: str) -> list[object]:
        """Observed domain of ``node`` (keyed values, NULL included)."""
        return self.cpts[node].domain

    def copy(self) -> "DiscreteBayesNet":
        """Copy sharing CPTs (structure edits must refit affected nodes)."""
        return DiscreteBayesNet(self.dag.copy(), dict(self.cpts), self.alpha)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiscreteBayesNet({len(self.dag)} nodes, {self.dag.n_edges} edges)"
        )


class _NodeSlots:
    """Precomputed addressing of one node inside a shared encoding."""

    __slots__ = ("coded", "column", "parent_columns", "children")

    def __init__(
        self,
        coded: CodedCPT,
        column: int,
        parent_columns: tuple[int, ...],
        children: tuple[str, ...],
    ):
        self.coded = coded
        self.column = column
        self.parent_columns = parent_columns
        self.children = children


class ColumnarNetScorer:
    """Batched blanket/joint scoring of a fitted BN over coded rows.

    Requires every BN node to be a table attribute of ``encoding``
    (i.e. the default one-node-per-attribute composition).  Rows are
    passed as integer code vectors in schema order; candidate pools as
    code arrays.  All returned scores are bit-compatible with the
    scalar :meth:`DiscreteBayesNet.blanket_log_score` (same factors,
    same accumulation order); the batched joint regroups constant
    factors and may differ from :meth:`DiscreteBayesNet.joint_log_prob`
    by float-summation-order noise (≈1e-12).
    """

    def __init__(self, bn: DiscreteBayesNet, encoding: TableEncoding):
        self.bn = bn
        self.encoding = encoding
        unknown = set(bn.dag.nodes) - set(encoding.names)
        if unknown:
            raise InferenceError(
                f"BN nodes {sorted(unknown)} are not attributes of the "
                "encoded table — columnar scoring needs the singleton "
                "composition"
            )
        self._nodes: dict[str, _NodeSlots] = {}
        for node in bn.dag.nodes:
            cpt = bn.cpts[node]
            coded = CodedCPT(
                cpt,
                encoding.vocab(node),
                [encoding.vocab(p) for p in cpt.parent_names],
            )
            self._nodes[node] = _NodeSlots(
                coded,
                encoding.column_index(node),
                tuple(encoding.column_index(p) for p in cpt.parent_names),
                tuple(bn.dag.children(node)),
            )

    # -- scoring ------------------------------------------------------------------
    #
    # All scoring is batched: ``rows2d`` stacks B coded evidence rows
    # (one per competition), ``cand2d`` stacks B equal-length candidate
    # pools, and every Markov-blanket factor resolves for the whole batch
    # with one matrix op — the "parallel competitions" optimisation.  A
    # single competition is simply B=1, so every batch grouping shares
    # one arithmetic path and results are bit-identical regardless of
    # how competitions are stacked.
    #
    # Codes at or beyond a CodedCPT's build-time cardinalities come from
    # incrementally extended vocabularies (foreign tables): as values
    # they take the CPT's ``unseen`` column, as parent values they send
    # the configuration to the marginal fallback row — exactly the
    # value-level semantics of :meth:`CPT.prob` for unseen keys.

    @staticmethod
    def _value_pick(coded: CodedCPT, rows: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """``matrix[rows, codes]`` where codes beyond the build width
        score as never-observed values (``unseen[row]``)."""
        width = coded.n_values
        if int(codes.max(initial=0)) < width:
            return coded.matrix[rows, codes]
        ok = codes < width
        safe = np.where(ok, codes, 0)
        return np.where(ok, coded.matrix[rows, safe], coded.unseen[rows])

    def _own_config_rows(
        self, slots: _NodeSlots, rows2d: np.ndarray
    ) -> np.ndarray:
        """Matrix row of every evidence row's own parent configuration
        (fallback row when a parent code is unseen)."""
        coded = slots.coded
        n = len(rows2d)
        if not slots.parent_columns:
            return coded.config_rows(np.zeros(n, dtype=np.int64))
        fused = np.zeros(n, dtype=np.int64)
        valid = np.ones(n, dtype=bool)
        for column, stride, card in zip(
            slots.parent_columns, coded.strides, coded.parent_cards
        ):
            col = rows2d[:, column]
            fused = fused + col * stride
            valid &= col < card
        rows = coded.config_rows(fused)
        if not valid.all():
            rows = np.where(valid, rows, coded.n_configs)
        return rows

    def node_log_scores_batch(
        self, node: str, cand2d: np.ndarray, rows2d: np.ndarray
    ) -> np.ndarray:
        """``log P(candidate | parents(node) = row)`` for B stacked
        competitions at once — ``(B, P)`` from ``(B, P)`` pools."""
        slots = self._nodes[node]
        rows = self._own_config_rows(slots, rows2d)
        return self._value_pick(slots.coded, rows[:, None], cand2d)

    def blanket_log_scores_batch(
        self, node: str, cand2d: np.ndarray, rows2d: np.ndarray
    ) -> np.ndarray:
        """Markov-blanket scores of B stacked competitions at once.

        ``log P(c | parents) + Σ_{child} log P(row[child] | parents with
        node := c)`` — §6.1, one matrix op per blanket factor for the
        whole batch.
        """
        slots = self._nodes[node]
        scores = np.array(
            self.node_log_scores_batch(node, cand2d, rows2d), dtype=np.float64
        )
        for child in slots.children:
            child_slots = self._nodes[child]
            coded = child_slots.coded
            base = np.zeros(len(rows2d), dtype=np.int64)
            base_ok = np.ones(len(rows2d), dtype=bool)
            node_stride = 0
            node_pcard = 0
            for name, column, stride, card in zip(
                self.bn.cpts[child].parent_names,
                child_slots.parent_columns,
                coded.strides,
                coded.parent_cards,
            ):
                if name == node:
                    node_stride = stride
                    node_pcard = card
                else:
                    col = rows2d[:, column]
                    base = base + col * stride
                    base_ok &= col < card
            cand_ok = cand2d < node_pcard
            safe_cand = np.where(cand_ok, cand2d, 0)
            rows = coded.config_rows(base[:, None] + safe_cand * node_stride)
            ok = base_ok[:, None] & cand_ok
            if not ok.all():
                rows = np.where(ok, rows, coded.n_configs)
            child_codes = rows2d[:, child_slots.column]
            scores += self._value_pick(coded, rows, child_codes[:, None])
        return scores

    def row_log_probs_without(
        self, node: str, rows2d: np.ndarray
    ) -> np.ndarray:
        """Joint log-probability factors *outside* the blanket of
        ``node`` for every stacked row — the part of the full joint that
        is constant across that row's candidate competition."""
        slots = self._nodes[node]
        skip = {node, *slots.children}
        total = np.zeros(len(rows2d), dtype=np.float64)
        for other in self.bn.dag.nodes:
            if other in skip:
                continue
            other_slots = self._nodes[other]
            rows = self._own_config_rows(other_slots, rows2d)
            codes = rows2d[:, other_slots.column]
            total += self._value_pick(other_slots.coded, rows, codes)
        return total

    def joint_log_scores_batch(
        self, node: str, cand2d: np.ndarray, rows2d: np.ndarray
    ) -> np.ndarray:
        """Full-joint scores of B stacked competitions (BASIC mode): the
        blanket terms vary with the candidate, everything else is the
        per-row constant of :meth:`row_log_probs_without`."""
        return self.blanket_log_scores_batch(node, cand2d, rows2d) + (
            self.row_log_probs_without(node, rows2d)[:, None]
        )
