"""The PC algorithm (Spirtes & Glymour 1991).

The constraint-based baseline §4 mentions ("requires a conditional
independence hypothesis given by the user" — here, the significance
level of the G-test).  Classic three phases:

1. skeleton discovery by conditional-independence tests with growing
   conditioning sets,
2. v-structure orientation using the recorded separating sets,
3. Meek rule propagation; any still-undirected edges are oriented by
   attribute order to return a proper DAG.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from scipy import stats as scipy_stats

from repro.bayesnet.cpt import cell_key
from repro.bayesnet.dag import DAG
from repro.dataset.table import Table
from repro.errors import CycleError
from repro.stats.infotheory import codes_of, g_statistic_codes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataset.encoding import TableEncoding


@dataclass
class PCResult:
    """Learned DAG plus the independence decisions taken."""

    dag: DAG
    separating_sets: dict[frozenset, set[str]] = field(default_factory=dict)
    n_tests: int = 0


def pc_algorithm(
    table: Table,
    alpha: float = 0.05,
    max_condition_size: int = 2,
    encoding: "TableEncoding | None" = None,
    row_counts=None,
) -> PCResult:
    """Learn a DAG with the PC algorithm.

    Parameters
    ----------
    table:
        Training data.
    alpha:
        Significance level of the G-test: smaller means more edges are
        deleted (stronger independence assumptions).
    max_condition_size:
        Cap on the size of conditioning sets (categorical columns make
        large conditioning sets statistically meaningless anyway).
    encoding:
        Optional interning of ``table``; the G-tests then run on its
        coded columns directly (same statistics, no per-test hashing).
    row_counts:
        Optional deduplicated-stream multiplicities (coded path only;
        see :mod:`repro.exec.fit_stream`): every G-test then counts row
        ``i`` ``row_counts[i]`` times, bit-identical to the full stream.
    """
    names = table.schema.names
    if encoding is not None and encoding.matches(table):
        columns = {n: encoding.codes(n) for n in names}
    else:
        columns = {
            n: codes_of([cell_key(v) for v in table.column(n)]) for n in names
        }
        row_counts = None

    adjacent: dict[str, set[str]] = {
        n: {m for m in names if m != n} for n in names
    }
    sepsets: dict[frozenset, set[str]] = {}
    n_tests = 0

    def independent(x: str, y: str, cond: tuple[str, ...]) -> bool:
        nonlocal n_tests
        n_tests += 1
        zcols = None if not cond else [columns[c] for c in cond]
        g, dof = g_statistic_codes(
            columns[x], columns[y], zcols, row_counts=row_counts
        )
        p_value = scipy_stats.chi2.sf(g, dof)
        return p_value > alpha

    # Phase 1: skeleton.
    for level in range(max_condition_size + 1):
        changed = False
        for x in names:
            for y in sorted(adjacent[x]):
                neighbours = adjacent[x] - {y}
                if len(neighbours) < level:
                    continue
                for cond in itertools.combinations(sorted(neighbours), level):
                    if independent(x, y, cond):
                        adjacent[x].discard(y)
                        adjacent[y].discard(x)
                        sepsets[frozenset((x, y))] = set(cond)
                        changed = True
                        break
        if not changed and level > 0:
            break

    # Phase 2: v-structures x -> z <- y when z not in sepset(x, y).
    directed: set[tuple[str, str]] = set()
    for z in names:
        for x, y in itertools.combinations(sorted(adjacent[z]), 2):
            if y in adjacent[x]:
                continue  # x and y are adjacent: not a v-structure
            sep = sepsets.get(frozenset((x, y)), set())
            if z not in sep:
                directed.add((x, z))
                directed.add((y, z))

    # Phase 3: Meek rule 1 (away-from-collider) until fixpoint.
    undirected = {
        frozenset((x, y))
        for x in names
        for y in adjacent[x]
        if (x, y) not in directed and (y, x) not in directed
    }
    changed = True
    while changed:
        changed = False
        for pair in list(undirected):
            x, y = sorted(pair)
            for a, b in ((x, y), (y, x)):
                # If w -> a and w not adjacent to b, orient a -> b.
                if any(
                    (w, a) in directed and b not in adjacent[w]
                    for w in names
                    if w not in (a, b)
                ):
                    directed.add((a, b))
                    undirected.discard(pair)
                    changed = True
                    break

    # Remaining undirected edges: orient by attribute order (deterministic).
    order = {n: i for i, n in enumerate(names)}
    for pair in undirected:
        x, y = sorted(pair, key=lambda n: order[n])
        directed.add((x, y))

    dag = DAG(names)
    for u, v in sorted(directed, key=lambda e: (order[e[0]], order[e[1]])):
        if dag.has_edge(u, v) or dag.has_edge(v, u):
            continue
        try:
            dag.add_edge(u, v)
        except CycleError:
            try:
                dag.add_edge(v, u)
            except CycleError:
                continue  # drop the edge rather than break acyclicity
    return PCResult(dag, sepsets, n_tests)
