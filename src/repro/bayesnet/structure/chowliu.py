"""Chow–Liu tree structure learning.

The "tree search" family mentioned in §4 ("necessitates specifying the
root state").  Builds the maximum-spanning tree of pairwise mutual
information and orients edges away from a chosen root.

Mutual information comes from the shared coded-count kernel of
:mod:`repro.stats.infotheory`: columns are interned to integer codes
once (reusing a caller-provided
:class:`~repro.dataset.encoding.TableEncoding` when available) and every
pairwise MI is one fused ``numpy.unique`` pass, with per-attribute
entropies computed once instead of per pair.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import networkx as nx

from repro.bayesnet.cpt import cell_key
from repro.bayesnet.dag import DAG
from repro.dataset.table import Table
from repro.errors import StructureLearningError
from repro.stats.infotheory import codes_of, entropy_codes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataset.encoding import TableEncoding


def chow_liu_tree(
    table: Table,
    root: str | None = None,
    encoding: "TableEncoding | None" = None,
    row_counts=None,
) -> DAG:
    """Learn a tree-structured BN by the Chow–Liu algorithm.

    Parameters
    ----------
    table:
        Training data; every attribute becomes a node.
    root:
        Node to orient the tree away from.  Defaults to the first
        attribute (the §4 critique: the user must pick a root).
    encoding:
        Optional interning of ``table``; its coded columns are used
        directly instead of re-factorizing every column.
    row_counts:
        Optional deduplicated-stream multiplicities (coded path only;
        see :mod:`repro.exec.fit_stream`): every entropy then counts row
        ``i`` ``row_counts[i]`` times, bit-identical to the full stream.
    """
    names = table.schema.names
    if not names:
        raise StructureLearningError("table has no attributes")
    if root is None:
        root = names[0]
    if root not in names:
        raise StructureLearningError(f"root {root!r} is not an attribute")

    if encoding is not None and encoding.matches(table):
        columns = {n: encoding.codes(n) for n in names}
    else:
        columns = {
            n: codes_of([cell_key(v) for v in table.column(n)]) for n in names
        }
        row_counts = None
    entropies = {
        n: entropy_codes(columns[n], row_counts=row_counts) for n in names
    }

    g = nx.Graph()
    g.add_nodes_from(names)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            mi = max(
                0.0,
                entropies[a]
                + entropies[b]
                - entropy_codes(
                    columns[a], columns[b], row_counts=row_counts
                ),
            )
            g.add_edge(a, b, weight=mi)

    mst = nx.maximum_spanning_tree(g, weight="weight")

    dag = DAG(names)
    visited = {root}
    frontier = [root]
    while frontier:
        u = frontier.pop()
        for v in mst.neighbors(u):
            if v not in visited:
                visited.add(v)
                dag.add_edge(u, v, weight=mst[u][v]["weight"])
                frontier.append(v)
    return dag
