"""Chow–Liu tree structure learning.

The "tree search" family mentioned in §4 ("necessitates specifying the
root state").  Builds the maximum-spanning tree of pairwise mutual
information and orients edges away from a chosen root.
"""

from __future__ import annotations

import networkx as nx

from repro.bayesnet.cpt import cell_key
from repro.bayesnet.dag import DAG
from repro.dataset.table import Table
from repro.errors import StructureLearningError
from repro.stats.infotheory import mutual_information


def chow_liu_tree(table: Table, root: str | None = None) -> DAG:
    """Learn a tree-structured BN by the Chow–Liu algorithm.

    Parameters
    ----------
    table:
        Training data; every attribute becomes a node.
    root:
        Node to orient the tree away from.  Defaults to the first
        attribute (the §4 critique: the user must pick a root).
    """
    names = table.schema.names
    if not names:
        raise StructureLearningError("table has no attributes")
    if root is None:
        root = names[0]
    if root not in names:
        raise StructureLearningError(f"root {root!r} is not an attribute")

    columns = {n: [cell_key(v) for v in table.column(n)] for n in names}

    g = nx.Graph()
    g.add_nodes_from(names)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            mi = mutual_information(columns[a], columns[b])
            g.add_edge(a, b, weight=mi)

    mst = nx.maximum_spanning_tree(g, weight="weight")

    dag = DAG(names)
    visited = {root}
    frontier = [root]
    while frontier:
        u = frontier.pop()
        for v in mst.neighbors(u):
            if v not in visited:
                visited.add(v)
                dag.add_edge(u, v, weight=mst[u][v]["weight"])
                frontier.append(v)
    return dag
