"""Decomposable scoring functions for discrete BN structure learning.

Hill-climbing (the pgmpy-style baseline the paper contrasts with, §4)
needs a score that decomposes over families ``(node, parents)``.  We
implement BIC, K2, and BDeu with a per-family cache so that local search
only re-scores the families an operator touches.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

from repro.bayesnet.cpt import cell_key
from repro.dataset.table import Table

_LGAMMA = math.lgamma


def _family_counts(
    table: Table, node: str, parents: Sequence[str]
) -> tuple[dict[tuple, Counter], int]:
    """Co-occurrence counts of ``node`` values per parent configuration."""
    child = [cell_key(v) for v in table.column(node)]
    pcols = [[cell_key(v) for v in table.column(p)] for p in parents]
    counts: dict[tuple, Counter] = {}
    for i, v in enumerate(child):
        config = tuple(col[i] for col in pcols)
        counts.setdefault(config, Counter())[v] += 1
    return counts, len(set(child))


class FamilyScore:
    """Base class: a cached decomposable family score over one table."""

    def __init__(self, table: Table):
        self.table = table
        self._cache: dict[tuple[str, tuple[str, ...]], float] = {}

    def family(self, node: str, parents: Sequence[str]) -> float:
        """Score of the family ``node | parents`` (cached)."""
        key = (node, tuple(sorted(parents)))
        if key not in self._cache:
            self._cache[key] = self._score(node, tuple(sorted(parents)))
        return self._cache[key]

    def total(self, dag) -> float:
        """Score of a whole structure: sum of family scores."""
        return sum(self.family(n, dag.parents(n)) for n in dag.nodes)

    def _score(self, node: str, parents: tuple[str, ...]) -> float:
        raise NotImplementedError


class BICScore(FamilyScore):
    """Bayesian information criterion: log-likelihood − ½·k·log n."""

    def _score(self, node: str, parents: tuple[str, ...]) -> float:
        counts, r = _family_counts(self.table, node, parents)
        n = self.table.n_rows
        loglik = 0.0
        for config_counts in counts.values():
            total = sum(config_counts.values())
            for c in config_counts.values():
                loglik += c * math.log(c / total)
        q = len(counts)  # observed parent configurations
        n_params = max(1, q) * max(1, r - 1)
        return loglik - 0.5 * n_params * math.log(max(2, n))


class K2Score(FamilyScore):
    """Cooper–Herskovits K2 marginal likelihood (uniform Dirichlet prior)."""

    def _score(self, node: str, parents: tuple[str, ...]) -> float:
        counts, r = _family_counts(self.table, node, parents)
        r = max(1, r)
        score = 0.0
        for config_counts in counts.values():
            n_ij = sum(config_counts.values())
            score += _LGAMMA(r) - _LGAMMA(r + n_ij)
            for c in config_counts.values():
                score += _LGAMMA(c + 1)  # lgamma(1) == 0 baseline
        return score


class BDeuScore(FamilyScore):
    """Bayesian Dirichlet equivalent uniform score.

    Parameters
    ----------
    table:
        Data.
    equivalent_sample_size:
        The BDeu prior strength (default 1.0).
    """

    def __init__(self, table: Table, equivalent_sample_size: float = 1.0):
        super().__init__(table)
        self.ess = equivalent_sample_size

    def _score(self, node: str, parents: tuple[str, ...]) -> float:
        counts, r = _family_counts(self.table, node, parents)
        r = max(1, r)
        q = max(1, len(counts))
        a_ij = self.ess / q
        a_ijk = self.ess / (q * r)
        score = 0.0
        for config_counts in counts.values():
            n_ij = sum(config_counts.values())
            score += _LGAMMA(a_ij) - _LGAMMA(a_ij + n_ij)
            for c in config_counts.values():
                score += _LGAMMA(a_ijk + c) - _LGAMMA(a_ijk)
        return score


SCORES = {
    "bic": BICScore,
    "k2": K2Score,
    "bdeu": BDeuScore,
}


def make_score(name: str, table: Table, **kwargs) -> FamilyScore:
    """Factory: ``make_score("bic", table)``."""
    try:
        cls = SCORES[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown score {name!r}; choose from {sorted(SCORES)}"
        ) from exc
    return cls(table, **kwargs)
