"""Decomposable scoring functions for discrete BN structure learning.

Hill-climbing (the pgmpy-style baseline the paper contrasts with, §4)
needs a score that decomposes over families ``(node, parents)``.  We
implement BIC, K2, and BDeu with a per-family cache so that local search
only re-scores the families an operator touches.

Family counting has two interchangeable paths:

- the **coded fast path** (pass ``encoding=`` — a
  :class:`~repro.dataset.encoding.TableEncoding` of the same table): one
  fused-code pass of
  :func:`~repro.stats.infotheory.joint_code_counts` per family, with the
  distinct entries decoded back into the very same ``dict[config,
  Counter]`` shape (same keys, same integer counts, same insertion
  order) the row walk would build, so every score below is
  *bit-identical* across the two paths;
- the **value-level reference path** (no encoding, or one that no
  longer matches the table): the original per-row ``cell_key`` walk.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.bayesnet.cpt import cell_key
from repro.dataset.table import Table
from repro.stats.infotheory import joint_code_counts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataset.encoding import TableEncoding

_LGAMMA = math.lgamma


def _family_counts(
    table: Table, node: str, parents: Sequence[str]
) -> tuple[dict[tuple, Counter], int]:
    """Co-occurrence counts of ``node`` values per parent configuration
    (the value-level reference walk)."""
    child = [cell_key(v) for v in table.column(node)]
    pcols = [[cell_key(v) for v in table.column(p)] for p in parents]
    counts: dict[tuple, Counter] = {}
    for i, v in enumerate(child):
        config = tuple(col[i] for col in pcols)
        counts.setdefault(config, Counter())[v] += 1
    return counts, len(set(child))


class FamilyScore:
    """Base class: a cached decomposable family score over one table.

    Parameters
    ----------
    table:
        Training data.
    encoding:
        Optional interning of ``table``; when given (and still matching
        the table), family counts come from the coded fast path.
    """

    def __init__(self, table: Table, encoding: "TableEncoding | None" = None):
        self.table = table
        if encoding is not None and not encoding.matches(table):
            encoding = None
        self.encoding = encoding
        self._cache: dict[tuple[str, tuple[str, ...]], float] = {}
        self._r_cache: dict[str, int] = {}

    def family(self, node: str, parents: Sequence[str]) -> float:
        """Score of the family ``node | parents`` (cached)."""
        key = (node, tuple(sorted(parents)))
        if key not in self._cache:
            self._cache[key] = self._score(node, tuple(sorted(parents)))
        return self._cache[key]

    def total(self, dag) -> float:
        """Score of a whole structure: sum of family scores."""
        return sum(self.family(n, dag.parents(n)) for n in dag.nodes)

    def family_counts(
        self, node: str, parents: Sequence[str]
    ) -> tuple[dict[tuple, Counter], int]:
        """Counts of ``node`` values per parent configuration, plus the
        child cardinality ``r`` — from the coded fast path when an
        encoding is attached, bit-compatible with the reference walk."""
        enc = self.encoding
        if enc is None:
            return _family_counts(self.table, node, parents)
        uniq, cnts, _ = joint_code_counts(
            [enc.codes(node), *(enc.codes(p) for p in parents)]
        )
        child_keys = enc.vocab(node).keys()
        parent_keys = [enc.vocab(p).keys() for p in parents]
        child_col = uniq[0].tolist()
        parent_cols = [c.tolist() for c in uniq[1:]]
        count_list = cnts.tolist()
        counts: dict[tuple, Counter] = {}
        for i, (ccode, cnt) in enumerate(zip(child_col, count_list)):
            config = tuple(
                pk[col[i]] for pk, col in zip(parent_keys, parent_cols)
            )
            counts.setdefault(config, Counter())[child_keys[ccode]] += cnt
        r = self._r_cache.get(node)
        if r is None:
            r = len(np.unique(enc.codes(node)))
            self._r_cache[node] = r
        return counts, r

    def _score(self, node: str, parents: tuple[str, ...]) -> float:
        raise NotImplementedError


class BICScore(FamilyScore):
    """Bayesian information criterion: log-likelihood − ½·k·log n."""

    def _score(self, node: str, parents: tuple[str, ...]) -> float:
        counts, r = self.family_counts(node, parents)
        n = self.table.n_rows
        loglik = 0.0
        for config_counts in counts.values():
            total = sum(config_counts.values())
            for c in config_counts.values():
                loglik += c * math.log(c / total)
        q = len(counts)  # observed parent configurations
        n_params = max(1, q) * max(1, r - 1)
        return loglik - 0.5 * n_params * math.log(max(2, n))


class K2Score(FamilyScore):
    """Cooper–Herskovits K2 marginal likelihood (uniform Dirichlet prior)."""

    def _score(self, node: str, parents: tuple[str, ...]) -> float:
        counts, r = self.family_counts(node, parents)
        r = max(1, r)
        score = 0.0
        for config_counts in counts.values():
            n_ij = sum(config_counts.values())
            score += _LGAMMA(r) - _LGAMMA(r + n_ij)
            for c in config_counts.values():
                score += _LGAMMA(c + 1)  # lgamma(1) == 0 baseline
        return score


class BDeuScore(FamilyScore):
    """Bayesian Dirichlet equivalent uniform score.

    Parameters
    ----------
    table:
        Data.
    equivalent_sample_size:
        The BDeu prior strength (default 1.0).
    encoding:
        Optional interning of ``table`` (coded counting fast path).
    """

    def __init__(
        self,
        table: Table,
        equivalent_sample_size: float = 1.0,
        encoding: "TableEncoding | None" = None,
    ):
        super().__init__(table, encoding=encoding)
        self.ess = equivalent_sample_size

    def _score(self, node: str, parents: tuple[str, ...]) -> float:
        counts, r = self.family_counts(node, parents)
        r = max(1, r)
        q = max(1, len(counts))
        a_ij = self.ess / q
        a_ijk = self.ess / (q * r)
        score = 0.0
        for config_counts in counts.values():
            n_ij = sum(config_counts.values())
            score += _LGAMMA(a_ij) - _LGAMMA(a_ij + n_ij)
            for c in config_counts.values():
                score += _LGAMMA(a_ijk + c) - _LGAMMA(a_ijk)
        return score


SCORES = {
    "bic": BICScore,
    "k2": K2Score,
    "bdeu": BDeuScore,
}


def make_score(
    name: str,
    table: Table,
    encoding: "TableEncoding | None" = None,
    **kwargs,
) -> FamilyScore:
    """Factory: ``make_score("bic", table)``."""
    try:
        cls = SCORES[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown score {name!r}; choose from {sorted(SCORES)}"
        ) from exc
    return cls(table, encoding=encoding, **kwargs)
