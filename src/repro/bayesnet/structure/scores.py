"""Decomposable scoring functions for discrete BN structure learning.

Hill-climbing (the pgmpy-style baseline the paper contrasts with, §4)
needs a score that decomposes over families ``(node, parents)``.  We
implement BIC, K2, and BDeu with a per-family cache so that local search
only re-scores the families an operator touches.

Family counting has two interchangeable paths:

- the **coded fast path** (pass ``encoding=`` — a
  :class:`~repro.dataset.encoding.TableEncoding` of the same table): one
  fused-code pass of
  :func:`~repro.stats.infotheory.joint_code_counts` per family, with the
  distinct entries decoded back into the very same ``dict[config,
  Counter]`` shape (same keys, same integer counts, same insertion
  order) the row walk would build, so every score below is
  *bit-identical* across the two paths;
- the **value-level reference path** (no encoding, or one that no
  longer matches the table): the original per-row ``cell_key`` walk.

The arithmetic of each score lives in a module-level **group-score
function** (:func:`bic_group_score` and friends) operating on the counts
of each parent configuration as a plain list, in insertion order.  The
class ``_score`` methods delegate to those functions, and the sharded
parallel structure search (:mod:`repro.exec.fit`) calls the very same
functions worker-side on :func:`family_group_counts` output — the two
sides run the identical float operation sequence, so prefetched family
scores are bit-identical to driver-computed ones.

Weighted (deduplicated-stream) counting: ``row_counts``/``row_firsts``
thread straight into :func:`joint_code_counts`, producing the identical
integer counts in the identical order a whole-stream pass would — see
:mod:`repro.exec.fit_stream`.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.bayesnet.cpt import cell_key
from repro.dataset.table import Table
from repro.stats.infotheory import joint_code_counts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataset.encoding import TableEncoding

_LGAMMA = math.lgamma


def _family_counts(
    table: Table, node: str, parents: Sequence[str]
) -> tuple[dict[tuple, Counter], int]:
    """Co-occurrence counts of ``node`` values per parent configuration
    (the value-level reference walk)."""
    child = [cell_key(v) for v in table.column(node)]
    pcols = [[cell_key(v) for v in table.column(p)] for p in parents]
    counts: dict[tuple, Counter] = {}
    for i, v in enumerate(child):
        config = tuple(col[i] for col in pcols)
        counts.setdefault(config, Counter())[v] += 1
    return counts, len(set(child))


# -- group-score arithmetic (shared by driver classes and exec workers) -------


def family_group_counts(
    columns: Sequence[np.ndarray],
    row_counts: np.ndarray | None = None,
    row_firsts: np.ndarray | None = None,
) -> list[list[int]]:
    """Family counts grouped per parent configuration, insertion order.

    ``columns`` is ``[child, *parents]`` (coded).  Each group lists the
    distinct child-value counts of one observed parent configuration.
    Groups appear in configuration first-appearance order and counts
    within a group in child-value first-appearance order — exactly the
    iteration order of the ``dict[config, Counter]`` the class path
    builds (distinct code tuples map 1:1 onto distinct key tuples), so
    feeding these groups to a group-score function reproduces the class
    ``_score`` bit for bit without needing any vocabulary.
    """
    uniq, cnts, _ = joint_code_counts(
        columns, row_counts=row_counts, row_firsts=row_firsts
    )
    parent_cols = [c.tolist() for c in uniq[1:]]
    groups: list[list[int]] = []
    index: dict[tuple, list[int]] = {}
    for i, cnt in enumerate(cnts.tolist()):
        key = tuple(col[i] for col in parent_cols)
        group = index.get(key)
        if group is None:
            group = index[key] = []
            groups.append(group)
        group.append(cnt)
    return groups


def bic_group_score(groups: Sequence[Sequence[int]], r: int, n: int) -> float:
    """BIC family score from per-configuration count groups."""
    loglik = 0.0
    for config_counts in groups:
        total = sum(config_counts)
        for c in config_counts:
            loglik += c * math.log(c / total)
    q = len(groups)  # observed parent configurations
    n_params = max(1, q) * max(1, r - 1)
    return loglik - 0.5 * n_params * math.log(max(2, n))


def k2_group_score(groups: Sequence[Sequence[int]], r: int) -> float:
    """K2 family score from per-configuration count groups."""
    r = max(1, r)
    score = 0.0
    for config_counts in groups:
        n_ij = sum(config_counts)
        score += _LGAMMA(r) - _LGAMMA(r + n_ij)
        for c in config_counts:
            score += _LGAMMA(c + 1)  # lgamma(1) == 0 baseline
    return score


def bdeu_group_score(
    groups: Sequence[Sequence[int]], r: int, ess: float
) -> float:
    """BDeu family score from per-configuration count groups."""
    r = max(1, r)
    q = max(1, len(groups))
    a_ij = ess / q
    a_ijk = ess / (q * r)
    score = 0.0
    for config_counts in groups:
        n_ij = sum(config_counts)
        score += _LGAMMA(a_ij) - _LGAMMA(a_ij + n_ij)
        for c in config_counts:
            score += _LGAMMA(a_ijk + c) - _LGAMMA(a_ijk)
    return score


class FamilyScore:
    """Base class: a cached decomposable family score over one table.

    Parameters
    ----------
    table:
        Training data.
    encoding:
        Optional interning of ``table``; when given (and still matching
        the table), family counts come from the coded fast path.
    row_counts / row_firsts:
        Optional deduplicated-stream weighting (requires the coded
        path): row ``i`` counts ``row_counts[i]`` times and first
        appeared at global stream index ``row_firsts[i]``.
    n_rows:
        Total row count the score normalises against; defaults to the
        table's, but a deduplicated stream passes the stream total.
    """

    #: short name used by the sharded score dispatch to rebuild the
    #: arithmetic worker-side; ``None`` on subclasses the exec layer
    #: does not know how to mirror (custom scores stay driver-side).
    kind: str | None = None

    def __init__(
        self,
        table: Table,
        encoding: "TableEncoding | None" = None,
        row_counts: np.ndarray | None = None,
        row_firsts: np.ndarray | None = None,
        n_rows: int | None = None,
    ):
        self.table = table
        if encoding is not None and not encoding.matches(table):
            encoding = None
        self.encoding = encoding
        if encoding is None:
            row_counts = row_firsts = None
        self.row_counts = row_counts
        self.row_firsts = row_firsts
        self.n_rows = int(n_rows) if n_rows is not None else table.n_rows
        self._cache: dict[tuple[str, tuple[str, ...]], float] = {}
        self._r_cache: dict[str, int] = {}

    def family(self, node: str, parents: Sequence[str]) -> float:
        """Score of the family ``node | parents`` (cached)."""
        key = (node, tuple(sorted(parents)))
        if key not in self._cache:
            self._cache[key] = self._score(node, tuple(sorted(parents)))
        return self._cache[key]

    def total(self, dag) -> float:
        """Score of a whole structure: sum of family scores."""
        return sum(self.family(n, dag.parents(n)) for n in dag.nodes)

    def family_counts(
        self, node: str, parents: Sequence[str]
    ) -> tuple[dict[tuple, Counter], int]:
        """Counts of ``node`` values per parent configuration, plus the
        child cardinality ``r`` — from the coded fast path when an
        encoding is attached, bit-compatible with the reference walk."""
        enc = self.encoding
        if enc is None:
            return _family_counts(self.table, node, parents)
        uniq, cnts, _ = joint_code_counts(
            [enc.codes(node), *(enc.codes(p) for p in parents)],
            row_counts=self.row_counts,
            row_firsts=self.row_firsts,
        )
        child_keys = enc.vocab(node).keys()
        parent_keys = [enc.vocab(p).keys() for p in parents]
        child_col = uniq[0].tolist()
        parent_cols = [c.tolist() for c in uniq[1:]]
        count_list = cnts.tolist()
        counts: dict[tuple, Counter] = {}
        for i, (ccode, cnt) in enumerate(zip(child_col, count_list)):
            config = tuple(
                pk[col[i]] for pk, col in zip(parent_keys, parent_cols)
            )
            counts.setdefault(config, Counter())[child_keys[ccode]] += cnt
        r = self._r_cache.get(node)
        if r is None:
            r = len(np.unique(enc.codes(node)))
            self._r_cache[node] = r
        return counts, r

    def _score(self, node: str, parents: tuple[str, ...]) -> float:
        raise NotImplementedError


class BICScore(FamilyScore):
    """Bayesian information criterion: log-likelihood − ½·k·log n."""

    kind = "bic"

    def _score(self, node: str, parents: tuple[str, ...]) -> float:
        counts, r = self.family_counts(node, parents)
        groups = [list(c.values()) for c in counts.values()]
        return bic_group_score(groups, r, self.n_rows)


class K2Score(FamilyScore):
    """Cooper–Herskovits K2 marginal likelihood (uniform Dirichlet prior)."""

    kind = "k2"

    def _score(self, node: str, parents: tuple[str, ...]) -> float:
        counts, r = self.family_counts(node, parents)
        groups = [list(c.values()) for c in counts.values()]
        return k2_group_score(groups, r)


class BDeuScore(FamilyScore):
    """Bayesian Dirichlet equivalent uniform score.

    Parameters
    ----------
    table:
        Data.
    equivalent_sample_size:
        The BDeu prior strength (default 1.0).
    encoding:
        Optional interning of ``table`` (coded counting fast path).
    """

    kind = "bdeu"

    def __init__(
        self,
        table: Table,
        equivalent_sample_size: float = 1.0,
        encoding: "TableEncoding | None" = None,
        row_counts: np.ndarray | None = None,
        row_firsts: np.ndarray | None = None,
        n_rows: int | None = None,
    ):
        super().__init__(
            table,
            encoding=encoding,
            row_counts=row_counts,
            row_firsts=row_firsts,
            n_rows=n_rows,
        )
        self.ess = equivalent_sample_size

    def _score(self, node: str, parents: tuple[str, ...]) -> float:
        counts, r = self.family_counts(node, parents)
        groups = [list(c.values()) for c in counts.values()]
        return bdeu_group_score(groups, r, self.ess)


SCORES = {
    "bic": BICScore,
    "k2": K2Score,
    "bdeu": BDeuScore,
}


def make_score(
    name: str,
    table: Table,
    encoding: "TableEncoding | None" = None,
    **kwargs,
) -> FamilyScore:
    """Factory: ``make_score("bic", table)``."""
    try:
        cls = SCORES[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown score {name!r}; choose from {sorted(SCORES)}"
        ) from exc
    return cls(table, encoding=encoding, **kwargs)
