"""BN structure learning: FDX (BClean §4) plus classical baselines."""

from repro.bayesnet.structure.chowliu import chow_liu_tree
from repro.bayesnet.structure.fdx import (
    FDXConfig,
    FDXResult,
    SimilarityProfiler,
    fdx_structure,
)
from repro.bayesnet.structure.hillclimb import HillClimbResult, hill_climb
from repro.bayesnet.structure.mmhc import (
    MMHCResult,
    g2_statistic,
    independence_p_value,
    mmhc,
    mmpc,
)
from repro.bayesnet.structure.pc import PCResult, pc_algorithm
from repro.bayesnet.structure.scores import (
    BDeuScore,
    BICScore,
    FamilyScore,
    K2Score,
    make_score,
)

__all__ = [
    "BDeuScore",
    "BICScore",
    "FDXConfig",
    "FDXResult",
    "FamilyScore",
    "HillClimbResult",
    "K2Score",
    "MMHCResult",
    "PCResult",
    "SimilarityProfiler",
    "chow_liu_tree",
    "fdx_structure",
    "g2_statistic",
    "hill_climb",
    "independence_p_value",
    "make_score",
    "mmhc",
    "mmpc",
    "pc_algorithm",
]
