"""FDX-based Bayesian network construction (BClean §4).

The construction pipeline the paper describes:

1. **Similarity profiling** — for each attribute, sort the tuples by that
   attribute and compute, for every *adjacent* pair, the vector of
   softened-FD similarities across all attributes (strings: normalised
   edit distance; numerics: relative difference).  This extends FDX
   (Zhang et al., SIGMOD 2020) from strict equality to fuzzy matching and
   avoids quadratic pair enumeration (paper Remarks, §4).
2. **Covariance estimation** — the similarity vectors are treated as
   draws from a multivariate Gaussian; graphical lasso yields a sparse
   inverse covariance Θ.
3. **Decomposition** — Θ = (I − B) Ω (I − B)ᵀ where B is the
   autoregression matrix of a linear SEM.  Under a topological ordering
   B is strictly upper-triangular, so for a candidate ordering π the
   decomposition is a UDUᵀ factorisation of the permuted Θ.  We search
   for the ordering giving the sparsest B (the sparsest-permutation
   principle of Raskutti & Uhler 2018), exhaustively for few attributes
   and by greedy + adjacent-swap local search otherwise.
4. **Thresholding** — entries of |B| above a weight threshold become
   directed edges; an in-degree cap keeps CPTs tractable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.bayesnet.dag import DAG
from repro.dataset.table import Cell, Table
from repro.errors import ConvergenceError, StructureLearningError
from repro.stats.covariance import empirical_covariance, shrunk_covariance
from repro.stats.glasso import graphical_lasso
from repro.text.similarity import cell_similarity

SimilarityFn = Callable[[Cell, Cell, object], float]


@dataclass
class FDXConfig:
    """Knobs of the FDX structure learner.

    Attributes
    ----------
    glasso_alpha:
        L1 penalty of graphical lasso (sparsity of Θ).
    edge_threshold:
        Minimum |B| entry for an edge to be kept (paper: "retaining only
        edges with weights exceeding the threshold").
    max_parents:
        In-degree cap applied after thresholding (strongest edges win).
    max_pairs_per_attribute:
        Sampling cap on adjacent pairs per sort attribute; keeps the
        profiling cost linear for large tables.
    exhaustive_order_limit:
        Up to this many attributes, all orderings are tried; beyond it a
        greedy + local-search heuristic is used.
    use_strict_equality:
        Ablation switch: replace the softened similarity with the strict
        FD check (DESIGN.md ablation "similarity softening").
    seed:
        Seed for pair subsampling.
    """

    glasso_alpha: float = 0.01
    edge_threshold: float = 0.03
    max_parents: int = 4
    max_pairs_per_attribute: int = 1500
    exhaustive_order_limit: int = 6
    use_strict_equality: bool = False
    seed: int = 0


@dataclass
class FDXResult:
    """Learned skeleton plus all intermediate artefacts (for inspection)."""

    dag: DAG
    covariance: np.ndarray
    precision: np.ndarray
    autoregression: np.ndarray
    ordering: list[str]
    n_samples: int
    diagnostics: dict = field(default_factory=dict)


class SimilarityProfiler:
    """Builds the similarity-observation matrix of step 1."""

    def __init__(self, table: Table, config: FDXConfig):
        self.table = table
        self.config = config
        self._cache: dict[tuple[int, Cell, Cell], float] = {}

    def _sim(self, j: int, a: Cell, b: Cell) -> float:
        if self.config.use_strict_equality:
            from repro.text.similarity import strict_equality_similarity

            return strict_equality_similarity(a, b)
        key = (j, a, b) if str(a) <= str(b) else (j, b, a)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        attr_type = self.table.schema.attributes[j].attr_type
        val = cell_similarity(a, b, attr_type)
        self._cache[key] = val
        return val

    def profile(self) -> np.ndarray:
        """The (n_pairs, m) matrix of similarity observations.

        For every attribute we sort the tuples by that attribute and
        emit one sample per adjacent pair (subsampled to the configured
        cap with a fixed stride so coverage stays uniform).
        """
        table = self.table
        m = table.n_cols
        if table.n_rows < 2:
            raise StructureLearningError(
                "need at least 2 rows to profile similarities"
            )
        rows: list[list[float]] = []
        cap = self.config.max_pairs_per_attribute
        for sort_attr in table.schema.names:
            order = table.argsort_by(sort_attr)
            pairs = [
                (order[i], order[i + 1]) for i in range(len(order) - 1)
            ]
            if cap is not None and len(pairs) > cap:
                stride = len(pairs) / cap
                pairs = [pairs[int(i * stride)] for i in range(cap)]
            for i1, i2 in pairs:
                sample = [
                    self._sim(j, table.columns[j][i1], table.columns[j][i2])
                    for j in range(m)
                ]
                rows.append(sample)
        return np.asarray(rows, dtype=float)


def _udu_decompose(theta: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Factor a PD matrix as Θ = U D Uᵀ with U unit *upper* triangular.

    Implemented by Cholesky of the index-reversed matrix: if
    ``R = JΘJ = L L'ᵀ`` then ``U = J L_norm J`` is unit upper triangular,
    where ``L_norm`` has unit diagonal and ``D`` collects the squared
    diagonal of the Cholesky factor.
    """
    p = theta.shape[0]
    rev = np.arange(p)[::-1]
    r = theta[np.ix_(rev, rev)]
    try:
        chol = np.linalg.cholesky(r)
    except np.linalg.LinAlgError as exc:
        raise StructureLearningError(
            "precision matrix is not positive definite"
        ) from exc
    diag = np.diag(chol)
    l_norm = chol / diag[np.newaxis, :]
    u = l_norm[np.ix_(rev, rev)]
    d = np.diag(diag[rev] ** 2)
    return u, d


def _autoregression_for_order(
    theta: np.ndarray, order: Sequence[int]
) -> np.ndarray:
    """B (in *original* index space) for a candidate topological order.

    ``Θ_π = U D Uᵀ`` with ``U = I − B_π``; B is mapped back so that
    ``B[k, j] ≠ 0`` means edge ``k → j``.
    """
    perm = list(order)
    theta_p = theta[np.ix_(perm, perm)]
    u, _ = _udu_decompose(theta_p)
    b_p = np.eye(len(perm)) - u
    inv = np.argsort(perm)
    return b_p[np.ix_(inv, inv)]


def _order_cost(theta: np.ndarray, order: Sequence[int], tol: float) -> tuple[int, float]:
    """(edge count above tol, total |B| mass) — lower is sparser."""
    b = _autoregression_for_order(theta, order)
    mag = np.abs(b)
    return int((mag > tol).sum()), float(mag.sum())


def _search_ordering(
    theta: np.ndarray, config: FDXConfig
) -> list[int]:
    """Find the (approximately) sparsest topological ordering."""
    p = theta.shape[0]
    tol = config.edge_threshold / 2.0

    if p <= config.exhaustive_order_limit:
        best, best_cost = None, None
        for perm in itertools.permutations(range(p)):
            try:
                cost = _order_cost(theta, perm, tol)
            except StructureLearningError:
                continue
            if best_cost is None or cost < best_cost:
                best, best_cost = list(perm), cost
        if best is None:
            raise StructureLearningError("no valid ordering found")
        return best

    # Heuristic: start from support-degree orderings, refine by adjacent swaps.
    support = (np.abs(theta) > 1e-10).sum(axis=0)
    starts = [
        list(range(p)),
        list(np.argsort(support)),
        list(np.argsort(-support)),
    ]
    best, best_cost = None, None
    for start in starts:
        order = list(start)
        try:
            cost = _order_cost(theta, order, tol)
        except StructureLearningError:
            continue
        improved = True
        while improved:
            improved = False
            for i in range(p - 1):
                candidate = order.copy()
                candidate[i], candidate[i + 1] = candidate[i + 1], candidate[i]
                try:
                    c_cost = _order_cost(theta, candidate, tol)
                except StructureLearningError:
                    continue
                if c_cost < cost:
                    order, cost = candidate, c_cost
                    improved = True
        if best_cost is None or cost < best_cost:
            best, best_cost = order, cost
    if best is None:
        raise StructureLearningError("no valid ordering found")
    return best


def fdx_structure(table: Table, config: FDXConfig | None = None) -> FDXResult:
    """Learn the BN skeleton of §4 from a (possibly dirty) table."""
    config = config or FDXConfig()
    names = table.schema.names
    m = len(names)
    if m < 2:
        raise StructureLearningError("need at least 2 attributes")

    profiler = SimilarityProfiler(table, config)
    samples = profiler.profile()
    cov = empirical_covariance(samples)

    try:
        result = graphical_lasso(cov, config.glasso_alpha)
        precision = result.precision
        glasso_iters = result.n_iter
    except ConvergenceError:
        # Fallback: heavily shrunk dense inverse — keeps the pipeline
        # alive on degenerate (e.g. constant-column) inputs.
        precision = np.linalg.inv(shrunk_covariance(cov, 0.2))
        glasso_iters = -1

    # Guarantee PD for the Cholesky-based decomposition.
    precision = (precision + precision.T) / 2.0
    min_eig = float(np.linalg.eigvalsh(precision).min())
    if min_eig <= 1e-10:
        precision = precision + (1e-8 - min_eig) * np.eye(m)

    ordering_idx = _search_ordering(precision, config)
    b = _autoregression_for_order(precision, ordering_idx)

    dag = DAG(names)
    candidate_edges = [
        (abs(b[k, j]), k, j)
        for k in range(m)
        for j in range(m)
        if k != j and abs(b[k, j]) > config.edge_threshold
    ]
    # Strongest edges first so the in-degree cap keeps the best parents.
    for weight, k, j in sorted(candidate_edges, reverse=True):
        if len(dag.parents(names[j])) >= config.max_parents:
            continue
        if not dag.has_edge(names[k], names[j]):
            try:
                dag.add_edge(names[k], names[j], weight)
            except Exception:  # cycle impossible given triangular B, but be safe
                continue

    return FDXResult(
        dag=dag,
        covariance=cov,
        precision=precision,
        autoregression=b,
        ordering=[names[i] for i in ordering_idx],
        n_samples=samples.shape[0],
        diagnostics={
            "glasso_iterations": glasso_iters,
            "n_candidate_edges": len(candidate_edges),
            "similarity_cache_size": len(profiler._cache),
        },
    )
