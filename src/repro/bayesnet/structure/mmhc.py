"""Max-Min Hill-Climbing (MMHC) structure learning.

§4 names MMHC (Tsamardinos et al., 2006) — "provided in the Pgmpy
toolkit" — as the typical hill-climbing approach BClean's FDX-based
construction is contrasted with.  The substrate implements it so the
contrast is reproducible:

1. **MMPC phase** — for every variable, grow a candidate
   parents-and-children (CPC) set with the max-min heuristic (add the
   variable with the largest *minimum* association over subsets of the
   current CPC), then shrink it by testing independence conditioned on
   subsets of the other members.  Association is measured by a G² test
   of conditional independence.
2. **Edge-constrained hill-climbing** — the greedy search of
   :mod:`repro.bayesnet.structure.hillclimb`, restricted to edges whose
   endpoints selected each other in phase 1 (the symmetry correction of
   the original paper).

As with every learner here, dirty data is expected input: errors bias
both phases, which is exactly the weakness §4 attributes to this family
of methods.
"""

from __future__ import annotations

import itertools
import math
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.bayesnet.cpt import cell_key
from repro.bayesnet.dag import DAG
from repro.bayesnet.structure.scores import FamilyScore, make_score
from repro.dataset.table import Table
from repro.errors import StructureLearningError
from repro.obs import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataset.encoding import TableEncoding

try:  # scipy is an install requirement, but degrade to a normal bound
    from scipy.stats import chi2 as _chi2
except ImportError:  # pragma: no cover - scipy is always present here
    _chi2 = None


@dataclass
class MMHCResult:
    """Learned structure plus diagnostics from both phases."""

    dag: DAG
    score: float
    cpc: dict[str, set[str]] = field(default_factory=dict)
    n_independence_tests: int = 0
    n_moves_evaluated: int = 0


def g2_statistic_codes(
    xc: np.ndarray,
    yc: np.ndarray,
    zcols: Sequence[np.ndarray] = (),
    row_counts: np.ndarray | None = None,
) -> tuple[float, int]:
    """G² statistic and degrees of freedom from integer-coded columns.

    One fused ``numpy.unique`` pass yields the observed (x, y, z) cells;
    margins are then group sums *over the distinct cells* (arrays sized
    by the number of observed cells, never by the code space), and the
    statistic is a single vectorised ``Σ 2·n·log(n/expected)``.  The
    value is within ~1e-12 of the reference dict walk (numpy summation
    order and ``np.log`` vs ``math.log``); the regression suite pins the
    two against each other.

    ``row_counts`` weights each row by an integer multiplicity (the
    deduplicated-stream form of :mod:`repro.exec.fit_stream`): the cell
    counts are then the identical int64 values a repeated-row pass would
    produce, and every downstream margin/df derives from them unchanged.
    """
    n = len(xc)
    if n == 0:
        return 0.0, 1
    # Fuse the conditioning columns into dense stratum ids one at a
    # time, densifying after every step: each fuse then multiplies two
    # cardinalities bounded by n, so arbitrary conditioning sets (and
    # arbitrarily large codes) can never overflow the int64 key space.
    nz = 1
    zd = np.zeros(n, dtype=np.int64)
    for col in zcols or ():
        cu, ci = np.unique(col, return_inverse=True)
        strata, zd = np.unique(
            zd * len(cu) + ci.reshape(-1), return_inverse=True
        )
        zd = zd.reshape(-1)
        nz = len(strata)
    cx = int(xc.max()) + 1
    cy = int(yc.max()) + 1
    if nz * cx * cy > 2**62:
        # Near-key columns on huge tables: densify x and y too.
        xc = np.unique(xc, return_inverse=True)[1].reshape(-1)
        yc = np.unique(yc, return_inverse=True)[1].reshape(-1)
        cx = int(xc.max()) + 1
        cy = int(yc.max()) + 1
    cell = (zd * cx + xc) * cy + yc
    if row_counts is None:
        keys, n_xyz = np.unique(cell, return_counts=True)
    else:
        keys, inv = np.unique(cell, return_inverse=True)
        n_xyz = np.zeros(len(keys), dtype=np.int64)
        np.add.at(
            n_xyz, inv.reshape(-1), np.asarray(row_counts, dtype=np.int64)
        )

    # Decompose the distinct cells and group-sum the margins over them.
    ky = keys % cy
    kzx = keys // cy
    kz = kzx // cx
    xz_keys, xz_inv = np.unique(kzx, return_inverse=True)
    m_xz = np.bincount(xz_inv, weights=n_xyz)
    yz_id = kz * cy + ky
    yz_keys, yz_inv = np.unique(yz_id, return_inverse=True)
    m_yz = np.bincount(yz_inv, weights=n_xyz)
    m_z = np.bincount(kz, weights=n_xyz, minlength=nz)

    expected = m_xz[xz_inv] * m_yz[yz_inv] / m_z[kz]
    g2 = 2.0 * float(np.sum(n_xyz * np.log(n_xyz / expected)))

    # df from observed support per stratum: distinct x (resp. y) per z.
    cnt_x = np.bincount(xz_keys // cx, minlength=nz)
    cnt_y = np.bincount(yz_keys // cy, minlength=nz)
    df = int(np.sum(np.maximum(0, cnt_x - 1) * np.maximum(0, cnt_y - 1)))
    return max(0.0, g2), max(1, df)


def _g2_statistic_reference(
    table: Table, x: str, y: str, conditioning: Sequence[str]
) -> tuple[float, int]:
    """The value-level reference walk (the oracle the coded path is
    pinned against): per-row ``Counter`` accumulation over cell keys."""
    xs = [cell_key(v) for v in table.column(x)]
    ys = [cell_key(v) for v in table.column(y)]
    zcols = [[cell_key(v) for v in table.column(z)] for z in conditioning]

    joint: Counter = Counter()
    margin_xz: Counter = Counter()
    margin_yz: Counter = Counter()
    margin_z: Counter = Counter()
    for i in range(table.n_rows):
        zk = tuple(col[i] for col in zcols)
        joint[(xs[i], ys[i], zk)] += 1
        margin_xz[(xs[i], zk)] += 1
        margin_yz[(ys[i], zk)] += 1
        margin_z[zk] += 1

    g2 = 0.0
    for (xv, yv, zk), n_xyz in joint.items():
        expected = margin_xz[(xv, zk)] * margin_yz[(yv, zk)] / margin_z[zk]
        if expected > 0:
            g2 += 2.0 * n_xyz * math.log(n_xyz / expected)

    df = 0
    x_by_z: dict[tuple, set] = {}
    y_by_z: dict[tuple, set] = {}
    for (xv, zk) in margin_xz:
        x_by_z.setdefault(zk, set()).add(xv)
    for (yv, zk) in margin_yz:
        y_by_z.setdefault(zk, set()).add(yv)
    for zk in margin_z:
        df += max(0, len(x_by_z[zk]) - 1) * max(0, len(y_by_z[zk]) - 1)
    return max(0.0, g2), max(1, df)


def g2_statistic(
    table: Table,
    x: str,
    y: str,
    conditioning: Sequence[str] = (),
    encoding: "TableEncoding | None" = None,
) -> tuple[float, int]:
    """G² statistic and degrees of freedom for ``x ⟂ y | conditioning``.

    ``G² = 2 Σ n_xyz · log(n_xyz · n_z / (n_xz · n_yz))`` over observed
    cells, with ``df = (|X|−1)(|Y|−1)·Π|Z|`` computed from observed
    support per conditioning stratum.

    With a matching ``encoding`` the test runs on the coded fast path
    (:func:`g2_statistic_codes`); without one it takes the value-level
    reference walk, which is the oracle the fast path's regression tests
    pin against (degrees of freedom are integer-identical; the statistic
    agrees to ~1e-12).
    """
    if encoding is not None and encoding.matches(table):
        cols = [encoding.codes(a) for a in (x, y, *conditioning)]
        return g2_statistic_codes(cols[0], cols[1], cols[2:])
    return _g2_statistic_reference(table, x, y, conditioning)


def _chi2_sf(g2: float, df: int) -> float:
    """Upper-tail χ² probability (scipy when present, Wilson–Hilferty
    cube-root normal approximation otherwise).  Deterministic across
    processes, so worker-computed p-values match driver-computed ones."""
    if _chi2 is not None:
        return float(_chi2.sf(g2, df))
    z = ((g2 / df) ** (1.0 / 3.0) - (1 - 2.0 / (9 * df))) / math.sqrt(
        2.0 / (9 * df)
    )
    return 0.5 * math.erfc(z / math.sqrt(2))


def independence_p_value(
    table: Table,
    x: str,
    y: str,
    conditioning: Sequence[str] = (),
    encoding: "TableEncoding | None" = None,
) -> float:
    """p-value of the G² conditional-independence test."""
    g2, df = g2_statistic(table, x, y, conditioning, encoding=encoding)
    return _chi2_sf(g2, df)


class _AssocCache:
    """Memoised min-association bookkeeping for the MMPC phase.

    The encoding is validated against the table **once** here — the
    per-test hot loop then reads the coded columns directly instead of
    re-running the O(cells) ``matches`` scan on every G² test.

    Two extra construction shapes serve the parallel/streamed fit:
    :meth:`from_columns` builds a cache straight from coded columns (the
    exec workers' entry — no table or encoding object in sight), and
    ``row_counts`` weights every test by deduplicated-stream
    multiplicities.  When the MMPC phase is sharded over workers, the
    driver's instance becomes the *merged memo*: per-target shard
    results feed their (key, association) items back into ``_cache``
    via :meth:`absorb`, so later driver-side probes replay worker
    results instead of recomputing.
    """

    def __init__(
        self,
        table: Table,
        alpha: float,
        max_condition: int,
        encoding: "TableEncoding | None" = None,
        row_counts: np.ndarray | None = None,
    ):
        self.table = table
        self.alpha = alpha
        self.max_condition = max_condition
        self._columns: dict[str, np.ndarray] | None = None
        if encoding is not None and encoding.matches(table):
            self._columns = {
                n: encoding.codes(n) for n in table.schema.names
            }
        self.row_counts = row_counts if self._columns is not None else None
        self.tests = 0
        self._cache: dict[tuple, float] = {}

    @classmethod
    def from_columns(
        cls,
        columns: dict[str, np.ndarray],
        alpha: float,
        max_condition: int,
        row_counts: np.ndarray | None = None,
    ) -> "_AssocCache":
        """Worker-side construction from coded columns alone."""
        self = cls.__new__(cls)
        self.table = None
        self.alpha = alpha
        self.max_condition = max_condition
        self._columns = dict(columns)
        self.row_counts = row_counts
        self.tests = 0
        self._cache = {}
        return self

    def absorb(self, tests: int, items) -> None:
        """Merge one shard's test count and memo items into this (the
        driver-side) cache.  Cross-target keys never collide — every key
        a target's MMPC run produces starts with that target — so the
        merged totals equal what one shared serial cache would hold."""
        self.tests += int(tests)
        self._cache.update(items)

    def _p_value(self, x: str, y: str, conditioning: tuple[str, ...]) -> float:
        if self._columns is None:
            return independence_p_value(self.table, x, y, conditioning)
        cols = self._columns
        g2, df = g2_statistic_codes(
            cols[x],
            cols[y],
            [cols[z] for z in conditioning],
            row_counts=self.row_counts,
        )
        return _chi2_sf(g2, df)

    def assoc(self, x: str, y: str, conditioning: tuple[str, ...]) -> float:
        """Association = 1 − p-value (0 when independent at level α)."""
        key = (x, y, tuple(sorted(conditioning)))
        if key not in self._cache:
            self.tests += 1
            p = self._p_value(x, y, conditioning)
            self._cache[key] = 0.0 if p > self.alpha else 1.0 - p
        return self._cache[key]

    def min_assoc(self, x: str, y: str, cpc: Sequence[str]) -> float:
        """Minimum association of (x, y) over subsets of ``cpc``."""
        best = self.assoc(x, y, ())
        for size in range(1, min(len(cpc), self.max_condition) + 1):
            for subset in itertools.combinations(sorted(cpc), size):
                best = min(best, self.assoc(x, y, subset))
                if best == 0.0:
                    return 0.0
        return best


def _mmpc_core(
    names: Sequence[str], target: str, cache: _AssocCache
) -> set[str]:
    """The MMPC grow/shrink loop over attribute *names* — shared by the
    driver path (:func:`mmpc`) and the exec workers, which construct the
    cache via :meth:`_AssocCache.from_columns`.  Candidate enumeration
    sorts by name, so results are independent of set iteration order
    (and therefore identical across processes)."""
    others = [n for n in names if n != target]

    cpc: list[str] = []
    candidates = set(others)
    while candidates:
        scored = {
            y: cache.min_assoc(target, y, cpc) for y in sorted(candidates)
        }
        best = max(scored, key=lambda y: scored[y])
        if scored[best] <= 0.0:
            break
        cpc.append(best)
        candidates.discard(best)
        # Anything already independent given some subset never returns.
        candidates = {y for y in candidates if scored[y] > 0.0}

    # Shrink: drop members separated from the target by the rest.
    for member in list(cpc):
        rest = [m for m in cpc if m != member]
        if cache.min_assoc(target, member, rest) <= 0.0:
            cpc.remove(member)
    return set(cpc)


def mmpc(
    table: Table,
    target: str,
    alpha: float = 0.05,
    max_condition: int = 2,
    cache: _AssocCache | None = None,
    encoding: "TableEncoding | None" = None,
) -> set[str]:
    """Candidate parents-and-children of ``target`` (MMPC).

    Grow greedily by the max-min heuristic, then shrink by re-testing
    each member against subsets of the others.
    """
    if target not in table.schema.names:
        raise StructureLearningError(f"unknown attribute {target!r}")
    cache = cache or _AssocCache(table, alpha, max_condition, encoding)
    return _mmpc_core(table.schema.names, target, cache)


def _iteration_family_keys(
    dag: DAG,
    nodes: Sequence[str],
    allowed: dict[str, tuple[str, ...]],
    max_parents: int,
) -> list[tuple[str, tuple[str, ...]]]:
    """Every family key the next hill-climbing sweep will ask the scorer
    for, in enumeration order.  A read-only replay of the move loop's
    guards — enumerating is orders of magnitude cheaper than scoring, so
    the driver lists the keys first and the exec backends compute the
    uncached ones in parallel before the (unchanged) serial sweep reads
    them back out of the scorer's cache."""
    keys: list[tuple[str, tuple[str, ...]]] = []
    for u in nodes:
        for v in allowed[u]:
            if not dag.has_edge(u, v):
                if len(dag.parents(v)) >= max_parents:
                    continue
                if dag.has_path(v, u):
                    continue
                keys.append((v, tuple(sorted([*dag.parents(v), u]))))
            else:
                reduced = [p for p in dag.parents(v) if p != u]
                keys.append((v, tuple(sorted(reduced))))
                if len(dag.parents(u)) < max_parents and not _rev_cycle(
                    dag, u, v
                ):
                    keys.append((u, tuple(sorted([*dag.parents(u), v]))))
    return keys


def mmhc(
    table: Table,
    score: FamilyScore | str = "bic",
    alpha: float = 0.05,
    max_condition: int = 2,
    max_parents: int = 3,
    max_iter: int = 200,
    encoding: "TableEncoding | None" = None,
    tracer=NULL_TRACER,
    row_counts: np.ndarray | None = None,
    row_firsts: np.ndarray | None = None,
    n_rows: int | None = None,
    exec_session=None,
    executor: str = "serial",
    n_jobs: int = 1,
) -> MMHCResult:
    """Max-min hill-climbing: MMPC skeleton + constrained greedy search.

    Parameters
    ----------
    table:
        Training data (dirty data is expected — that is the weakness §4
        attributes to score-based searches).
    score:
        A :class:`FamilyScore` or a score name ("bic", "k2", "bdeu").
    alpha:
        Significance level of the G² independence tests.
    max_condition:
        Largest conditioning-set size tried in the MMPC phase.
    max_parents:
        In-degree cap of the hill-climbing phase.
    max_iter:
        Maximum number of accepted hill-climbing moves.
    encoding:
        Optional :class:`~repro.dataset.encoding.TableEncoding` of
        ``table``: both the G² tests and the family scores then ride the
        coded fast path.  Ignored when ``score`` is a pre-built instance.
    tracer:
        Observability tracer: the two phases run under ``mmhc.mmpc``
        and ``mmhc.hillclimb`` spans carrying their G²-test and
        move-evaluation counts (no-op by default); parallel dispatches
        add nested ``mmhc.parallel`` spans.
    row_counts / row_firsts / n_rows:
        Deduplicated-stream weighting (see
        :mod:`repro.exec.fit_stream`): ``table`` then holds the stream's
        distinct rows, each counted ``row_counts[i]`` times, first seen
        at global index ``row_firsts[i]``, out of ``n_rows`` total.
        Results are bit-identical to running on the full stream.
    exec_session / executor / n_jobs:
        Parallel structure search.  With a non-serial ``executor`` and
        an open :class:`~repro.exec.session.ExecSession` over a
        :class:`~repro.exec.fit.FitJobState` of the same coded columns,
        the per-target MMPC scans and each sweep's uncached family
        scores dispatch as task batches over the session's backends
        (deterministic by-task-index merge; the driver cache becomes a
        memo fed by shard results).  The search loops themselves stay
        driver-side, so DAG, score, and both phase counters are
        bit-identical to the serial path.
    """
    if not 0.0 < alpha < 1.0:
        raise StructureLearningError(f"alpha must be in (0, 1), got {alpha}")
    nodes = table.schema.names
    if len(nodes) < 2:
        raise StructureLearningError("need at least two attributes")

    cache = _AssocCache(
        table, alpha, max_condition, encoding, row_counts=row_counts
    )
    parallel = (
        exec_session is not None
        and executor != "serial"
        and cache._columns is not None
    )
    with tracer.span("mmhc.mmpc", cat="fit") as mmpc_span:
        if parallel:
            from repro.exec.fit import run_mmpc_job

            with tracer.span(
                "mmhc.parallel", cat="fit", phase="mmpc", n_tasks=len(nodes)
            ) as par_span:
                shard_results, diag = run_mmpc_job(
                    exec_session.state,
                    list(nodes),
                    alpha=alpha,
                    max_condition=max_condition,
                    executor=executor,
                    n_jobs=n_jobs,
                    session=exec_session,
                    tracer=tracer,
                )
                par_span.add(backend=diag.get("fit_executor"))
            cpc = {}
            for name, (members, tests, items) in zip(nodes, shard_results):
                cpc[name] = set(members)
                cache.absorb(tests, items)
        else:
            cpc = {
                n: mmpc(table, n, alpha, max_condition, cache) for n in nodes
            }
        mmpc_span.add(independence_tests=cache.tests)
    tracer.add_counter("mmhc_independence_tests", cache.tests)
    # Symmetry correction: keep y in CPC(x) only if x in CPC(y).  Sorted
    # tuples, not sets: the hill-climb enumerates moves in this order,
    # and a hash-ordered set would make edge insertion order — and with
    # it CPT parent order and the float summation order of every
    # downstream score — depend on the process's PYTHONHASHSEED.
    allowed: dict[str, tuple[str, ...]] = {
        n: tuple(y for y in sorted(cpc[n]) if n in cpc[y]) for n in nodes
    }

    scorer = (
        make_score(
            score,
            table,
            encoding=encoding,
            row_counts=row_counts,
            row_firsts=row_firsts,
            n_rows=n_rows,
        )
        if isinstance(score, str)
        else score
    )
    prefetch = (
        parallel and scorer.kind is not None and scorer.encoding is not None
    )

    def _prime(keys: list[tuple[str, tuple[str, ...]]]) -> None:
        """Compute the uncached family keys over the exec backends and
        prime the scorer's cache; the serial sweep then only reads."""
        missing = [k for k in dict.fromkeys(keys) if k not in scorer._cache]
        if not missing:
            return
        from repro.exec.fit import run_score_job

        with tracer.span(
            "mmhc.parallel", cat="fit", phase="scores", n_tasks=len(missing)
        ) as par_span:
            values, diag = run_score_job(
                exec_session.state,
                missing,
                kind=scorer.kind,
                ess=getattr(scorer, "ess", 1.0),
                n_rows=scorer.n_rows,
                executor=executor,
                n_jobs=n_jobs,
                session=exec_session,
                tracer=tracer,
            )
            par_span.add(backend=diag.get("fit_executor"))
        for key, val in zip(missing, values):
            scorer._cache[key] = val

    if prefetch:
        _prime([(n, ()) for n in nodes])
    dag = DAG(nodes)
    current = {n: scorer.family(n, ()) for n in nodes}
    n_eval = 0

    with tracer.span("mmhc.hillclimb", cat="fit") as hc_span:
        for _ in range(max_iter):
            if prefetch:
                _prime(
                    _iteration_family_keys(dag, nodes, allowed, max_parents)
                )
            best_delta = 1e-9
            best_move: tuple[str, str, str] | None = None
            for u in nodes:
                for v in allowed[u]:
                    if not dag.has_edge(u, v):
                        if len(dag.parents(v)) >= max_parents:
                            continue
                        if dag.has_path(v, u):
                            continue
                        n_eval += 1
                        delta = (
                            scorer.family(v, [*dag.parents(v), u]) - current[v]
                        )
                        if delta > best_delta:
                            best_delta, best_move = delta, ("add", u, v)
                    else:
                        n_eval += 1
                        reduced = [p for p in dag.parents(v) if p != u]
                        delta = scorer.family(v, reduced) - current[v]
                        if delta > best_delta:
                            best_delta, best_move = delta, ("del", u, v)
                        if len(dag.parents(u)) < max_parents and not _rev_cycle(
                            dag, u, v
                        ):
                            n_eval += 1
                            delta = (
                                scorer.family(v, reduced)
                                - current[v]
                                + scorer.family(u, [*dag.parents(u), v])
                                - current[u]
                            )
                            if delta > best_delta:
                                best_delta, best_move = delta, ("rev", u, v)
            if best_move is None:
                break
            op, u, v = best_move
            if op == "add":
                dag.add_edge(u, v)
            elif op == "del":
                dag.remove_edge(u, v)
            else:
                dag.remove_edge(u, v)
                dag.add_edge(v, u)
                current[u] = scorer.family(u, dag.parents(u))
            current[v] = scorer.family(v, dag.parents(v))
        hc_span.add(moves_evaluated=n_eval)
    tracer.add_counter("mmhc_moves_evaluated", n_eval)

    return MMHCResult(
        dag=dag,
        score=sum(current.values()),
        cpc=cpc,
        n_independence_tests=cache.tests,
        n_moves_evaluated=n_eval,
    )


def _rev_cycle(dag: DAG, u: str, v: str) -> bool:
    """Whether reversing ``u → v`` would close a cycle."""
    dag.remove_edge(u, v)
    try:
        return dag.has_path(u, v)
    finally:
        dag.add_edge(u, v)
