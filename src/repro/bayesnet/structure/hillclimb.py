"""Greedy hill-climbing structure search.

The pgmpy-style baseline the paper describes in §4: "add one edge at a
time and evaluate its score ... often converge to a local optimum".  We
keep it as (a) a comparison learner for the ablation bench and (b) the
structure learner behind the "greedy search" row of the §7.3.2 network-
manipulation experiment.

Operators: add / delete / reverse an edge, subject to acyclicity and a
``max_parents`` cap.  Scores are decomposable, so each move only
re-evaluates the affected families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.bayesnet.dag import DAG
from repro.bayesnet.structure.scores import FamilyScore, make_score
from repro.dataset.table import Table
from repro.errors import CycleError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataset.encoding import TableEncoding


@dataclass
class HillClimbResult:
    """Learned structure plus search diagnostics."""

    dag: DAG
    score: float
    n_iterations: int
    n_moves_evaluated: int


def hill_climb(
    table: Table,
    score: FamilyScore | str = "bic",
    max_parents: int = 3,
    max_iter: int = 200,
    epsilon: float = 1e-9,
    encoding: "TableEncoding | None" = None,
    **score_kwargs,
) -> HillClimbResult:
    """Learn a DAG by greedy local search from the empty graph.

    Parameters
    ----------
    table:
        Training data (dirty data is fine; that is the point of the
        paper's critique — errors bias the learned structure).
    score:
        A :class:`FamilyScore` instance or a score name ("bic", "k2",
        "bdeu").
    max_parents:
        In-degree cap (keeps CPTs tractable).
    max_iter:
        Maximum number of accepted moves.
    epsilon:
        Minimum score improvement to accept a move.
    encoding:
        Optional :class:`~repro.dataset.encoding.TableEncoding` of
        ``table``: family counting then rides the coded fast path
        (bit-identical scores, so the same DAG).  Ignored when ``score``
        is a pre-built instance.
    score_kwargs:
        Extra keywords for :func:`~repro.bayesnet.structure.scores.make_score`
        (notably the deduplicated-stream ``row_counts`` / ``row_firsts``
        / ``n_rows`` of :mod:`repro.exec.fit_stream`).  Ignored when
        ``score`` is a pre-built instance.
    """
    scorer = (
        make_score(score, table, encoding=encoding, **score_kwargs)
        if isinstance(score, str)
        else score
    )
    nodes = table.schema.names
    dag = DAG(nodes)
    current = {n: scorer.family(n, ()) for n in nodes}
    n_eval = 0

    for iteration in range(max_iter):
        best_delta = epsilon
        best_move: tuple[str, str, str] | None = None

        for u in nodes:
            for v in nodes:
                if u == v:
                    continue
                if not dag.has_edge(u, v):
                    # add u -> v
                    if len(dag.parents(v)) >= max_parents:
                        continue
                    if dag.has_path(v, u):
                        continue
                    n_eval += 1
                    new = scorer.family(v, [*dag.parents(v), u])
                    delta = new - current[v]
                    if delta > best_delta:
                        best_delta, best_move = delta, ("add", u, v)
                else:
                    # delete u -> v
                    n_eval += 1
                    reduced = [p for p in dag.parents(v) if p != u]
                    new = scorer.family(v, reduced)
                    delta = new - current[v]
                    if delta > best_delta:
                        best_delta, best_move = delta, ("del", u, v)
                    # reverse u -> v  (becomes v -> u)
                    if len(dag.parents(u)) >= max_parents:
                        continue
                    if _reversal_creates_cycle(dag, u, v):
                        continue
                    n_eval += 1
                    new_v = scorer.family(v, reduced)
                    new_u = scorer.family(u, [*dag.parents(u), v])
                    delta = (new_v - current[v]) + (new_u - current[u])
                    if delta > best_delta:
                        best_delta, best_move = delta, ("rev", u, v)

        if best_move is None:
            return HillClimbResult(dag, sum(current.values()), iteration, n_eval)

        op, u, v = best_move
        if op == "add":
            dag.add_edge(u, v)
            current[v] = scorer.family(v, dag.parents(v))
        elif op == "del":
            dag.remove_edge(u, v)
            current[v] = scorer.family(v, dag.parents(v))
        else:  # reverse
            dag.remove_edge(u, v)
            try:
                dag.add_edge(v, u)
            except CycleError:  # pragma: no cover - guarded above
                dag.add_edge(u, v)
                continue
            current[v] = scorer.family(v, dag.parents(v))
            current[u] = scorer.family(u, dag.parents(u))

    return HillClimbResult(dag, sum(current.values()), max_iter, n_eval)


def _reversal_creates_cycle(dag: DAG, u: str, v: str) -> bool:
    """Whether reversing ``u → v`` to ``v → u`` would close a cycle."""
    dag.remove_edge(u, v)
    try:
        return dag.has_path(u, v)
    finally:
        dag.add_edge(u, v)
