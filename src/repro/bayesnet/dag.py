"""Directed acyclic graphs over named nodes.

The BN structure layer: nodes are attribute names; edges carry the
weight assigned by the structure learner (e.g. the autoregression
coefficient from the FDX decomposition).  All mutating operations keep
the acyclicity invariant and raise :class:`~repro.errors.CycleError`
otherwise.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import CycleError, GraphError


class DAG:
    """A mutable directed acyclic graph with weighted edges."""

    def __init__(self, nodes: Iterable[str] = ()):
        self._parents: dict[str, dict[str, float]] = {}
        self._children: dict[str, dict[str, float]] = {}
        for n in nodes:
            self.add_node(n)

    # -- nodes -----------------------------------------------------------------

    def add_node(self, node: str) -> None:
        """Add ``node`` (idempotent)."""
        self._parents.setdefault(node, {})
        self._children.setdefault(node, {})

    def remove_node(self, node: str) -> None:
        """Remove ``node`` and all incident edges."""
        self._require(node)
        for p in list(self._parents[node]):
            del self._children[p][node]
        for c in list(self._children[node]):
            del self._parents[c][node]
        del self._parents[node]
        del self._children[node]

    @property
    def nodes(self) -> list[str]:
        """All node names, in insertion order."""
        return list(self._parents)

    def __contains__(self, node: object) -> bool:
        return node in self._parents

    def __len__(self) -> int:
        return len(self._parents)

    def _require(self, node: str) -> None:
        if node not in self._parents:
            raise GraphError(f"unknown node {node!r}")

    # -- edges ------------------------------------------------------------------

    def add_edge(self, u: str, v: str, weight: float = 1.0) -> None:
        """Add edge ``u → v``; raises :class:`CycleError` if it closes a cycle."""
        self._require(u)
        self._require(v)
        if u == v:
            raise CycleError(f"self-loop on {u!r}")
        if self.has_path(v, u):
            raise CycleError(f"edge {u!r} → {v!r} would create a cycle")
        self._children[u][v] = weight
        self._parents[v][u] = weight

    def remove_edge(self, u: str, v: str) -> None:
        """Remove edge ``u → v`` (raises GraphError if absent)."""
        self._require(u)
        self._require(v)
        if v not in self._children[u]:
            raise GraphError(f"no edge {u!r} → {v!r}")
        del self._children[u][v]
        del self._parents[v][u]

    def has_edge(self, u: str, v: str) -> bool:
        """Whether edge ``u → v`` exists."""
        return u in self._children and v in self._children[u]

    def edge_weight(self, u: str, v: str) -> float:
        """Weight of edge ``u → v``."""
        if not self.has_edge(u, v):
            raise GraphError(f"no edge {u!r} → {v!r}")
        return self._children[u][v]

    def edges(self) -> list[tuple[str, str, float]]:
        """All edges as ``(u, v, weight)`` triples."""
        return [
            (u, v, w)
            for u, targets in self._children.items()
            for v, w in targets.items()
        ]

    @property
    def n_edges(self) -> int:
        """Number of directed edges."""
        return sum(len(t) for t in self._children.values())

    # -- neighbourhoods ----------------------------------------------------------

    def parents(self, node: str) -> list[str]:
        """Parent nodes of ``node``."""
        self._require(node)
        return list(self._parents[node])

    def children(self, node: str) -> list[str]:
        """Child nodes of ``node``."""
        self._require(node)
        return list(self._children[node])

    def markov_blanket(self, node: str) -> set[str]:
        """Parents, children, and co-parents of ``node`` (excluding itself).

        This is the sub-network used by BClean's partitioned inference
        (§6.1): conditioning on the blanket renders ``node`` independent
        of the rest of the network.
        """
        self._require(node)
        blanket: set[str] = set(self._parents[node])
        for child in self._children[node]:
            blanket.add(child)
            blanket.update(self._parents[child])
        blanket.discard(node)
        return blanket

    def is_isolated(self, node: str) -> bool:
        """Whether ``node`` has no incident edges."""
        self._require(node)
        return not self._parents[node] and not self._children[node]

    # -- traversal ---------------------------------------------------------------

    def has_path(self, src: str, dst: str) -> bool:
        """Whether a directed path ``src ⇝ dst`` exists (src == dst counts)."""
        self._require(src)
        self._require(dst)
        if src == dst:
            return True
        stack = [src]
        seen = {src}
        while stack:
            u = stack.pop()
            for v in self._children[u]:
                if v == dst:
                    return True
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return False

    def ancestors(self, node: str) -> set[str]:
        """All nodes with a directed path into ``node``."""
        self._require(node)
        out: set[str] = set()
        stack = list(self._parents[node])
        while stack:
            u = stack.pop()
            if u not in out:
                out.add(u)
                stack.extend(self._parents[u])
        return out

    def descendants(self, node: str) -> set[str]:
        """All nodes reachable from ``node``."""
        self._require(node)
        out: set[str] = set()
        stack = list(self._children[node])
        while stack:
            u = stack.pop()
            if u not in out:
                out.add(u)
                stack.extend(self._children[u])
        return out

    def topological_order(self) -> list[str]:
        """Kahn's algorithm; the acyclicity invariant guarantees success."""
        in_deg = {n: len(self._parents[n]) for n in self._parents}
        queue = [n for n, d in in_deg.items() if d == 0]
        order: list[str] = []
        while queue:
            u = queue.pop()
            order.append(u)
            for v in self._children[u]:
                in_deg[v] -= 1
                if in_deg[v] == 0:
                    queue.append(v)
        if len(order) != len(self._parents):  # pragma: no cover - invariant
            raise CycleError("graph contains a cycle (invariant violated)")
        return order

    def __iter__(self) -> Iterator[str]:
        return iter(self._parents)

    # -- derivation ----------------------------------------------------------------

    def copy(self) -> "DAG":
        """An independent deep copy."""
        g = DAG(self.nodes)
        for u, v, w in self.edges():
            g.add_edge(u, v, w)
        return g

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DAG):
            return NotImplemented
        return (
            set(self.nodes) == set(other.nodes)
            and {(u, v) for u, v, _ in self.edges()}
            == {(u, v) for u, v, _ in other.edges()}
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DAG({len(self)} nodes, {self.n_edges} edges)"

    def pretty(self) -> str:
        """Human-readable edge list, one per line."""
        lines = [f"DAG with {len(self)} nodes, {self.n_edges} edges"]
        for u, v, w in sorted(self.edges()):
            lines.append(f"  {u} -> {v}  (weight {w:.4f})")
        for n in self.nodes:
            if self.is_isolated(n):
                lines.append(f"  {n}  (isolated)")
        return "\n".join(lines)
