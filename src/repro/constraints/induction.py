"""Pattern induction: learn UC regular expressions from example values.

§2 argues that pattern UCs do not require regex expertise because
"numerous online tools exist for generating them from examples" (Regex
Generator++ [5, 6]).  This module is that tool, offline: given a column
of (mostly clean) example values it induces the ``Pattern``, length, and
not-null constraints a data-quality expert would have written by hand —
the Table 3 workflow without the expert.

The induction is deliberately conservative and robust to dirty input:

1. every value is tokenised into runs of character classes (digits,
   uppercase, lowercase, whitespace, punctuation literals);
2. values are grouped by their run-class sequence (*mask*); rare masks —
   which is where errors live, errors being rare by the paper's own
   modelling assumption — are dropped;
3. each surviving mask becomes one regex branch whose run lengths are
   generalised to the observed ``{min,max}`` ranges;
4. branches are joined by alternation, and length/not-null bounds are
   read off the surviving values.

If no small set of masks covers the column (free text), the inducer
falls back to a character-alphabet constraint rather than inventing an
over-fitted pattern.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.constraints.builtin import (
    MaxLength,
    MinLength,
    NotNull,
    Pattern,
)
from repro.constraints.base import CellConstraint
from repro.constraints.registry import UCRegistry
from repro.dataset.table import Cell, Table, is_null
from repro.errors import ConstraintSpecError

#: Regex fragment per run class symbol.
_CLASS_RE = {
    "9": "[0-9]",
    "A": "[A-Z]",
    "a": "[a-z]",
    "s": " ",
}


@dataclass(frozen=True)
class _Run:
    """One run of a character class: symbol + length."""

    symbol: str
    length: int


@dataclass(frozen=True)
class MaskGroup:
    """One induced regex branch and the evidence behind it."""

    mask: str
    support: int
    regex: str


@dataclass
class InducedProfile:
    """Everything learned from one column of examples."""

    regex: str
    groups: list[MaskGroup]
    coverage: float
    min_length: int
    max_length: int
    saw_null: bool
    n_examples: int
    fallback: bool

    def pattern(self) -> Pattern:
        """The induced regex as a ``Pattern`` UC."""
        return Pattern(self.regex)

    def constraints(
        self,
        include_lengths: bool = True,
        include_notnull: bool = True,
    ) -> list[CellConstraint]:
        """The full UC set a Table 3 entry would list for this column."""
        out: list[CellConstraint] = [self.pattern()]
        if include_lengths:
            out.append(MinLength(self.min_length))
            out.append(MaxLength(self.max_length))
        if include_notnull and not self.saw_null:
            out.append(NotNull())
        return out


def tokenize_runs(value: Cell) -> tuple[_Run, ...]:
    """Split a value into maximal runs of one character class.

    Punctuation characters are their own class (the literal character),
    so ``"2:30 p.m."`` keeps its separators as anchors.
    """
    runs: list[_Run] = []
    for ch in str(value):
        if ch.isdigit():
            sym = "9"
        elif ch.isalpha():
            sym = "A" if ch.isupper() else "a"
        elif ch == " ":
            sym = "s"
        else:
            sym = ch
        if runs and runs[-1].symbol == sym:
            runs[-1] = _Run(sym, runs[-1].length + 1)
        else:
            runs.append(_Run(sym, 1))
    return tuple(runs)


def _mask_of(runs: Sequence[_Run]) -> str:
    return "".join(r.symbol for r in runs)


def _quantifier(lo: int, hi: int) -> str:
    if lo == hi:
        return "" if lo == 1 else f"{{{lo}}}"
    return f"{{{lo},{hi}}}"


def _branch_regex(run_groups: Sequence[Sequence[_Run]]) -> str:
    """Generalise same-mask tokenisations into one regex branch."""
    n_runs = len(run_groups[0])
    pieces: list[str] = []
    for pos in range(n_runs):
        symbol = run_groups[0][pos].symbol
        lengths = [runs[pos].length for runs in run_groups]
        lo, hi = min(lengths), max(lengths)
        base = _CLASS_RE.get(symbol, re.escape(symbol))
        pieces.append(base + _quantifier(lo, hi))
    return "".join(pieces)


def _alphabet_fallback(values: Sequence[str]) -> str:
    """A character-alphabet regex for columns with no dominant format."""
    classes: set[str] = set()
    literals: set[str] = set()
    for v in values:
        for ch in v:
            if ch.isdigit():
                classes.add("0-9")
            elif ch.isupper():
                classes.add("A-Z")
            elif ch.islower():
                classes.add("a-z")
            else:
                literals.add(ch)
    body = "".join(sorted(classes)) + "".join(
        re.escape(ch) for ch in sorted(literals)
    )
    lo = min(len(v) for v in values)
    hi = max(len(v) for v in values)
    return f"[{body}]{_quantifier(lo, hi)}"


def induce_pattern(
    examples: Iterable[Cell],
    coverage: float = 0.9,
    min_support: int = 2,
    max_branches: int = 4,
) -> InducedProfile:
    """Induce a :class:`Pattern` UC (plus bounds) from example values.

    Parameters
    ----------
    examples:
        Column values; NULLs are noted (for the not-null decision) and
        otherwise ignored.
    coverage:
        Stop adding branches once this fraction of the non-null examples
        is matched.
    min_support:
        Masks seen fewer than this many times are treated as noise.
    max_branches:
        Cap on regex alternation width; if the top ``max_branches`` masks
        do not reach ``coverage``, fall back to an alphabet constraint.
    """
    if not 0.0 < coverage <= 1.0:
        raise ConstraintSpecError(
            f"coverage must be in (0, 1], got {coverage}"
        )
    if min_support < 1:
        raise ConstraintSpecError(
            f"min_support must be at least 1, got {min_support}"
        )

    saw_null = False
    by_mask: dict[str, list[tuple[_Run, ...]]] = {}
    strings: list[str] = []
    for value in examples:
        if is_null(value):
            saw_null = True
            continue
        runs = tokenize_runs(value)
        by_mask.setdefault(_mask_of(runs), []).append(runs)
        strings.append(str(value))
    if not strings:
        raise ConstraintSpecError(
            "cannot induce a pattern from zero non-null examples"
        )

    mask_counts = Counter({m: len(v) for m, v in by_mask.items()})
    total = len(strings)
    kept: list[str] = []
    covered = 0
    for mask, count in mask_counts.most_common():
        if count < min_support and kept:
            break
        kept.append(mask)
        covered += count
        if covered / total >= coverage or len(kept) >= max_branches:
            break

    fallback = covered / total < coverage
    if fallback:
        regex = _alphabet_fallback(strings)
        groups = [MaskGroup("<alphabet>", total, regex)]
        surviving = strings
    else:
        groups = [
            MaskGroup(mask, mask_counts[mask], _branch_regex(by_mask[mask]))
            for mask in kept
        ]
        regex = (
            groups[0].regex
            if len(groups) == 1
            else "(?:" + "|".join(g.regex for g in groups) + ")"
        )
        surviving = [
            str_value
            for mask in kept
            for runs in by_mask[mask]
            for str_value in [_rebuild(runs)]
        ]

    return InducedProfile(
        regex=regex,
        groups=groups,
        coverage=covered / total if not fallback else 1.0,
        min_length=min(len(s) for s in surviving),
        max_length=max(len(s) for s in surviving),
        saw_null=saw_null,
        n_examples=total,
        fallback=fallback,
    )


def _rebuild(runs: Sequence[_Run]) -> str:
    """Reconstruct a representative string (for length bounds only).

    Lengths are what matter; the actual characters are irrelevant, so a
    canonical character per class is used.
    """
    reps = {"9": "0", "A": "X", "a": "x", "s": " "}
    return "".join(reps.get(r.symbol, r.symbol) * r.length for r in runs)


def induce_registry(
    table: Table,
    attributes: Sequence[str] | None = None,
    coverage: float = 0.9,
    min_support: int = 2,
    max_branches: int = 4,
    include_lengths: bool = True,
    include_notnull: bool = True,
) -> UCRegistry:
    """Induce a full UC registry from a (mostly clean) table.

    The automated counterpart of Table 3: one induced pattern + length
    bounds (+ not-null where the column has no NULLs) per attribute.
    Columns whose values defeat induction (all NULL) are skipped.
    """
    registry = UCRegistry()
    for attr in attributes or table.schema.names:
        try:
            profile = induce_pattern(
                table.column(attr),
                coverage=coverage,
                min_support=min_support,
                max_branches=max_branches,
            )
        except ConstraintSpecError:
            continue
        registry.add(
            attr,
            *profile.constraints(
                include_lengths=include_lengths,
                include_notnull=include_notnull,
            ),
        )
    return registry
