"""The built-in UC vocabulary of §2:

1. minimum/maximum attribute lengths (or min/max values for numerics),
2. non-null constraints,
3. regular expressions for digits and dates.

Each constraint carries a ``family`` tag (``max`` / ``min`` / ``null`` /
``pattern``) matching the Figure 5 ablation groups.
"""

from __future__ import annotations

import re

from repro.constraints.base import CellConstraint, null_passes
from repro.dataset.table import Cell, is_null
from repro.errors import ConstraintSpecError


class NotNull(CellConstraint):
    """The value must not be NULL."""

    family = "null"

    def check(self, value: Cell) -> bool:
        return not is_null(value)

    def describe(self) -> str:
        return "not-null"


class MinLength(CellConstraint):
    """String length must be ≥ ``bound`` (NULL passes; see base docs)."""

    family = "min"

    def __init__(self, bound: int):
        if bound < 0:
            raise ConstraintSpecError(f"min length must be ≥ 0, got {bound}")
        self.bound = bound

    def check(self, value: Cell) -> bool:
        if null_passes(value):
            return True
        return len(str(value)) >= self.bound

    def describe(self) -> str:
        return f"len >= {self.bound}"


class MaxLength(CellConstraint):
    """String length must be ≤ ``bound``."""

    family = "max"

    def __init__(self, bound: int):
        if bound < 0:
            raise ConstraintSpecError(f"max length must be ≥ 0, got {bound}")
        self.bound = bound

    def check(self, value: Cell) -> bool:
        if null_passes(value):
            return True
        return len(str(value)) <= self.bound

    def describe(self) -> str:
        return f"len <= {self.bound}"


class MinValue(CellConstraint):
    """Numeric value must be ≥ ``bound``; unparseable values fail."""

    family = "min"

    def __init__(self, bound: float):
        self.bound = bound

    def check(self, value: Cell) -> bool:
        if null_passes(value):
            return True
        try:
            return float(value) >= self.bound  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False

    def describe(self) -> str:
        return f"value >= {self.bound}"


class MaxValue(CellConstraint):
    """Numeric value must be ≤ ``bound``; unparseable values fail."""

    family = "max"

    def __init__(self, bound: float):
        self.bound = bound

    def check(self, value: Cell) -> bool:
        if null_passes(value):
            return True
        try:
            return float(value) <= self.bound  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False

    def describe(self) -> str:
        return f"value <= {self.bound}"


class Pattern(CellConstraint):
    """The value must fully match a regular expression.

    This is the UC family the Figure 5 ablation finds most influential
    (dropping ``Pat`` causes the largest precision/recall drop).
    """

    family = "pattern"

    def __init__(self, regex: str):
        try:
            self._re = re.compile(regex)
        except re.error as exc:
            raise ConstraintSpecError(f"invalid regex {regex!r}: {exc}") from exc
        self.regex = regex

    def check(self, value: Cell) -> bool:
        if null_passes(value):
            return True
        return self._re.fullmatch(str(value)) is not None

    def describe(self) -> str:
        return f"pattern /{self.regex}/"


class OneOf(CellConstraint):
    """The value must belong to a closed category set."""

    family = "pattern"

    def __init__(self, allowed: set | frozenset | list | tuple):
        if not allowed:
            raise ConstraintSpecError("category set must be non-empty")
        self.allowed = frozenset(str(v) for v in allowed)

    def check(self, value: Cell) -> bool:
        if null_passes(value):
            return True
        return str(value) in self.allowed

    def describe(self) -> str:
        preview = sorted(self.allowed)[:3]
        return f"one-of({', '.join(preview)}{', ...' if len(self.allowed) > 3 else ''})"


#: Common date / time / number patterns, ready to drop into a registry.
DIGITS = Pattern(r"\d+")
DECIMAL = Pattern(r"\d+\.\d+|\d+")
US_ZIP = Pattern(r"[0-9]{5}")
US_PHONE = Pattern(r"[0-9]{10}")
ISO_DATE = Pattern(r"\d{4}-\d{2}-\d{2}")
CLOCK_12H = Pattern(
    r"(1[0-2]|[1-9]):[0-5][0-9] ?[ap]\.?m\.?"
)
