"""Denial constraints (DCs) — the rule language of the HoloClean baseline.

A DC forbids a combination of predicates: ``¬(p₁ ∧ p₂ ∧ ...)``.  We
support the two forms HoloClean's evaluation actually uses:

- **single-tuple** DCs, predicates over one tuple's cells
  (``¬(t.State = 'CA' ∧ t.ZipCode startswith '9' = False)`` style), and
- **pairwise** DCs, predicates over two tuples (the standard encoding of
  FDs: ``¬(t1.Zip = t2.Zip ∧ t1.State ≠ t2.State)``).

Violation detection for pairwise DCs uses hash-blocking on the equality
predicates, keeping it near-linear instead of O(n²).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.bayesnet.cpt import cell_key
from repro.dataset.table import Cell, Table, is_null
from repro.errors import ConstraintSpecError

_OPS: dict[str, Callable[[Cell, Cell], bool]] = {
    "=": lambda a, b: cell_key(a) == cell_key(b),
    "!=": lambda a, b: cell_key(a) != cell_key(b),
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Pred:
    """One predicate of a DC.

    ``left`` / ``right`` are ``(tuple_index, attribute)`` references or a
    constant wrapped as ``("const", value)``.  ``tuple_index`` is 0 for
    ``t1`` and 1 for ``t2``.
    """

    left: tuple
    op: str
    right: tuple

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ConstraintSpecError(
                f"unknown operator {self.op!r}; choose from {sorted(_OPS)}"
            )

    @staticmethod
    def t1(attr: str) -> tuple:
        """Reference ``t1.attr``."""
        return (0, attr)

    @staticmethod
    def t2(attr: str) -> tuple:
        """Reference ``t2.attr``."""
        return (1, attr)

    @staticmethod
    def const(value: Cell) -> tuple:
        """A constant operand."""
        return ("const", value)

    def resolve(self, side: tuple, rows: tuple[Mapping[str, Cell], ...]) -> Cell:
        """Fetch the operand value from the bound tuples."""
        if side[0] == "const":
            return side[1]
        idx, attr = side
        return rows[idx][attr]

    def holds(self, rows: tuple[Mapping[str, Cell], ...]) -> bool:
        """Evaluate the predicate; comparisons with NULL never hold."""
        a = self.resolve(self.left, rows)
        b = self.resolve(self.right, rows)
        if is_null(a) or is_null(b):
            return False
        try:
            return _OPS[self.op](a, b)
        except TypeError:
            return _OPS[self.op](str(a), str(b))


@dataclass(frozen=True)
class DenialConstraint:
    """``¬(pred₁ ∧ ... ∧ predₖ)`` over one or two tuples."""

    predicates: tuple[Pred, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.predicates:
            raise ConstraintSpecError("DC needs at least one predicate")

    @property
    def is_pairwise(self) -> bool:
        """Whether any predicate references t2."""
        return any(
            side[0] == 1
            for p in self.predicates
            for side in (p.left, p.right)
            if side[0] != "const"
        )

    def violated_by(self, *rows: Mapping[str, Cell]) -> bool:
        """Whether the bound tuple(s) satisfy every predicate (= violate the DC)."""
        bound = (rows[0], rows[-1])
        return all(p.holds(bound) for p in self.predicates)

    @classmethod
    def from_fd(cls, lhs: str, rhs: str, name: str = "") -> "DenialConstraint":
        """The standard pairwise encoding of an FD ``lhs → rhs``."""
        return cls(
            (
                Pred(Pred.t1(lhs), "=", Pred.t2(lhs)),
                Pred(Pred.t1(rhs), "!=", Pred.t2(rhs)),
            ),
            name=name or f"FD({lhs}->{rhs})",
        )

    def describe(self) -> str:
        """Readable rendering used in reports."""
        def fmt(side: tuple) -> str:
            if side[0] == "const":
                return repr(side[1])
            return f"t{side[0] + 1}.{side[1]}"

        body = " and ".join(f"{fmt(p.left)} {p.op} {fmt(p.right)}" for p in self.predicates)
        return f"not({body})"


def find_violations(
    table: Table, dc: DenialConstraint, limit: int | None = None
) -> list[tuple[int, ...]]:
    """Row-index tuples violating ``dc``.

    Single-tuple DCs scan once; pairwise DCs hash-block on the first
    ``t1.A = t2.A`` predicate so only candidate pairs are compared.
    """
    out: list[tuple[int, ...]] = []
    for hit in iter_violations(table, dc):
        out.append(hit)
        if limit is not None and len(out) >= limit:
            break
    return out


def iter_violations(table: Table, dc: DenialConstraint) -> Iterator[tuple[int, ...]]:
    """Lazily yield violating row-index tuples."""
    rows = [table.row(i).as_dict() for i in range(table.n_rows)]
    if not dc.is_pairwise:
        for i, row in enumerate(rows):
            if dc.violated_by(row):
                yield (i,)
        return

    block_attr = _blocking_attribute(dc)
    if block_attr is None:
        # No equality join predicate: fall back to the quadratic scan.
        for i in range(len(rows)):
            for j in range(len(rows)):
                if i != j and dc.violated_by(rows[i], rows[j]):
                    yield (i, j)
        return

    buckets: dict[object, list[int]] = {}
    for i, row in enumerate(rows):
        v = row[block_attr]
        if is_null(v):
            continue
        buckets.setdefault(cell_key(v), []).append(i)
    for members in buckets.values():
        if len(members) < 2:
            continue
        for i in members:
            for j in members:
                if i != j and dc.violated_by(rows[i], rows[j]):
                    yield (i, j)


def _blocking_attribute(dc: DenialConstraint) -> str | None:
    """An attribute A with a ``t1.A = t2.A`` predicate, if any."""
    for p in dc.predicates:
        if (
            p.op == "="
            and p.left[0] == 0
            and p.right[0] == 1
            and p.left[1] == p.right[1]
        ):
            return p.left[1]
    return None
