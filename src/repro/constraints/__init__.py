"""User constraints: built-in UC vocabulary, FDs, and DCs."""

from repro.constraints.base import (
    CellConstraint,
    Conjunction,
    Disjunction,
    Negation,
    Predicate,
    TupleConstraint,
)
from repro.constraints.builtin import (
    CLOCK_12H,
    DECIMAL,
    DIGITS,
    ISO_DATE,
    US_PHONE,
    US_ZIP,
    MaxLength,
    MaxValue,
    MinLength,
    MinValue,
    NotNull,
    OneOf,
    Pattern,
)
from repro.constraints.dc import (
    DenialConstraint,
    Pred,
    find_violations,
    iter_violations,
)
from repro.constraints.fd import (
    DiscoveredFD,
    FDConstraint,
    FDLookup,
    FunctionalDependency,
    discover_fds,
)
from repro.constraints.induction import (
    InducedProfile,
    MaskGroup,
    induce_pattern,
    induce_registry,
)
from repro.constraints.registry import FAMILIES, UCRegistry

__all__ = [
    "CLOCK_12H",
    "DECIMAL",
    "DIGITS",
    "FAMILIES",
    "ISO_DATE",
    "US_PHONE",
    "US_ZIP",
    "CellConstraint",
    "Conjunction",
    "DenialConstraint",
    "DiscoveredFD",
    "Disjunction",
    "FDConstraint",
    "FDLookup",
    "FunctionalDependency",
    "InducedProfile",
    "MaskGroup",
    "MaxLength",
    "MaxValue",
    "MinLength",
    "MinValue",
    "Negation",
    "NotNull",
    "OneOf",
    "Pattern",
    "Pred",
    "Predicate",
    "TupleConstraint",
    "UCRegistry",
    "discover_fds",
    "find_violations",
    "induce_pattern",
    "induce_registry",
    "iter_violations",
]
