"""Functional dependencies: representation, checking, and discovery.

FDs serve three roles in this repo: (a) tuple-level UCs for BClean, (b)
signals in the Raha-style detector ensemble, (c) the rule language the
Garf baseline mines.  Discovery is approximate — an FD ``X → Y`` is
accepted when the empirical confidence (fraction of tuples agreeing with
the majority Y value of their X group) exceeds a threshold, which
tolerates dirty data.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from itertools import combinations
from typing import Mapping, Sequence

from repro.bayesnet.cpt import cell_key
from repro.constraints.base import TupleConstraint
from repro.dataset.table import Cell, Table, is_null
from repro.errors import ConstraintSpecError


@dataclass(frozen=True)
class FunctionalDependency:
    """An FD ``lhs → rhs`` over attribute names."""

    lhs: tuple[str, ...]
    rhs: str

    def __post_init__(self) -> None:
        if not self.lhs:
            raise ConstraintSpecError("FD needs at least one LHS attribute")
        if self.rhs in self.lhs:
            raise ConstraintSpecError(f"FD rhs {self.rhs!r} appears in lhs")

    def __str__(self) -> str:
        return f"{', '.join(self.lhs)} -> {self.rhs}"

    def key_of(self, row: Mapping[str, Cell]) -> tuple:
        """The (hashable) LHS value tuple of a row."""
        return tuple(cell_key(row[a]) for a in self.lhs)


class FDLookup:
    """Majority-consensus table of an FD over a dataset.

    Maps each observed LHS key to the most frequent RHS value — the
    repair suggestion an FD makes for a violating tuple.
    """

    def __init__(self, fd: FunctionalDependency, table: Table):
        self.fd = fd
        groups: dict[tuple, Counter] = defaultdict(Counter)
        columns = {a: table.column(a) for a in (*fd.lhs, fd.rhs)}
        for i in range(table.n_rows):
            rhs_val = columns[fd.rhs][i]
            if is_null(rhs_val):
                continue
            key = tuple(cell_key(columns[a][i]) for a in fd.lhs)
            groups[key][rhs_val] += 1
        self._consensus: dict[tuple, Cell] = {}
        self._support: dict[tuple, int] = {}
        self._agreement: dict[tuple, float] = {}
        for key, counter in groups.items():
            value, count = counter.most_common(1)[0]
            total = sum(counter.values())
            self._consensus[key] = value
            self._support[key] = total
            self._agreement[key] = count / total

    def expected(self, row: Mapping[str, Cell]) -> Cell | None:
        """The consensus RHS value for this row's LHS key (None if unseen)."""
        return self._consensus.get(self.fd.key_of(row))

    def support(self, row: Mapping[str, Cell]) -> int:
        """Number of tuples sharing this row's LHS key."""
        return self._support.get(self.fd.key_of(row), 0)

    def agreement(self, row: Mapping[str, Cell]) -> float:
        """Fraction of the LHS group agreeing with the consensus (0 if unseen)."""
        return self._agreement.get(self.fd.key_of(row), 0.0)

    def violates(self, row: Mapping[str, Cell]) -> bool:
        """Whether the row's RHS disagrees with a well-supported consensus."""
        expected = self.expected(row)
        if expected is None:
            return False
        return cell_key(row[self.fd.rhs]) != cell_key(expected)


class FDConstraint(TupleConstraint):
    """An FD used as a tuple-level UC: satisfied iff not violating."""

    family = "fd"

    def __init__(self, fd: FunctionalDependency, table: Table):
        self.fd = fd
        self.lookup = FDLookup(fd, table)

    def check_tuple(self, row: Mapping[str, Cell]) -> bool:
        return not self.lookup.violates(row)

    def describe(self) -> str:
        return f"FD {self.fd}"


@dataclass(frozen=True)
class DiscoveredFD:
    """An FD plus the evidence it was mined with."""

    fd: FunctionalDependency
    confidence: float
    n_groups: int


def discover_fds(
    table: Table,
    min_confidence: float = 0.9,
    max_lhs_size: int = 1,
    min_group_size: int = 2,
    attributes: Sequence[str] | None = None,
) -> list[DiscoveredFD]:
    """Mine approximate FDs ``X → Y`` from a (dirty) table.

    Confidence of ``X → Y`` is the weighted mean, over X groups with at
    least ``min_group_size`` members, of the fraction agreeing with the
    group's majority Y value.  Trivial dependencies where X is a key
    (every group a singleton) are skipped — they are vacuous.
    """
    names = list(attributes) if attributes is not None else table.schema.names
    found: list[DiscoveredFD] = []
    for size in range(1, max_lhs_size + 1):
        for lhs in combinations(names, size):
            lhs_cols = [table.column(a) for a in lhs]
            for rhs in names:
                if rhs in lhs:
                    continue
                rhs_col = table.column(rhs)
                groups: dict[tuple, Counter] = defaultdict(Counter)
                for i in range(table.n_rows):
                    if is_null(rhs_col[i]):
                        continue
                    key = tuple(cell_key(col[i]) for col in lhs_cols)
                    groups[key][cell_key(rhs_col[i])] += 1
                weighted_hits = 0
                weighted_total = 0
                n_groups = 0
                for counter in groups.values():
                    total = sum(counter.values())
                    if total < min_group_size:
                        continue
                    n_groups += 1
                    weighted_hits += counter.most_common(1)[0][1]
                    weighted_total += total
                if n_groups == 0 or weighted_total == 0:
                    continue
                confidence = weighted_hits / weighted_total
                if confidence >= min_confidence:
                    found.append(
                        DiscoveredFD(
                            FunctionalDependency(tuple(lhs), rhs),
                            confidence,
                            n_groups,
                        )
                    )
    found.sort(key=lambda d: (-d.confidence, str(d.fd)))
    return found
