"""Per-attribute registry of user constraints.

:class:`UCRegistry` is what the BClean engine consumes: it answers the
paper's ``UC(value)`` query per attribute, computes per-tuple violation
counts for the confidence score (Eq. 3), and supports the Figure 5
ablation of dropping whole constraint families.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.constraints.base import CellConstraint, TupleConstraint
from repro.dataset.table import Cell

#: The family tags the Figure 5 ablation toggles.
FAMILIES = ("max", "min", "null", "pattern")


class UCRegistry:
    """Mapping from attribute name to its list of cell constraints."""

    def __init__(
        self,
        cell_constraints: Mapping[str, Iterable[CellConstraint]] | None = None,
        tuple_constraints: Iterable[TupleConstraint] = (),
    ):
        self._by_attr: dict[str, list[CellConstraint]] = {
            attr: list(cs) for attr, cs in (cell_constraints or {}).items()
        }
        self.tuple_constraints: list[TupleConstraint] = list(tuple_constraints)

    # -- construction -----------------------------------------------------------

    def add(self, attribute: str, *constraints: CellConstraint) -> "UCRegistry":
        """Attach constraints to ``attribute`` (chainable)."""
        self._by_attr.setdefault(attribute, []).extend(constraints)
        return self

    def add_tuple_constraint(self, constraint: TupleConstraint) -> "UCRegistry":
        """Attach a tuple-level constraint (chainable)."""
        self.tuple_constraints.append(constraint)
        return self

    # -- queries -----------------------------------------------------------------

    def constraints_for(self, attribute: str) -> list[CellConstraint]:
        """All cell constraints registered on ``attribute``."""
        return self._by_attr.get(attribute, [])

    def check_cell(self, attribute: str, value: Cell) -> bool:
        """The paper's UC(value): all constraints of the attribute hold."""
        return all(c.check(value) for c in self._by_attr.get(attribute, ()))

    def uc(self, attribute: str, value: Cell) -> int:
        """Binary form: 1 if the cell satisfies its constraints, else 0."""
        return 1 if self.check_cell(attribute, value) else 0

    def violations_in_tuple(self, row: Mapping[str, Cell]) -> int:
        """Number of attribute values of ``row`` violating their UCs."""
        return sum(
            0 if self.check_cell(attr, value) else 1 for attr, value in row.items()
        )

    def satisfied_in_tuple(self, row: Mapping[str, Cell]) -> int:
        """Number of attribute values of ``row`` satisfying their UCs."""
        return sum(
            1 if self.check_cell(attr, value) else 0 for attr, value in row.items()
        )

    def check_tuple(self, row: Mapping[str, Cell]) -> bool:
        """All cell *and* tuple constraints hold on ``row``."""
        if self.violations_in_tuple(row) > 0:
            return False
        return all(tc.check_tuple(row) for tc in self.tuple_constraints)

    @property
    def n_constraints(self) -> int:
        """Total number of registered constraints (the paper's #UCs)."""
        return sum(len(v) for v in self._by_attr.values()) + len(
            self.tuple_constraints
        )

    @property
    def attributes(self) -> list[str]:
        """Attributes with at least one cell constraint."""
        return list(self._by_attr)

    # -- ablation ------------------------------------------------------------------

    def without_families(self, families: Iterable[str]) -> "UCRegistry":
        """A copy with every constraint of the given families removed.

        Used by the Figure 5 experiment: ``without_families(["pattern"])``
        is the "Pat removed" configuration; ``without_families(FAMILIES)``
        is "All removed".
        """
        drop = set(families)
        kept = {
            attr: [c for c in cs if c.family not in drop]
            for attr, cs in self._by_attr.items()
        }
        return UCRegistry(kept, list(self.tuple_constraints))

    def empty_like(self) -> "UCRegistry":
        """A registry with no constraints at all (the BClean-UC variant)."""
        return UCRegistry()

    def describe(self) -> str:
        """Multi-line listing of all constraints."""
        lines = []
        for attr, cs in self._by_attr.items():
            for c in cs:
                lines.append(f"{attr}: {c.describe()}")
        for tc in self.tuple_constraints:
            lines.append(f"<tuple>: {tc.describe()}")
        return "\n".join(lines) if lines else "(no constraints)"
