"""User constraints (UCs): the lightweight prior-knowledge channel of BClean.

A UC is "any function that returns a binary output" (§2).  Cell-level
constraints implement :class:`CellConstraint`; tuple-level ones (FDs,
DCs, arithmetic comparisons across attributes) implement
:class:`TupleConstraint`.  Both report ``True`` for *satisfied*, mapping
to the paper's ``UC(·) = 1``.
"""

from __future__ import annotations

import abc
from typing import Callable, Mapping

from repro.dataset.table import Cell, is_null


class CellConstraint(abc.ABC):
    """A binary predicate over a single cell value."""

    #: Constraint family tag — used by the Figure 5 ablation, which drops
    #: whole families (max length, min length, null, pattern) at a time.
    family: str = "other"

    @abc.abstractmethod
    def check(self, value: Cell) -> bool:
        """Whether ``value`` satisfies the constraint."""

    def __call__(self, value: Cell) -> int:
        """The paper's UC(·) convention: 1 if satisfied else 0."""
        return 1 if self.check(value) else 0

    def describe(self) -> str:
        """One-line human-readable description."""
        return type(self).__name__


class TupleConstraint(abc.ABC):
    """A binary predicate over a whole tuple (attribute → value mapping)."""

    family: str = "tuple"

    @abc.abstractmethod
    def check_tuple(self, row: Mapping[str, Cell]) -> bool:
        """Whether the tuple satisfies the constraint."""

    def __call__(self, row: Mapping[str, Cell]) -> int:
        return 1 if self.check_tuple(row) else 0

    def describe(self) -> str:
        return type(self).__name__


class Predicate(CellConstraint):
    """Wrap an arbitrary ``Cell -> bool`` function as a constraint.

    This is the paper's escape hatch: UCs "can be any function that
    returns a binary output, such as ... even deep neural networks".
    NULL handling is delegated to the wrapped function.
    """

    def __init__(self, fn: Callable[[Cell], bool], name: str = "predicate",
                 family: str = "other"):
        self.fn = fn
        self.name = name
        self.family = family

    def check(self, value: Cell) -> bool:
        return bool(self.fn(value))

    def describe(self) -> str:
        return f"predicate({self.name})"


class Negation(CellConstraint):
    """Logical NOT of another cell constraint."""

    def __init__(self, inner: CellConstraint):
        self.inner = inner
        self.family = inner.family

    def check(self, value: Cell) -> bool:
        return not self.inner.check(value)

    def describe(self) -> str:
        return f"not({self.inner.describe()})"


class Conjunction(CellConstraint):
    """Logical AND of several cell constraints."""

    def __init__(self, *constraints: CellConstraint):
        self.constraints = constraints

    def check(self, value: Cell) -> bool:
        return all(c.check(value) for c in self.constraints)

    def describe(self) -> str:
        return " and ".join(c.describe() for c in self.constraints)


class Disjunction(CellConstraint):
    """Logical OR of several cell constraints."""

    def __init__(self, *constraints: CellConstraint):
        self.constraints = constraints

    def check(self, value: Cell) -> bool:
        return any(c.check(value) for c in self.constraints)

    def describe(self) -> str:
        return " or ".join(c.describe() for c in self.constraints)


def null_passes(value: Cell) -> bool:
    """Shared convention: format constraints vacuously pass on NULL.

    NULL-ness itself is judged by :class:`~repro.constraints.builtin.NotNull`;
    letting every length/value/pattern constraint also fail on NULL would
    double-count missing values in the tuple confidence (Eq. 3).
    """
    return is_null(value)
