"""Text substrate: edit distance, softened-FD similarity, pattern masks."""

from repro.text.levenshtein import (
    damerau_levenshtein,
    levenshtein,
    levenshtein_within,
    normalized_edit_similarity,
)
from repro.text.patterns import PatternProfile, value_mask
from repro.text.similarity import (
    cell_similarity,
    numeric_similarity,
    strict_equality_similarity,
)
from repro.text.tokenize import NgramLanguageModel, char_ngrams, word_tokens

__all__ = [
    "NgramLanguageModel",
    "PatternProfile",
    "cell_similarity",
    "char_ngrams",
    "damerau_levenshtein",
    "levenshtein",
    "levenshtein_within",
    "normalized_edit_similarity",
    "numeric_similarity",
    "strict_equality_similarity",
    "value_mask",
    "word_tokens",
]
