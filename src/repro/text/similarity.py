"""The softened-FD similarity of BClean (§4).

Strict FDs check value *equality*; on dirty data that is too brittle.
BClean softens the check with a per-type similarity in ``[0, 1]`` that is
then treated as a probability-like observation by the FDX profiler:

- numeric values: ``1 − |x − y| / ((|x| + |y|) / 2)`` (relative difference,
  clamped),
- strings: length-normalised unit-cost edit distance
  (:func:`~repro.text.levenshtein.normalized_edit_similarity`),
- NULLs: similarity 0 against anything, 1 against another NULL.
"""

from __future__ import annotations

from repro.dataset.schema import AttrType
from repro.dataset.table import Cell, is_null
from repro.text.levenshtein import normalized_edit_similarity


def numeric_similarity(x: float, y: float) -> float:
    """Relative-difference similarity for numeric values, in [0, 1].

    The paper defines the *dissimilarity* ``|x−y| / ((|x|+|y|)/2)``; we
    return ``1 −`` that quantity, clamped.  Two zeros are identical.
    """
    if x == y:
        return 1.0
    denom = (abs(x) + abs(y)) / 2.0
    if denom == 0.0:
        return 0.0
    sim = 1.0 - abs(x - y) / denom
    if sim < 0.0:
        return 0.0
    if sim > 1.0:
        return 1.0
    return sim


def cell_similarity(x: Cell, y: Cell, attr_type: AttrType = AttrType.TEXT) -> float:
    """Similarity between two cells of one attribute, dispatching on type.

    Numeric attributes holding unparseable (dirty) strings fall back to
    the string similarity, so the profiler tolerates typos in numeric
    columns instead of crashing — error tolerance is the whole point of
    the softening.
    """
    x_null, y_null = is_null(x), is_null(y)
    if x_null and y_null:
        return 1.0
    if x_null or y_null:
        return 0.0
    if attr_type.is_numeric:
        fx, fy = _as_float(x), _as_float(y)
        if fx is not None and fy is not None:
            return numeric_similarity(fx, fy)
    return normalized_edit_similarity(str(x), str(y))


def _as_float(v: Cell) -> float | None:
    try:
        return float(v)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


def strict_equality_similarity(x: Cell, y: Cell) -> float:
    """The *unsoftened* FD check: 1 iff equal, else 0.

    Kept as the ablation comparator for the similarity softening
    (DESIGN.md §4: "similarity softening vs strict-equality profiling").
    """
    if is_null(x) and is_null(y):
        return 1.0
    if is_null(x) or is_null(y):
        return 0.0
    return 1.0 if str(x) == str(y) else 0.0
