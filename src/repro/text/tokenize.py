"""Small tokenisers shared by detectors and rule miners."""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable

from repro.dataset.table import Cell, is_null

_WORD_RE = re.compile(r"[A-Za-z0-9]+")


def word_tokens(value: Cell) -> list[str]:
    """Lowercased alphanumeric word tokens of a cell ('' → [])."""
    if is_null(value):
        return []
    return [m.group(0).lower() for m in _WORD_RE.finditer(str(value))]


def char_ngrams(value: Cell, n: int = 3, pad: bool = True) -> list[str]:
    """Character n-grams of a cell; padded with ``#`` so short strings
    still yield at least one gram.

    >>> char_ngrams("ab", n=3)
    ['##a', '#ab', 'ab#', 'b##']
    """
    if is_null(value):
        return []
    s = str(value)
    if pad:
        s = "#" * (n - 1) + s + "#" * (n - 1)
    if len(s) < n:
        return [s]
    return [s[i : i + n] for i in range(len(s) - n + 1)]


class NgramLanguageModel:
    """An add-one-smoothed character n-gram frequency model for a column.

    ``score(v)`` is the mean log-probability of the value's n-grams under
    the column distribution — low scores indicate out-of-distribution
    (likely erroneous) surface forms.  This is the "value's-shape" signal
    used by the Raha-style detector ensemble.
    """

    def __init__(self, values: Iterable[Cell], n: int = 3):
        self.n = n
        self.counts: Counter[str] = Counter()
        self.total = 0
        for v in values:
            for g in char_ngrams(v, n):
                self.counts[g] += 1
                self.total += 1
        self.vocab = max(1, len(self.counts))

    def gram_logprob(self, gram: str) -> float:
        """Add-one smoothed log probability of a single n-gram."""
        import math

        return math.log((self.counts.get(gram, 0) + 1) / (self.total + self.vocab))

    def score(self, value: Cell) -> float:
        """Mean n-gram log-probability of ``value`` (0.0 for NULL)."""
        grams = char_ngrams(value, self.n)
        if not grams:
            return 0.0
        return sum(self.gram_logprob(g) for g in grams) / len(grams)
