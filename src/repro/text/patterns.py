"""Value-pattern abstraction (character-class masks).

Several components need a cheap notion of a value's *format*:

- the Raha-style detector flags cells whose mask is rare in the column,
- the Garf baseline mines format rules,
- the synthetic dataset generators verify that injected typos change the
  surface form.

A mask maps every character to a class symbol: ``9`` for digits, ``A``
for uppercase, ``a`` for lowercase, ``s`` for whitespace, and the
character itself for punctuation.  ``compress=True`` collapses runs
(``"35150"`` → ``"9"``), which generalises better for variable-length
fields.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.dataset.table import Cell, is_null


def value_mask(value: Cell, compress: bool = False) -> str:
    """The character-class mask of ``value`` (empty string for NULL).

    >>> value_mask("35150")
    '99999'
    >>> value_mask("Johnny.R", compress=True)
    'Aa.A'
    """
    if is_null(value):
        return ""
    out: list[str] = []
    for ch in str(value):
        if ch.isdigit():
            sym = "9"
        elif ch.isalpha():
            sym = "A" if ch.isupper() else "a"
        elif ch.isspace():
            sym = "s"
        else:
            sym = ch
        if compress and out and out[-1] == sym:
            continue
        out.append(sym)
    return "".join(out)


class PatternProfile:
    """Distribution of masks observed in one column.

    ``rarity(v)`` is ``1 − freq(mask(v)) / n`` — close to 1 for values
    whose format is unusual in the column, close to 0 for dominant
    formats.  Used as an unsupervised error signal.
    """

    def __init__(self, values: Iterable[Cell], compress: bool = True):
        self.compress = compress
        self.mask_counts: Counter[str] = Counter()
        self.n = 0
        for v in values:
            self.mask_counts[value_mask(v, compress)] += 1
            self.n += 1

    def frequency(self, value: Cell) -> int:
        """How many column values share ``value``'s mask."""
        return self.mask_counts.get(value_mask(value, self.compress), 0)

    def rarity(self, value: Cell) -> float:
        """1 − relative frequency of the value's mask (0 when column empty)."""
        if self.n == 0:
            return 0.0
        return 1.0 - self.frequency(value) / self.n

    def dominant_mask(self) -> str | None:
        """The most common mask, or None for an empty profile."""
        if not self.mask_counts:
            return None
        return self.mask_counts.most_common(1)[0][0]

    def conforms(self, value: Cell) -> bool:
        """Whether ``value`` has the dominant mask of the column."""
        dom = self.dominant_mask()
        return dom is not None and value_mask(value, self.compress) == dom
