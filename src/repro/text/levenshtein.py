"""Unit-cost edit distance (Levenshtein) and derived similarities.

The paper's softened functional dependencies (§4) use unit-cost edit
distance normalised by string lengths.  We implement the classic
two-row dynamic program plus a banded variant with early exit for
bounded-distance queries (used by typo-correction baselines).
"""

from __future__ import annotations


def levenshtein(a: str, b: str) -> int:
    """Unit-cost edit distance between strings ``a`` and ``b``.

    >>> levenshtein("kitten", "sitting")
    3
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string in the inner loop for cache friendliness.
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current[j] = min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost, # substitution
            )
        previous = current
    return previous[-1]


def levenshtein_within(a: str, b: str, max_distance: int) -> int | None:
    """Edit distance if it is ≤ ``max_distance``, else ``None``.

    Uses the standard band of width ``2·max_distance + 1`` around the
    diagonal, giving O(max_distance · min(len)) time.  Useful when a
    caller only needs to know whether two values are within a small edit
    radius (e.g. typo candidates).
    """
    if max_distance < 0:
        return None
    if a == b:
        return 0
    la, lb = len(a), len(b)
    if abs(la - lb) > max_distance:
        return None
    if la < lb:
        a, b, la, lb = b, a, lb, la
    big = max_distance + 1
    previous = [j if j <= max_distance else big for j in range(lb + 1)]
    for i in range(1, la + 1):
        lo = max(1, i - max_distance)
        hi = min(lb, i + max_distance)
        current = [big] * (lb + 1)
        if lo == 1:
            current[0] = i if i <= max_distance else big
        ca = a[i - 1]
        row_min = current[0] if lo == 1 else big
        for j in range(lo, hi + 1):
            cost = 0 if ca == b[j - 1] else 1
            val = min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            current[j] = val if val <= max_distance else big
            if current[j] < row_min:
                row_min = current[j]
        if row_min > max_distance:
            return None
        previous = current
    return previous[lb] if previous[lb] <= max_distance else None


def normalized_edit_similarity(a: str, b: str) -> float:
    """The paper's string similarity (§4):

    ``Sim(x, y) = 1 − 2·ED(x, y) / (len(x) + len(y))``

    clamped to ``[0, 1]``.  Two empty strings are maximally similar.
    """
    if not a and not b:
        return 1.0
    sim = 1.0 - 2.0 * levenshtein(a, b) / (len(a) + len(b))
    if sim < 0.0:
        return 0.0
    if sim > 1.0:
        return 1.0
    return sim


def damerau_levenshtein(a: str, b: str) -> int:
    """Edit distance with adjacent transpositions (restricted Damerau).

    Used by the typo error-model in the PClean baseline, where swapped
    adjacent characters are a common keyboard error.
    """
    if a == b:
        return 0
    la, lb = len(a), len(b)
    if la == 0:
        return lb
    if lb == 0:
        return la
    prev2 = [0] * (lb + 1)
    prev1 = list(range(lb + 1))
    for i in range(1, la + 1):
        current = [i] + [0] * lb
        for j in range(1, lb + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            current[j] = min(prev1[j] + 1, current[j - 1] + 1, prev1[j - 1] + cost)
            if (
                i > 1
                and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                current[j] = min(current[j], prev2[j - 2] + 1)
        prev2, prev1 = prev1, current
    return prev1[lb]
