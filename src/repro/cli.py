"""Command-line interface: clean a CSV the way Figure 2 depicts.

The three subcommands mirror the BClean workflow:

``profile``
    Inspect a CSV column by column (type, cardinality, nulls) and show
    the pattern UC the inducer would write for each — a dry run of the
    Table 3 authoring step.

``network``
    Learn and print the Bayesian network (§4) without cleaning, so the
    user can review the structure before committing — the inspection
    half of the §7.3.2 interaction loop.

``clean``
    Fit and run the cleaning engine, write the repaired CSV, and print
    (or save) the repair log.  UCs come from a JSON spec file
    (``--ucs``), from automatic induction (``--induce-ucs``), or both.

``serve``
    The resident shape: fit once per schema into a model registry (or
    reload the model if the registry already has one — fit cost paid
    once, ever) and run request CSVs through a
    :class:`~repro.serve.service.BCleanService` — submitted
    concurrently, micro-batched onto one warm session, answered
    byte-identical to serial ``clean`` runs.

UC spec format (one key per attribute, a list of constraint objects)::

    {
      "ZipCode": [{"type": "pattern", "regex": "[0-9]{5}"},
                  {"type": "not_null"}],
      "State":   [{"type": "one_of", "values": ["CA", "NY", "TX"]},
                  {"type": "max_length", "bound": 2}]
    }
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.bayesnet.serialize import load_dag, save_dag
from repro.constraints.base import CellConstraint
from repro.constraints.builtin import (
    MaxLength,
    MaxValue,
    MinLength,
    MinValue,
    NotNull,
    OneOf,
    Pattern,
)
from repro.constraints.induction import induce_pattern, induce_registry
from repro.constraints.registry import UCRegistry
from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.dataset.io import read_csv, write_csv
from repro.dataset.profile import profile_table
from repro.dataset.table import is_null
from repro.errors import ConstraintSpecError, ReproError

#: spec ``type`` → constructor(kwargs)
_CONSTRAINT_TYPES = {
    "not_null": lambda spec: NotNull(),
    "pattern": lambda spec: Pattern(_require(spec, "regex")),
    "min_length": lambda spec: MinLength(int(_require(spec, "bound"))),
    "max_length": lambda spec: MaxLength(int(_require(spec, "bound"))),
    "min_value": lambda spec: MinValue(float(_require(spec, "bound"))),
    "max_value": lambda spec: MaxValue(float(_require(spec, "bound"))),
    "one_of": lambda spec: OneOf(_require(spec, "values")),
}

#: ``--variant`` → config factory
_VARIANTS = {
    "basic": BCleanConfig.basic,
    "pi": BCleanConfig.pi,
    "pip": BCleanConfig.pip,
    "no-ucs": BCleanConfig.without_ucs,
}


def _engine_config(args: argparse.Namespace) -> BCleanConfig:
    """The engine configuration selected by the shared CLI options."""
    return _VARIANTS[args.variant](
        structure=args.structure,
        executor=args.executor,
        n_jobs=args.jobs,
        shard_size=args.shard_size,
        chunk_rows=getattr(args, "chunk_rows", None),
        fit_chunk_rows=getattr(args, "fit_chunk_rows", None),
        competition_cache=getattr(args, "competition_cache", None),
        persistent_pool=getattr(args, "persistent_pool", True),
        fit_executor=args.fit_executor,
        trace=getattr(args, "trace", None),
        profile=getattr(args, "profile", False),
    )


def _require(spec: dict, key: str):
    if key not in spec:
        raise ConstraintSpecError(
            f"constraint {spec.get('type', '?')!r} requires field {key!r}"
        )
    return spec[key]


def parse_constraint(spec: dict) -> CellConstraint:
    """Build one constraint from its JSON object form."""
    if not isinstance(spec, dict) or "type" not in spec:
        raise ConstraintSpecError(
            f"constraint spec must be an object with a 'type': {spec!r}"
        )
    ctype = spec["type"]
    try:
        factory = _CONSTRAINT_TYPES[ctype]
    except KeyError:
        raise ConstraintSpecError(
            f"unknown constraint type {ctype!r}; "
            f"choose from {sorted(_CONSTRAINT_TYPES)}"
        ) from None
    return factory(spec)


def load_uc_spec(path: str | Path) -> UCRegistry:
    """Read a UC spec JSON file into a registry."""
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConstraintSpecError(f"invalid JSON in {path}: {exc}") from exc
    if not isinstance(raw, dict):
        raise ConstraintSpecError(
            f"UC spec must be an object mapping attribute -> constraints"
        )
    registry = UCRegistry()
    for attribute, specs in raw.items():
        if not isinstance(specs, list):
            raise ConstraintSpecError(
                f"constraints for {attribute!r} must be a list"
            )
        registry.add(attribute, *[parse_constraint(s) for s in specs])
    return registry


def merge_registries(*registries: UCRegistry) -> UCRegistry:
    """Union of several registries (later ones append)."""
    merged = UCRegistry()
    for registry in registries:
        for attribute in registry.attributes:
            merged.add(attribute, *registry.constraints_for(attribute))
    return merged


# -- subcommands -----------------------------------------------------------------


def cmd_profile(args: argparse.Namespace) -> int:
    """Column summary, FD candidates, and induced pattern UCs."""
    table = read_csv(args.input, delimiter=args.delimiter)
    print(f"{args.input}:")
    print(profile_table(table).render())
    print()
    print("induced pattern UCs:")
    for attribute in table.schema.names:
        try:
            regex = induce_pattern(table.column(attribute)).regex
        except ConstraintSpecError:
            regex = "(all null)"
        print(f"  {attribute:<24} /{regex}/")
    return 0


def cmd_network(args: argparse.Namespace) -> int:
    """Learn and print the BN without cleaning; optionally save it.

    A saved network can be hand-edited (it is plain JSON) and fed back
    into ``clean --network`` — the §7.3.2 loop without re-learning.
    """
    table = read_csv(args.input, delimiter=args.delimiter)
    config = _engine_config(args)
    engine = BClean(config)
    engine.fit(table)
    print(engine.dag.pretty())
    if args.save:
        save_dag(engine.dag, args.save)
        print(f"wrote {args.save}")
    return 0


def cmd_clean(args: argparse.Namespace) -> int:
    """Fit, clean, write the output CSV, report repairs."""
    table = read_csv(args.input, delimiter=args.delimiter)

    registries = []
    if args.ucs:
        registries.append(load_uc_spec(args.ucs))
    if args.induce_ucs:
        registries.append(induce_registry(table))
    constraints = merge_registries(*registries) if registries else UCRegistry()

    config = _engine_config(args)
    engine = BClean(config, constraints)
    dag = load_dag(args.network) if args.network else None
    engine.fit(table, dag=dag)
    result = engine.clean()

    write_csv(result.cleaned, args.output, delimiter=args.delimiter)

    lines = [
        f"rows={table.n_rows} cells={result.stats.cells_total} "
        f"inspected={result.stats.cells_inspected} "
        f"repairs={result.stats.repairs_made}",
    ]
    for repair in result.repairs:
        lines.append(
            f"row {repair.row:>6}  {repair.attribute:<24} "
            f"{_show(repair.old_value)} -> {_show(repair.new_value)}"
        )
    report = "\n".join(lines)
    if args.report:
        Path(args.report).write_text(report + "\n", encoding="utf-8")
    else:
        print(report)
    print(f"wrote {args.output} ({result.stats.repairs_made} repairs)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Registry-backed resident serving: fit-or-load, then clean every
    request CSV through one warm service."""
    from concurrent.futures import ThreadPoolExecutor

    from repro.serve import BCleanService, ModelRegistry

    registry = ModelRegistry(args.registry)
    streamed = args.fit_chunk_rows is not None and not args.induce_ucs
    if streamed:
        # Streamed bootstrap: the training CSV never materialises — the
        # registry fingerprints its header and fits out-of-core on a
        # miss.  (--induce-ucs needs the whole table and keeps the
        # in-memory path.)
        constraints = (
            load_uc_spec(args.ucs) if args.ucs else UCRegistry()
        )
        engine, loaded = registry.fit_or_load_csv(
            args.input,
            config=_engine_config(args),
            constraints=constraints,
            chunk_rows=args.fit_chunk_rows,
            delimiter=args.delimiter,
        )
        names = engine.table.schema.names
    else:
        table = read_csv(args.input, delimiter=args.delimiter)

        registries = []
        if args.ucs:
            registries.append(load_uc_spec(args.ucs))
        if args.induce_ucs:
            registries.append(induce_registry(table))
        constraints = (
            merge_registries(*registries) if registries else UCRegistry()
        )

        engine, loaded = registry.fit_or_load(
            table, config=_engine_config(args), constraints=constraints
        )
        names = table.schema.names
    print(
        f"model {'loaded from' if loaded else 'fitted and saved to'} "
        f"{registry.path_for(names)}"
    )
    if not args.request:
        return 0

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    schema = engine.table.schema
    with BCleanService(engine) as service:
        # Request CSVs read under the *fitted* schema, not re-inferred
        # types — value keys must match the model's.
        tables = [
            read_csv(p, schema=schema, delimiter=args.delimiter)
            for p in args.request
        ]
        with ThreadPoolExecutor(max_workers=len(tables)) as pool:
            results = list(pool.map(service.submit, tables))
        for path, result in zip(args.request, results):
            out = out_dir / Path(path).name
            write_csv(result.cleaned, out, delimiter=args.delimiter)
            print(
                f"{path}: rows={result.cleaned.n_rows} "
                f"repairs={result.stats.repairs_made} -> {out}"
            )
        diag = service.diagnostics()
    print(
        f"served {diag['requests']} requests in {diag['batches']} batches: "
        f"pools_created={diag['pools_created']} "
        f"snapshot_ships={diag['snapshot_ships']} "
        f"cache_hits={diag.get('cache_hits', 0)}"
    )
    return 0


def _show(value) -> str:
    return "NULL" if is_null(value) else repr(str(value))


# -- entry point -----------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BClean: Bayesian data cleaning (ICDE 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("input", help="input CSV file (with header row)")
        p.add_argument(
            "--delimiter", default=",", help="CSV field separator"
        )

    p_profile = sub.add_parser(
        "profile", help="summarise columns and induced pattern UCs"
    )
    common(p_profile)
    p_profile.set_defaults(func=cmd_profile)

    def engine_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--variant",
            choices=sorted(_VARIANTS),
            default="pi",
            help="BClean variant (Table 4 rows)",
        )
        p.add_argument(
            "--structure",
            choices=["fdx", "hillclimb", "chowliu", "pc", "mmhc"],
            default="fdx",
            help="BN structure learner (default: the paper's FDX method)",
        )
        p.add_argument(
            "--executor",
            choices=["serial", "thread", "process", "auto"],
            default="serial",
            help="worker backend of the sharded cleaning executor; "
            "'auto' picks serial vs process from the planner's cost "
            "estimate (all backends produce identical repairs)",
        )
        p.add_argument(
            "--fit-executor",
            choices=["serial", "thread", "process", "auto"],
            default="serial",
            help="worker backend for the sharded fit work (pairwise "
            "co-occurrence builds and CPT counting; identical "
            "statistics on every backend); 'auto' picks from the "
            "planned cost",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            metavar="N",
            help="worker count for --executor/--fit-executor "
            "thread/process (default: the machine's CPU count)",
        )
        p.add_argument(
            "--shard-size",
            type=int,
            default=None,
            metavar="N",
            help="competitions per shard (default: cost-balanced "
            "shards from estimated candidate-pool sizes)",
        )
        p.add_argument(
            "--chunk-rows",
            type=int,
            default=None,
            metavar="N",
            help="clean in row blocks of N through the staged "
            "streaming pipeline (default: whole table at once; "
            "repairs are identical at every chunk size)",
        )
        p.add_argument(
            "--fit-chunk-rows",
            type=int,
            default=None,
            metavar="N",
            help="fit from row blocks of N via mergeable sufficient "
            "statistics instead of whole-table passes (default: whole "
            "table at once; DAG, CPTs, and repairs are identical at "
            "every chunk size — with 'serve' the training CSV is "
            "streamed and never fully materialised)",
        )
        p.add_argument(
            "--competition-cache",
            type=int,
            default=None,
            metavar="N",
            help="entry bound of the cross-chunk competition cache "
            "used by chunked cleans: recurring row signatures skip "
            "their re-run (default: auto-sized from the stream's "
            "estimated competition count; 0 disables; repairs are "
            "identical at every setting)",
        )
        p.add_argument(
            "--trace",
            metavar="FILE",
            default=None,
            help="write a Chrome trace-event JSON of the run (open it "
            "at https://ui.perfetto.dev): one span per pipeline stage "
            "per chunk, per-shard worker timing, session lifecycle "
            "events (tracing never changes the repairs)",
        )
        p.add_argument(
            "--profile",
            action="store_true",
            help="collect per-stage wall-clock totals and shard "
            "balance into diagnostics['profile'] (implied by --trace)",
        )
        p.add_argument(
            "--no-persistent-pool",
            dest="persistent_pool",
            action="store_false",
            help="tear down the worker pool (and re-ship the fit "
            "statistics) after every chunk instead of keeping one "
            "warm session per clean (identical repairs, more "
            "per-chunk overhead)",
        )

    p_network = sub.add_parser(
        "network", help="learn and print the Bayesian network"
    )
    common(p_network)
    engine_options(p_network)
    p_network.add_argument(
        "--save", help="write the learned network as editable JSON"
    )
    p_network.set_defaults(func=cmd_network)

    p_clean = sub.add_parser("clean", help="clean a CSV file")
    common(p_clean)
    engine_options(p_clean)
    p_clean.add_argument(
        "--network",
        help="use a saved (possibly hand-edited) network JSON instead of learning",
    )
    p_clean.add_argument(
        "--output", "-o", required=True, help="where to write the cleaned CSV"
    )
    p_clean.add_argument(
        "--ucs", help="JSON file with user constraints (see module docs)"
    )
    p_clean.add_argument(
        "--induce-ucs",
        action="store_true",
        help="additionally induce pattern/length UCs from the data",
    )
    p_clean.add_argument(
        "--report", help="write the repair log to this file instead of stdout"
    )
    p_clean.set_defaults(func=cmd_clean)

    p_serve = sub.add_parser(
        "serve",
        help="fit once into a model registry, then serve request CSVs "
        "on one warm session",
    )
    common(p_serve)
    engine_options(p_serve)
    p_serve.add_argument(
        "--registry",
        required=True,
        metavar="DIR",
        help="model registry directory: the fitted model (network + "
        "table encoding) is saved here keyed by schema fingerprint, "
        "and reloaded instead of refitted on later runs",
    )
    p_serve.add_argument(
        "--request",
        action="append",
        default=[],
        metavar="CSV",
        help="a request CSV to clean through the service (repeatable; "
        "all requests are submitted concurrently and micro-batched "
        "onto one warm session)",
    )
    p_serve.add_argument(
        "--out-dir",
        default="served",
        metavar="DIR",
        help="directory for cleaned request CSVs (one per request, "
        "same file name)",
    )
    p_serve.add_argument(
        "--ucs", help="JSON file with user constraints (see module docs)"
    )
    p_serve.add_argument(
        "--induce-ucs",
        action="store_true",
        help="additionally induce pattern/length UCs from the fit data",
    )
    p_serve.set_defaults(func=cmd_serve)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
