"""Cleaning as a resident service: fit once, serve many.

The serve package is the long-running shape of the pipeline:

- :mod:`repro.serve.registry` — persist fitted models (network +
  build-time encoding) keyed by schema fingerprint, reload them
  byte-identical in any process;
- :mod:`repro.serve.batch` — micro-batching plumbing (requests, batch
  cutting, concatenation, result demultiplexing);
- :mod:`repro.serve.service` — :class:`BCleanService`, the concurrent
  request front over one engine-held warm session.

See ``docs/serving.md`` for the lifecycle walk-through.
"""

from repro.serve.batch import (
    CleanRequest,
    concat_tables,
    split_results,
    take_batch,
)
from repro.serve.registry import ModelRegistry, schema_fingerprint
from repro.serve.service import (
    DEFAULT_LINGER_SECONDS,
    DEFAULT_MAX_BATCH_ROWS,
    SERVE_TID_BASE,
    BCleanService,
)

__all__ = [
    "BCleanService",
    "CleanRequest",
    "DEFAULT_LINGER_SECONDS",
    "DEFAULT_MAX_BATCH_ROWS",
    "ModelRegistry",
    "SERVE_TID_BASE",
    "concat_tables",
    "schema_fingerprint",
    "split_results",
    "take_batch",
]
