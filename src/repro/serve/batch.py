"""Micro-batching primitives of the serving front.

Many concurrent small cleans are cheapest as one big one: the staged
pipeline deduplicates row signatures across the whole block, the
resident session's pool receives **one** ``ChunkView`` dispatch instead
of one per request, and the per-dispatch fixed costs (payload pickle,
shard planning) are paid once per tick.  This module holds the pure
data plumbing — request objects, batch cutting, table concatenation,
and result demultiplexing — so the service's threading stays thin and
the batching semantics are testable without threads.

Demultiplexing is exact because the pipeline emits repairs in global
row-major order over the concatenated block and every decision is a
pure function of its row signature: slicing the combined results on the
request row ranges yields, per request, precisely the repairs a
standalone serial ``clean()`` of that request's rows would produce.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.core.repairs import CleaningResult, Repair
from repro.dataset.schema import Schema
from repro.dataset.table import Table


@dataclass
class CleanRequest:
    """One submitted clean, from enqueue to result pickup.

    The submitting thread blocks on ``done``; the batcher thread fills
    exactly one of ``result`` / ``error`` before setting it.
    """

    request_id: int
    table: Table
    done: threading.Event = field(default_factory=threading.Event)
    result: CleaningResult | None = None
    error: BaseException | None = None

    @property
    def n_rows(self) -> int:
        return self.table.n_rows

    def resolve(self, result: CleaningResult) -> None:
        self.result = result
        self.done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.done.set()


def take_batch(
    pending: "deque[CleanRequest]", max_rows: int
) -> list[CleanRequest]:
    """Pop the next micro-batch off the queue: requests in arrival
    order until adding the next would exceed ``max_rows`` (a single
    oversized request still forms its own batch — it must run)."""
    batch: list[CleanRequest] = []
    rows = 0
    while pending:
        request = pending[0]
        if batch and rows + request.n_rows > max_rows:
            break
        batch.append(pending.popleft())
        rows += request.n_rows
    return batch


def concat_tables(schema: Schema, tables: Sequence[Table]) -> Table:
    """Stack request tables into one block, in request order (row
    ranges of the block map back to requests by cumulative offset)."""
    columns: list[list] = [[] for _ in range(len(schema))]
    for table in tables:
        for j, column in enumerate(table.columns):
            columns[j].extend(column)
    return Table(schema, columns)


def split_results(
    requests: Sequence[CleanRequest],
    cleaned: Table,
    repairs: Sequence[Repair],
) -> list[tuple[Table, list[Repair]]]:
    """Demultiplex one batch's combined output back onto its requests.

    Returns, per request, its slice of the cleaned block and its
    repairs re-based to request-local row indices.  Repairs arrive in
    global row-major order, so a single forward walk splits them.
    """
    out: list[tuple[Table, list[Repair]]] = []
    offset = 0
    position = 0
    for request in requests:
        stop = offset + request.n_rows
        own: list[Repair] = []
        while position < len(repairs) and repairs[position].row < stop:
            repair = repairs[position]
            own.append(replace(repair, row=repair.row - offset))
            position += 1
        out.append((cleaned.slice_rows(offset, stop), own))
        offset = stop
    return out
