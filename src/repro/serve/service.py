"""The request front: concurrent small cleans on one warm session.

:class:`BCleanService` is the serving shape the ROADMAP's north star
names — a fitted engine held resident, many concurrent ``submit()``
calls, one warm pool.  Mechanics per tick:

1. Submitting threads enqueue :class:`~repro.serve.batch.CleanRequest`
   objects and block on their events.
2. A single batcher thread wakes, lingers briefly so concurrent
   submitters coalesce, cuts a micro-batch
   (:func:`~repro.serve.batch.take_batch`), and concatenates the
   request tables into one block.
3. The block runs through the staged pipeline as **one chunk on the
   engine's resident session** — one ``ChunkView`` dispatch on the
   already-warm pool, signatures deduplicated across all requests of
   the tick, recurring signatures answered by the session's
   competition cache with zero dispatch.
4. The combined repairs demultiplex back onto the requests by row
   range (:func:`~repro.serve.batch.split_results`) and every waiter
   is released with its own :class:`~repro.core.repairs.CleaningResult`.

Amortisation is the point: across N requests the service holds
``pools_created == 1`` and ``snapshot_ships == 1`` (visible in
:meth:`BCleanService.diagnostics` and in each result's
``diagnostics["serve"]``), and repairs are byte-identical to a
standalone serial ``clean()`` of the same rows — batching, like every
other scheduling choice in the exec subsystem, is invisible in the
results.

Concurrency contract: ``submit()`` is thread-safe; everything else
(including the engine itself while the service is open) belongs to the
service.  Per-request effort counters beyond ``cells_total`` /
``repairs_made`` are not attributable after cross-request dedup — the
batch-level counters live in ``diagnostics["serve"]``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import replace
from typing import Sequence

from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.core.repairs import CleaningResult, CleaningStats
from repro.dataset.table import Table
from repro.errors import CleaningError
from repro.exec.stream import StreamDriver
from repro.obs.tracer import clock
from repro.serve.batch import (
    CleanRequest,
    concat_tables,
    split_results,
    take_batch,
)

#: trace-track base of per-request spans — far above the driver track
#: and any worker pid, so request latency tracks never collide
SERVE_TID_BASE = 1 << 24

#: rows per micro-batch tick (a single larger request still runs whole)
DEFAULT_MAX_BATCH_ROWS = 4096

#: how long the batcher lingers before cutting a tick, so submissions
#: racing in together share one dispatch
DEFAULT_LINGER_SECONDS = 0.002


class BCleanService:
    """Serve many concurrent cleans from one fitted, resident engine.

    Parameters
    ----------
    engine:
        A fitted :class:`~repro.core.engine.BClean` on the columnar
        path.  The service opens (or joins) the engine's resident
        session and holds its own reference on it.
    executor / n_jobs:
        Scheduling overrides for the service's streams; default to the
        engine config's.  Scoring knobs always come from the engine —
        they are frozen in the session's snapshot.
    max_batch_rows:
        Tick size bound (requests are never split across ticks).
    linger_seconds:
        Coalescing window before a tick is cut; 0 dispatches eagerly.
    close_session_on_exit:
        Also drop the *engine's* resident-session reference in
        :meth:`close` (the default — the common topology is one
        service per engine; pass ``False`` to keep the pool warm for
        direct ``engine.clean()`` calls afterwards).
    """

    def __init__(
        self,
        engine: BClean,
        executor: str | None = None,
        n_jobs: int | None = None,
        max_batch_rows: int = DEFAULT_MAX_BATCH_ROWS,
        linger_seconds: float = DEFAULT_LINGER_SECONDS,
        close_session_on_exit: bool = True,
    ):
        if engine.bn is None or engine.table is None:
            raise CleaningError("fit() must be called before serving")
        self._engine = engine
        self._schema = engine.table.schema
        self._n_cols = len(self._schema)
        overrides: dict = {"chunk_rows": None}
        if executor is not None:
            overrides["executor"] = executor
        if n_jobs is not None:
            overrides["n_jobs"] = n_jobs
        #: the service's stream config: one chunk per tick, scheduling
        #: knobs possibly overridden, scoring knobs the engine's
        self._cfg: BCleanConfig = replace(engine.config, **overrides)
        self._max_batch_rows = max(1, int(max_batch_rows))
        self._linger = max(0.0, float(linger_seconds))
        self._close_engine_session = close_session_on_exit
        self._tracer = engine._obs
        # The warm heart: the engine-held resident session, plus the
        # service's own reference so an engine-side close_session()
        # cannot tear the pool down under in-flight batches.
        self._session = engine.open_session(n_jobs=n_jobs).acquire()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: deque[CleanRequest] = deque()
        self._closed = False
        self._finalized = False
        self._next_id = 0
        self._batches = 0
        self._requests = 0
        self._rows = 0
        self._thread = threading.Thread(
            target=self._loop, name="bclean-serve", daemon=True
        )
        self._thread.start()

    # -- request side ------------------------------------------------------------

    def submit(
        self,
        rows: Table | Sequence[Sequence] | Sequence[dict],
        timeout: float | None = None,
    ) -> CleaningResult:
        """Clean ``rows`` (a Table, row sequences, or dicts under the
        fitted schema); blocks until this request's result is ready.

        Thread-safe: concurrent submissions coalesce into shared
        micro-batch ticks.  The result is exactly what a standalone
        serial ``clean()`` of the same rows would return — same
        repairs, same cleaned cells, request-local row indices.
        """
        table = self._as_table(rows)
        if table.n_rows == 0:
            return CleaningResult(
                table.copy(), [], CleaningStats(), diagnostics={"serve": {}}
            )
        with self._cond:
            if self._closed:
                raise CleaningError("BCleanService is closed")
            request = CleanRequest(self._next_id, table)
            self._next_id += 1
            self._pending.append(request)
            self._cond.notify()
        tracer = self._tracer
        if tracer.enabled:
            with tracer.span(
                "serve.request",
                cat="serve",
                tid=SERVE_TID_BASE + request.request_id,
                request=request.request_id,
                rows=table.n_rows,
            ):
                finished = request.done.wait(timeout)
        else:
            finished = request.done.wait(timeout)
        if not finished:
            raise CleaningError(
                f"request {request.request_id} timed out after {timeout}s"
            )
        if request.error is not None:
            raise request.error
        return request.result

    def _as_table(self, rows) -> Table:
        if isinstance(rows, Table):
            if list(rows.schema.names) != list(self._schema.names):
                raise CleaningError(
                    "request schema does not match the served model: "
                    f"{list(rows.schema.names)} vs {list(self._schema.names)}"
                )
            return rows
        rows = list(rows)
        if rows and isinstance(rows[0], dict):
            return Table.from_dicts(self._schema, rows)
        return Table.from_rows(self._schema, rows)

    # -- batcher side ------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending and self._closed:
                    return
            if self._linger > 0:
                # Outside the lock: submitters racing in during the
                # linger join this tick instead of waiting out a full
                # pipeline pass.
                time.sleep(self._linger)
            with self._cond:
                batch = take_batch(self._pending, self._max_batch_rows)
            if not batch:
                continue
            try:
                self._run_batch(batch)
            except BaseException as exc:  # noqa: BLE001 - must release waiters
                for request in batch:
                    request.fail(exc)

    def _run_batch(self, requests: list[CleanRequest]) -> None:
        """One tick: concatenate → one pipeline pass on the resident
        session → demultiplex."""
        engine = self._engine
        tracer = self._tracer
        batch_id = self._batches
        self._batches += 1
        combined = concat_tables(self._schema, [r.table for r in requests])
        stats = CleaningStats()
        repairs: list = []
        cleaned = combined.copy()
        start = clock()
        with tracer.span(
            "serve.batch",
            cat="serve",
            batch=batch_id,
            requests=len(requests),
            rows=combined.n_rows,
        ):
            driver = StreamDriver(
                engine,
                engine._columnar_scorer(),
                tracer=tracer,
                session=self._session,
                config=self._cfg,
            )
            driver.clean_table(combined, False, stats, cleaned, repairs)
        seconds = clock() - start
        session = self._session
        cache = session.competition_cache
        serve_common = {
            "batch_id": batch_id,
            "batch_requests": len(requests),
            "batch_rows": combined.n_rows,
            "pools_created": session.pools_created,
            "snapshot_ships": session.snapshot_ships,
        }
        if cache is not None:
            serve_common.update(cache.stats())
        self._requests += len(requests)
        self._rows += combined.n_rows
        for request, (own_cleaned, own_repairs) in zip(
            requests, split_results(requests, cleaned, repairs)
        ):
            request_stats = CleaningStats(
                cells_total=request.n_rows * self._n_cols,
                repairs_made=len(own_repairs),
                clean_seconds=seconds,
                fit_seconds=engine._fit_seconds,
            )
            request.resolve(
                CleaningResult(
                    own_cleaned,
                    own_repairs,
                    request_stats,
                    diagnostics={
                        "columnar": True,
                        "serve": {
                            "request_id": request.request_id,
                            **serve_common,
                        },
                    },
                )
            )

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Drain pending requests, stop the batcher, and release the
        service's session reference (idempotent)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join()
        if self._finalized:
            return
        self._finalized = True
        self._session.release()
        if self._close_engine_session:
            self._engine.close_session()

    def __enter__(self) -> "BCleanService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def session(self):
        """The resident :class:`~repro.exec.session.ExecSession` the
        service dispatches on (shared with the engine)."""
        return self._session

    def diagnostics(self) -> dict:
        """Service-level amortisation counters: a healthy process-pool
        service shows ``pools_created == 1`` / ``snapshot_ships == 1``
        however many requests and batches ran, with ``cache_hits``
        counting competitions answered without any dispatch."""
        session = self._session
        out = {
            "requests": self._requests,
            "batches": self._batches,
            "rows": self._rows,
            "executor": self._cfg.executor,
            "pools_created": session.pools_created,
            "snapshot_ships": session.snapshot_ships,
            "flags": session.flags(),
        }
        if session.competition_cache is not None:
            out.update(session.competition_cache.stats())
        return out
