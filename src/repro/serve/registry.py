"""The model registry: fit once per schema, reload anywhere.

The serving shape of the ROADMAP ("cleaning as a service") separates
*fitting* a model from *using* it: fit cost is paid once per schema and
the resulting model — network, statistics, build-time table encoding —
is persisted so any later process can open a resident session on it and
serve cleans without refitting.

A registry is a directory of one subdirectory per **schema
fingerprint** (a hash of the attribute names in order), each holding a
single ``model.json``:

``model.json``
    ``{"version", "fingerprint", "schema", "config", "bn"}`` where
    ``bn`` is the :func:`repro.bayesnet.serialize.bn_to_dict` payload
    *with its encoding rider* — the network's counts, the DAG, and the
    complete interning (vocabularies in code order plus the fitted
    coded columns).

The reload contract is **byte-identity**: a loaded engine must produce
exactly the repairs the in-memory one would, including for foreign
tables whose unseen values minted codes after ``fit()``.  That works
because

- the encoding round-trip replays every vocabulary in code order, so
  all codes (minted ones included) keep their numbers;
- the fit table is reconstructed from the coded columns through
  ``decode`` — representatives are ``cell_key``-identical to the
  original cells, so re-derived statistics (co-occurrence, domains,
  confidences) come out identical;
- the persisted network is injected over the refitted one, so a
  hand-edited model (§7.3.2) survives the registry too.

Constraints are **not** persisted — they are arbitrary Python
callables; the caller supplies the registry they fit with (CLI specs
are re-loadable by construction).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.bayesnet.serialize import (
    FORMAT_VERSION,
    bn_from_dict,
    bn_to_dict,
    encoding_from_dict,
)
from repro.constraints.registry import UCRegistry
from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.dataset.encoding import TableEncoding
from repro.dataset.schema import Attribute, AttrType, Schema
from repro.dataset.table import Table
from repro.errors import CleaningError
from repro.exec.fit_stream import SuffStats

#: the one file a registry entry consists of
MODEL_FILE = "model.json"


def _csv_header(source, delimiter: str = ",") -> list[str]:
    """The attribute names of a CSV, from its header row alone (the
    streamed bootstrap must fingerprint the schema without reading the
    file)."""
    import csv

    with open(source, newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh, delimiter=delimiter)
        try:
            return next(reader)
        except StopIteration:
            raise CleaningError(f"empty CSV: {source}") from None


def schema_fingerprint(names: Sequence[str]) -> str:
    """The registry key of a schema: a short stable hash of its
    attribute names in order (the unit a model is fitted per)."""
    joined = "\x1f".join(names)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


# -- schema / config round-trips ----------------------------------------------


def schema_to_dict(schema: Schema) -> list[dict]:
    """JSON-safe schema description (names, logical types, nullability
    — request CSVs must be read under the *fitted* types, not re-
    inferred ones, or value keys diverge)."""
    return [
        {"name": a.name, "type": a.attr_type.value, "nullable": a.nullable}
        for a in schema.attributes
    ]


def schema_from_dict(payload: list[dict]) -> Schema:
    """Rebuild a schema written by :func:`schema_to_dict`."""
    return Schema(
        [
            Attribute(
                raw["name"],
                AttrType(raw.get("type", "text")),
                bool(raw.get("nullable", False)),
            )
            for raw in payload
        ]
    )


def config_to_dict(config: BCleanConfig) -> dict:
    """JSON-safe form of every engine knob (enums by value; the nested
    FDX config flattened by ``dataclasses.asdict``)."""
    payload = dataclasses.asdict(config)
    payload["mode"] = config.mode.value
    return payload


def config_from_dict(payload: dict) -> BCleanConfig:
    """Rebuild a config written by :func:`config_to_dict` (the string
    ``mode`` converts back in ``__post_init__``)."""
    from repro.bayesnet.structure.fdx import FDXConfig

    payload = dict(payload)
    if isinstance(payload.get("fdx"), dict):
        payload["fdx"] = FDXConfig(**payload["fdx"])
    return BCleanConfig(**payload)


def table_from_encoding(encoding: TableEncoding, schema: Schema) -> Table:
    """Reconstruct the fit table from its coded columns.

    ``decode`` returns the representative cell of each code — the first
    original value observed with its key — so every reconstructed cell
    is ``cell_key``-identical to the cell it stands for, and every
    statistic derived from the reconstruction matches the original
    build byte for byte.
    """
    columns = []
    for name in encoding.names:
        vocab = encoding.vocab(name)
        columns.append([vocab.decode(int(c)) for c in encoding.codes(name)])
    return Table(schema, columns)


# -- the registry -------------------------------------------------------------


class ModelRegistry:
    """A directory of fitted models, one per schema fingerprint.

    Typical serving bootstrap::

        registry = ModelRegistry("models/")
        engine, loaded = registry.fit_or_load(table, BCleanConfig.pip())
        with BCleanService(engine) as service:
            ...
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def path_for(self, names: Sequence[str]) -> Path:
        """Where the model for this schema lives (existing or not)."""
        return self.root / schema_fingerprint(names) / MODEL_FILE

    def contains(self, names: Sequence[str]) -> bool:
        """Whether a model for this schema has been saved."""
        return self.path_for(names).is_file()

    def save(self, engine: BClean) -> Path:
        """Persist a fitted engine's model; returns the model path.

        Requires the columnar path (the reload rebuilds through
        ``fit(encoding=...)``, which needs the singleton composition).
        """
        if engine.bn is None or engine.table is None:
            raise CleaningError("fit() must be called before registry save")
        if not engine._singleton_composition():
            raise CleaningError(
                "the model registry requires the singleton composition "
                "(merged-node models cannot be reloaded via the coded path)"
            )
        names = engine.table.schema.names
        path = self.path_for(names)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": FORMAT_VERSION,
            "fingerprint": schema_fingerprint(names),
            "schema": schema_to_dict(engine.table.schema),
            "config": config_to_dict(engine.config),
            "bn": bn_to_dict(engine.bn, encoding=engine._encoding),
        }
        if getattr(engine, "_stream_fitted", False) and engine._suffstats is not None:
            # A streamed fit's table is the distinct-row struct table:
            # persist the multiplicities so the reload weights every
            # statistic back up instead of counting struct rows once.
            stats = engine._suffstats
            payload["stream"] = {
                "n_rows": int(stats.n_rows),
                "n_chunks": int(stats.n_chunks),
                "row_counts": stats.row_counts.tolist(),
                "row_firsts": stats.row_firsts.tolist(),
            }
        path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
        return path

    def load(
        self,
        names: Sequence[str],
        constraints: UCRegistry | None = None,
        config: BCleanConfig | None = None,
    ) -> BClean:
        """Rebuild a fitted engine for this schema.

        ``constraints`` must be the registry the model was fitted with
        (constraints are not persisted); ``config`` overrides the saved
        one — scheduling knobs (executor, n_jobs, chunk_rows) are safe
        to change, scoring knobs alter the model's decisions.
        """
        path = self.path_for(names)
        if not path.is_file():
            raise CleaningError(
                f"no registry model for schema {list(names)} "
                f"(fingerprint {schema_fingerprint(names)}) under {self.root}"
            )
        payload = json.loads(path.read_text(encoding="utf-8"))
        schema = schema_from_dict(payload["schema"])
        if config is None:
            config = config_from_dict(payload["config"])
        bn = bn_from_dict(payload["bn"])
        raw_encoding = payload["bn"].get("encoding")
        if raw_encoding is None:
            raise CleaningError(
                f"registry model {path} carries no encoding rider"
            )
        encoding = encoding_from_dict(raw_encoding)
        table = table_from_encoding(encoding, schema)
        # The table was decoded *from* the encoding, so the snapshot
        # check can take the O(1) identity fast path.
        encoding._source = table
        encoding._source_mutations = table.mutation_count
        engine = BClean(config, constraints)
        stream = payload.get("stream")
        if stream is not None:
            # Streamed model: the persisted table holds distinct row
            # signatures — rehydrate the sufficient statistics and refit
            # through the weighted path, never the plain (unweighted)
            # whole-table fit.
            stats = SuffStats.from_finalized(
                table,
                encoding,
                np.asarray(stream["row_counts"], dtype=np.int64),
                np.asarray(stream["row_firsts"], dtype=np.int64),
                int(stream["n_rows"]),
                n_chunks=int(stream.get("n_chunks", 1)),
                reservoir_rows=config.fit_reservoir_rows,
            )
            engine.fit_stats(stats, dag=bn.dag)
        else:
            engine.fit(table, dag=bn.dag, encoding=encoding)
        # The persisted CPTs are authoritative (they may be hand-edited,
        # §7.3.2); for an untouched model the refitted counts are
        # identical, so this is a no-op there.
        engine.bn = bn
        engine._columnar = None
        return engine

    def fit_or_load(
        self,
        table: Table,
        config: BCleanConfig | None = None,
        constraints: UCRegistry | None = None,
    ) -> tuple[BClean, bool]:
        """The serving bootstrap: reload the schema's model if one is
        saved, else fit on ``table`` and save.  Returns ``(engine,
        loaded)`` — ``loaded`` tells whether fit cost was skipped."""
        names = table.schema.names
        if self.contains(names):
            return (
                self.load(names, constraints=constraints, config=config),
                True,
            )
        engine = BClean(config, constraints)
        engine.fit(table)
        self.save(engine)
        return engine, False

    def fit_or_load_csv(
        self,
        src,
        config: BCleanConfig | None = None,
        constraints: UCRegistry | None = None,
        chunk_rows: int | None = None,
        schema=None,
        delimiter: str = ",",
    ) -> tuple[BClean, bool]:
        """:meth:`fit_or_load` from a training CSV that is never fully
        materialised: the schema fingerprint comes from a header-only
        peek, a saved model reloads as usual, and a miss fits
        out-of-core through :meth:`BClean.fit_csv` (one row block
        resident at a time) before saving."""
        names = (
            list(schema.names) if schema is not None else _csv_header(src, delimiter)
        )
        if self.contains(names):
            return (
                self.load(names, constraints=constraints, config=config),
                True,
            )
        engine = BClean(config, constraints)
        engine.fit_csv(
            src, chunk_rows=chunk_rows, schema=schema, delimiter=delimiter
        )
        self.save(engine)
        return engine, False

    def fit_update(self, engine: BClean, new_rows) -> Path:
        """Fold fresh rows into a fitted engine
        (:meth:`BClean.fit_update`) and re-persist its model — the
        registry entry then carries the merged statistics, so any later
        reload serves the updated model."""
        engine.fit_update(new_rows)
        return self.save(engine)
